"""Quickstart: davix over real sockets against a local storage server.

Starts the DPM-like storage server on a localhost port, then exercises
the full DavixClient API surface: PUT/GET, metadata, directory
listings, positional reads and the paper's vectored reads.

Run: ``python examples/quickstart.py``
"""

from repro.concurrency import ThreadRuntime
from repro.core import DavixClient
from repro.server import ObjectStore, StorageApp, real_server


def main() -> None:
    store = ObjectStore()
    app = StorageApp(store)
    with real_server(app) as server:
        base = f"http://127.0.0.1:{server.port}"
        client = DavixClient(ThreadRuntime())
        print(f"storage server listening on {base}")

        # -- upload / download ------------------------------------------
        payload = bytes(range(256)) * 64  # 16 KiB
        status = client.put(f"{base}/data/demo.bin", payload)
        print(f"PUT /data/demo.bin -> HTTP {status}")
        data = client.get(f"{base}/data/demo.bin")
        assert data == payload
        print(f"GET /data/demo.bin -> {len(data)} bytes (byte-exact)")

        # -- metadata -----------------------------------------------------
        stat = client.stat(f"{base}/data/demo.bin")
        print(f"stat: size={stat.size} etag={stat.etag}")

        client.put(f"{base}/data/other.bin", b"more-data")
        listing = client.listdir(f"{base}/data")
        names = ", ".join(sorted(name for name, _ in listing))
        print(f"listdir /data -> {names}")

        # -- positional reads (HTTP Range) ---------------------------------
        fragment = client.pread(f"{base}/data/demo.bin", 256, 16)
        print(f"pread(256, 16) -> {fragment.hex()}")
        assert fragment == payload[256:272]

        # -- vectored reads (HTTP multi-range, paper Section 2.3) ----------
        reads = [(0, 8), (1000, 8), (16000, 8)]
        chunks = client.pread_vec(f"{base}/data/demo.bin", reads)
        print(
            "pread_vec x3 fragments -> "
            + ", ".join(chunk.hex() for chunk in chunks)
        )
        assert chunks == [payload[o : o + n] for o, n in reads]

        # -- pool statistics -------------------------------------------------
        stats = client.pool_stats()
        print(
            f"session pool: {stats.hits} hits, "
            f"{stats.misses} misses (one TCP connection reused "
            "across every call above)"
        )

        client.delete(f"{base}/data/demo.bin")
        print("DELETE /data/demo.bin -> gone:", not client.exists(
            f"{base}/data/demo.bin"
        ))


if __name__ == "__main__":
    main()
