"""Cloud-storage access: signed S3 requests and HTTPS cost (Section 1
motivation + Section 2.2 TLS analysis).

The paper's opening argument is that HTTP unlocks the cloud-storage
ecosystem ("Amazon Simple Storage Service ... REST API like S3") for
HPC data access. This example runs the davix client against the
S3-compatible endpoint — signed requests, bucket listing, ranged and
vectored reads — over real localhost sockets, then quantifies the TLS
surcharge the paper cites, on the simulator.

Run: ``python examples/cloud_storage_s3.py``
"""

from repro.concurrency import SimRuntime, ThreadRuntime
from repro.concurrency.tlsmodel import TlsPolicy
from repro.core import DavixClient, RequestParams
from repro.net import LinkSpec, Network
from repro.server import (
    HttpServer,
    ObjectStore,
    S3App,
    S3Credentials,
    ServerConfig,
    StorageApp,
    real_server,
)
from repro.sim import Environment

CREDS = S3Credentials(access_key="AKIAEXAMPLE", secret_key="hunter2")


def s3_over_real_sockets() -> None:
    store = ObjectStore()
    store.mkcol("/physics")
    app = S3App(store, credentials=CREDS)
    with real_server(app) as server:
        base = f"http://127.0.0.1:{server.port}"
        signed = DavixClient(
            ThreadRuntime(), params=RequestParams(s3_credentials=CREDS)
        )
        anonymous = DavixClient(ThreadRuntime())

        payload = bytes(range(256)) * 256  # 64 KiB
        signed.put(f"{base}/physics/run42/events.root", payload)
        signed.put(f"{base}/physics/run42/index.json", b"{}")
        print("uploaded 2 objects with signed PUTs")

        try:
            anonymous.get(f"{base}/physics/run42/events.root")
        except Exception as exc:
            print(f"anonymous GET rejected: {type(exc).__name__}")

        data = signed.get(f"{base}/physics/run42/events.root")
        assert data == payload
        fragment = signed.pread(
            f"{base}/physics/run42/events.root", 1024, 64
        )
        assert fragment == payload[1024:1088]
        chunks = signed.pread_vec(
            f"{base}/physics/run42/events.root",
            [(0, 16), (32_768, 16)],
        )
        print(
            "signed GET / range / vectored reads ok "
            f"({len(data)} B, {len(fragment)} B, {len(chunks)} fragments)"
        )
        print(f"auth failures recorded by the endpoint: {app.auth_failures}")


def tls_surcharge_on_simulator() -> None:
    def run(scheme: str) -> float:
        env = Environment()
        net = Network(env, seed=6)
        net.add_host("client")
        net.add_host("server")
        net.set_route(
            "client", "server",
            LinkSpec(latency=0.05, bandwidth=62_500_000),
        )
        tls = TlsPolicy() if scheme == "https" else None
        store = ObjectStore()
        store.put("/bulk", b"z" * 20_000_000)
        HttpServer(
            SimRuntime(net, "server"),
            StorageApp(store, config=ServerConfig(tls=tls)),
            port=443 if scheme == "https" else 80,
        ).start()
        client = DavixClient(SimRuntime(net, "client"))
        start = client.runtime.now()
        client.get(f"{scheme}://server/bulk")
        return client.runtime.now() - start

    plain = run("http")
    tls = run("https")
    print(
        f"\n20 MB over a 100 ms-RTT link: http {plain:.2f}s vs "
        f"https {tls:.2f}s "
        f"(+{(tls / plain - 1) * 100:.0f}%: 2-RTT handshake + record "
        "crypto — the paper's argument against mandatory TLS)"
    )


def main() -> None:
    s3_over_real_sockets()
    tls_surcharge_on_simulator()


if __name__ == "__main__":
    main()
