"""Metalink resiliency (paper Section 2.4): fail-over & multi-stream.

Builds a grid of four storage sites replicating one 32 MB file, then:

1. downloads it while sites die one by one — the Metalink fail-over
   strategy keeps succeeding until the last replica is gone;
2. restores the grid and downloads with the multi-stream strategy,
   showing the client-side bandwidth aggregation (and the server load
   it costs).

Run: ``python examples/resilient_failover.py``
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import AllReplicasFailed
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, StorageApp, SyntheticContent
from repro.sim import Environment

N_SITES = 4
PATH = "/grid/dataset.root"
SIZE = 32_000_000


def build_grid():
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("client", access_bandwidth=125_000_000)
    names = [f"site{i}" for i in range(N_SITES)]
    urls = [f"http://{name}{PATH}" for name in names]
    apps = []
    for name in names:
        net.add_host(name, access_bandwidth=25_000_000)
        net.set_route(
            "client", name, LinkSpec(latency=0.015, bandwidth=25_000_000)
        )
        store = ObjectStore()
        store.put(PATH, SyntheticContent(SIZE, seed=99))
        app = StorageApp(store, replicas={PATH: urls})
        HttpServer(SimRuntime(net, name), app, port=80).start()
        apps.append(app)
    params = RequestParams(retries=0, connect_timeout=0.5)
    client = DavixClient(SimRuntime(net, "client"), params=params)
    return client, net, urls, apps


def main() -> None:
    # -- 1. fail-over under progressive site loss -------------------------
    client, net, urls, apps = build_grid()
    print(f"grid: {N_SITES} sites replicating {PATH} ({SIZE / 1e6:.0f} MB)")
    for dead in range(N_SITES):
        if dead:
            net.host(f"site{dead - 1}").fail()
        # Reset the blacklist between attempts: sites "recovered" as
        # far as the client knows.
        client.context._blacklist.clear()
        try:
            data = client.get_with_failover(
                urls[0], metalink_url=urls[-1]
            )
            print(
                f"  {dead} site(s) down -> fail-over GET ok "
                f"({len(data) / 1e6:.0f} MB, "
                f"{client.context.counters['failovers']} failovers so far)"
            )
        except AllReplicasFailed as exc:
            print(f"  {dead} site(s) down -> {exc}")

    net.host(f"site{N_SITES - 1}").fail()
    client.context._blacklist.clear()
    try:
        client.get_with_failover(urls[0], metalink_url=urls[-1])
    except Exception as exc:
        print(f"  all sites down -> {type(exc).__name__} (as expected)")

    # -- 2. multi-stream download on a healthy grid ------------------------
    client, net, urls, apps = build_grid()
    params = RequestParams(multistream_chunk=2_000_000)

    start = client.runtime.now()
    single = client.get(urls[0])
    single_time = client.runtime.now() - start

    start = client.runtime.now()
    result = client.get_multistream(urls[0], params=params)
    multi_time = client.runtime.now() - start

    assert result.data == single
    print(
        f"\nsingle stream : {SIZE / single_time / 1e6:6.1f} MB/s "
        f"({single_time:.2f}s simulated)"
    )
    print(
        f"multi-stream  : {SIZE / multi_time / 1e6:6.1f} MB/s "
        f"({multi_time:.2f}s simulated), checksum verified"
    )
    for stream in result.streams:
        print(
            f"    {stream.url.host}: {stream.chunks} chunks, "
            f"{stream.bytes / 1e6:.0f} MB"
        )
    print(
        "server requests handled per site:",
        [app.requests_handled for app in apps],
        "(the paper's noted drawback: multi-stream multiplies server load)",
    )


if __name__ == "__main__":
    main()
