"""A DynaFed-style federation front end (paper Section 2.4).

One data-less federator aggregates three storage sites under a single
namespace. Clients GET through the federator and are redirected to a
replica (round-robin); asking for a Metalink instead returns the whole
replica set, which davix's fail-over and multi-stream strategies
consume. "The combined usage of libdavix ... with a ... federation
system ... enforces the global resilience of the I/O layer."

Run: ``python examples/dynafed_federation.py``
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.net import LinkSpec, Network
from repro.server import (
    FederationApp,
    HttpServer,
    ObjectStore,
    StorageApp,
    SyntheticContent,
)
from repro.sim import Environment

PATH = "/fed/atlas/dataset042.root"
SIZE = 8_000_000
SITES = ("cern", "glasgow", "bnl")


def main() -> None:
    env = Environment()
    net = Network(env, seed=4)
    net.add_host("client")
    net.add_host("dynafed")
    net.set_route(
        "client", "dynafed", LinkSpec(latency=0.002, bandwidth=1e9)
    )

    content = SyntheticContent(SIZE, seed=11)
    site_urls = []
    for site in SITES:
        net.add_host(site)
        net.set_route(
            "client", site, LinkSpec(latency=0.02, bandwidth=62_500_000)
        )
        store = ObjectStore()
        store.put(PATH, content)
        HttpServer(SimRuntime(net, site), StorageApp(store), port=80).start()
        site_urls.append(f"http://{site}{PATH}")

    federator = FederationApp()
    federator.register(
        PATH,
        site_urls,
        size=SIZE,
        adler32=content.adler32(),
    )
    HttpServer(SimRuntime(net, "dynafed"), federator, port=80).start()

    client = DavixClient(
        SimRuntime(net, "client"), params=RequestParams(retries=0)
    )
    fed_url = f"http://dynafed{PATH}"

    # Plain GETs follow the federator's redirect (round-robin).
    for _ in range(3):
        data = client.get(fed_url)
        assert len(data) == SIZE
    print(
        f"3 federated GETs ok; redirects followed: "
        f"{client.context.counters['redirects_followed']}"
    )

    # The Metalink view of the same namespace entry.
    metalink = client.get_metalink(fed_url)
    entry = metalink.single()
    print(f"metalink for {entry.name}: size={entry.size}")
    for url in entry.ordered_urls():
        print(f"    priority {url.priority}: {url.url}")

    # Multi-stream through the federation: chunks from all 3 sites,
    # verified against the federator's adler32.
    result = client.get_multistream(
        fed_url,
        params=client.context.params.with_(multistream_chunk=1_000_000),
        metalink_url=fed_url,
    )
    print(
        f"multi-stream via federation: {result.size / 1e6:.0f} MB from "
        f"{len(result.streams)} sites, checksum verified:"
    )
    for host, nbytes in sorted(result.bytes_by_host().items()):
        print(f"    {host}: {nbytes / 1e6:.1f} MB")

    # Kill the first two sites: fail-over through the federation still
    # succeeds.
    net.host("cern").fail()
    net.host("glasgow").fail()
    data = client.get_with_failover(site_urls[0], metalink_url=fed_url)
    assert len(data) == SIZE
    print("2 of 3 sites down -> fail-over via federation metalink: ok")


if __name__ == "__main__":
    main()
