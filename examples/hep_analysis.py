"""The paper's experiment, end to end: ROOT analysis over davix vs
XRootD on simulated LAN / GEANT / WAN links (Figure 4).

Scale defaults to 0.25 (a ~175 MB dataset) so the example runs in a few
seconds; pass ``--scale 1.0`` for the full 700 MB reproduction.

Run: ``python examples/hep_analysis.py [--scale 0.25] [--fraction 1.0]``
"""

import argparse

from repro.bench import PAPER_FIG4, print_table
from repro.net.profiles import GEANT, LAN, WAN
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Scenario, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--fraction", type=float, default=1.0)
    args = parser.parse_args()

    spec = paper_dataset(scale=args.scale)
    config = AnalysisConfig(fraction=args.fraction)
    print(
        f"dataset: {spec.n_entries} events, "
        f"~{spec.approx_compressed_size / 1e6:.0f} MB compressed, "
        f"{len(spec.branches)} branches"
    )

    rows = []
    for profile in (LAN, GEANT, WAN):
        times = {}
        for protocol in ("davix", "xrootd"):
            report = run_scenario(
                Scenario(
                    profile=profile,
                    protocol=protocol,
                    spec=spec,
                    config=config,
                    seed=1,
                )
            )
            times[protocol] = report
            print(
                f"  {profile.name:5s} {protocol:6s}: "
                f"{report.wall_seconds:7.2f}s simulated, "
                f"{report.remote_reads} remote reads, "
                f"{report.bytes_fetched / 1e6:.0f} MB"
            )
        rows.append(
            [
                profile.label,
                times["davix"].wall_seconds,
                times["xrootd"].wall_seconds,
                PAPER_FIG4[("davix", profile.name)],
                PAPER_FIG4[("xrootd", profile.name)],
            ]
        )

    print_table(
        "Execution time of the ROOT analysis job (seconds, less is "
        "better)",
        ["link", "HTTP (sim)", "XRootD (sim)", "HTTP (paper)",
         "XRootD (paper)"],
        rows,
        note=(
            "paper values assume scale=1.0 and fraction=1.0; the WAN "
            "gap needs full-size refills (>2.5 MB) before the HTTP "
            "stack's TCP window binds — run with --scale 1.0 to see it"
        ),
    )


if __name__ == "__main__":
    main()
