"""Legacy setup shim (the environment lacks the `wheel` package, which
PEP 660 editable installs require)."""
from setuptools import setup

setup()
