"""EXT-SPDY — davix's pool vs the SPDY alternative (Section 2.2).

The paper rejects SPDY because it "explicitly enforces the usage of
SSL/TLS" while davix's pool gives "efficient parallel request execution
... without ... necessitating a protocol modification". This bench runs
the same concurrent workload three ways:

* davix pool over plain HTTP (the paper's design);
* SPDY-like multiplexing (1 connection, mandatory TLS);
* davix pool over HTTPS (isolating the TLS cost from the multiplexing).

Metrics: wall time, throughput and server connection count — the pool
should match multiplexed performance at the cost of more connections,
and TLS should tax both equally.
"""

from repro.concurrency import Await, SimRuntime
from repro.concurrency.tlsmodel import TlsPolicy
from repro.core import DavixClient, run_parallel
from repro.core.file import DavFile
from repro.http import Request
from repro.net.profiles import GEANT, build_network
from repro.server import (
    HttpServer,
    ObjectStore,
    ServerConfig,
    StorageApp,
    ZeroContent,
)
from repro.sim import Environment
from repro.spdy import SpdyClient, SpdyServer, serve_spdy

from _util import emit

OBJECTS = 40
OBJECT_SIZE = 1_000_000
WIDTH = 8


def build_store():
    store = ObjectStore()
    for i in range(OBJECTS):
        store.put(f"/obj{i}", ZeroContent(OBJECT_SIZE))
    return store


def run_pool(tls: bool):
    env = Environment()
    net = build_network(GEANT, env, seed=37)
    client_rt = SimRuntime(net, "client")
    scheme = "https" if tls else "http"
    config = ServerConfig(tls=TlsPolicy() if tls else None)
    HttpServer(
        SimRuntime(net, "server"),
        StorageApp(build_store(), config=config),
        port=443 if tls else 80,
    ).start()
    client = DavixClient(client_rt)

    def job(path):
        def thunk():
            data = yield from DavFile(
                client.context, f"{scheme}://server{path}"
            ).read_all()
            return len(data)

        return thunk

    start = client_rt.now()
    client_rt.run(
        run_parallel(
            [job(f"/obj{i}") for i in range(OBJECTS)],
            concurrency=WIDTH,
            raise_first=True,
        )
    )
    elapsed = client_rt.now() - start
    conns = net.host("server").counters["connections_accepted"]
    return elapsed, conns


def run_spdy():
    env = Environment()
    net = build_network(GEANT, env, seed=37)
    client_rt = SimRuntime(net, "client")
    serve_spdy(
        SimRuntime(net, "server"),
        SpdyServer(StorageApp(build_store())),
        port=443,
    )

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        promises = []
        for i in range(OBJECTS):
            promise = yield from client.request_nowait(
                Request("GET", f"/obj{i}")
            )
            promises.append(promise)
        total = 0
        for promise in promises:
            response = yield Await(promise)
            total += len(response.body)
        return total

    start = client_rt.now()
    total = client_rt.run(op())
    assert total == OBJECTS * OBJECT_SIZE
    elapsed = client_rt.now() - start
    conns = net.host("server").counters["connections_accepted"]
    return elapsed, conns


def test_spdy_comparison(benchmark):
    def run():
        return {
            "davix pool (http)": run_pool(tls=False),
            "davix pool (https)": run_pool(tls=True),
            "spdy (1 conn, TLS)": run_spdy(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (elapsed, conns) in results.items():
        rows.append(
            [
                label,
                elapsed,
                OBJECTS * OBJECT_SIZE / elapsed / 1e6,
                conns,
            ]
        )
    emit(
        "spdy_comparison",
        f"EXT-SPDY: {OBJECTS} x 1 MB concurrent GETs over GEANT",
        ["strategy", "time (s)", "MB/s", "server connections"],
        rows,
        note=(
            "the pool matches multiplexed throughput without TLS or "
            "protocol changes; its cost is the connection count "
            "(the paper's Section 2.2 conclusion)"
        ),
    )

    pool_http, pool_conns = results["davix pool (http)"]
    pool_https, _ = results["davix pool (https)"]
    spdy_time, spdy_conns = results["spdy (1 conn, TLS)"]
    # The pool (plain http) is at least as fast as SPDY-with-TLS.
    assert pool_http <= spdy_time * 1.05
    # SPDY needs exactly one connection; the pool needs WIDTH.
    assert spdy_conns == 1
    assert pool_conns == WIDTH
    # TLS taxes the pool too (fair comparison).
    assert pool_https > pool_http
