"""ABL-RA — extension: client-level sliding-window read-ahead.

Beyond the paper: both implemented clients carry an
*application-level* plan-driven read-ahead — XRootD's sliding window
(:mod:`repro.xrootd.readahead`) and davix's pipelined transfer engine
(:mod:`repro.core.engine`). With enough window either side overlaps
the refill transfers with per-event compute entirely, pushing the WAN
job toward the compute-bound floor — the upper bound of what
"minimizing the number of network round trips" can buy. The sweep
ablates the window size for both protocols on the WAN profile.
"""

from repro.net.profiles import LAN, WAN
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Scenario, run_scenario

from _util import bench_scale, emit

WINDOWS = (None, 2_000_000, 8_000_000, 32_000_000)
PROTOCOLS = ("davix", "xrootd")


def label_of(window):
    return "off (paper cfg)" if window is None else f"{window // 1_000_000} MB"


def config_for(protocol, window):
    knob = (
        {"davix_readahead": window}
        if protocol == "davix"
        else {"xrootd_readahead": window}
    )
    return AnalysisConfig(fraction=0.25, **knob)


def test_ablation_readahead(benchmark):
    spec = paper_dataset(scale=bench_scale())

    def run():
        out = {}
        for protocol in PROTOCOLS:
            for window in WINDOWS:
                report = run_scenario(
                    Scenario(
                        profile=WAN,
                        protocol=protocol,
                        spec=spec,
                        config=config_for(protocol, window),
                        seed=29,
                    )
                )
                out[(protocol, window)] = report.wall_seconds
            # Compute-bound floor: the LAN run (no meaningful stalls).
            out[(protocol, "floor")] = run_scenario(
                Scenario(
                    profile=LAN,
                    protocol=protocol,
                    spec=spec,
                    config=AnalysisConfig(fraction=0.25),
                    seed=29,
                )
            ).wall_seconds
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for protocol in PROTOCOLS:
        name = "HTTP" if protocol == "davix" else "XRootD"
        for window in WINDOWS:
            rows.append(
                [name, label_of(window), results[(protocol, window)]]
            )
        rows.append(
            [name, "LAN floor (compute-bound)", results[(protocol, "floor")]]
        )
    emit(
        "ablation_readahead",
        "ABL-RA: WAN job (25% of events) vs read-ahead window, both protocols",
        ["protocol", "read-ahead window", "time (s)"],
        rows,
        note=(
            "a large enough window hides the WAN refills behind "
            "compute, approaching the LAN floor — davix via the "
            "pipelined transfer engine, XRootD via its sliding window"
        ),
        params={
            "windows": [w for w in WINDOWS if w is not None],
            "fraction": 0.25,
            "profile": WAN.name,
            "scale": bench_scale(),
            "seed": 29,
        },
        configs={
            f"{protocol}-{'floor' if window == 'floor' else label_of(window)}": [
                results[(protocol, window)]
            ]
            for protocol in PROTOCOLS
            for window in (*WINDOWS, "floor")
        },
    )

    if bench_scale() >= 0.9:
        for protocol in PROTOCOLS:
            off = results[(protocol, None)]
            wide = results[(protocol, 32_000_000)]
            assert wide < off
            # Large window lands within 15% of the compute-bound floor.
            assert wide < results[(protocol, "floor")] * 1.15
