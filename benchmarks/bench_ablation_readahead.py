"""ABL-RA — extension: client-level sliding-window read-ahead.

Beyond the paper: the implemented XRootD client also carries an
*application-level* plan-driven read-ahead
(:mod:`repro.xrootd.readahead`). With enough window it overlaps the
refill transfers with per-event compute entirely, pushing the WAN job
toward the compute-bound floor — the upper bound of what "minimizing
the number of network round trips" can buy.
"""

from repro.net.profiles import LAN, WAN
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Scenario, run_scenario

from _util import bench_scale, emit

WINDOWS = (None, 2_000_000, 8_000_000, 32_000_000)


def label_of(window):
    return "off (paper cfg)" if window is None else f"{window // 1_000_000} MB"


def test_ablation_readahead(benchmark):
    spec = paper_dataset(scale=bench_scale())

    def run():
        out = {}
        for window in WINDOWS:
            config = AnalysisConfig(
                fraction=0.25, xrootd_readahead=window
            )
            report = run_scenario(
                Scenario(
                    profile=WAN,
                    protocol="xrootd",
                    spec=spec,
                    config=config,
                    seed=29,
                )
            )
            out[window] = report.wall_seconds
        # Compute-bound floor: the LAN run (no meaningful stalls).
        floor = run_scenario(
            Scenario(
                profile=LAN,
                protocol="xrootd",
                spec=spec,
                config=AnalysisConfig(fraction=0.25),
                seed=29,
            )
        ).wall_seconds
        out["floor"] = floor
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label_of(window), results[window]] for window in WINDOWS
    ]
    rows.append(["LAN floor (compute-bound)", results["floor"]])
    emit(
        "ablation_readahead",
        "ABL-RA: XRootD WAN job (25% of events) vs read-ahead window",
        ["read-ahead window", "time (s)"],
        rows,
        note=(
            "a large enough window hides the WAN refills behind "
            "compute, approaching the LAN floor"
        ),
    )

    if bench_scale() >= 0.9:
        assert results[32_000_000] < results[None]
        # Large window lands within 15% of the compute-bound floor.
        assert results[32_000_000] < results["floor"] * 1.15
