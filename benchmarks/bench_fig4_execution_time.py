"""FIG4 — the paper's headline result (Figure 4).

Regenerates: execution time of the ROOT analysis job reading 100 % of
~12 000 events from the ~700 MB tree, davix/HTTP vs XRootD, over the
LAN / GEANT / WAN profiles. Paper values: see
:data:`repro.bench.figures.PAPER_FIG4`.

Shape requirements: parity (±2 %) on LAN and GEANT; XRootD ~10–25 %
faster on the WAN (paper: 17.5 %).
"""

from repro.bench import PAPER_FIG4
from repro.net.profiles import GEANT, LAN, WAN
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Campaign

from _util import bench_reps, bench_scale, emit


def test_fig4_execution_time(benchmark):
    spec = paper_dataset(scale=bench_scale())
    campaign = Campaign(
        spec=spec,
        config=AnalysisConfig(),
        repetitions=bench_reps(),
        base_seed=42,
    )

    def run():
        return campaign.run_matrix([LAN, GEANT, WAN])

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for profile in (LAN, GEANT, WAN):
        for protocol in ("davix", "xrootd"):
            cell = results[(protocol, profile.name)]
            paper = PAPER_FIG4[(protocol, profile.name)]
            rows.append(
                [
                    profile.label,
                    "HTTP" if protocol == "davix" else "XRootD",
                    cell.mean,
                    cell.stdev,
                    paper,
                    cell.mean / paper,
                ]
            )
    emit(
        "fig4_execution_time",
        "FIG4: ROOT analysis job, 100% of events (seconds, less is better)",
        ["link", "protocol", "measured", "stdev", "paper", "meas/paper"],
        rows,
        note=(
            f"scale={bench_scale()} reps={bench_reps()} | paper: davix "
            "0.7% faster on LAN, parity on GEANT, XRootD 17.5% faster "
            "on WAN"
        ),
    )

    wan_davix = results[("davix", "wan")].mean
    wan_xrootd = results[("xrootd", "wan")].mean
    lan_ratio = (
        results[("davix", "lan")].mean / results[("xrootd", "lan")].mean
    )
    geant_ratio = (
        results[("davix", "geant")].mean
        / results[("xrootd", "geant")].mean
    )
    benchmark.extra_info["wan_gap"] = wan_davix / wan_xrootd
    # Shape assertions (paper: 1.175 on WAN, ~1.0 elsewhere).
    if bench_scale() >= 0.9:
        assert 1.05 < wan_davix / wan_xrootd < 1.35
        assert 0.95 < lan_ratio < 1.05
        assert 0.95 < geant_ratio < 1.05
