"""FIG4 — the paper's headline result (Figure 4).

Regenerates: execution time of the ROOT analysis job reading 100 % of
~12 000 events from the ~700 MB tree, davix/HTTP vs XRootD, over the
LAN / GEANT / WAN profiles. Paper values: see
:data:`repro.bench.figures.PAPER_FIG4`.

Shape requirements: parity (±2 %) on LAN and GEANT; XRootD ~10–25 %
faster on the WAN (paper: 17.5 %). An additive fourth row runs the
WAN job with davix's pipelined read-ahead engine armed
(``davix_readahead``) — the post-paper fix — which must close the WAN
gap to at least parity with XRootD.
"""

from repro.bench import PAPER_FIG4
from repro.net.profiles import GEANT, LAN, WAN
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Campaign

from _util import bench_reps, bench_scale, emit

READAHEAD_BYTES = 32_000_000


def test_fig4_execution_time(benchmark):
    spec = paper_dataset(scale=bench_scale())
    campaign = Campaign(
        spec=spec,
        config=AnalysisConfig(),
        repetitions=bench_reps(),
        base_seed=42,
    )
    readahead_campaign = Campaign(
        spec=spec,
        config=AnalysisConfig(davix_readahead=READAHEAD_BYTES),
        repetitions=bench_reps(),
        base_seed=42,
    )

    def run():
        results = campaign.run_matrix([LAN, GEANT, WAN])
        # Additive: the paper's WAN cell re-run with the read-ahead
        # engine (davix only; XRootD's numbers are untouched).
        results[("davix-readahead", "wan")] = (
            readahead_campaign.run_matrix([WAN], protocols=("davix",))[
                ("davix", "wan")
            ]
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for profile in (LAN, GEANT, WAN):
        for protocol in ("davix", "xrootd"):
            cell = results[(protocol, profile.name)]
            paper = PAPER_FIG4[(protocol, profile.name)]
            rows.append(
                [
                    profile.label,
                    "HTTP" if protocol == "davix" else "XRootD",
                    cell.mean,
                    cell.stdev,
                    paper,
                    cell.mean / paper,
                ]
            )
    ra_cell = results[("davix-readahead", "wan")]
    rows.append(
        [
            WAN.label,
            "HTTP+read-ahead",
            ra_cell.mean,
            ra_cell.stdev,
            PAPER_FIG4[("xrootd", "wan")],
            ra_cell.mean / PAPER_FIG4[("xrootd", "wan")],
        ]
    )
    emit(
        "fig4_execution_time",
        "FIG4: ROOT analysis job, 100% of events (seconds, less is better)",
        ["link", "protocol", "measured", "stdev", "paper", "meas/paper"],
        rows,
        note=(
            f"scale={bench_scale()} reps={bench_reps()} | paper: davix "
            "0.7% faster on LAN, parity on GEANT, XRootD 17.5% faster "
            "on WAN; HTTP+read-ahead (post-paper engine, "
            f"{READAHEAD_BYTES // 1_000_000} MB window) is compared "
            "against the paper's *XRootD* WAN figure"
        ),
        params={
            "scale": bench_scale(),
            "reps": bench_reps(),
            "readahead_bytes": READAHEAD_BYTES,
            "base_seed": 42,
        },
        configs={
            f"{protocol}-{profile}": {
                "samples": list(cell.times),
                "mean": cell.mean,
            }
            for (protocol, profile), cell in results.items()
        },
    )

    wan_davix = results[("davix", "wan")].mean
    wan_xrootd = results[("xrootd", "wan")].mean
    lan_ratio = (
        results[("davix", "lan")].mean / results[("xrootd", "lan")].mean
    )
    geant_ratio = (
        results[("davix", "geant")].mean
        / results[("xrootd", "geant")].mean
    )
    wan_readahead = results[("davix-readahead", "wan")].mean
    benchmark.extra_info["wan_gap"] = wan_davix / wan_xrootd
    benchmark.extra_info["wan_readahead_gap"] = wan_readahead / wan_xrootd
    # Shape assertions (paper: 1.175 on WAN, ~1.0 elsewhere).
    if bench_scale() >= 0.9:
        assert 1.05 < wan_davix / wan_xrootd < 1.35
        assert 0.95 < lan_ratio < 1.05
        assert 0.95 < geant_ratio < 1.05
        # The read-ahead engine closes the WAN gap: at least parity
        # with XRootD, and strictly better than synchronous davix.
        assert wan_readahead <= wan_xrootd
        assert wan_readahead < wan_davix
