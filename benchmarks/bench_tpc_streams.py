"""TPC-STREAMS — third-party COPY stream count vs RTT on fat pipes.

The tentpole question for server-to-server replication: how many
concurrent ranged streams does a 100 Gb/s-class site link need before
the copy saturates it, and how does the answer move with RTT? One
384 MB replica is pulled site-to-site while the orchestrating client
sits on a thin 1 Gb/s control link and sees only COPY + perf markers.

Gates (the paper's Section 3.2 scaling argument, ported to TPC):

* at the optimal stream count the 100 Gb/s link runs >= 80% full;
* at 100 ms RTT multi-stream is >= 3x a single stream;
* zero object bytes cross the orchestrating client's link.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.net import LinkSpec, Network, TcpOptions
from repro.obs import MetricsRegistry
from repro.server import (
    HttpServer,
    ObjectStore,
    ServerConfig,
    StorageApp,
    ZeroContent,
)
from repro.sim import Environment

from _util import emit

GBIT = 125_000_000
FILE_SIZE = 384 * 1024 * 1024
CHUNK = 24 * 1024 * 1024  # 16 chunks: enough grains for 16 streams
SOURCE = "/data/src.root"

# ~4 MB initial congestion window, no slow-start ramp: the bench
# isolates the window-per-stream limit, not the ramp to it.
WINDOW = TcpOptions(initial_window_segments=2874, idle_reset=False)

GRID = [
    (100 * GBIT, rtt, streams)
    for rtt in (0.001, 0.01, 0.1)
    for streams in (1, 2, 4, 8, 16)
] + [(10 * GBIT, 0.02, streams) for streams in (1, 8)]


def tpc_world(link_bandwidth, rtt):
    env = Environment()
    net = Network(env, seed=17)
    net.add_host("client")
    for name in ("site-a", "site-b"):
        # 400 Gb/s NICs: the site-to-site path, not the access wire,
        # is the binding constraint.
        net.add_host(name, access_bandwidth=4 * link_bandwidth)
    control = LinkSpec(latency=0.0002, bandwidth=GBIT)
    net.set_route("client", "site-a", control)
    net.set_route("client", "site-b", control)
    net.set_route(
        "site-a",
        "site-b",
        LinkSpec(latency=rtt / 2, bandwidth=link_bandwidth),
    )
    config = ServerConfig(
        disk_bandwidth=64e9,
        send_chunk=4 * 1024 * 1024,
        tpc_chunk=CHUNK,
        tpc_max_streams=64,
    )
    apps = {}
    for name in ("site-a", "site-b"):
        app = StorageApp(ObjectStore(), config=config)
        app.tpc_params = RequestParams(tcp_options=WINDOW, retries=0)
        app.metrics = MetricsRegistry()
        HttpServer(SimRuntime(net, name), app, port=80).start()
        apps[name] = app
    apps["site-a"].store.put(SOURCE, ZeroContent(FILE_SIZE))
    client = DavixClient(
        SimRuntime(net, "client"), params=RequestParams(retries=0)
    )
    return client, net, apps


def run_copy(link_bandwidth, rtt, streams):
    client, net, apps = tpc_world(link_bandwidth, rtt)
    start = client.runtime.now()
    summary = client.third_party_copy(
        f"http://site-a{SOURCE}",
        "http://site-b/data/dst.root",
        streams=streams,
    )
    elapsed = client.runtime.now() - start
    assert summary.ok and summary.bytes_transferred == FILE_SIZE

    # The destination committed every byte...
    moved = apps["site-b"].metrics.counter(
        "tpc.bytes_total", mode="pull"
    ).value
    assert moved == FILE_SIZE
    # ...and none of them crossed the orchestrating client's link.
    client_bytes = (
        net.host("client").uplink.bytes_carried
        + net.host("client").downlink.bytes_carried
    )
    assert client_bytes < 20_000, client_bytes
    return elapsed


def test_tpc_streams(benchmark):
    def run():
        return {cell: run_copy(*cell) for cell in GRID}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (link, rtt, streams), elapsed in results.items():
        throughput = FILE_SIZE / elapsed
        rows.append(
            [
                f"{link // GBIT}G rtt={rtt * 1000:g}ms x{streams}",
                elapsed,
                throughput / 1e9,
                100.0 * throughput / link,
            ]
        )
    emit(
        "tpc_streams",
        "TPC-STREAMS: 384 MB site-to-site COPY, streams x RTT x link",
        ["configuration", "time (s)", "GB/s", "% of link"],
        rows,
        note=(
            "multi-stream third-party copy aggregates per-stream TCP "
            "windows; the client only orchestrates (zero object bytes "
            "on its link)"
        ),
        params={
            "file_size": FILE_SIZE,
            "chunk": CHUNK,
            "initial_window_segments": WINDOW.initial_window_segments,
            "grid": [list(cell) for cell in GRID],
        },
    )

    def best(link, rtt):
        return min(
            elapsed
            for (cell_link, cell_rtt, _), elapsed in results.items()
            if cell_link == link and cell_rtt == rtt
        )

    # >= 80% of the 100 Gb/s link at the optimal stream count (1 ms RTT).
    peak = FILE_SIZE / best(100 * GBIT, 0.001)
    assert peak >= 0.8 * 100 * GBIT, peak
    # >= 3x single-stream at 100 ms RTT.
    single = results[(100 * GBIT, 0.1, 1)]
    assert single / best(100 * GBIT, 0.1) >= 3.0
    # More streams never lose at the highest RTT.
    assert results[(100 * GBIT, 0.1, 16)] < results[(100 * GBIT, 0.1, 4)]
    # The 10 Gb/s sanity row scales too.
    assert results[(10 * GBIT, 0.02, 8)] < results[(10 * GBIT, 0.02, 1)]
