"""POOL-C — pool size vs concurrency (Section 2.2 discussion).

"our approach uses a connection pool whose size is proportional to the
level of concurrency. Consequently, an important degree of concurrency
can result in a more important server load compared to a multi-plexed
solution like spdy."

Workload: C concurrent readers each fetching 50 x 512 KiB objects over
GEANT, dispatched through the davix pool vs multiplexed on a single
XRootD connection. Metrics: wall time (scaling) and server connection
count (the paper's honest trade-off).
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, run_parallel
from repro.core.file import DavFile
from repro.net.profiles import GEANT, build_network
from repro.server import HttpServer, ObjectStore, StorageApp, ZeroContent
from repro.sim import Environment
from repro.xrootd import XrdClient, XrdServer, serve_xrootd

from _util import emit

OBJECTS = 50
OBJECT_SIZE = 524_288
WIDTHS = (1, 4, 16, 64)


def build_store():
    store = ObjectStore()
    for i in range(OBJECTS):
        store.put(f"/obj{i}", ZeroContent(OBJECT_SIZE))
    return store


def run_davix(width):
    env = Environment()
    net = build_network(GEANT, env, seed=21)
    client_rt = SimRuntime(net, "client")
    HttpServer(
        SimRuntime(net, "server"), StorageApp(build_store()), port=80
    ).start()
    client = DavixClient(client_rt)

    def job(path):
        def thunk():
            data = yield from DavFile(
                client.context, f"http://server{path}"
            ).read_all()
            return len(data)

        return thunk

    start = client_rt.now()
    client_rt.run(
        run_parallel(
            [job(f"/obj{i}") for i in range(OBJECTS)],
            concurrency=width,
            raise_first=True,
        )
    )
    elapsed = client_rt.now() - start
    conns = net.host("server").counters["connections_accepted"]
    return elapsed, conns


def run_xrootd_multiplexed():
    """The 'ideal multiplexing' reference: everything on 1 connection."""
    env = Environment()
    net = build_network(GEANT, env, seed=21)
    client_rt = SimRuntime(net, "client")
    serve_xrootd(
        SimRuntime(net, "server"), XrdServer(build_store()), port=1094
    )

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        promises = []
        for i in range(OBJECTS):
            handle = yield from client.open(f"/obj{i}")
            promise = yield from client.read_nowait(
                handle, 0, OBJECT_SIZE
            )
            promises.append(promise)
        for promise in promises:
            yield from client.read_result(promise)
        return client_rt.now()

    elapsed = client_rt.run(op())
    conns = net.host("server").counters["connections_accepted"]
    return elapsed, conns


def test_pool_concurrency(benchmark):
    def run():
        out = {f"pool-{w}": run_davix(w) for w in WIDTHS}
        out["xrootd-mux"] = run_xrootd_multiplexed()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (elapsed, conns) in results.items():
        throughput = OBJECTS * OBJECT_SIZE / elapsed / 1e6
        rows.append([label, elapsed, throughput, conns])
    emit(
        "pool_concurrency",
        f"POOL-C: {OBJECTS} x 512 KiB GETs over GEANT",
        ["strategy", "time (s)", "MB/s", "server connections"],
        rows,
        note=(
            "pool connections grow with dispatch width (paper's stated "
            "cost vs a multiplexed protocol: xrootd uses 1)"
        ),
    )

    # More width -> faster, until the pipe saturates.
    assert results["pool-16"][0] < results["pool-1"][0] / 4
    # Connection count tracks width; multiplexing needs exactly one.
    assert results["pool-64"][1] > results["pool-4"][1] >= results["pool-1"][1]
    assert results["xrootd-mux"][1] == 1
    # Pool at width >= 16 is competitive with ideal multiplexing (2x).
    assert results["pool-16"][0] < results["xrootd-mux"][0] * 2
