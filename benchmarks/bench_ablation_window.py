"""ABL-WIN — ablation: the transport-window mechanism behind Figure 4.

DESIGN.md models XRootD's "sliding window buffering" as its WAN-tuned
TCP window (4.2 MB) vs the HTTP stack's 2014-era OS default (2.5 MB).
This ablation validates the attribution: give both protocols the *same*
window and the WAN gap must vanish; give davix the tuned window and it
must catch up to XRootD.
"""

from repro.net.profiles import WAN
from repro.net.tcp import TcpOptions
from repro.rootio.generator import paper_dataset
from repro.workloads import (
    DAVIX_TCP,
    XROOTD_TCP,
    AnalysisConfig,
    Scenario,
    run_scenario,
)

from _util import bench_scale, emit


def run_pair(davix_tcp, xrootd_tcp, spec):
    config = AnalysisConfig(
        fraction=0.5, davix_tcp=davix_tcp, xrootd_tcp=xrootd_tcp
    )
    out = {}
    for protocol in ("davix", "xrootd"):
        report = run_scenario(
            Scenario(
                profile=WAN,
                protocol=protocol,
                spec=spec,
                config=config,
                seed=17,
            )
        )
        out[protocol] = report.wall_seconds
    return out


def test_ablation_window(benchmark):
    spec = paper_dataset(scale=bench_scale())
    tuned = XROOTD_TCP
    default = DAVIX_TCP

    def run():
        return {
            "paper setup (2.5 MB vs 4.2 MB)": run_pair(
                default, tuned, spec
            ),
            "both OS-default (2.5 MB)": run_pair(default, default, spec),
            "both WAN-tuned (4.2 MB)": run_pair(tuned, tuned, spec),
            "davix tuned too": run_pair(tuned, tuned, spec),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, pair in results.items():
        rows.append(
            [label, pair["davix"], pair["xrootd"],
             pair["davix"] / pair["xrootd"]]
        )
    emit(
        "ablation_window",
        "ABL-WIN: WAN analysis job (50% of events) under window "
        "configurations",
        ["configuration", "HTTP (s)", "XRootD (s)", "HTTP/XRootD"],
        rows,
        note=(
            "equal windows -> gap vanishes: the Fig. 4 WAN gap is the "
            "transport window, nothing else"
        ),
    )

    if bench_scale() >= 0.9:
        paper_gap = (
            results["paper setup (2.5 MB vs 4.2 MB)"]["davix"]
            / results["paper setup (2.5 MB vs 4.2 MB)"]["xrootd"]
        )
        equal_gap = (
            results["both WAN-tuned (4.2 MB)"]["davix"]
            / results["both WAN-tuned (4.2 MB)"]["xrootd"]
        )
        assert paper_gap > 1.08
        assert abs(equal_gap - 1.0) < 0.04
