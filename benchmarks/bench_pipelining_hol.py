"""FIG1-HOL — head-of-line blocking of HTTP pipelining (Section 2.2).

The paper's Figure 1 contrasts pipelining with multiplexing: "any
request pipelined suffering of a delay will cause a delay for all the
following requests". We run a mixed workload — one large object and
many small ones — three ways:

* **pipelined** on one connection (the rejected design);
* **pool-dispatched** in parallel over davix's connection pool (the
  paper's design, Figure 2);
* **xrootd-multiplexed** on one connection (the HPC reference).

Reported metric: mean completion time of the *small* requests.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, pipeline_requests, run_parallel
from repro.core.file import DavFile
from repro.http import Request
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.sim import Environment
from repro.xrootd import XrdClient, XrdServer, serve_xrootd

from _util import emit

BIG = 12_000_000  # ~1 s of transfer at 100 Mb/s (fits one xrootd frame)
SMALL = 2_000
N_SMALL = 8
LATENCY = 0.01
BANDWIDTH = 12_500_000  # 100 Mb/s


def build_world():
    env = Environment()
    net = Network(env, seed=7)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client", "server", LinkSpec(latency=LATENCY, bandwidth=BANDWIDTH)
    )
    store = ObjectStore()
    store.put("/big", b"B" * BIG)
    for i in range(N_SMALL):
        store.put(f"/small{i}", b"s" * SMALL)
    return net, store


def run_pipelined():
    net, store = build_world()
    client_rt = SimRuntime(net, "client")
    HttpServer(SimRuntime(net, "server"), StorageApp(store), port=80).start()
    requests = [Request("GET", "/big")] + [
        Request("GET", f"/small{i}") for i in range(N_SMALL)
    ]
    _responses, completions = client_rt.run(
        pipeline_requests(("server", 80), requests)
    )
    return completions[0], completions[1:]


def run_pool_dispatch():
    net, store = build_world()
    client_rt = SimRuntime(net, "client")
    HttpServer(SimRuntime(net, "server"), StorageApp(store), port=80).start()
    client = DavixClient(client_rt)
    done = {}

    def job(path):
        def thunk():
            data = yield from DavFile(
                client.context, f"http://server{path}"
            ).read_all()
            done[path] = client_rt.now()
            return data

        return thunk

    jobs = [job("/big")] + [job(f"/small{i}") for i in range(N_SMALL)]
    client_rt.run(run_parallel(jobs, concurrency=N_SMALL + 1))
    return done["/big"], [done[f"/small{i}"] for i in range(N_SMALL)]


def run_xrootd_multiplexed():
    net, store = build_world()
    client_rt = SimRuntime(net, "client")
    serve_xrootd(SimRuntime(net, "server"), XrdServer(store), port=1094)

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        big = yield from client.open("/big")
        smalls = []
        for i in range(N_SMALL):
            handle = yield from client.open(f"/small{i}")
            smalls.append(handle)
        # Opens cost sequential round trips; time the data phase only
        # (the pipelined/pool cases pay a single connect, which is
        # comparable).
        issued_at = client_rt.now()
        big_promise = yield from client.read_nowait(big, 0, BIG)
        small_promises = []
        for handle in smalls:
            promise = yield from client.read_nowait(handle, 0, SMALL)
            small_promises.append(promise)
        small_times = []
        for promise in small_promises:
            yield from client.read_result(promise)
            small_times.append(client_rt.now() - issued_at)
        yield from client.read_result(big_promise)
        return client_rt.now() - issued_at, small_times

    return client_rt.run(op())


def test_pipelining_hol(benchmark):
    def run():
        return {
            "pipelined": run_pipelined(),
            "pool": run_pool_dispatch(),
            "xrootd": run_xrootd_multiplexed(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (big_done, small_times) in results.items():
        mean_small = sum(small_times) / len(small_times)
        rows.append([label, big_done, mean_small, max(small_times)])
    emit(
        "pipelining_hol",
        "FIG1-HOL: mixed workload (1 x 12 MB + 8 x 2 KB), completion "
        "times (s)",
        ["strategy", "big done", "small mean", "small max"],
        rows,
        note=(
            "pipelining: smalls blocked behind the big response (HOL); "
            "pool dispatch & xrootd multiplexing: smalls finish in ~RTT"
        ),
    )

    pipe_big, pipe_smalls = results["pipelined"]
    pool_big, pool_smalls = results["pool"]
    xrd_big, xrd_smalls = results["xrootd"]
    # HOL: every pipelined small waits for the big transfer (~1.6 s).
    assert min(pipe_smalls) >= pipe_big
    # Pool dispatch and multiplexing keep smalls at ~RTT scale.
    assert max(pool_smalls) < pipe_big / 5
    assert max(xrd_smalls) < pipe_big / 5
