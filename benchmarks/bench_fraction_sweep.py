"""FIG4-FRAC — "reading a fraction or the totality" (Section 3).

Sweeps the fraction of events read (10/25/50/100 %) on the WAN profile
for both protocols. Expectation: time scales ~linearly with the
fraction and the XRootD advantage persists at every fraction (the
window-limit mechanism is per-refill).
"""

from repro.net.profiles import WAN
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Scenario, run_scenario

from _util import bench_scale, emit

FRACTIONS = (0.10, 0.25, 0.50, 1.00)


def test_fraction_sweep(benchmark):
    spec = paper_dataset(scale=bench_scale())

    def run():
        out = {}
        for fraction in FRACTIONS:
            for protocol in ("davix", "xrootd"):
                report = run_scenario(
                    Scenario(
                        profile=WAN,
                        protocol=protocol,
                        spec=spec,
                        config=AnalysisConfig(fraction=fraction),
                        seed=42,
                    )
                )
                out[(fraction, protocol)] = report
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for fraction in FRACTIONS:
        davix = results[(fraction, "davix")]
        xrootd = results[(fraction, "xrootd")]
        rows.append(
            [
                f"{int(fraction * 100)}%",
                davix.events_read,
                davix.wall_seconds,
                xrootd.wall_seconds,
                davix.wall_seconds / xrootd.wall_seconds,
            ]
        )
    emit(
        "fraction_sweep",
        "FIG4-FRAC: event-fraction sweep on the WAN profile (seconds)",
        ["fraction", "events", "HTTP", "XRootD", "HTTP/XRootD"],
        rows,
        note="paper reads 'a fraction or the totality' of ~12000 events",
    )

    # Time grows with fraction; gap persists at the full read.
    davix_times = [results[(f, "davix")].wall_seconds for f in FRACTIONS]
    assert davix_times == sorted(davix_times)
    if bench_scale() >= 0.9:
        full_gap = (
            results[(1.0, "davix")].wall_seconds
            / results[(1.0, "xrootd")].wall_seconds
        )
        assert full_gap > 1.05
