"""LAT-X — where does XRootD pull ahead? (Section 3 analysis.)

The paper attributes the WAN gap to round-trip costs: "Network round
trips are naturally extremely costly on high latency networks." This
sweep runs the analysis job at RTTs from 1 ms to 300 ms (fixed 200 Mb/s
path) and locates the crossover where the HTTP stack's smaller
transport window starts to bind — the davix/XRootD gap should be ~0
below the window's BDP threshold and grow beyond it.

A third series runs davix with the pipelined read-ahead transfer
engine armed (``AnalysisConfig.davix_readahead``): speculative
multi-range fetches overlap the refill round trips with compute, and
HTTP must reach at least parity with XRootD on the 300 ms link.
"""

from repro.net.link import LinkSpec
from repro.net.profiles import NetProfile
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Scenario, run_scenario

from _util import bench_scale, emit

RTTS_MS = (1, 10, 40, 100, 200, 300)
BANDWIDTH = 25_000_000  # 200 Mb/s
READAHEAD_BYTES = 32_000_000


def profile_for(rtt_ms: float) -> NetProfile:
    return NetProfile(
        name=f"rtt{rtt_ms}",
        label=f"{rtt_ms} ms RTT",
        spec=LinkSpec(latency=rtt_ms / 2000.0, bandwidth=BANDWIDTH),
    )


def test_latency_sweep(benchmark):
    spec = paper_dataset(scale=bench_scale())
    # 25% of the events keeps the sweep quick; the per-refill
    # mechanics are identical.
    configs = {
        "davix": ("davix", AnalysisConfig(fraction=0.25)),
        "davix-readahead": (
            "davix",
            AnalysisConfig(
                fraction=0.25, davix_readahead=READAHEAD_BYTES
            ),
        ),
        "xrootd": ("xrootd", AnalysisConfig(fraction=0.25)),
    }

    def run():
        out = {}
        for rtt in RTTS_MS:
            profile = profile_for(rtt)
            for label, (protocol, config) in configs.items():
                report = run_scenario(
                    Scenario(
                        profile=profile,
                        protocol=protocol,
                        spec=spec,
                        config=config,
                        seed=13,
                    )
                )
                out[(rtt, label)] = report.wall_seconds
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for rtt in RTTS_MS:
        davix = results[(rtt, "davix")]
        davix_ra = results[(rtt, "davix-readahead")]
        xrootd = results[(rtt, "xrootd")]
        rows.append(
            [rtt, davix, davix_ra, xrootd, davix / xrootd, davix_ra / xrootd]
        )
    emit(
        "latency_sweep",
        "LAT-X: analysis job (25% of events) vs RTT at 200 Mb/s",
        [
            "RTT (ms)",
            "HTTP (s)",
            "HTTP+RA (s)",
            "XRootD (s)",
            "HTTP/XRootD",
            "HTTP+RA/XRootD",
        ],
        rows,
        note=(
            "gap ~1.0 while BDP < HTTP window (2.5 MB ~= 100 ms RTT "
            "at 200 Mb/s), grows beyond; the read-ahead engine "
            "(HTTP+RA) overlaps refills with compute and holds parity "
            "out to 300 ms"
        ),
        params={
            "rtts_ms": list(RTTS_MS),
            "bandwidth": BANDWIDTH,
            "fraction": 0.25,
            "readahead_bytes": READAHEAD_BYTES,
            "scale": bench_scale(),
            "seed": 13,
        },
        configs={
            label: [results[(rtt, label)] for rtt in RTTS_MS]
            for label in configs
        },
    )

    if bench_scale() >= 0.9:
        low_gap = results[(10, "davix")] / results[(10, "xrootd")]
        high_gap = results[(300, "davix")] / results[(300, "xrootd")]
        assert abs(low_gap - 1.0) < 0.05
        assert high_gap > low_gap + 0.05
        # The tentpole target: with read-ahead armed, HTTP is at
        # least at parity with XRootD on the 300 ms RTT link.
        parity = results[(300, "davix-readahead")] / results[
            (300, "xrootd")
        ]
        assert parity <= 1.0
        # And it strictly beats the synchronous davix path.
        assert results[(300, "davix-readahead")] < results[(300, "davix")]
    # Time is monotone in RTT for every config.
    for label in configs:
        series = [results[(rtt, label)] for rtt in RTTS_MS]
        assert series == sorted(series)
