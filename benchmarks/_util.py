"""Shared plumbing for the benchmark harness.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — dataset byte-scale (default 1.0 = the paper's
  700 MB file; request counts are scale-invariant);
* ``REPRO_BENCH_REPS`` — repetitions per campaign cell (default 2; the
  paper averaged 576 HammerCloud runs).

Every benchmark prints its paper-vs-measured table (visible with
``pytest -s``) and appends it to ``benchmarks/results/<name>.txt`` so
the artefacts survive the run.
"""

from __future__ import annotations

import os
import pathlib

from repro.bench import render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", "2"))


def emit(name: str, title: str, headers, rows, note=None) -> str:
    """Render, print, and persist one results table."""
    table = render_table(title, headers, rows, note)
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")
    return table
