"""Shared plumbing for the benchmark harness.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — dataset byte-scale (default 1.0 = the paper's
  700 MB file; request counts are scale-invariant);
* ``REPRO_BENCH_REPS`` — repetitions per campaign cell (default 2; the
  paper averaged 576 HammerCloud runs).

Every benchmark prints its paper-vs-measured table (visible with
``pytest -s``) and appends it to ``benchmarks/results/<name>.txt`` so
the artefacts survive the run. Alongside the table, :func:`emit` writes
a machine-readable ``benchmarks/results/BENCH_<name>.json`` with the
workload parameters, the per-config samples and a mean/p50/p95 summary
— the artefact CI's perf-smoke job and external analysis consume.
"""

from __future__ import annotations

import json
import numbers
import os
import pathlib

from repro.bench import render_table, sample_summary

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", "2"))


def _config_entry(samples) -> dict:
    """Normalise one config (a sample list or a dict with ``samples``)."""
    if isinstance(samples, dict):
        entry = dict(samples)
        values = [float(v) for v in entry.get("samples", [])]
    else:
        entry = {}
        values = [float(v) for v in samples]
    entry["samples"] = values
    if values:
        entry["summary"] = sample_summary(values)
    return entry


def _derived_configs(rows) -> dict:
    """Default per-config view: one config per row, labelled by the
    first cell, sampling every numeric cell of that row."""
    configs = {}
    for row in rows:
        cells = list(row)
        if not cells:
            continue
        label = str(cells[0])
        values = [
            float(cell)
            for cell in cells[1:]
            if isinstance(cell, numbers.Real)
        ]
        configs[label] = _config_entry(values)
    return configs


def emit(
    name: str,
    title: str,
    headers,
    rows,
    note=None,
    params=None,
    configs=None,
) -> str:
    """Render, print, and persist one results table (+ JSON artefact).

    ``params`` records the workload knobs (sizes, profiles, seeds);
    ``configs`` maps a config label to its raw sample list (or a dict
    carrying ``samples`` plus extra fields). When omitted, a per-row
    view is derived from the table so every benchmark emits JSON.
    """
    table = render_table(title, headers, rows, note)
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")

    payload = {
        "bench": name,
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "note": note,
        "params": dict(params or {}),
        "configs": {
            str(label): _config_entry(samples)
            for label, samples in (configs or {}).items()
        }
        or _derived_configs(rows),
    }
    json_path = RESULTS_DIR / f"BENCH_{name}.json"
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return table
