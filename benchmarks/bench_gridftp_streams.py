"""EXT-GFTP — GridFTP parallel streams vs HTTP on a long fat pipe.

Section 2.2 surveys GridFTP ("separated control and data channels ...
multiple data streams"). Its parallel streams aggregate per-connection
TCP windows — the same window limit behind the Figure-4 WAN gap. This
bench transfers one 200 MB file over a 500 Mb/s, 160 ms-RTT path with a
1 MB window cap and compares:

* a single HTTP GET (one window);
* GridFTP with 1/2/4/8 striped streams;
* davix multi-stream (4 replicas — HTTP's answer when the data is
  federated, Section 2.4).
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.gridftp import GridFtpClient, GridFtpServer, serve_gridftp
from repro.net import LinkSpec, Network, TcpOptions
from repro.server import HttpServer, ObjectStore, StorageApp, ZeroContent
from repro.sim import Environment

from _util import emit

FILE_SIZE = 200_000_000
SPEC = LinkSpec(latency=0.08, bandwidth=62_500_000)
WINDOW = TcpOptions(max_window=1 << 20, idle_reset=False)


def base_world(extra_servers=0):
    env = Environment()
    net = Network(env, seed=53)
    net.add_host("client")
    names = ["server"] + [f"mirror{i}" for i in range(extra_servers)]
    for name in names:
        net.add_host(name)
        net.set_route("client", name, SPEC)
    return net, names


def make_store():
    store = ObjectStore()
    store.put("/big", ZeroContent(FILE_SIZE))
    return store


def run_http_get():
    net, _ = base_world()
    HttpServer(
        SimRuntime(net, "server"), StorageApp(make_store()), port=80
    ).start()
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(tcp_options=WINDOW),
    )
    start = client.runtime.now()
    data = client.get("http://server/big")
    assert len(data) == FILE_SIZE
    return client.runtime.now() - start


def run_gridftp(streams):
    net, _ = base_world()
    server_rt = SimRuntime(net, "server")
    serve_gridftp(
        server_rt, GridFtpServer(make_store(), server_rt), port=2811
    )
    client_rt = SimRuntime(net, "client")

    def op():
        client = yield from GridFtpClient.connect(("server", 2811), WINDOW)
        start = client_rt.now()
        data = yield from client.retrieve(
            "/big", streams=streams, tcp_options=WINDOW
        )
        assert len(data) == FILE_SIZE
        return client_rt.now() - start

    return client_rt.run(op())


def run_davix_multistream():
    net, names = base_world(extra_servers=3)
    urls = [f"http://{name}/big" for name in names]
    for name in names:
        HttpServer(
            SimRuntime(net, name),
            StorageApp(make_store(), replicas={"/big": urls}),
            port=80,
        ).start()
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(
            tcp_options=WINDOW,
            multistream_chunk=8_000_000,
            verify_checksum=False,
        ),
    )
    start = client.runtime.now()
    result = client.get_multistream(urls[0])
    assert result.size == FILE_SIZE
    return client.runtime.now() - start


def test_gridftp_streams(benchmark):
    def run():
        out = {"HTTP GET (1 conn)": run_http_get()}
        for streams in (1, 2, 4, 8):
            out[f"GridFTP x{streams}"] = run_gridftp(streams)
        out["davix multistream x4"] = run_davix_multistream()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, elapsed, FILE_SIZE / elapsed / 1e6]
        for label, elapsed in results.items()
    ]
    emit(
        "gridftp_streams",
        "EXT-GFTP: 200 MB over 500 Mb/s / 160 ms RTT, 1 MB TCP window",
        ["strategy", "time (s)", "MB/s"],
        rows,
        note=(
            "parallel streams (GridFTP stripes, davix multi-stream "
            "replicas) aggregate per-connection windows on long fat "
            "pipes"
        ),
    )

    assert results["GridFTP x4"] < results["HTTP GET (1 conn)"] / 2.5
    assert results["GridFTP x8"] < results["GridFTP x1"] / 4
    assert (
        results["davix multistream x4"]
        < results["HTTP GET (1 conn)"] / 2
    )
