"""OBS-SINK — telemetry sink cost on the vectored-IO hot path.

The cluster telemetry plane only earns its keep if shipping every span
and wide event costs (almost) nothing on the data path. The sink's hot
path is a bounds check plus a reference append — serialization is
deferred to the flush — so arming it must not move the vectored-read
numbers.

Workload: the FIG3-VEC inner loop (256 scattered 4 KiB fragments of a
200 MB file over GEANT) run with a :class:`TelemetrySink` wired into
the context vs a bare context, interleaved A/B to cancel host drift.
Metrics: CPU (process-time) p50 seconds per run for each arm — the gate is
sink-on p50 <= 1.05x sink-off p50 — plus the zero-perturbation checks:
identical simulated elapsed time, identical bytes, and a non-empty
flushed batch on the armed arm.
"""

import gc
import time

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams, TransferConfig
from repro.core.context import Context
from repro.net.profiles import GEANT, build_network
from repro.obs.collector import TelemetryCollector, TelemetrySink
from repro.server import HttpServer, ObjectStore, StorageApp, ZeroContent
from repro.sim import Environment

from _util import emit

FILE_SIZE = 200_000_000
FRAGMENT = 4096
FRAGMENTS = 256
#: Vectored reads per timed sample (a bigger timed section drowns
#: scheduler noise; every read takes the full demand path).
READS_PER_RUN = 5
ROUNDS = 9
#: Acceptance gate: armed p50 within 5% of the bare p50.
MAX_OVERHEAD = 1.05


def fragments():
    stride = FILE_SIZE // (FRAGMENTS + 1)
    return [(i * stride, FRAGMENT) for i in range(FRAGMENTS)]


def run_once(telemetry: bool):
    """One vectored read on a fresh sim; returns timings + artifacts."""
    env = Environment()
    net = build_network(GEANT, env, seed=3)
    client_rt = SimRuntime(net, "client")
    store = ObjectStore()
    store.put("/data", ZeroContent(FILE_SIZE))
    HttpServer(SimRuntime(net, "server"), StorageApp(store), port=80).start()
    sink = TelemetrySink("bench-client") if telemetry else None
    context = Context(
        params=RequestParams(
            vector_gap=0, transfer=TransferConfig(max_inflight=1)
        ),
        telemetry=sink,
    )
    client = DavixClient(client_rt, context=context)
    reads = fragments()
    payload = 0
    gc.collect()
    cpu_start = time.process_time()
    sim_start = client_rt.now()
    for _ in range(READS_PER_RUN):
        data = client.pread_vec("http://server/data", reads)
        payload += sum(len(d) for d in data)
    sim_elapsed = client_rt.now() - sim_start
    cpu_elapsed = time.process_time() - cpu_start
    flushed = 0
    if sink is not None:
        collector = TelemetryCollector()
        flushed = len(context.flush_telemetry(target=collector))
    return cpu_elapsed, sim_elapsed, payload, flushed


def test_collector_overhead(benchmark):
    def run():
        bare, armed = [], []
        sims = set()
        payloads = set()
        flushed_counts = []
        # Interleave the arms so host-side drift hits both equally.
        for _ in range(ROUNDS):
            wall, sim, payload, _ = run_once(telemetry=False)
            bare.append(wall)
            sims.add(sim)
            payloads.add(payload)
            wall, sim, payload, flushed = run_once(telemetry=True)
            armed.append(wall)
            sims.add(sim)
            payloads.add(payload)
            flushed_counts.append(flushed)
        return bare, armed, sims, payloads, flushed_counts

    bare, armed, sims, payloads, flushed_counts = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    def p50(samples):
        ordered = sorted(samples)
        return ordered[len(ordered) // 2]

    ratio = p50(armed) / p50(bare)
    emit(
        "collector_overhead",
        "OBS-SINK: telemetry sink cost on the vectored-IO hot path",
        ["arm", "runs", "p50 cpu seconds", "p50 ratio vs bare"],
        [
            ["bare", ROUNDS, p50(bare), 1.0],
            ["telemetry", ROUNDS, p50(armed), ratio],
        ],
        note=(
            "CPU (process) time of the FIG3-VEC inner loop; the sink "
            "enqueues references on the hot path and defers all "
            f"serialization to flush — gate: ratio < {MAX_OVERHEAD}"
        ),
        params={
            "file_size": FILE_SIZE,
            "fragment": FRAGMENT,
            "fragments": FRAGMENTS,
            "reads_per_run": READS_PER_RUN,
            "rounds": ROUNDS,
            "profile": GEANT.name,
            "seed": 3,
            "max_overhead": MAX_OVERHEAD,
        },
        configs={
            # The diffable metric is the dimensionless ratio — host CPU
            # seconds vary machine to machine, the ratio does not.
            "overhead-ratio": {
                "samples": [ratio],
                "bare_cpu_seconds": bare,
                "telemetry_cpu_seconds": armed,
            },
        },
    )

    # Zero perturbation in the simulated world: both arms take the
    # exact same virtual time and deliver the exact same bytes.
    assert len(sims) == 1
    assert payloads == {READS_PER_RUN * FRAGMENTS * FRAGMENT}
    # The armed arm actually collected something to flush.
    assert all(count > 0 for count in flushed_counts)
    # The acceptance gate: < 5% p50 overhead on the hot path.
    assert ratio < MAX_OVERHEAD, (
        f"telemetry sink overhead p50 ratio {ratio:.4f} exceeds "
        f"{MAX_OVERHEAD}"
    )
