"""ML-FAIL — Metalink fail-over resiliency (Section 2.4, default mode).

"This approach improves drastically the resiliency of the data access
layer and has the advantage to be without compromise or impact on the
performances."

Workload: a 64 MB file replicated on 4 sites; k of them are down. A
plain GET fails whenever the primary is dead; the fail-over GET
succeeds as long as one replica lives. Metric: success rate and time
overhead vs the all-alive baseline.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import DavixError, NetworkError
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, StorageApp, ZeroContent
from repro.sim import Environment

from _util import emit

N_REPLICAS = 4
FILE_SIZE = 64_000_000
PATH = "/data/f.root"


def build_world(dead_sites):
    env = Environment()
    net = Network(env, seed=5)
    net.add_host("client")
    names = [f"site{i}" for i in range(N_REPLICAS)]
    urls = [f"http://{name}{PATH}" for name in names]
    for name in names:
        net.add_host(name)
        net.set_route(
            "client", name, LinkSpec(latency=0.02, bandwidth=62_500_000)
        )
        store = ObjectStore()
        store.put(PATH, ZeroContent(FILE_SIZE))
        app = StorageApp(store, replicas={PATH: urls})
        HttpServer(SimRuntime(net, name), app, port=80).start()
    for index in dead_sites:
        net.host(f"site{index}").fail()
    params = RequestParams(retries=0, connect_timeout=1.0)
    client = DavixClient(SimRuntime(net, "client"), params=params)
    return client, urls, net


def run_case(dead_sites, strategy):
    client, urls, net = build_world(dead_sites)
    start = client.runtime.now()
    # The metalink comes from the last (always alive) site, playing the
    # federation-endpoint role.
    try:
        if strategy == "plain":
            data = client.get(urls[0])
        else:
            data = client.get_with_failover(
                urls[0], metalink_url=urls[-1]
            )
    except (DavixError, NetworkError):
        return (False, client.runtime.now() - start)
    return (len(data) == FILE_SIZE, client.runtime.now() - start)


def test_failover(benchmark):
    cases = [  # (dead site indices, label)
        ((), "all alive"),
        ((0,), "primary dead"),
        ((0, 1), "2 of 4 dead"),
        ((0, 1, 2), "3 of 4 dead"),
    ]

    def run():
        out = {}
        for dead, label in cases:
            out[(label, "plain")] = run_case(dead, "plain")
            out[(label, "failover")] = run_case(dead, "failover")
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    baseline = results[("all alive", "failover")][1]
    rows = []
    for _dead, label in cases:
        plain_ok, plain_time = results[(label, "plain")]
        fo_ok, fo_time = results[(label, "failover")]
        rows.append(
            [
                label,
                "yes" if plain_ok else "FAIL",
                "yes" if fo_ok else "FAIL",
                fo_time,
                fo_time / baseline,
            ]
        )
    emit(
        "failover",
        "ML-FAIL: 64 MB GET, 4 replicas, k sites down",
        ["scenario", "plain ok", "failover ok", "failover time",
         "vs baseline"],
        rows,
        note=(
            "failover succeeds while any replica lives; overhead = "
            "connect timeout on dead hosts + metalink fetch"
        ),
    )

    # Plain GET dies with the primary; failover survives to the last
    # replica.
    assert results[("primary dead", "plain")][0] is False
    for _dead, label in cases:
        assert results[(label, "failover")][0] is True
    # No-failure fast path: zero overhead vs plain.
    assert results[("all alive", "failover")][1] == (
        results[("all alive", "plain")][1]
    )
