"""COL-SCAN — columnar format v2 vs v1: wall clock and read amplification.

Two claims of the RNTuple-style v2 layout, measured end to end:

* **cluster-parallel decode** — on the WAN profile the full-branch
  analysis scan refills several clusters concurrently
  (:class:`~repro.rootio.clusterscan.ClusterScan` lanes over
  ``bounded_gather``), overlapping fetch latency and decompression CPU
  across lanes: 4 lanes must beat the single-lane scan;
* **read amplification** — a sparse selection (2 of 10 branches ×
  scattered 20-row windows, an event-index skim) fetches page-granular
  byte ranges in v2 (~64 KiB pages) versus basket-granular ranges in
  v1 (100-entry ≈ 1.2 MB baskets): v2 must move at most 40 % of the
  bytes v1 moves for the same rows, and the bytes must be identical
  across the WebDAV and flat-object server dialects (the
  backend-agnosticism claim).

Amplification = bytes fetched / compressed bytes of the selected
records (1.0 = the wire carried exactly the selection).
"""

import random

from repro.concurrency import SimRuntime
from repro.core import Context
from repro.net import LinkSpec, Network
from repro.net.profiles import WAN
from repro.rootio import (
    DavixFetcher,
    generate_ntuple_layout,
    generate_tree_layout,
    paper_dataset,
)
from repro.server import (
    FlatObjectApp,
    HttpServer,
    ObjectStore,
    StorageApp,
    ZeroContent,
)
from repro.sim import Environment
from repro.workloads import AnalysisConfig, Scenario, run_scenario

from _util import bench_scale, emit

#: The sparse selection: 2 of the 10 paper branches (20 % <= 25 %).
SPARSE_COLUMNS = ("branch00", "branch03")
#: Scattered row windows — 24 skims of 20 rows each, seeded.
WINDOW_ROWS = 20
WINDOW_COUNT = 24
SEED = 31


def scan_configs():
    """label -> (AnalysisConfig, backend) for the full-scan sweep."""
    return {
        "v1-webdav": (AnalysisConfig(fraction=0.25), "webdav"),
        "v2-webdav-1lane": (
            AnalysisConfig(
                fraction=0.25, format="ntuple", decode_lanes=1
            ),
            "webdav",
        ),
        "v2-webdav-4lanes": (
            AnalysisConfig(
                fraction=0.25, format="ntuple", decode_lanes=4
            ),
            "webdav",
        ),
        "v2-object-4lanes": (
            AnalysisConfig(
                fraction=0.25, format="ntuple", decode_lanes=4
            ),
            "object",
        ),
    }


def sparse_windows(n_entries, rng):
    """Scattered [start, stop) row windows over the whole tree."""
    windows = []
    stride = n_entries // WINDOW_COUNT
    for i in range(WINDOW_COUNT):
        base = i * stride
        start = base + rng.randrange(max(1, stride - WINDOW_ROWS))
        windows.append((start, min(start + WINDOW_ROWS, n_entries)))
    return windows


def selected_bytes(spec, rows, names):
    """Compressed bytes of exactly the selected records (the floor)."""
    per_row = sum(
        b.event_size * b.compress_ratio
        for b in spec.branches
        if b.name in names or not names
    )
    return rows * per_row


def fetch_window_spans(meta, windows, names, backend):
    """Fetch each window's spans over a simulated wire -> bytes moved.

    The layout is hosted as sized-but-synthetic content; the client
    issues the exact vectored reads the format's metadata plans for
    the selection, so the byte count is the real wire cost of the
    selection under that layout.
    """
    env = Environment()
    net = Network(env)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client", "server", LinkSpec(latency=0.001, bandwidth=1e9)
    )
    server_rt = SimRuntime(net, "server")
    store = ObjectStore(clock=server_rt.now)
    store.put("/data/events", ZeroContent(meta.file_size))
    app = (
        FlatObjectApp(store) if backend == "object" else StorageApp(store)
    )
    HttpServer(server_rt, app, port=80).start()
    runtime = SimRuntime(net, "client")
    context = Context()
    context.clock = runtime.now
    fetcher = DavixFetcher(context, "http://server/data/events")

    def op():
        for start, stop in windows:
            spans = meta.segments_for_entries(start, stop, names)
            yield from fetcher.fetch_vec(spans)
        return fetcher.bytes_fetched

    return runtime.run(op())


def test_columnar_scan(benchmark):
    spec = paper_dataset(scale=bench_scale())
    rng = random.Random(SEED)
    windows = sparse_windows(spec.n_entries, rng)
    sparse_rows = sum(stop - start for start, stop in windows)

    def run():
        out = {"full": {}, "sparse": {}}
        for label, (config, backend) in scan_configs().items():
            report = run_scenario(
                Scenario(
                    profile=WAN,
                    protocol="davix",
                    spec=spec,
                    config=config,
                    seed=SEED,
                    backend=backend,
                )
            )
            out["full"][label] = report
        v1_meta = generate_tree_layout(spec)
        v2_meta = generate_ntuple_layout(spec)
        out["sparse"]["v1-webdav"] = fetch_window_spans(
            v1_meta, windows, SPARSE_COLUMNS, "webdav"
        )
        out["sparse"]["v2-webdav"] = fetch_window_spans(
            v2_meta, windows, SPARSE_COLUMNS, "webdav"
        )
        out["sparse"]["v2-object"] = fetch_window_spans(
            v2_meta, windows, SPARSE_COLUMNS, "object"
        )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    full = results["full"]
    sparse = results["sparse"]
    full_events = max(r.events_read for r in full.values())
    full_floor = selected_bytes(spec, full_events, ())
    sparse_floor = selected_bytes(spec, sparse_rows, SPARSE_COLUMNS)

    rows = []
    for label, report in full.items():
        rows.append(
            [
                "full 10/10 cols",
                label,
                report.wall_seconds,
                report.bytes_fetched / 1e6,
                report.bytes_fetched / full_floor,
            ]
        )
    for label, fetched in sparse.items():
        rows.append(
            [
                f"sparse 2/10 cols x {WINDOW_COUNT}x{WINDOW_ROWS} rows",
                label,
                0.0,
                fetched / 1e6,
                fetched / sparse_floor,
            ]
        )
    emit(
        "columnar_scan",
        "COL-SCAN: v1 baskets vs v2 pages/clusters, WAN scan + sparse skim",
        ["selection", "format/backend", "time (s)", "MB fetched", "amp"],
        rows,
        note=(
            "v2 pages cut the sparse skim's wire bytes ~4x vs v1 "
            "baskets; 4 decode lanes overlap WAN refills with "
            "decompression on the full scan; object-store bytes match "
            "WebDAV exactly"
        ),
        params={
            "scale": bench_scale(),
            "profile": WAN.name,
            "seed": SEED,
            "fraction": 0.25,
            "sparse_columns": list(SPARSE_COLUMNS),
            "window_rows": WINDOW_ROWS,
            "window_count": WINDOW_COUNT,
        },
        configs={
            **{
                f"full-{label}": [report.wall_seconds]
                for label, report in full.items()
            },
            **{
                f"sparse-{label}-mb": [fetched / 1e6]
                for label, fetched in sparse.items()
            },
        },
    )

    # Backend-agnostic: the v2 selection moves identical bytes over
    # the WebDAV and flat-object dialects.
    assert sparse["v2-webdav"] == sparse["v2-object"]

    if bench_scale() >= 0.9:
        # Read-amplification gate: v2 pages fetch <= 40 % of the bytes
        # v1 baskets fetch for the same sparse rows.
        assert sparse["v2-webdav"] <= 0.40 * sparse["v1-webdav"]
        # Cluster-parallel decode gate: 4 lanes beat 1 lane on the
        # WAN full scan.
        assert (
            full["v2-webdav-4lanes"].wall_seconds
            < full["v2-webdav-1lane"].wall_seconds
        )
