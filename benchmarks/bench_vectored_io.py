"""FIG3-VEC — vectored multi-range I/O vs per-fragment requests.

Section 2.3 / Figure 3: TTreeCache packs fragmented reads into one
vectored query that davix executes as a single HTTP multi-range
request, which "reduces drastically the number of remote network I/O
operations".

Workload: F scattered 4 KiB fragments of a 200 MB remote file over the
GEANT profile (40 ms RTT), read (a) one GET-with-Range per fragment,
(b) as one vectored ``pread_vec``, (c) the same vectored read with the
batches dispatched concurrently (``TransferConfig(max_inflight=...)``)
over pooled sessions. Metric: elapsed time, HTTP request count, and the
zero-copy accounting (``vector.copy_bytes_total`` must equal the
requested bytes — exactly one materialising copy per fragment).
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams, TransferConfig
from repro.net.profiles import GEANT, build_network
from repro.server import HttpServer, ObjectStore, StorageApp, ZeroContent
from repro.sim import Environment

from _util import emit

FILE_SIZE = 200_000_000
FRAGMENT = 4096
COUNTS = (16, 64, 256, 1024)
PARALLEL_INFLIGHT = 4


def build_client(max_inflight: int = 1):
    env = Environment()
    net = build_network(GEANT, env, seed=3)
    client_rt = SimRuntime(net, "client")
    store = ObjectStore()
    store.put("/data", ZeroContent(FILE_SIZE))
    app = StorageApp(store)
    HttpServer(SimRuntime(net, "server"), app, port=80).start()
    client = DavixClient(
        client_rt,
        params=RequestParams(
            vector_gap=0,
            transfer=TransferConfig(max_inflight=max_inflight),
        ),
    )
    return client, app, client_rt


def fragments(count):
    stride = FILE_SIZE // (count + 1)
    return [(i * stride, FRAGMENT) for i in range(count)]


def run_vectored(reads, max_inflight):
    client, app, client_rt = build_client(max_inflight)
    start = client_rt.now()
    data = client.pread_vec("http://server/data", reads)
    elapsed = client_rt.now() - start
    registry = client.metrics()
    metrics = {
        name: registry.value(f"vector.{name}_total") or 0
        for name in (
            "round_trips",
            "fragments",
            "ranges",
            "fragments_coalesced",
            "requested_bytes",
            "overhead_bytes",
            "copy_bytes",
        )
    }
    return elapsed, app.requests_handled, data, metrics


def test_vectored_io(benchmark):
    def run():
        out = {}
        for count in COUNTS:
            reads = fragments(count)

            client, app, client_rt = build_client()
            start = client_rt.now()
            for offset, length in reads:
                client.pread("http://server/data", offset, length)
            out[(count, "per-fragment")] = (
                client_rt.now() - start,
                app.requests_handled,
            )

            seq_time, seq_reqs, seq_data, seq_metrics = run_vectored(
                reads, max_inflight=1
            )
            out[(count, "vectored")] = (seq_time, seq_reqs)
            out[(count, "metrics")] = seq_metrics

            par_time, par_reqs, par_data, par_metrics = run_vectored(
                reads, max_inflight=PARALLEL_INFLIGHT
            )
            out[(count, "parallel")] = (par_time, par_reqs)
            out[(count, "parallel-metrics")] = par_metrics
            # Parallel dispatch must not change a single byte.
            assert par_data == seq_data
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for count in COUNTS:
        single_time, single_reqs = results[(count, "per-fragment")]
        vec_time, vec_reqs = results[(count, "vectored")]
        par_time, _ = results[(count, "parallel")]
        rows.append(
            [
                count,
                single_reqs,
                single_time,
                vec_reqs,
                vec_time,
                par_time,
                single_time / vec_time,
            ]
        )
    emit(
        "vectored_io",
        "FIG3-VEC: F x 4 KiB scattered fragments over GEANT (40 ms RTT)",
        [
            "fragments",
            "reqs (single)",
            "time (single)",
            "reqs (vec)",
            "time (vec)",
            "time (vec par)",
            "speedup",
        ],
        rows,
        note=(
            "vectored = HTTP multi-range; request count collapses by "
            "max_vector_ranges (256) per request; 'vec par' dispatches "
            f"batches {PARALLEL_INFLIGHT}-way concurrently"
        ),
        params={
            "file_size": FILE_SIZE,
            "fragment": FRAGMENT,
            "counts": list(COUNTS),
            "profile": GEANT.name,
            "rtt_ms": GEANT.spec.latency * 2 * 1000,
            "parallel_inflight": PARALLEL_INFLIGHT,
            "seed": 3,
        },
        configs={
            "per-fragment": [
                results[(c, "per-fragment")][0] for c in COUNTS
            ],
            "vectored-sequential": [
                results[(c, "vectored")][0] for c in COUNTS
            ],
            "vectored-parallel": [
                results[(c, "parallel")][0] for c in COUNTS
            ],
        },
    )

    metric_rows = []
    for count in COUNTS:
        metrics = results[(count, "metrics")]
        metric_rows.append(
            [
                count,
                metrics["round_trips"],
                metrics["ranges"],
                metrics["fragments_coalesced"],
                metrics["requested_bytes"],
                metrics["overhead_bytes"],
                metrics["copy_bytes"],
            ]
        )
    emit(
        "vectored_io_metrics",
        "FIG3-VEC breakdown from the MetricsRegistry (vector.* series)",
        [
            "fragments",
            "round trips",
            "ranges",
            "coalesced",
            "req bytes",
            "overhead bytes",
            "copy bytes",
        ],
        metric_rows,
        note=(
            "sourced from client.metrics(); coalesced = fragments "
            "merged into a neighbouring range by the planner; copy "
            "bytes = materialised fragment bytes (one copy each)"
        ),
    )

    for count in COUNTS:
        single_time, single_reqs = results[(count, "per-fragment")]
        vec_time, vec_reqs = results[(count, "vectored")]
        par_time, par_reqs = results[(count, "parallel")]
        metrics = results[(count, "metrics")]
        par_metrics = results[(count, "parallel-metrics")]
        assert single_reqs == count
        assert vec_reqs == -(-count // 256)  # ceil
        assert par_reqs == vec_reqs
        assert vec_time < single_time
        # Registry-side accounting must match the observed requests.
        assert metrics["round_trips"] == vec_reqs
        assert metrics["fragments"] == count
        assert metrics["requested_bytes"] == count * FRAGMENT
        # Zero-copy invariant: exactly one materialising copy per
        # fragment, in both dispatch modes.
        assert metrics["copy_bytes"] == count * FRAGMENT
        assert par_metrics["copy_bytes"] == count * FRAGMENT
    # At 1024 fragments the speedup must be dramatic (>50x).
    assert (
        results[(1024, "per-fragment")][0]
        / results[(1024, "vectored")][0]
        > 50
    )
    # With 4 batches in flight over a 40 ms RTT link, parallel dispatch
    # must beat sequential batch-by-batch execution.
    assert (
        results[(1024, "parallel")][0] < results[(1024, "vectored")][0]
    )
