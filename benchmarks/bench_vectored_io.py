"""FIG3-VEC — vectored multi-range I/O vs per-fragment requests.

Section 2.3 / Figure 3: TTreeCache packs fragmented reads into one
vectored query that davix executes as a single HTTP multi-range
request, which "reduces drastically the number of remote network I/O
operations".

Workload: F scattered 4 KiB fragments of a 200 MB remote file over the
GEANT profile (40 ms RTT), read (a) one GET-with-Range per fragment,
(b) as one vectored ``pread_vec``. Metric: elapsed time and HTTP
request count.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.net.profiles import GEANT, build_network
from repro.server import HttpServer, ObjectStore, StorageApp, ZeroContent
from repro.sim import Environment

from _util import emit

FILE_SIZE = 200_000_000
FRAGMENT = 4096
COUNTS = (16, 64, 256, 1024)


def build_client():
    env = Environment()
    net = build_network(GEANT, env, seed=3)
    client_rt = SimRuntime(net, "client")
    store = ObjectStore()
    store.put("/data", ZeroContent(FILE_SIZE))
    app = StorageApp(store)
    HttpServer(SimRuntime(net, "server"), app, port=80).start()
    client = DavixClient(client_rt, params=RequestParams(vector_gap=0))
    return client, app, client_rt


def fragments(count):
    stride = FILE_SIZE // (count + 1)
    return [(i * stride, FRAGMENT) for i in range(count)]


def test_vectored_io(benchmark):
    def run():
        out = {}
        for count in COUNTS:
            reads = fragments(count)

            client, app, client_rt = build_client()
            start = client_rt.now()
            for offset, length in reads:
                client.pread("http://server/data", offset, length)
            out[(count, "per-fragment")] = (
                client_rt.now() - start,
                app.requests_handled,
            )

            client, app, client_rt = build_client()
            start = client_rt.now()
            client.pread_vec("http://server/data", reads)
            out[(count, "vectored")] = (
                client_rt.now() - start,
                app.requests_handled,
            )
            # Vectored-I/O breakdown from the metrics registry rather
            # than recomputing the plan by hand.
            registry = client.metrics()
            out[(count, "metrics")] = {
                name: registry.value(f"vector.{name}_total") or 0
                for name in (
                    "round_trips",
                    "fragments",
                    "ranges",
                    "fragments_coalesced",
                    "requested_bytes",
                    "overhead_bytes",
                )
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for count in COUNTS:
        single_time, single_reqs = results[(count, "per-fragment")]
        vec_time, vec_reqs = results[(count, "vectored")]
        rows.append(
            [
                count,
                single_reqs,
                single_time,
                vec_reqs,
                vec_time,
                single_time / vec_time,
            ]
        )
    emit(
        "vectored_io",
        "FIG3-VEC: F x 4 KiB scattered fragments over GEANT (40 ms RTT)",
        [
            "fragments",
            "reqs (single)",
            "time (single)",
            "reqs (vec)",
            "time (vec)",
            "speedup",
        ],
        rows,
        note=(
            "vectored = HTTP multi-range; request count collapses by "
            "max_vector_ranges (256) per request"
        ),
    )

    metric_rows = []
    for count in COUNTS:
        metrics = results[(count, "metrics")]
        metric_rows.append(
            [
                count,
                metrics["round_trips"],
                metrics["ranges"],
                metrics["fragments_coalesced"],
                metrics["requested_bytes"],
                metrics["overhead_bytes"],
            ]
        )
    emit(
        "vectored_io_metrics",
        "FIG3-VEC breakdown from the MetricsRegistry (vector.* series)",
        [
            "fragments",
            "round trips",
            "ranges",
            "coalesced",
            "req bytes",
            "overhead bytes",
        ],
        metric_rows,
        note=(
            "sourced from client.metrics(); coalesced = fragments "
            "merged into a neighbouring range by the planner"
        ),
    )

    for count in COUNTS:
        single_time, single_reqs = results[(count, "per-fragment")]
        vec_time, vec_reqs = results[(count, "vectored")]
        metrics = results[(count, "metrics")]
        assert single_reqs == count
        assert vec_reqs == -(-count // 256)  # ceil
        assert vec_time < single_time
        # Registry-side accounting must match the observed requests.
        assert metrics["round_trips"] == vec_reqs
        assert metrics["fragments"] == count
        assert metrics["requested_bytes"] == count * FRAGMENT
    # At 1024 fragments the speedup must be dramatic (>50x).
    assert (
        results[(1024, "per-fragment")][0]
        / results[(1024, "vectored")][0]
        > 50
    )
