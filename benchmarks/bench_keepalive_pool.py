"""FIG2-KA — keep-alive pool & session recycling vs reconnecting.

Section 2.2: "HTTP 1.0 ... one TCP connection per request ... has been
already proven inefficient due to the TCP slow start mechanism. ...
we enforce an aggressive usage of the HTTP KeepAlive feature ... to
maximize the re-utilization of the TCP connections and to minimize the
effect of the TCP slow start."

Workload: 200 repetitive 256 KiB GETs against one server, per network
profile, with (a) the davix pool (keep-alive + recycling) and (b) a
connection per request (HTTP/1.0 style). Metric: total time and
effective throughput.
"""

from repro.concurrency import SimRuntime
from repro.core import Context, DavixClient, RequestParams
from repro.net.profiles import GEANT, LAN, WAN, build_network
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.sim import Environment

from _util import emit

N_REQUESTS = 200
OBJECT_SIZE = 262_144


def run_case(profile, keep_alive: bool):
    env = Environment()
    net = build_network(profile, env, seed=11)
    client_rt = SimRuntime(net, "client")
    server_rt = SimRuntime(net, "server")
    store = ObjectStore()
    store.put("/obj", b"d" * OBJECT_SIZE)
    HttpServer(server_rt, StorageApp(store), port=80).start()

    client = DavixClient(
        client_rt, params=RequestParams(keep_alive=keep_alive)
    )
    start = client_rt.now()
    for _ in range(N_REQUESTS):
        client.get("http://server/obj")
    elapsed = client_rt.now() - start
    connections = net.host("server").counters["connections_accepted"]

    # Pool/connect breakdown straight from the metrics registry — the
    # observability layer, not hand-kept counters.
    registry = client.metrics()
    hits = registry.value("pool.acquire_total", outcome="hit") or 0
    misses = registry.value("pool.acquire_total", outcome="miss") or 0
    connects = registry.value("session.connect_total") or 0
    connect_time = registry.get("session.connect_seconds").sum
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    return elapsed, connections, hit_rate, connects, connect_time


def test_keepalive_pool(benchmark):
    def run():
        out = {}
        for profile in (LAN, GEANT, WAN):
            out[(profile.name, True)] = run_case(profile, keep_alive=True)
            out[(profile.name, False)] = run_case(profile, keep_alive=False)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for profile in (LAN, GEANT, WAN):
        ka_time, ka_conns = results[(profile.name, True)][:2]
        nk_time, nk_conns = results[(profile.name, False)][:2]
        rows.append(
            [
                profile.label,
                ka_time,
                ka_conns,
                nk_time,
                nk_conns,
                nk_time / ka_time,
            ]
        )
    emit(
        "keepalive_pool",
        f"FIG2-KA: {N_REQUESTS} x 256 KiB GETs — pooled keep-alive vs "
        "connection-per-request (s)",
        [
            "link",
            "pool time",
            "pool conns",
            "reconnect time",
            "reconnect conns",
            "slowdown",
        ],
        rows,
        note=(
            "slowdown = reconnect/pool; grows with RTT (handshake + "
            "slow-start restart per request)"
        ),
        params={
            "n_requests": N_REQUESTS,
            "object_size": OBJECT_SIZE,
            "profiles": [p.name for p in (LAN, GEANT, WAN)],
            "seed": 11,
        },
        configs={
            "pool": [
                results[(p.name, True)][0] for p in (LAN, GEANT, WAN)
            ],
            "reconnect": [
                results[(p.name, False)][0] for p in (LAN, GEANT, WAN)
            ],
        },
    )

    metric_rows = []
    for profile in (LAN, GEANT, WAN):
        for keep_alive in (True, False):
            _, _, hit_rate, connects, connect_time = results[
                (profile.name, keep_alive)
            ]
            metric_rows.append(
                [
                    profile.label,
                    "pool" if keep_alive else "reconnect",
                    f"{hit_rate:.1%}",
                    connects,
                    connect_time,
                ]
            )
    emit(
        "keepalive_pool_metrics",
        "FIG2-KA breakdown from the MetricsRegistry "
        "(pool.acquire_total / session.connect_*)",
        [
            "link",
            "mode",
            "pool hit rate",
            "connects",
            "connect time (s)",
        ],
        metric_rows,
        note=(
            "sourced from client.metrics(): pooled mode reuses one "
            "session; reconnect mode pays a TCP setup per request"
        ),
    )

    for profile in (LAN, GEANT, WAN):
        ka_time, ka_conns, ka_hit_rate, ka_connects, _ = results[
            (profile.name, True)
        ]
        nk_time, nk_conns, nk_hit_rate, nk_connects, _ = results[
            (profile.name, False)
        ]
        assert ka_conns == 1
        assert nk_conns == N_REQUESTS
        assert nk_time > ka_time
        # Registry and network-level accounting must agree.
        assert ka_connects == 1
        assert nk_connects == N_REQUESTS
        assert ka_hit_rate == (N_REQUESTS - 1) / N_REQUESTS
        assert nk_hit_rate == 0.0
    # The penalty must grow with latency.
    slowdowns = [
        results[(p.name, False)][0] / results[(p.name, True)][0]
        for p in (LAN, GEANT, WAN)
    ]
    assert slowdowns[2] > slowdowns[1] > slowdowns[0]
