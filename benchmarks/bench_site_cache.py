"""EXT-CACHE — extension: the HTTP-ecosystem dividend (site caches).

The paper's strategic argument (Sections 1–2) is that adopting HTTP
lets HPC reuse the web's infrastructure — squids, caches, proxies —
which specialised protocols cannot. This bench quantifies the claim:
eight worker nodes at one site each download the same 200 MB calibration
file over a thin WAN link, with and without a site-local caching proxy.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.net import LinkSpec, Network
from repro.server import (
    HttpServer,
    ObjectStore,
    ProxyApp,
    StorageApp,
    ZeroContent,
)
from repro.sim import Environment

from _util import emit

FILE_SIZE = 200_000_000
N_WORKERS = 8
WAN = LinkSpec(latency=0.08, bandwidth=25_000_000)
LAN = LinkSpec(latency=0.0005, bandwidth=125_000_000)


def build(with_proxy: bool):
    env = Environment()
    net = Network(env, seed=41)
    net.add_host("origin", access_bandwidth=25_000_000)
    store = ObjectStore()
    store.put("/conditions.db", ZeroContent(FILE_SIZE))
    HttpServer(SimRuntime(net, "origin"), StorageApp(store), port=80).start()

    proxy_app = None
    if with_proxy:
        net.add_host("sitecache", access_bandwidth=125_000_000)
        net.set_route("sitecache", "origin", WAN)
        proxy_app = ProxyApp(default_ttl=3600.0)
        HttpServer(
            SimRuntime(net, "sitecache"), proxy_app, port=3128
        ).start()

    workers = []
    for index in range(N_WORKERS):
        name = f"wn{index}"
        net.add_host(name)
        net.set_route(name, "origin", WAN)
        if with_proxy:
            net.set_route(name, "sitecache", LAN)
        params = RequestParams(
            proxy="http://sitecache:3128" if with_proxy else None
        )
        workers.append(DavixClient(SimRuntime(net, name), params=params))
    return net, workers, proxy_app


def run_case(with_proxy: bool):
    net, workers, proxy_app = build(with_proxy)
    times = []
    for worker in workers:
        start = worker.runtime.now()
        data = worker.get("http://origin/conditions.db")
        assert len(data) == FILE_SIZE
        times.append(worker.runtime.now() - start)
    origin_bytes = net.host("origin").uplink.bytes_carried
    return times, origin_bytes, proxy_app


def test_site_cache(benchmark):
    def run():
        return {
            "direct": run_case(False),
            "cached": run_case(True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (times, origin_bytes, proxy_app) in results.items():
        rows.append(
            [
                label,
                times[0],
                sum(times[1:]) / (len(times) - 1),
                sum(times),
                origin_bytes / 1e6,
            ]
        )
    emit(
        "site_cache",
        f"EXT-CACHE: {N_WORKERS} worker nodes x 200 MB over a thin WAN, "
        "with/without a site cache",
        [
            "setup",
            "first worker (s)",
            "later workers mean (s)",
            "total (s)",
            "origin egress (MB)",
        ],
        rows,
        note=(
            "the HTTP-ecosystem dividend: one WAN transfer feeds the "
            "whole site; origin egress drops ~8x"
        ),
    )

    direct_times, direct_bytes, _ = results["direct"]
    cached_times, cached_bytes, proxy_app = results["cached"]
    # Warm workers are served at LAN speed.
    assert max(cached_times[1:]) < min(direct_times) / 3
    # Origin egress collapses to ~one file.
    assert cached_bytes < direct_bytes / (N_WORKERS - 1)
    assert proxy_app.stats["hits"] == N_WORKERS - 1
