"""EXT-CACHE — extension: the HTTP-ecosystem dividend (site caches).

The paper's strategic argument (Sections 1–2) is that adopting HTTP
lets HPC reuse the web's infrastructure — squids, caches, proxies —
which specialised protocols cannot. Two campaigns quantify the claim:

* **fan-out** — eight worker nodes at one site each download the same
  200 MB calibration file over a thin WAN link, with and without a
  site-local caching proxy (one WAN transfer feeds the whole site);
* **data lifecycle** — a zipf-popularity re-read workload (hot
  conditions data dominates) over the WAN, swept across the caching
  tiers (client page cache, site proxy, both). Gates: warm p50 at
  least 3x faster than cold, and origin egress under zipf at most 40 %
  of the cache-less run.
"""

import random

from repro.bench.stats import percentile
from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams, TransferConfig
from repro.net import LinkSpec, Network
from repro.server import (
    HttpServer,
    ObjectStore,
    ProxyApp,
    StorageApp,
    ZeroContent,
)
from repro.sim import Environment

from _util import emit

FILE_SIZE = 200_000_000
N_WORKERS = 8
WAN = LinkSpec(latency=0.08, bandwidth=25_000_000)
LAN = LinkSpec(latency=0.0005, bandwidth=125_000_000)


def build(with_proxy: bool):
    env = Environment()
    net = Network(env, seed=41)
    net.add_host("origin", access_bandwidth=25_000_000)
    store = ObjectStore()
    store.put("/conditions.db", ZeroContent(FILE_SIZE))
    HttpServer(SimRuntime(net, "origin"), StorageApp(store), port=80).start()

    proxy_app = None
    if with_proxy:
        net.add_host("sitecache", access_bandwidth=125_000_000)
        net.set_route("sitecache", "origin", WAN)
        proxy_app = ProxyApp(default_ttl=3600.0)
        HttpServer(
            SimRuntime(net, "sitecache"), proxy_app, port=3128
        ).start()

    workers = []
    for index in range(N_WORKERS):
        name = f"wn{index}"
        net.add_host(name)
        net.set_route(name, "origin", WAN)
        if with_proxy:
            net.set_route(name, "sitecache", LAN)
        params = RequestParams(
            proxy="http://sitecache:3128" if with_proxy else None
        )
        workers.append(DavixClient(SimRuntime(net, name), params=params))
    return net, workers, proxy_app


def run_case(with_proxy: bool):
    net, workers, proxy_app = build(with_proxy)
    times = []
    for worker in workers:
        start = worker.runtime.now()
        data = worker.get("http://origin/conditions.db")
        assert len(data) == FILE_SIZE
        times.append(worker.runtime.now() - start)
    origin_bytes = net.host("origin").uplink.bytes_carried
    return times, origin_bytes, proxy_app


def test_site_cache(benchmark):
    def run():
        return {
            "direct": run_case(False),
            "cached": run_case(True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (times, origin_bytes, proxy_app) in results.items():
        rows.append(
            [
                label,
                times[0],
                sum(times[1:]) / (len(times) - 1),
                sum(times),
                origin_bytes / 1e6,
            ]
        )
    emit(
        "site_cache",
        f"EXT-CACHE: {N_WORKERS} worker nodes x 200 MB over a thin WAN, "
        "with/without a site cache",
        [
            "setup",
            "first worker (s)",
            "later workers mean (s)",
            "total (s)",
            "origin egress (MB)",
        ],
        rows,
        note=(
            "the HTTP-ecosystem dividend: one WAN transfer feeds the "
            "whole site; origin egress drops ~8x"
        ),
    )

    direct_times, direct_bytes, _ = results["direct"]
    cached_times, cached_bytes, proxy_app = results["cached"]
    # Warm workers are served at LAN speed.
    assert max(cached_times[1:]) < min(direct_times) / 3
    # Origin egress collapses to ~one file.
    assert cached_bytes < direct_bytes / (N_WORKERS - 1)
    assert proxy_app.stats["hits"] == N_WORKERS - 1


# --------------------------------------------------------------------
# data-lifecycle campaign: zipf re-reads across the caching tiers
# --------------------------------------------------------------------

N_OBJECTS = 8
OBJECT_SIZE = 4 * 1024 * 1024
HOT_OFFSETS = 4  # page-aligned hot spots per object
READ_SIZE = 256 * 1024
N_READS = 80
ZIPF_ALPHA = 1.3
LIFECYCLE_SEED = 97


def zipf_draw(rng, weights):
    point = rng.random() * weights[-1]
    for index, cumulative in enumerate(weights):
        if point < cumulative:
            return index
    return len(weights) - 1


def lifecycle_schedule():
    """The seeded zipf read schedule: (object, offset) pairs — hot
    objects dominate, so the tail of the campaign is mostly re-reads."""
    rng = random.Random(LIFECYCLE_SEED)
    weights = []
    total = 0.0
    for rank in range(1, N_OBJECTS + 1):
        total += 1.0 / rank ** ZIPF_ALPHA
        weights.append(total)
    schedule = []
    for _ in range(N_READS):
        obj = zipf_draw(rng, weights)
        slot = rng.randrange(HOT_OFFSETS)
        schedule.append((obj, slot * (OBJECT_SIZE // HOT_OFFSETS)))
    return schedule


def run_lifecycle(client_cache: bool, site_proxy: bool):
    """One config of the campaign in a fresh world. Returns cold/warm
    latency lists, origin egress bytes, and the two cache tiers."""
    env = Environment()
    net = Network(env, seed=LIFECYCLE_SEED)
    net.add_host("origin", access_bandwidth=25_000_000)
    store = ObjectStore()
    for index in range(N_OBJECTS):
        store.put(f"/cond{index}.db", ZeroContent(OBJECT_SIZE))
    HttpServer(SimRuntime(net, "origin"), StorageApp(store), port=80).start()

    proxy_app = None
    if site_proxy:
        net.add_host("sitecache", access_bandwidth=125_000_000)
        net.set_route("sitecache", "origin", WAN)
        proxy_app = ProxyApp(default_ttl=3600.0)
        HttpServer(
            SimRuntime(net, "sitecache"), proxy_app, port=3128
        ).start()

    net.add_host("wn0")
    net.set_route("wn0", "origin", WAN)
    if site_proxy:
        net.set_route("wn0", "sitecache", LAN)
    params = RequestParams(
        proxy="http://sitecache:3128" if site_proxy else None,
        transfer=TransferConfig(page_cache_bytes=128 << 20)
        if client_cache
        else None,
    )
    client = DavixClient(SimRuntime(net, "wn0"), params=params)

    cold, warm = [], []
    seen = set()
    for obj, offset in lifecycle_schedule():
        url = f"http://origin/cond{obj}.db"
        start = client.runtime.now()
        data = client.pread(url, offset, READ_SIZE)
        elapsed = client.runtime.now() - start
        assert len(data) == READ_SIZE
        bucket = warm if (obj, offset) in seen else cold
        bucket.append(elapsed)
        seen.add((obj, offset))
    origin_bytes = net.host("origin").uplink.bytes_carried
    return cold, warm, origin_bytes, client, proxy_app


def test_site_cache_lifecycle(benchmark):
    cases = {
        "no-cache": (False, False),
        "client-cache": (True, False),
        "site-proxy": (False, True),
        "client+proxy": (True, True),
    }

    def run():
        return {
            label: run_lifecycle(*flags)
            for label, flags in cases.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows, configs = [], {}
    for label, (cold, warm, origin_bytes, client, proxy_app) in (
        results.items()
    ):
        cold_p50 = percentile(cold, 50)
        warm_p50 = percentile(warm, 50)
        rows.append(
            [
                label,
                cold_p50,
                warm_p50,
                origin_bytes / 1e6,
            ]
        )
        configs[label] = {
            "samples": cold + warm,
            "cold_p50": cold_p50,
            "warm_p50": warm_p50,
            "origin_bytes": origin_bytes,
        }
    emit(
        "site_cache_lifecycle",
        "EXT-CACHE: zipf data-lifecycle campaign "
        f"({N_READS} reads over {N_OBJECTS} objects, alpha={ZIPF_ALPHA}) "
        "across the caching tiers",
        ["tier", "cold p50 (s)", "warm p50 (s)", "origin egress (MB)"],
        rows,
        note=(
            "hot conditions data is read once over the WAN and re-read "
            "from cache; origin egress tracks the distinct working set"
        ),
        params={
            "objects": N_OBJECTS,
            "object_size": OBJECT_SIZE,
            "read_size": READ_SIZE,
            "reads": N_READS,
            "zipf_alpha": ZIPF_ALPHA,
            "seed": LIFECYCLE_SEED,
        },
        configs=configs,
    )

    baseline_bytes = results["no-cache"][2]
    for label in ("client-cache", "site-proxy", "client+proxy"):
        cold, warm, origin_bytes, client, proxy_app = results[label]
        # Gate 1: warm reads beat cold WAN reads by at least 3x (p50).
        assert percentile(warm, 50) * 3 <= percentile(cold, 50), label
        # Gate 2: zipf origin egress collapses to <= 40 % of no-cache.
        assert origin_bytes <= 0.4 * baseline_bytes, label

    # The savings are visible as cache.* metrics, per tier.
    cached_client = results["client-cache"][3]
    assert cached_client.metrics().value("cache.hit") > 0
    assert (
        cached_client.metrics().value("cache.origin_bytes_saved") > 0
    )
    site_proxy_app = results["site-proxy"][4]
    assert site_proxy_app.stats["hits"] > 0
    assert site_proxy_app.stats["origin_bytes_saved"] > 0
