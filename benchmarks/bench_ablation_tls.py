"""ABL-TLS — the TLS costs behind the paper's SPDY rejection.

Section 2.2: SPDY "explicitly enforces the usage of SSL/TLS ... TLS
introduces a negative performance impact for big data transfers and
introduces a handshake latency that can not be mandatory in High
performance computing." This bench measures both claims against the
model:

* handshake latency: first-request cost over https vs http per RTT;
* bulk-transfer impact: 200 MB GET throughput with record-layer crypto.
"""

from repro.concurrency import SimRuntime
from repro.concurrency.tlsmodel import TlsPolicy
from repro.core import DavixClient, RequestParams
from repro.net import LinkSpec, Network
from repro.server import (
    HttpServer,
    ObjectStore,
    ServerConfig,
    StorageApp,
    ZeroContent,
)
from repro.sim import Environment

from _util import emit

BULK = 200_000_000
POLICY = TlsPolicy()  # 2 ms handshake CPU/side, 200 MB/s crypto


def build(scheme, latency, bandwidth=125_000_000):
    env = Environment()
    net = Network(env, seed=31)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client", "server", LinkSpec(latency=latency, bandwidth=bandwidth)
    )
    tls = POLICY if scheme == "https" else None
    store = ObjectStore()
    store.put("/tiny", b"x" * 100)
    store.put("/bulk", ZeroContent(BULK))
    HttpServer(
        SimRuntime(net, "server"),
        StorageApp(store, config=ServerConfig(tls=tls)),
        port=443 if scheme == "https" else 80,
    ).start()
    client = DavixClient(
        SimRuntime(net, "client"), params=RequestParams(tls=POLICY)
    )
    return client


def first_request_time(scheme, latency):
    client = build(scheme, latency)
    start = client.runtime.now()
    client.get(f"{scheme}://server/tiny")
    return client.runtime.now() - start


def bulk_throughput(scheme):
    client = build(scheme, latency=0.001)
    start = client.runtime.now()
    client.get(f"{scheme}://server/bulk")
    return BULK / (client.runtime.now() - start) / 1e6


def test_ablation_tls(benchmark):
    rtts = (0.001, 0.02, 0.15)

    def run():
        out = {"handshake": {}, "bulk": {}}
        for latency in rtts:
            out["handshake"][latency] = (
                first_request_time("http", latency),
                first_request_time("https", latency),
            )
        out["bulk"]["http"] = bulk_throughput("http")
        out["bulk"]["https"] = bulk_throughput("https")
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for latency in rtts:
        plain, tls = results["handshake"][latency]
        rows.append(
            [f"{2 * latency * 1000:.0f} ms RTT", plain, tls, tls - plain]
        )
    rows.append(
        [
            "bulk 200 MB (MB/s)",
            results["bulk"]["http"],
            results["bulk"]["https"],
            results["bulk"]["http"] - results["bulk"]["https"],
        ]
    )
    emit(
        "ablation_tls",
        "ABL-TLS: https vs http — first-request latency (s) and bulk "
        "throughput",
        ["case", "http", "https", "delta"],
        rows,
        note=(
            "handshake adds ~2 RTT + 4 ms CPU; record crypto caps bulk "
            "throughput at the crypto bandwidth"
        ),
    )

    # Handshake delta grows with RTT (~2 RTTs).
    deltas = [
        results["handshake"][latency][1]
        - results["handshake"][latency][0]
        for latency in rtts
    ]
    assert deltas[2] > deltas[1] > deltas[0]
    assert deltas[2] > 0.5  # ~2 x 300 ms RTT
    # Bulk transfer pays a visible throughput penalty.
    assert results["bulk"]["https"] < results["bulk"]["http"] * 0.85
