"""ML-MS — multi-stream downloads (Section 2.4, second strategy).

"libdavix will ... proceed to a multi-source parallel download of each
referenced chunk of data from a different replica. This approach has
the advantage to maximize the network bandwidth usage on the client
side ... However, it has for main drawback to overload considerably the
servers."

Workload: a 96 MB file on 4 replicas, each path capped at 25 MB/s while
the client wire fits 125 MB/s. Sweep the stream count; report client
throughput and the per-server request load — both sides of the paper's
trade-off.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, StorageApp, ZeroContent
from repro.sim import Environment

from _util import emit

N_REPLICAS = 4
FILE_SIZE = 96_000_000
PATH = "/data/big.root"
PATH_BW = 25_000_000  # per-path bottleneck


def build_world():
    env = Environment()
    net = Network(env, seed=9)
    net.add_host("client", access_bandwidth=125_000_000)
    names = [f"site{i}" for i in range(N_REPLICAS)]
    urls = [f"http://{name}{PATH}" for name in names]
    apps = []
    for name in names:
        net.add_host(name, access_bandwidth=PATH_BW)
        net.set_route(
            "client", name, LinkSpec(latency=0.02, bandwidth=PATH_BW)
        )
        store = ObjectStore()
        store.put(PATH, ZeroContent(FILE_SIZE))
        app = StorageApp(store, replicas={PATH: urls})
        HttpServer(SimRuntime(net, name), app, port=80).start()
        apps.append(app)
    return net, urls, apps


def run_case(streams):
    net, urls, apps = build_world()
    params = RequestParams(
        multistream_max_streams=streams,
        multistream_chunk=4_000_000,
        verify_checksum=False,  # ZeroContent: timing-only payload
    )
    client = DavixClient(SimRuntime(net, "client"), params=params)
    start = client.runtime.now()
    if streams == 1:
        data = client.get(urls[0])
        size = len(data)
    else:
        result = client.get_multistream(urls[0])
        size = result.size
    elapsed = client.runtime.now() - start
    requests = [app.requests_handled for app in apps]
    return size, elapsed, requests


def test_multistream(benchmark):
    stream_counts = (1, 2, 3, 4)

    def run():
        return {n: run_case(n) for n in stream_counts}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    base_time = results[1][1]
    rows = []
    for n in stream_counts:
        size, elapsed, requests = results[n]
        throughput = size / elapsed / 1e6
        rows.append(
            [
                n,
                elapsed,
                throughput,
                base_time / elapsed,
                sum(requests),
                max(requests),
            ]
        )
    emit(
        "multistream",
        "ML-MS: 96 MB download, 4 replicas, 25 MB/s per path "
        "(client wire 125 MB/s)",
        [
            "streams",
            "time (s)",
            "MB/s",
            "speedup",
            "total reqs",
            "max reqs/server",
        ],
        rows,
        note=(
            "client throughput scales with streams; server-side request "
            "load scales with them too (the paper's stated drawback)"
        ),
    )

    for n in stream_counts:
        assert results[n][0] == FILE_SIZE
    # Bandwidth aggregation: 4 streams must be >2.5x faster than 1.
    assert results[1][1] / results[4][1] > 2.5
    # Server load: multi-stream touches every server.
    assert sum(1 for r in results[4][2] if r > 0) == N_REPLICAS
    assert sum(results[4][2]) > sum(results[1][2])
