"""ABL-NAG — ablation: Nagle's algorithm vs small-request traffic.

Section 2.2 notes that HTTP pipelining "suffers of side effects with
the TCP's nagle algorithm". davix (like modern HTTP clients) sets
TCP_NODELAY. This ablation quantifies why: a request/response workload
of sub-MSS messages with Nagle enabled trips the classic
write-write-read stall.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.net import LinkSpec, Network, TcpOptions
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.sim import Environment

from _util import emit

N_REQUESTS = 100


def run_case(nagle: bool):
    env = Environment()
    net = Network(env, seed=23)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client", "server", LinkSpec(latency=0.01, bandwidth=1e8)
    )
    store = ObjectStore()
    store.put("/tiny", b"x" * 200)
    HttpServer(SimRuntime(net, "server"), StorageApp(store), port=80).start()

    client_rt = SimRuntime(net, "client")
    params = RequestParams(
        tcp_options=TcpOptions(nagle=nagle, idle_reset=False)
    )
    client = DavixClient(client_rt, params=params)
    start = client_rt.now()
    for _ in range(N_REQUESTS):
        client.get("http://server/tiny")
    return client_rt.now() - start


def test_ablation_nagle(benchmark):
    def run():
        return {"nodelay": run_case(False), "nagle": run_case(True)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["TCP_NODELAY (davix default)", results["nodelay"],
         results["nodelay"] / N_REQUESTS * 1000],
        ["Nagle enabled", results["nagle"],
         results["nagle"] / N_REQUESTS * 1000],
    ]
    emit(
        "ablation_nagle",
        f"ABL-NAG: {N_REQUESTS} x 200 B request/response, 20 ms RTT",
        ["setting", "total (s)", "per request (ms)"],
        rows,
        note="Nagle holds sub-MSS segments while data is unacked",
    )

    assert results["nodelay"] < results["nagle"]
