"""ABL-CLU — ablation: TTreeCache cluster size (refill granularity).

Section 2.3's mechanism has a knob the paper does not sweep: how many
entries each vectored refill covers. Small clusters mean many refills
(round-trip bound); huge clusters amortise the RTT but delay the first
event and grow the client cache. This sweep shows the WAN execution
time as the cluster grows — the "reduce the number of remote network
I/O operations" claim, quantified end to end.
"""

from repro.net.profiles import WAN
from repro.rootio.generator import paper_dataset
from repro.workloads import AnalysisConfig, Scenario, run_scenario

from _util import bench_scale, emit

CLUSTERS = (20, 50, 100, 300, 600)


def test_ablation_cluster(benchmark):
    spec = paper_dataset(scale=bench_scale())

    def run():
        out = {}
        for entries in CLUSTERS:
            config = AnalysisConfig(
                fraction=0.25,
                entries_per_cluster=entries,
                learn_entries=0,
            )
            report = run_scenario(
                Scenario(
                    profile=WAN,
                    protocol="davix",
                    spec=spec,
                    config=config,
                    seed=19,
                )
            )
            out[entries] = report
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for entries in CLUSTERS:
        report = results[entries]
        rows.append(
            [
                entries,
                report.refills,
                report.wall_seconds,
                report.bytes_fetched / 1e6,
            ]
        )
    emit(
        "ablation_cluster",
        "ABL-CLU: davix WAN job (25% of events) vs TTreeCache cluster "
        "size",
        ["entries/cluster", "refills", "time (s)", "MB fetched"],
        rows,
        note="fewer, larger vectored requests amortise the 280 ms RTT",
        params={
            "clusters": list(CLUSTERS),
            "fraction": 0.25,
            "profile": WAN.name,
            "scale": bench_scale(),
            "seed": 19,
        },
        configs={
            f"cluster-{entries}": [results[entries].wall_seconds]
            for entries in CLUSTERS
        },
    )

    # More entries per cluster -> fewer refills -> faster on the WAN.
    times = [results[entries].wall_seconds for entries in CLUSTERS]
    assert times[0] > times[-1]
    refills = [results[entries].refills for entries in CLUSTERS]
    assert refills == sorted(refills, reverse=True)
