"""Cross-protocol end-to-end integration: both transports must deliver
byte-identical event data from a materialised dataset."""

import pytest

from repro.concurrency import SimRuntime, ThreadRuntime
from repro.core import Context
from repro.net import GEANT, build_network
from repro.rootio import (
    BranchSpec,
    DatasetSpec,
    DavixFetcher,
    LocalFetcher,
    TTreeCache,
    TreeFileReader,
    XrootdFetcher,
    generate_tree_bytes,
)
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.sim import Environment
from repro.xrootd import XrdClient, XrdServer, serve_xrootd

SPEC = DatasetSpec(
    name="integration",
    n_entries=400,
    branches=(
        BranchSpec("energy", event_size=128, compress_ratio=0.4),
        BranchSpec("momentum", event_size=64, compress_ratio=0.6),
        BranchSpec("tracks", event_size=32, compress_ratio=0.9),
    ),
    basket_entries=64,
    seed=1234,
)


@pytest.fixture(scope="module")
def blob():
    return generate_tree_bytes(SPEC)


@pytest.fixture(scope="module")
def reference(blob):
    """Per-entry records read locally (ground truth)."""
    reader = TreeFileReader(LocalFetcher(blob))
    runtime = ThreadRuntime()
    runtime.run(reader.open())

    def op():
        cache = TTreeCache(reader, entries_per_cluster=64)
        records = []
        for entry in range(SPEC.n_entries):
            record = yield from cache.read_entry(entry)
            records.append(record)
        return records

    return runtime.run(op())


def read_via_davix(blob):
    env = Environment()
    net = build_network(GEANT, env, seed=6)
    store = ObjectStore()
    store.put("/t.root", blob)
    HttpServer(SimRuntime(net, "server"), StorageApp(store), port=80).start()
    client_rt = SimRuntime(net, "client")
    context = Context()

    def op():
        fetcher = DavixFetcher(context, "http://server/t.root")
        reader = TreeFileReader(fetcher)
        yield from reader.open()
        cache = TTreeCache(
            reader, entries_per_cluster=64, learn_entries=64
        )
        records = []
        for entry in range(SPEC.n_entries):
            record = yield from cache.read_entry(entry)
            records.append(record)
        return records

    return client_rt.run(op())


def read_via_xrootd(blob):
    env = Environment()
    net = build_network(GEANT, env, seed=6)
    store = ObjectStore()
    store.put("/t.root", blob)
    serve_xrootd(SimRuntime(net, "server"), XrdServer(store), port=1094)
    client_rt = SimRuntime(net, "client")

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        file = yield from client.open("/t.root")
        fetcher = XrootdFetcher(client, file, window_bytes=1 << 20)
        reader = TreeFileReader(fetcher)
        meta = yield from reader.open()
        plan = []
        for start, stop in meta.clusters(64):
            plan.extend(meta.segments_for_entries(start, stop))
        fetcher.plan(plan)
        cache = TTreeCache(reader, entries_per_cluster=64)
        records = []
        for entry in range(SPEC.n_entries):
            record = yield from cache.read_entry(entry)
            records.append(record)
        return records

    return client_rt.run(op())


def test_davix_matches_local_reference(blob, reference):
    assert read_via_davix(blob) == reference


def test_xrootd_with_readahead_matches_local_reference(blob, reference):
    assert read_via_xrootd(blob) == reference


def test_reference_has_expected_structure(reference):
    assert len(reference) == SPEC.n_entries
    first = reference[0]
    assert set(first) == {"energy", "momentum", "tracks"}
    assert len(first["energy"]) == 128
    assert len(first["momentum"]) == 64
    assert len(first["tracks"]) == 32
    # Entries differ (the generator is not constant).
    assert reference[0] != reference[SPEC.n_entries - 1]
