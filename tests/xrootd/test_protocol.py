"""Tests for the XRootD frame and payload codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import XrootdError
from repro.xrootd import protocol as proto


def test_frame_roundtrip():
    wire = proto.encode_request(7, proto.KXR_READ, b"payload")
    reader = proto.FrameReader()
    reader.feed(wire)
    assert reader.next_frame() == (7, proto.KXR_READ, b"payload")
    assert reader.next_frame() is None


def test_frame_reader_incremental():
    wire = proto.encode_response(3, proto.STATUS_OK, b"x" * 100)
    reader = proto.FrameReader()
    for i in range(len(wire) - 1):
        reader.feed(wire[i : i + 1])
        if i < len(wire) - 2:
            assert reader.next_frame() is None
    reader.feed(wire[-1:])
    assert reader.next_frame() == (3, proto.STATUS_OK, b"x" * 100)


def test_multiple_frames_in_one_feed():
    wire = proto.encode_request(1, proto.KXR_PING) + proto.encode_request(
        2, proto.KXR_PING
    )
    reader = proto.FrameReader()
    reader.feed(wire)
    assert reader.next_frame()[0] == 1
    assert reader.next_frame()[0] == 2
    assert reader.next_frame() is None


def test_oversized_payload_rejected():
    with pytest.raises(XrootdError):
        proto.encode_request(1, proto.KXR_READ, b"x" * (proto.MAX_DLEN + 1))


def test_open_payload_roundtrip():
    payload = proto.encode_open("/data/événements.root")
    assert proto.decode_open(payload) == "/data/événements.root"


def test_open_reply_roundtrip():
    payload = proto.encode_open_reply(42, 700_000_000)
    assert proto.decode_open_reply(payload) == (42, 700_000_000)


def test_read_payload_roundtrip():
    payload = proto.encode_read(5, 123_456_789_012, 65536)
    assert proto.decode_read(payload) == (5, 123_456_789_012, 65536)


def test_readv_roundtrip():
    chunks = [(1, 0, 100), (1, 5000, 200), (2, 10, 30)]
    assert proto.decode_readv(proto.encode_readv(chunks)) == chunks


def test_readv_reply_roundtrip():
    pieces = [b"abc", b"", b"x" * 1000]
    assert proto.decode_readv_reply(proto.encode_readv_reply(pieces)) == (
        pieces
    )


def test_readv_reply_truncation_detected():
    wire = proto.encode_readv_reply([b"abcdef"])
    with pytest.raises(XrootdError):
        proto.decode_readv_reply(wire[:-2])
    with pytest.raises(XrootdError):
        proto.decode_readv_reply(wire + b"junk")


def test_stat_reply_roundtrip():
    assert proto.decode_stat_reply(proto.encode_stat_reply(123, True)) == (
        123,
        True,
    )
    assert proto.decode_stat_reply(proto.encode_stat_reply(0, False)) == (
        0,
        False,
    )


def test_error_roundtrip():
    payload = proto.encode_error(3011, "file not found")
    assert proto.decode_error(payload) == (3011, "file not found")


def test_close_roundtrip():
    assert proto.decode_close(proto.encode_close(17)) == 17


@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
    st.binary(max_size=4096),
    st.integers(min_value=1, max_value=64),
)
def test_frame_roundtrip_any_split(streamid, code, payload, step):
    wire = proto.encode_request(streamid, code, payload)
    reader = proto.FrameReader()
    frames = []
    for i in range(0, len(wire), step):
        reader.feed(wire[i : i + step])
        while True:
            frame = reader.next_frame()
            if frame is None:
                break
            frames.append(frame)
    assert frames == [(streamid, code, payload)]


@given(
    st.lists(st.binary(max_size=500), min_size=0, max_size=10)
)
def test_readv_reply_property(pieces):
    assert proto.decode_readv_reply(proto.encode_readv_reply(pieces)) == (
        pieces
    )
