"""End-to-end XRootD client/server tests over the simulator."""

import pytest

from repro.concurrency import SimRuntime
from repro.errors import XrootdError
from repro.server import ObjectStore
from repro.xrootd import ReadAheadWindow, XrdClient, XrdServer, serve_xrootd

from tests.helpers import sim_world


def xrd_world(latency=0.005, bandwidth=1e8):
    client_rt, server_rt = sim_world(latency=latency, bandwidth=bandwidth)
    store = ObjectStore()
    server = XrdServer(store)
    serve_xrootd(server_rt, server, port=1094)
    return client_rt, store, server


def test_open_stat_read_close():
    client_rt, store, server = xrd_world()
    content = bytes(i % 251 for i in range(100_000))
    store.put("/data/f.root", content)

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        yield from client.ping()
        size, is_dir = yield from client.stat("/data/f.root")
        f = yield from client.open("/data/f.root")
        data = yield from client.read(f, 1000, 500)
        yield from client.close_file(f)
        yield from client.disconnect()
        return size, is_dir, f.size, data

    size, is_dir, fsize, data = client_rt.run(op())
    assert size == fsize == len(content)
    assert not is_dir
    assert data == content[1000:1500]


def test_open_missing_file_errors():
    client_rt, store, server = xrd_world()

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        try:
            yield from client.open("/nope")
        except XrootdError as exc:
            return str(exc)

    assert "no such object" in client_rt.run(op())


def test_readv_returns_chunks_in_order():
    client_rt, store, server = xrd_world()
    content = bytes(i % 251 for i in range(50_000))
    store.put("/x", content)

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        f = yield from client.open("/x")
        chunks = yield from client.readv(
            f, [(0, 10), (40_000, 100), (25_000, 50)]
        )
        return chunks

    chunks = client_rt.run(op())
    assert chunks == [
        content[0:10],
        content[40_000:40_100],
        content[25_000:25_050],
    ]


def test_concurrent_reads_multiplex_out_of_order():
    """A big read issued first must not delay a small read issued
    second — the core multiplexing property HTTP/1.1 lacks."""
    client_rt, store, server = xrd_world(latency=0.01, bandwidth=2e6)
    store.put("/big", b"B" * 2_000_000)
    store.put("/small", b"s" * 10)

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        big = yield from client.open("/big")
        small = yield from client.open("/small")
        big_promise = yield from client.read_nowait(big, 0, 2_000_000)
        small_promise = yield from client.read_nowait(small, 0, 10)
        small_data = yield from client.read_result(small_promise)
        small_done = client_rt.now()
        big_data = yield from client.read_result(big_promise)
        big_done = client_rt.now()
        return small_data, small_done, len(big_data), big_done

    small_data, small_done, big_len, big_done = client_rt.run(op())
    assert small_data == b"s" * 10
    assert big_len == 2_000_000
    assert small_done < big_done * 0.5  # small finished long before


def test_connection_loss_rejects_pending_reads():
    client_rt, store, server = xrd_world()
    store.put("/x", b"data" * 1000)

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        f = yield from client.open("/x")
        promise = yield from client.read_nowait(f, 0, 4000)
        client_rt.network.host("server").fail()
        try:
            yield from client.read_result(promise)
        except Exception as exc:
            return type(exc).__name__

    assert client_rt.run(op()) in ("ConnectionClosed",)


def test_readahead_window_hits_planned_reads():
    client_rt, store, server = xrd_world(latency=0.05)
    content = bytes(i % 251 for i in range(1_000_000))
    store.put("/x", content)
    segments = [(i * 10_000, 10_000) for i in range(100)]

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        f = yield from client.open("/x")
        window = ReadAheadWindow(client, f, window_bytes=100_000)
        window.set_plan(segments)
        out = bytearray()
        for offset, length in segments:
            data = yield from window.read(offset, length)
            out.extend(data)
        return bytes(out), window.stats

    data, stats = client_rt.run(op())
    assert data == content
    assert stats["hits"] == 100
    assert stats["misses"] == 0


def test_readahead_hides_latency_vs_sync_reads():
    """With 100 ms RTT, 50 planned reads: sync pays 50 RTTs, the window
    overlaps them."""
    segments = [(i * 1000, 1000) for i in range(50)]

    def run(window_bytes):
        client_rt, store, server = xrd_world(latency=0.05, bandwidth=1e8)
        store.put("/x", bytes(100_000))

        def op():
            client = yield from XrdClient.connect(("server", 1094))
            f = yield from client.open("/x")
            window = ReadAheadWindow(client, f, window_bytes=window_bytes)
            window.set_plan(segments)
            for offset, length in segments:
                yield from window.read(offset, length)
            return client_rt.now()

        return client_rt.run(op())

    sync_ish = run(window_bytes=1)  # window of 1 byte: no overlap
    windowed = run(window_bytes=64_000)
    assert windowed < sync_ish / 5


def test_off_plan_read_falls_back_to_sync():
    client_rt, store, server = xrd_world()
    store.put("/x", bytes(range(256)))

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        f = yield from client.open("/x")
        window = ReadAheadWindow(client, f, window_bytes=1000)
        window.set_plan([(0, 10)])
        surprise = yield from window.read(100, 10)  # not in the plan
        planned = yield from window.read(0, 10)
        yield from window.drain()
        return surprise, planned, dict(window.stats)

    surprise, planned, stats = client_rt.run(op())
    assert surprise == bytes(range(100, 110))
    assert planned == bytes(range(10))
    assert stats["misses"] == 1
    assert stats["hits"] == 1


def test_bad_handle_errors():
    client_rt, store, server = xrd_world()
    store.put("/x", b"abc")

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        f = yield from client.open("/x")
        f.handle = 999
        try:
            yield from client.read(f, 0, 3)
        except XrootdError as exc:
            return str(exc)

    assert "bad file handle" in client_rt.run(op())


def test_server_counters():
    client_rt, store, server = xrd_world()
    store.put("/x", b"0123456789")

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        f = yield from client.open("/x")
        yield from client.read(f, 0, 10)
        yield from client.read(f, 0, 5)

    client_rt.run(op())
    assert server.requests_handled == 3  # open + 2 reads
    assert server.bytes_served == 15
