"""Unit tests for RetryPolicy / RetrySchedule determinism and bounds."""

import random

import pytest

from repro.core import RequestParams
from repro.resilience import (
    IDEMPOTENT_METHODS,
    RetryPolicy,
    is_idempotent,
)


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=2.0, max_delay=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter="full")


def test_max_attempts_one_never_retries():
    schedule = RetryPolicy(max_attempts=1).schedule()
    assert schedule.exhausted
    assert schedule.next_delay() is None
    assert schedule.retries == 0


def test_jitter_none_is_plain_exponential():
    policy = RetryPolicy(
        max_attempts=5,
        base_delay=0.1,
        max_delay=10.0,
        multiplier=2.0,
        jitter="none",
    )
    assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.8]


def test_jitter_none_caps_at_max_delay():
    policy = RetryPolicy(
        max_attempts=6,
        base_delay=1.0,
        max_delay=3.0,
        multiplier=10.0,
        jitter="none",
    )
    assert list(policy.delays()) == [1.0, 3.0, 3.0, 3.0, 3.0]


def test_zero_base_delay_means_immediate_retries():
    policy = RetryPolicy(
        max_attempts=4, base_delay=0.0, multiplier=1.0, jitter="none"
    )
    assert list(policy.delays()) == [0.0, 0.0, 0.0]


def test_decorrelated_delays_stay_within_bounds():
    policy = RetryPolicy(
        max_attempts=50,
        base_delay=0.05,
        max_delay=5.0,
        multiplier=3.0,
        seed=7,
    )
    delays = list(policy.delays())
    assert len(delays) == 49
    assert all(0.05 <= d <= 5.0 for d in delays)
    # Jitter means the sequence is not monotone-deterministic.
    assert len(set(delays)) > 1


def test_same_seed_same_delays():
    policy = RetryPolicy(max_attempts=10, seed=42)
    assert list(policy.delays()) == list(policy.delays())
    other = RetryPolicy(max_attempts=10, seed=43)
    assert list(policy.delays()) != list(other.delays())


def test_injected_rng_is_consumed_in_order():
    """Two schedules sharing one RNG continue its stream; replaying the
    stream from the same seed reproduces the concatenated delays."""
    policy = RetryPolicy(max_attempts=3, seed=5)
    shared = random.Random(99)
    first = list(policy.delays(shared)) + list(policy.delays(shared))
    replay = random.Random(99)
    second = list(policy.delays(replay)) + list(policy.delays(replay))
    assert first == second


def test_schedule_exhaustion_is_sticky():
    schedule = RetryPolicy(max_attempts=3, jitter="none").schedule()
    assert schedule.next_delay() is not None
    assert schedule.next_delay() is not None
    assert schedule.exhausted
    assert schedule.next_delay() is None
    assert schedule.next_delay() is None
    assert schedule.retries == 2


def test_idempotent_methods():
    for method in ("GET", "HEAD", "PUT", "DELETE", "PROPFIND", "MKCOL"):
        assert is_idempotent(method)
        assert method in IDEMPOTENT_METHODS
    assert is_idempotent("get")  # case-insensitive
    assert not is_idempotent("POST")
    assert not is_idempotent("MOVE")
    assert not is_idempotent("COPY")


def test_legacy_params_map_to_fixed_delay_policy():
    params = RequestParams(retries=2, retry_delay=0.25)
    policy = params.effective_retry_policy()
    assert policy.max_attempts == 3
    assert policy.jitter == "none"
    assert list(policy.delays()) == [0.25, 0.25]


def test_explicit_policy_wins_over_legacy_knobs():
    policy = RetryPolicy(max_attempts=7)
    params = RequestParams(retries=2, retry_policy=policy)
    assert params.effective_retry_policy() is policy
