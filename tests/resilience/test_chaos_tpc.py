"""Chaos sweep for third-party copies.

Stream faults mid-transfer must either be retried to a successful,
byte-correct copy or surface as a *failed* COPY — a digest mismatch is
never reported as success and never commits bytes. Every scenario is
seeded, so repeated identical runs produce byte-identical transfers
down to the perf-marker stream itself.
"""

import pytest

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import DavixError
from repro.core.request import execute_request
from repro.core.tpc import parse_marker_stream
from repro.http import Headers, Request, Url
from repro.net import LinkSpec, Network
from repro.obs import MetricsRegistry
from repro.server import (
    FaultPolicy,
    HttpServer,
    ObjectStore,
    ServerConfig,
    StorageApp,
)
from repro.sim import Environment

from tests.resilience.conftest import ScriptedFaults, errors

CONFIG = ServerConfig(tpc_chunk=64 * 1024, tpc_streams=4)
PAYLOAD = bytes((i * 53 + 29) % 256 for i in range(300 * 1024))


def tpc_world(seed, source_faults=None):
    env = Environment()
    net = Network(env, seed=seed)
    for name in ("client", "site-a", "site-b"):
        net.add_host(name)
    fast = LinkSpec(latency=0.005, bandwidth=125_000_000)
    slow = LinkSpec(latency=0.05, bandwidth=2_000_000)
    net.set_route("client", "site-a", slow)
    net.set_route("client", "site-b", slow)
    net.set_route("site-a", "site-b", fast)

    apps = {}
    for name in ("site-a", "site-b"):
        faults = source_faults if name == "site-a" else None
        app = StorageApp(ObjectStore(), config=CONFIG, faults=faults)
        app.metrics = MetricsRegistry()
        # No transport-level retries: every chunk fault must surface
        # to (and be absorbed by) the TPC stream retry loop.
        app.tpc_params = RequestParams(retries=0)
        HttpServer(SimRuntime(net, name), app, port=80).start()
        apps[name] = app
    apps["site-a"].store.put("/data/src.bin", PAYLOAD)
    client = DavixClient(
        SimRuntime(net, "client"), params=RequestParams(retries=0)
    )
    return client, apps


def raw_copy(client, streams=4):
    """The COPY response verbatim — marker stream body included."""
    url = Url.parse("http://site-b/data/dst.bin")
    request = Request(
        "COPY",
        "/data/dst.bin",
        Headers(
            [
                ("Source", "http://site-a/data/src.bin"),
                ("X-Number-Of-Streams", str(streams)),
            ]
        ),
    )

    def op():
        response, _ = yield from execute_request(
            client.context, url, request, client.context.params
        )
        return response

    return client.runtime.run(op())


def test_scripted_chunk_faults_are_retried(chaos_seed):
    # HEAD serves clean, then exactly two chunk GETs 503: both must be
    # retried within their stream and the copy still succeed.
    faults = ScriptedFaults([None] + errors(2))
    client, apps = tpc_world(chaos_seed, source_faults=faults)

    summary = client.third_party_copy(
        "http://site-a/data/src.bin", "http://site-b/data/dst.bin"
    )
    assert summary.ok
    assert faults.injected["error"] == 2
    assert apps["site-b"].store.read("/data/dst.bin") == PAYLOAD
    retries = apps["site-b"].metrics.counter("tpc.stream_retries_total")
    assert retries.value == 2


def test_random_faults_never_corrupt_the_copy(chaos_seed):
    # Probabilistic 503s on the source: the copy either retries its way
    # to a byte-correct object or fails without committing anything.
    client, apps = tpc_world(
        chaos_seed,
        source_faults=FaultPolicy(error_rate=0.15, seed=chaos_seed),
    )
    try:
        summary = client.third_party_copy(
            "http://site-a/data/src.bin", "http://site-b/data/dst.bin"
        )
    except DavixError:
        assert not apps["site-b"].store.exists("/data/dst.bin")
    else:
        assert summary.ok
        assert apps["site-b"].store.read("/data/dst.bin") == PAYLOAD


def test_digest_mismatch_is_never_reported_as_success(chaos_seed):
    client, apps = tpc_world(chaos_seed)
    source = apps["site-a"].store._objects["/data/src.bin"]
    source._checksums["adler32"] = "deadbeef"  # poison the digest

    with pytest.raises(DavixError) as excinfo:
        client.third_party_copy(
            "http://site-a/data/src.bin", "http://site-b/data/dst.bin"
        )
    assert "digest mismatch" in str(excinfo.value)
    assert not apps["site-b"].store.exists("/data/dst.bin")
    mismatches = apps["site-b"].metrics.counter(
        "tpc.digest_mismatch_total"
    )
    assert mismatches.value == 1


def test_repeated_runs_are_byte_identical(chaos_seed):
    # Same seed, same fault schedule: the committed object AND the
    # perf-marker stream on the wire are byte-for-byte identical.
    def one_run():
        client, apps = tpc_world(
            chaos_seed,
            source_faults=FaultPolicy(error_rate=0.05, seed=chaos_seed),
        )
        response = raw_copy(client)
        committed = (
            apps["site-b"].store.read("/data/dst.bin")
            if apps["site-b"].store.exists("/data/dst.bin")
            else None
        )
        return response.status, bytes(response.body), committed

    first, second = one_run(), one_run()
    assert first == second
    status, body, committed = first
    assert status == 202
    summary = parse_marker_stream(body)
    if summary.ok:
        assert committed == PAYLOAD
    else:
        assert committed is None
