"""Shared fixtures for the chaos suite.

``chaos_seed`` parametrises a test over a fixed seed set; CI overrides
the set through the ``CHAOS_SEEDS`` environment variable (comma or
space separated), so the same suite sweeps different fault schedules
across jobs while staying bit-reproducible within each.
"""

import os

import pytest

from repro.server.faults import FaultAction

#: The default sweep — three seeds, chosen once and frozen.
DEFAULT_CHAOS_SEEDS = (11, 23, 47)


def _chaos_seeds():
    raw = os.environ.get("CHAOS_SEEDS", "")
    if not raw.strip():
        return DEFAULT_CHAOS_SEEDS
    return tuple(int(tok) for tok in raw.replace(",", " ").split())


@pytest.fixture(params=_chaos_seeds())
def chaos_seed(request):
    """One seed of the chaos sweep (override with CHAOS_SEEDS=...)."""
    return request.param


class ScriptedFaults:
    """FaultPolicy stand-in replaying a fixed action sequence.

    Each ``next_action`` call pops the next scripted entry (``None``
    meaning "serve normally"); after the script runs out every request
    is served normally. Fully deterministic — used where a test needs
    *exactly* N failures, not a probability of them.
    """

    def __init__(self, actions):
        self.actions = list(actions)
        self.injected = {"error": 0, "reset": 0, "slow": 0}

    def next_action(self, path):
        if not self.actions:
            return None
        action = self.actions.pop(0)
        if action is not None:
            self.injected[action.kind] += 1
        return action


def errors(n, status=503):
    """``n`` scripted 5xx fault actions."""
    return [FaultAction("error", status=status)] * n


def resets(n):
    """``n`` scripted mid-body connection resets."""
    return [FaultAction("reset")] * n
