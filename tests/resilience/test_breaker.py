"""Circuit-breaker state machine and board tests (golden transitions)."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


ORIGIN = ("http", "site0", 80)


def test_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown=-1)
    with pytest.raises(ValueError):
        BreakerConfig(half_open_max=0)


def test_closed_until_threshold_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(BreakerConfig(threshold=3), clock)
    breaker.on_failure()
    breaker.on_failure()
    assert breaker.state == BreakerState.CLOSED
    assert breaker.allow()
    # A success resets the consecutive count.
    breaker.on_success()
    breaker.on_failure()
    breaker.on_failure()
    assert breaker.state == BreakerState.CLOSED
    breaker.on_failure()
    assert breaker.state == BreakerState.OPEN
    assert not breaker.allow()
    assert breaker.blocked


def test_half_open_probe_after_cooldown_then_close():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(threshold=1, cooldown=10.0), clock
    )
    breaker.on_failure()
    assert breaker.state == BreakerState.OPEN
    clock.t = 9.9
    assert not breaker.allow()
    clock.t = 10.0
    assert breaker.allow()  # the probe
    assert breaker.state == BreakerState.HALF_OPEN
    breaker.on_success()
    assert breaker.state == BreakerState.CLOSED
    assert breaker.allow()


def test_half_open_failure_reopens_for_another_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(threshold=1, cooldown=10.0), clock
    )
    breaker.on_failure()
    clock.t = 10.0
    assert breaker.allow()
    breaker.on_failure()
    assert breaker.state == BreakerState.OPEN
    clock.t = 19.0  # cooldown restarts from the probe failure
    assert not breaker.allow()
    clock.t = 20.0
    assert breaker.allow()


def test_half_open_probe_budget_is_bounded():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(threshold=1, cooldown=1.0, half_open_max=2), clock
    )
    breaker.on_failure()
    clock.t = 1.0
    assert breaker.allow()
    assert breaker.allow()
    assert not breaker.allow()  # both probe slots claimed
    assert breaker.blocked


def test_board_golden_transition_sequence():
    """The canonical lifecycle, as the chaos suite asserts it:
    closed -> open -> half_open -> closed."""
    clock = FakeClock()
    board = BreakerBoard(
        config=BreakerConfig(threshold=2, cooldown=5.0), clock=clock
    )
    assert board.state(ORIGIN) == BreakerState.CLOSED
    board.record(ORIGIN, ok=False)
    clock.t = 1.0
    board.record(ORIGIN, ok=False)  # opens
    clock.t = 6.0
    assert board.allow(ORIGIN)  # half-open probe
    board.record(ORIGIN, ok=True)  # closes

    assert board.transitions == [
        (1.0, ORIGIN, "closed", "open"),
        (6.0, ORIGIN, "open", "half_open"),
        (6.0, ORIGIN, "half_open", "closed"),
    ]
    assert board.state(ORIGIN) == BreakerState.CLOSED


def test_board_metrics_and_short_circuits():
    clock = FakeClock()
    registry = MetricsRegistry()
    board = BreakerBoard(
        config=BreakerConfig(threshold=1, cooldown=60.0),
        clock=clock,
        metrics=registry,
    )
    board.record(ORIGIN, ok=False)
    assert not board.allow(ORIGIN)
    assert not board.allow(ORIGIN)
    assert registry.counter("breaker.transitions_total", to="open").value == 1
    assert registry.gauge("breaker.open_circuits").value == 1
    assert registry.counter("breaker.short_circuits_total").value == 2


def test_board_is_blocked_never_claims_probe_slots():
    clock = FakeClock()
    board = BreakerBoard(
        config=BreakerConfig(threshold=1, cooldown=1.0, half_open_max=1),
        clock=clock,
    )
    board.record(ORIGIN, ok=False)
    clock.t = 1.0
    # Any number of non-mutating checks...
    for _ in range(5):
        assert not board.is_blocked(ORIGIN)
    # ...leaves the single probe slot available.
    assert board.allow(ORIGIN)
    assert board.is_blocked(ORIGIN)  # slot now claimed
    board.record(ORIGIN, ok=True)
    assert not board.is_blocked(ORIGIN)


def test_board_on_open_callback_and_reset():
    opened = []
    board = BreakerBoard(
        config=BreakerConfig(threshold=1), on_open=opened.append
    )
    board.record(ORIGIN, ok=False)
    assert opened == [ORIGIN]
    board.reset()
    assert board.transitions == []
    assert board.state(ORIGIN) == BreakerState.CLOSED
    assert board.allow(ORIGIN)


def test_unknown_origin_is_closed_and_unblocked():
    board = BreakerBoard()
    assert board.state(ORIGIN) == BreakerState.CLOSED
    assert not board.is_blocked(ORIGIN)
    assert board.states() == {}


def test_context_wires_breaker_open_to_pool_purge():
    from repro.core import Context

    context = Context(breaker=BreakerConfig(threshold=1))
    assert context.breakers.on_open == context.pool.purge_origin
