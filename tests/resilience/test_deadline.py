"""Unit tests for the Deadline budget object."""

import pytest

from repro.errors import DeadlineExceeded, TransferTimeout
from repro.resilience import Deadline


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_remaining_counts_down():
    clock = FakeClock()
    deadline = Deadline.after(clock, 10.0)
    assert deadline.remaining() == 10.0
    clock.t = 4.0
    assert deadline.remaining() == 6.0
    assert not deadline.expired
    clock.t = 10.0
    assert deadline.expired
    assert deadline.remaining() == 0.0
    clock.t = 12.0
    assert deadline.remaining() == 0.0  # never negative


def test_check_raises_once_spent():
    clock = FakeClock()
    deadline = Deadline.after(clock, 1.0)
    deadline.check()  # fine
    clock.t = 1.0
    with pytest.raises(DeadlineExceeded) as info:
        deadline.check()
    assert info.value.budget == 1.0


def test_clamp_bounds_timeouts_by_remaining_budget():
    clock = FakeClock()
    deadline = Deadline.after(clock, 5.0)
    assert deadline.clamp(30.0) == 5.0
    assert deadline.clamp(2.0) == 2.0
    assert deadline.clamp(None) == 5.0
    clock.t = 4.5
    assert deadline.clamp(30.0) == pytest.approx(0.5)


def test_clamp_raises_instead_of_zero_timeout():
    clock = FakeClock()
    deadline = Deadline.after(clock, 1.0)
    clock.t = 1.0
    with pytest.raises(DeadlineExceeded):
        deadline.clamp(30.0)


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        Deadline.after(FakeClock(), -1.0)


def test_deadline_exceeded_is_a_timeout():
    # Callers catching TransferTimeout keep working.
    assert issubclass(DeadlineExceeded, TransferTimeout)
