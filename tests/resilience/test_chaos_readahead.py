"""Chaos schedules for the pipelined read-ahead transfer engine.

Speculation must never trade correctness for overlap: under seeded
fault schedules (5xx errors, mid-body resets, slowdowns) the engine
path returns byte-identical results to the non-speculative demand
path, a failed speculative fetch shrinks the window and falls back
silently, and — the containment property — every speculative range
ever launched stays inside the prefetch plan: the engine never fetches
bytes nobody asked for.
"""

import random

from repro.core import RequestParams, RetryPolicy, TransferConfig
from repro.server import FaultPolicy

from tests.helpers import davix_world
from tests.resilience.conftest import ScriptedFaults, errors

POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.05, max_delay=2.0, seed=1
)
BLOB = bytes((i * 89 + 17) % 256 for i in range(300_000))


def chaos_plan(seed, count=24):
    """Seeded consumption-ordered plan of scattered segments."""
    rng = random.Random(seed)
    segments = []
    cursor = 0
    for _ in range(count):
        cursor += rng.randrange(256, 8192)
        length = rng.randrange(64, 2048)
        if cursor + length >= len(BLOB):
            break
        segments.append((cursor, length))
        cursor += length
    return segments


def engine_params(transfer, retry_policy=POLICY, retries=None):
    knob = {"retry_policy": retry_policy}
    if retries is not None:
        knob = {"retries": retries}
    return RequestParams(
        max_vector_ranges=6, vector_gap=0, transfer=transfer, **knob
    )


def run_reads(faults, transfer, plan, retries=None):
    client, app, store, _ = davix_world(
        faults=faults,
        params=engine_params(transfer, retries=retries),
    )
    store.put("/data/blob", BLOB)
    results = client.pread_vec("http://server/data/blob", plan)
    return results, client, app


def test_readahead_chaos_bytes_identical_to_demand(chaos_seed):
    """Same fault schedule, speculative vs demanded dispatch: the
    bytes must match each other and the ground truth."""
    plan = chaos_plan(chaos_seed)
    expected = [BLOB[o : o + n] for o, n in plan]
    faults = FaultPolicy(
        error_rate=0.15,
        reset_rate=0.05,
        slow_rate=0.1,
        slow_delay=0.2,
        seed=chaos_seed,
    )
    demanded, _, _ = run_reads(
        faults, TransferConfig(max_inflight=1), plan
    )
    faults.reset()
    speculative, client, _ = run_reads(
        faults,
        TransferConfig(max_inflight=1, read_ahead=True),
        plan,
    )
    assert demanded == expected
    assert speculative == expected
    # The engine actually ran (this is not a vacuous comparison).
    assert client.metrics().value("engine.speculative_batches_total") >= 1


def test_readahead_chaos_is_deterministic(chaos_seed):
    """Same seed + FaultPolicy.reset() => identical bytes and engine
    accounting."""
    plan = chaos_plan(chaos_seed)
    faults = FaultPolicy(error_rate=0.2, reset_rate=0.05, seed=chaos_seed)
    transfer = TransferConfig(read_ahead=True, window_batches=2)
    first, first_client, _ = run_reads(faults, transfer, plan)
    faults.reset()
    second, second_client, _ = run_reads(faults, transfer, plan)
    assert first == second
    for series in (
        "engine.speculative_batches_total",
        "engine.hits_total",
        "engine.misses_total",
        "engine.speculative_errors_total",
    ):
        assert first_client.metrics().value(
            series
        ) == second_client.metrics().value(series)


def test_speculative_error_shrinks_window_and_falls_back(chaos_seed):
    """A failed speculative fetch is invisible to the caller — the
    demand path refetches — but the window shrinks."""
    plan = chaos_plan(chaos_seed)
    expected = [BLOB[o : o + n] for o, n in plan]
    # No retry budget: the first scripted 503 kills exactly one
    # speculative request; everything afterwards serves normally.
    faults = ScriptedFaults(errors(1))
    results, client, _ = run_reads(
        faults,
        TransferConfig(read_ahead=True, window_batches=4),
        plan,
        retries=0,
    )
    assert results == expected
    assert faults.injected["error"] == 1
    registry = client.metrics()
    assert registry.value("engine.speculative_errors_total") == 1
    assert registry.value("engine.window_shrink_total") >= 1
    assert registry.value("engine.misses_total") >= 1
    # The failed batch's segments were still served — demand fallback.
    assert registry.value("engine.hits_total") < len(plan)


def _covered_by_plan(rng_offset, rng_length, intervals):
    """Is [offset, offset+length) inside the union of plan intervals?"""
    end = rng_offset + rng_length
    cursor = rng_offset
    for start, stop in intervals:
        if stop <= cursor:
            continue
        if start > cursor:
            return False  # gap before the next planned interval
        cursor = min(stop, end)
        if cursor >= end:
            return True
    return cursor >= end


def test_speculation_never_leaves_the_plan(chaos_seed):
    """Containment property: every speculatively launched range lies
    inside the union of prefetched segments — chaos or not, the
    engine never requests bytes outside the plan."""
    plan = chaos_plan(chaos_seed)
    faults = FaultPolicy(error_rate=0.1, seed=chaos_seed)
    client, app, store, _ = davix_world(
        faults=faults,
        params=engine_params(
            TransferConfig(read_ahead=True, window_batches=3)
        ),
    )
    store.put("/data/blob", BLOB)
    from repro.core.file import DavFile

    file = DavFile(
        client.context,
        "http://server/data/blob",
        client.context.params,
        read_ahead=True,
    )

    def op():
        file.prefetch(plan)
        out = yield from file.pread_vec(plan)
        yield from file.drain()
        return out

    results = client.runtime.run(op())
    assert results == [BLOB[o : o + n] for o, n in plan]
    intervals = sorted((o, o + n) for o, n in plan)
    launched = file.engine.launched_ranges
    assert launched  # speculation actually happened
    for offset, length in launched:
        assert _covered_by_plan(offset, length, intervals), (
            offset,
            length,
        )
