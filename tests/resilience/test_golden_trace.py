"""Golden observability output for a retry-twice-then-succeed request.

Extends the ``tests/obs/test_export_golden.py`` contract to the
resilience layer: the span tree shape and the resilience metric series
emitted by one deterministic recovery are pinned exactly.
"""

import json

import pytest

from repro.core import RequestParams, RetryPolicy
from repro.obs import metrics_to_json_lines

from tests.helpers import davix_world
from tests.resilience.conftest import ScriptedFaults, errors

POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.1, max_delay=1.0,
    multiplier=2.0, jitter="none",
)


def _retry_twice_world():
    client, app, store, _ = davix_world(
        faults=ScriptedFaults(errors(2)),
        params=RequestParams(retry_policy=POLICY),
    )
    store.put("/x", b"recovered")
    return client


def test_golden_span_tree():
    client = _retry_twice_world()
    assert client.get("http://server/x") == b"recovered"

    tracer = client.tracer()
    (request,) = tracer.by_name("request")
    children = [
        span
        for span in tracer.finished()
        if span.parent_id == request.span_id
    ]
    children.sort(key=lambda span: (span.start, span.span_id))
    # Three attempts (two 503s, then success), a backoff wait between
    # each: acquire/exchange, wait, acquire/exchange, wait, ...
    assert [span.name for span in children] == [
        "session-acquire",
        "exchange",
        "retry-wait",
        "session-acquire",
        "exchange",
        "retry-wait",
        "session-acquire",
        "exchange",
    ]
    waits = [span for span in children if span.name == "retry-wait"]
    assert [w.attrs["attempt"] for w in waits] == [1, 2]
    assert [w.attrs["delay"] for w in waits] == [0.1, 0.2]
    assert [w.attrs["cause"] for w in waits] == ["RequestError"] * 2
    assert request.attrs["status"] == 200
    # The waits actually slept their backoff on the sim clock (approx:
    # the absolute start time depends on request wire size, so the
    # end-start subtraction carries float representation error).
    assert waits[0].duration == pytest.approx(0.1)
    assert waits[1].duration == pytest.approx(0.2)


GOLDEN_RESILIENCE_SERIES = [
    ("breaker.transitions_total", None),  # never fires here
    ("retry.attempts_total", 2),
    ("retry.backoff_seconds_total", 0.1 + 0.2),
    ("retry.exhausted_total", None),
    ("retry.unsafe_skipped_total", None),
    ("deadline.exceeded_total", None),
]


def test_golden_resilience_metrics():
    client = _retry_twice_world()
    client.get("http://server/x")
    registry = client.metrics()
    exported = {
        (record["name"], tuple(sorted(record["labels"].items()))): record
        for record in (
            json.loads(line)
            for line in metrics_to_json_lines(registry).splitlines()
        )
    }
    for name, want in GOLDEN_RESILIENCE_SERIES:
        record = exported.get((name, ()))
        if want is None:
            assert record is None, f"unexpected series {name}"
        else:
            assert record is not None, f"missing series {name}"
            assert record["value"] == want, name
    assert client.context.counters["retries"] == 2


def test_deterministic_across_fresh_worlds():
    """Two independent worlds produce byte-identical exports."""

    def run():
        client = _retry_twice_world()
        client.get("http://server/x")
        return metrics_to_json_lines(client.metrics())

    assert run() == run()
