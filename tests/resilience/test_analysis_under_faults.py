"""The PR's acceptance criterion, as a test.

A client with ``RetryPolicy(max_attempts=4)`` runs the paper's
Section 3 analysis workload against a storage server injecting
``error_rate=0.3`` / ``reset_rate=0.1`` faults from a fixed seed. The
job must complete with **zero user-visible errors**, and repeating the
run must be byte-identical: same report, same retry counts, same
breaker transitions, same exported metrics.
"""

from dataclasses import asdict

from repro.core import BreakerConfig, Context, RequestParams, RetryPolicy
from repro.net.profiles import LAN
from repro.obs import metrics_to_json_lines
from repro.rootio.generator import BranchSpec, DatasetSpec
from repro.server import FaultPolicy
from repro.workloads import AnalysisConfig, Scenario, run_scenario

#: Chosen once: with this schedule the workload sees several faults of
#: both kinds yet recovers inside the 4-attempt budget.
FAULT_SEED = 7

SPEC = DatasetSpec(
    name="hep_events",
    n_entries=600,
    branches=(
        BranchSpec("a", event_size=512, compress_ratio=0.5),
        BranchSpec("b", event_size=256, compress_ratio=0.5),
    ),
    basket_entries=100,
    seed=3,
)
CFG = AnalysisConfig(per_event_cpu=0.0002, learn_entries=0)
PARAMS = RequestParams(
    retry_policy=RetryPolicy(
        max_attempts=4, base_delay=0.05, max_delay=1.0, seed=2
    )
)
BREAKER = BreakerConfig(threshold=10, cooldown=0.5)


def run_once(faults):
    context = Context(params=PARAMS, breaker=BREAKER)
    report = run_scenario(
        Scenario(
            profile=LAN,
            protocol="davix",
            spec=SPEC,
            config=CFG,
            faults=faults,
            params=PARAMS,
        ),
        context=context,
    )
    return report, context


def test_analysis_completes_under_faults_and_repeats_exactly():
    faults = FaultPolicy(error_rate=0.3, reset_rate=0.1, seed=FAULT_SEED)
    report_a, ctx_a = run_once(faults)
    faults.reset()
    report_b, ctx_b = run_once(faults)

    # Zero user-visible errors: run_once returned, all events read.
    assert report_a.events_read == SPEC.n_entries

    # The run was genuinely chaotic, and retries absorbed every fault.
    injected = faults.snapshot()
    assert injected["error"] > 0
    assert injected["reset"] > 0
    assert ctx_a.counters["retries"] > 0

    # Byte-identical repeats.
    assert asdict(report_a) == asdict(report_b)
    assert ctx_a.counters["retries"] == ctx_b.counters["retries"]
    assert ctx_a.breakers.transitions == ctx_b.breakers.transitions
    assert metrics_to_json_lines(ctx_a.metrics) == metrics_to_json_lines(
        ctx_b.metrics
    )


def test_fresh_fault_policy_matches_reset_one():
    """reset() is equivalent to constructing a new policy."""
    recycled = FaultPolicy(
        error_rate=0.3, reset_rate=0.1, seed=FAULT_SEED
    )
    run_once(recycled)  # first life: advances RNG and counters
    recycled.reset()
    report_a, _ = run_once(recycled)  # second life, post-reset
    fresh = FaultPolicy(error_rate=0.3, reset_rate=0.1, seed=FAULT_SEED)
    report_b, _ = run_once(fresh)
    assert asdict(report_a) == asdict(report_b)
    assert recycled.snapshot() == fresh.snapshot()
