"""davix-tool resilience flags -> client configuration."""

from repro.cli import _client, build_parser
from repro.resilience import RetryPolicy


def parse(argv):
    return build_parser().parse_args(argv)


def test_full_resilience_flag_set():
    args = parse(
        [
            "--max-attempts", "5",
            "--retry-base", "0.2",
            "--retry-max-delay", "3.0",
            "--retry-jitter", "none",
            "--retry-seed", "9",
            "--deadline", "12",
            "--breaker-threshold", "2",
            "--breaker-cooldown", "7.5",
            "stat", "http://x/y",
        ]
    )
    client = _client(args)
    params = client.context.params
    assert params.retry_policy == RetryPolicy(
        max_attempts=5,
        base_delay=0.2,
        max_delay=3.0,
        jitter="none",
        seed=9,
    )
    assert params.deadline == 12.0
    assert params.breaker_enabled
    board = client.breakers()
    assert board.config.threshold == 2
    assert board.config.cooldown == 7.5


def test_no_breaker_flag_disables_breaking():
    client = _client(parse(["--no-breaker", "stat", "http://x/y"]))
    assert client.context.params.breaker_enabled is False


def test_defaults_keep_legacy_retry_semantics():
    client = _client(parse(["stat", "http://x/y"]))
    params = client.context.params
    assert params.retry_policy is None
    assert params.deadline is None
    # --retries still maps onto the fixed-delay legacy policy.
    effective = params.effective_retry_policy()
    assert effective.max_attempts == 2
    assert effective.jitter == "none"


def test_retries_flag_still_feeds_effective_policy():
    client = _client(parse(["--retries", "4", "stat", "http://x/y"]))
    effective = client.context.params.effective_retry_policy()
    assert effective.max_attempts == 5
