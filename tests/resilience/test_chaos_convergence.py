"""Property-based chaos schedules against fault-wearing servers.

For each seed of the chaos sweep a random-but-seeded operation schedule
(GETs, positional reads, vectored reads, PUTs, stats) runs against a
server injecting 5xx errors, mid-body resets and slowdowns. The suite
asserts *convergence* — every operation completes with the right bytes
despite the faults — and *determinism* — repeating the run (same seeds,
fresh world, ``FaultPolicy.reset()``) reproduces the retry counts, the
breaker transition log and the exported metrics byte-for-byte.
"""

import random

from repro.core import BreakerConfig, RequestParams, RetryPolicy
from repro.obs import metrics_to_json_lines
from repro.server import FaultPolicy

from tests.helpers import davix_world

#: Generous budget: convergence, not tail-latency, is under test.
POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.05, max_delay=2.0, seed=1
)
#: High threshold so the single-origin world never short-circuits —
#: breaker behaviour has its own tests and the failover chaos below.
BREAKER = BreakerConfig(threshold=50, cooldown=0.5)
N_OPS = 25
BLOB = bytes((i * 37 + 11) % 256 for i in range(60_000))


def run_schedule(schedule_seed, faults):
    """One chaos run; returns its full observable outcome."""
    client, app, store, _ = davix_world(
        faults=faults,
        params=RequestParams(retry_policy=POLICY),
        breaker=BREAKER,
    )
    store.put("/data/blob", BLOB)
    rng = random.Random(schedule_seed)
    for step in range(N_OPS):
        op = rng.choice(("get", "pread", "vec", "stat", "put"))
        if op == "get":
            assert client.get("http://server/data/blob") == BLOB
        elif op == "pread":
            offset = rng.randrange(0, len(BLOB) - 1)
            length = rng.randrange(1, 4096)
            want = BLOB[offset : offset + length]
            assert client.pread(
                "http://server/data/blob", offset, length
            ) == want
        elif op == "vec":
            reads = [
                (
                    rng.randrange(0, len(BLOB) - 4096),
                    rng.randrange(1, 2048),
                )
                for _ in range(rng.randrange(2, 9))
            ]
            chunks = client.pread_vec("http://server/data/blob", reads)
            assert chunks == [BLOB[o : o + n] for o, n in reads]
        elif op == "stat":
            assert client.stat(
                "http://server/data/blob"
            ).size == len(BLOB)
        else:
            payload = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 2000))
            )
            path = f"/data/w{step}"
            client.put(f"http://server{path}", payload)
            assert store.read(path) == payload
    return {
        "metrics": metrics_to_json_lines(client.metrics()),
        "transitions": tuple(client.breakers().transitions),
        "retries": client.context.counters["retries"],
        "injected": faults.snapshot(),
    }


def test_chaos_schedule_converges_and_repeats(chaos_seed):
    faults = FaultPolicy(
        error_rate=0.15,
        reset_rate=0.05,
        slow_rate=0.1,
        slow_delay=0.2,
        seed=chaos_seed,
    )
    first = run_schedule(chaos_seed, faults)
    # Same policy instance, rewound: the second world must see the
    # exact same fault schedule (the FaultPolicy.reset() contract).
    faults.reset()
    second = run_schedule(chaos_seed, faults)

    assert first == second
    # The run was actually chaotic: faults fired and were absorbed.
    assert sum(first["injected"].values()) > 0
    assert first["retries"] > 0


def test_distinct_fault_seeds_diverge():
    """Different fault schedules leave different fingerprints —
    the determinism above is not vacuous."""
    outcomes = set()
    for seed in (101, 202):
        faults = FaultPolicy(error_rate=0.3, seed=seed)
        outcome = run_schedule(7, faults)
        outcomes.add((outcome["retries"], tuple(sorted(
            outcome["injected"].items()
        ))))
    assert len(outcomes) == 2
