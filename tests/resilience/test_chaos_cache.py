"""Chaos schedules for the two caching tiers.

The page cache (client side) and the range-aware proxy must keep two
properties under seeded origin faults (5xx errors, mid-body resets)
injected during revalidation and mid-gap-fetch:

* **version purity** — every successful read is a contiguous slice of
  exactly one object version, never a mix; and once a reader has seen
  the new version it never regresses to the old one (invalidated pages
  are dropped, not served);
* **determinism** — replaying the same schedule against a fresh world
  with the same seeds yields a byte-identical outcome sequence.
"""

import random

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams, RetryPolicy, TransferConfig
from repro.errors import RequestError
from repro.net import LinkSpec, Network
from repro.server import (
    FaultPolicy,
    HttpServer,
    ObjectStore,
    ProxyApp,
    StorageApp,
)
from repro.sim import Environment

from tests.helpers import davix_world
from tests.resilience.conftest import ScriptedFaults, errors

SIZE = 60_000
PAGE = 4096
POLICY = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=1.0, seed=1)


def body(version):
    """Version bodies differing at *every* byte, so any non-empty
    slice identifies its version unambiguously."""
    return bytes((i * 31 + version * 101 + 7) % 256 for i in range(SIZE))


def read_plan(seed, count=20):
    """Seeded overlapping read schedule — revisits warm spans (cache
    hits / partial hits) and touches cold ones (gap fetches)."""
    rng = random.Random(seed)
    plan = []
    for _ in range(count):
        offset = rng.randrange(0, SIZE - 1)
        length = rng.randrange(1, 12_000)
        plan.append((offset, min(length, SIZE - offset)))
    return plan


def check_version_purity(plan, outcomes):
    """Each success is a pure v1 or v2 slice; after the first v2 read
    nothing regresses to v1."""
    v1, v2 = body(1), body(2)
    seen_v2 = False
    for (offset, length), got in zip(plan, outcomes):
        if got == "error":
            continue
        want1 = v1[offset : offset + length]
        want2 = v2[offset : offset + length]
        assert got in (want1, want2), (offset, length)
        if got == want2:
            seen_v2 = True
        elif seen_v2:
            raise AssertionError(
                f"regressed to stale v1 bytes at {(offset, length)}"
            )


# --------------------------------------------------------------------
# client page cache
# --------------------------------------------------------------------


def run_client_chaos(chaos_seed, faults):
    """Fresh world, seeded schedule, an update mid-run; returns the
    outcome sequence ("error" where the read exhausted retries)."""
    client, app, store, _ = davix_world(
        faults=faults,
        params=RequestParams(
            retry_policy=POLICY,
            transfer=TransferConfig(
                page_cache_bytes=1 << 20, page_size=PAGE
            ),
        ),
    )
    plan = read_plan(chaos_seed)
    store.put("/x", body(1))
    outcomes = []
    for i, (offset, length) in enumerate(plan):
        if i == len(plan) // 2:
            store.put("/x", body(2))  # new etag mid-schedule
        try:
            outcomes.append(client.pread("http://server/x", offset, length))
        except RequestError:
            outcomes.append("error")
    return outcomes, client


def test_client_cache_chaos_serves_pure_versions(chaos_seed):
    faults = FaultPolicy(
        error_rate=0.15, reset_rate=0.08, seed=chaos_seed
    )
    outcomes, client = run_client_chaos(chaos_seed, faults)
    check_version_purity(read_plan(chaos_seed), outcomes)
    stats = client.context.page_cache.stats
    # The schedule actually exercised the cache and the update was
    # observed (stale pages dropped, not served).
    assert stats["hits"] + stats["partial_hits"] >= 1
    assert stats["invalidations"] >= 1


def test_client_cache_chaos_is_deterministic(chaos_seed):
    faults = FaultPolicy(
        error_rate=0.2, reset_rate=0.05, seed=chaos_seed
    )
    first, first_client = run_client_chaos(chaos_seed, faults)
    faults.reset()
    second, second_client = run_client_chaos(chaos_seed, faults)
    assert first == second
    assert (
        first_client.context.page_cache.stats
        == second_client.context.page_cache.stats
    )


def test_client_cache_fault_during_invalidating_fetch():
    """The wire trip that would reveal the new ETag fails first; after
    retries succeed, the stale pages are dropped — never blended into
    a response."""
    faults = ScriptedFaults(errors(1))
    client, app, store, _ = davix_world(
        faults=faults,
        params=RequestParams(
            retry_policy=POLICY,
            transfer=TransferConfig(
                page_cache_bytes=1 << 20, page_size=PAGE
            ),
        ),
    )
    store.put("/x", body(1))
    # Warm the first pages, then update behind the cache's back.
    assert client.pread("http://server/x", 0, 3 * PAGE) == body(1)[: 3 * PAGE]
    store.put("/x", body(2))
    # Cold span: the gap fetch eats the scripted 503, retries, and the
    # successful attempt reveals the new ETag.
    offset = 10 * PAGE
    assert (
        client.pread("http://server/x", offset, PAGE)
        == body(2)[offset : offset + PAGE]
    )
    assert faults.injected["error"] == 1
    cache = client.context.page_cache
    assert cache.stats["invalidations"] == 1
    # The formerly-cached span now serves the new version.
    assert client.pread("http://server/x", 0, 3 * PAGE) == body(2)[: 3 * PAGE]


# --------------------------------------------------------------------
# caching proxy
# --------------------------------------------------------------------


def run_proxy_chaos(chaos_seed, faults):
    """client -- proxy -- faulty origin, ``default_ttl=0`` so every
    serve revalidates (maximum origin contact under chaos)."""
    env = Environment()
    net = Network(env, seed=chaos_seed)
    for host in ("client", "proxy", "origin"):
        net.add_host(host)
    net.set_route(
        "client", "proxy", LinkSpec(latency=0.0005, bandwidth=1e9)
    )
    net.set_route(
        "proxy", "origin", LinkSpec(latency=0.02, bandwidth=1e8)
    )
    store = ObjectStore()
    origin = StorageApp(store, faults=faults)
    HttpServer(SimRuntime(net, "origin"), origin, port=80).start()
    proxy = ProxyApp(
        cache_bytes=32 << 20, default_ttl=0.0, page_size=PAGE
    )
    HttpServer(SimRuntime(net, "proxy"), proxy, port=3128).start()
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(
            proxy="http://proxy:3128", retry_policy=POLICY
        ),
    )
    plan = read_plan(chaos_seed)
    store.put("/x", body(1))
    outcomes = []
    for i, (offset, length) in enumerate(plan):
        if i == len(plan) // 2:
            store.put("/x", body(2))
        try:
            outcomes.append(client.pread("http://origin/x", offset, length))
        except RequestError:
            outcomes.append("error")
    return outcomes, proxy


def test_proxy_chaos_serves_pure_versions(chaos_seed):
    """Faults during revalidation and mid-gap-fetch never make the
    proxy mix versions or resurrect invalidated pages."""
    faults = FaultPolicy(
        error_rate=0.15, reset_rate=0.08, seed=chaos_seed
    )
    outcomes, proxy = run_proxy_chaos(chaos_seed, faults)
    check_version_purity(read_plan(chaos_seed), outcomes)
    assert proxy.stats["requests"] >= len(read_plan(chaos_seed))
    # Revalidation (ttl=0) really happened under fire.
    assert (
        proxy.stats["hits"]
        + proxy.stats["revalidated"]
        + proxy.stats["partial_hits"]
        >= 1
    )


def test_proxy_chaos_is_deterministic(chaos_seed):
    faults = FaultPolicy(
        error_rate=0.2, reset_rate=0.05, seed=chaos_seed
    )
    first, first_proxy = run_proxy_chaos(chaos_seed, faults)
    faults.reset()
    second, second_proxy = run_proxy_chaos(chaos_seed, faults)
    assert first == second
    assert first_proxy.stats == second_proxy.stats
