"""Chaos schedules for the v2 columnar format.

The format-equivalence acceptance criterion under fire: the same
generated dataset materialised as a v1 basket tree and a v2
page/cluster ntuple must decode to byte-identical columns on both
server dialects (WebDAV StorageApp and the flat-object store), while
the storage node injects seeded 5xx errors and mid-body resets.
Retries absorb every fault; repeats are byte-identical; and a
corrupted page always surfaces as a typed
:class:`~repro.errors.PageChecksumError` — never as silently wrong
bytes.
"""

import pytest

from repro.concurrency import SimRuntime
from repro.core import Context, RequestParams, RetryPolicy
from repro.errors import PageChecksumError
from repro.net import LinkSpec, Network
from repro.rootio import (
    LocalFetcher,
    NTupleReader,
    TreeFileReader,
    generate_ntuple_bytes,
    generate_tree_bytes,
)
from repro.rootio.fetchers import DavixFetcher
from repro.rootio.generator import BranchSpec, DatasetSpec
from repro.server import (
    FaultPolicy,
    FlatObjectApp,
    HttpServer,
    ObjectStore,
    StorageApp,
)
from repro.sim import Environment

SPEC = DatasetSpec(
    name="hep_events",
    n_entries=600,
    branches=(
        BranchSpec("a", event_size=96, compress_ratio=0.5),
        BranchSpec("b", event_size=48, compress_ratio=0.5),
        BranchSpec("c", event_size=24, compress_ratio=0.9),
    ),
    basket_entries=100,
    seed=3,
)
V1_PATH = "/data/events.root"
V2_PATH = "/data/events.ntpl"

PARAMS = RequestParams(
    retry_policy=RetryPolicy(
        max_attempts=6, base_delay=0.05, max_delay=1.0, seed=2
    )
)


def blobs():
    """(v1 bytes, v2 bytes) of the same dataset."""
    return (
        generate_tree_bytes(SPEC),
        generate_ntuple_bytes(
            SPEC, cluster_entries=200, page_bytes=2048
        ),
    )


def ground_truth():
    """The dataset's columns, decoded locally from the v1 blob."""
    v1_blob, _ = blobs()
    reader = TreeFileReader(LocalFetcher(v1_blob))

    def op():
        yield from reader.open()
        data = yield from reader.read_entries(0, SPEC.n_entries)
        return data

    from repro.concurrency import ThreadRuntime

    return ThreadRuntime().run(op())


def chaos_world(backend, faults, v1_blob, v2_blob):
    """(runtime, context) with both blobs served by a faulty app."""
    env = Environment()
    net = Network(env)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client", "server", LinkSpec(latency=0.002, bandwidth=1e8)
    )
    server_rt = SimRuntime(net, "server")
    store = ObjectStore(clock=server_rt.now)
    store.put(V1_PATH, v1_blob)
    store.put(V2_PATH, v2_blob)
    app = (
        FlatObjectApp(store, faults=faults)
        if backend == "object"
        else StorageApp(store, faults=faults)
    )
    HttpServer(server_rt, app, port=80).start()
    runtime = SimRuntime(net, "client")
    context = Context(params=PARAMS)
    context.clock = runtime.now
    return runtime, context


def read_both(runtime, context, lanes=3):
    """(v1 columns, v2 columns, v2 fetcher) read over the wire."""
    v1_reader = TreeFileReader(
        DavixFetcher(context, f"http://server{V1_PATH}", PARAMS)
    )
    v2_fetcher = DavixFetcher(context, f"http://server{V2_PATH}", PARAMS)
    v2_reader = NTupleReader(v2_fetcher)

    def op():
        yield from v1_reader.open()
        v1 = yield from v1_reader.read_entries(0, SPEC.n_entries)
        yield from v2_reader.open()
        v2 = yield from v2_reader.read_entries(
            0, SPEC.n_entries, lanes=lanes
        )
        return v1, v2

    v1, v2 = runtime.run(op())
    return v1, v2, v2_fetcher


@pytest.mark.parametrize("backend", ["webdav", "object"])
def test_v2_matches_v1_under_chaos(chaos_seed, backend):
    """Both formats, read through the same faulty server, decode to
    the same columns — and to the local ground truth."""
    v1_blob, v2_blob = blobs()
    truth = ground_truth()
    faults = FaultPolicy(
        error_rate=0.15, reset_rate=0.05, seed=chaos_seed
    )
    runtime, context = chaos_world(backend, faults, v1_blob, v2_blob)
    v1, v2, _ = read_both(runtime, context)
    assert v1 == truth
    assert v2 == truth
    # The schedule actually injected faults (not a vacuous pass).
    injected = faults.snapshot()
    assert injected["error"] + injected["reset"] > 0


@pytest.mark.parametrize("backend", ["webdav", "object"])
def test_chaos_repeats_are_byte_identical(chaos_seed, backend):
    """Same seed + FaultPolicy.reset() => identical columns and
    identical fetch accounting."""
    v1_blob, v2_blob = blobs()
    faults = FaultPolicy(
        error_rate=0.2, reset_rate=0.05, seed=chaos_seed
    )
    runtime, context = chaos_world(backend, faults, v1_blob, v2_blob)
    first_v1, first_v2, first_fetcher = read_both(runtime, context)
    faults.reset()
    runtime, context = chaos_world(backend, faults, v1_blob, v2_blob)
    second_v1, second_v2, second_fetcher = read_both(runtime, context)
    assert first_v1 == second_v1
    assert first_v2 == second_v2
    assert first_fetcher.bytes_fetched == second_fetcher.bytes_fetched
    assert first_fetcher.reads == second_fetcher.reads


@pytest.mark.parametrize("backend", ["webdav", "object"])
def test_corrupt_page_is_typed_under_chaos(chaos_seed, backend):
    """A flipped bit in a stored page surfaces as PageChecksumError
    through retries and faults — never as silently wrong bytes."""
    v1_blob, v2_blob = blobs()
    # Find a v2 page and corrupt one byte in the middle of it.
    probe = NTupleReader(LocalFetcher(v2_blob))
    from repro.concurrency import ThreadRuntime

    meta = ThreadRuntime().run(probe.open())
    page = meta.column("b").pages[1]
    corrupt = bytearray(v2_blob)
    corrupt[page.offset + page.nbytes // 2] ^= 0x20
    faults = FaultPolicy(error_rate=0.1, seed=chaos_seed)
    runtime, context = chaos_world(
        backend, faults, v1_blob, bytes(corrupt)
    )
    fetcher = DavixFetcher(context, f"http://server{V2_PATH}", PARAMS)
    reader = NTupleReader(fetcher)

    def op():
        yield from reader.open()
        data = yield from reader.read_entries(0, SPEC.n_entries, lanes=2)
        return data

    with pytest.raises(PageChecksumError):
        runtime.run(op())
