"""Chaos schedules for *concurrent* vectored reads.

Parallel batch dispatch must not trade determinism for speed: against a
seeded fault schedule (5xx errors, mid-body resets, slowdowns) the
scattered bytes stay identical to sequential dispatch, and repeating a
run (same seed, fresh world, ``FaultPolicy.reset()``) reproduces the
exported metrics and the injection counters byte-for-byte on the sim
runtime.
"""

import random

from repro.core import (
    BreakerConfig,
    RequestParams,
    RetryPolicy,
    TransferConfig,
)
from repro.obs import metrics_to_json_lines
from repro.server import FaultPolicy

from tests.helpers import davix_world

POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.05, max_delay=2.0, seed=1
)
BREAKER = BreakerConfig(threshold=50, cooldown=0.5)
N_VECTORED_READS = 8
BLOB = bytes((i * 53 + 29) % 256 for i in range(120_000))


def schedule(schedule_seed):
    """The seeded read schedule: fragmented, batch-spanning reads."""
    rng = random.Random(schedule_seed)
    batches = []
    for _ in range(N_VECTORED_READS):
        batches.append(
            [
                (
                    rng.randrange(0, len(BLOB) - 4096),
                    rng.randrange(1, 2048),
                )
                for _ in range(rng.randrange(6, 20))
            ]
        )
    return batches


def run_schedule(schedule_seed, faults, max_inflight):
    """One chaos run; returns (scattered results, observables)."""
    client, app, store, _ = davix_world(
        faults=faults,
        params=RequestParams(
            retry_policy=POLICY,
            max_vector_ranges=4,
            vector_gap=0,
            transfer=TransferConfig(max_inflight=max_inflight),
        ),
        breaker=BREAKER,
    )
    store.put("/data/blob", BLOB)
    results = [
        client.pread_vec("http://server/data/blob", reads)
        for reads in schedule(schedule_seed)
    ]
    observables = {
        "metrics": metrics_to_json_lines(client.metrics()),
        "retries": client.context.counters["retries"],
        "injected": faults.snapshot(),
        "inflight_gauge": client.metrics().value("vector.inflight"),
    }
    return results, observables


def make_faults(chaos_seed):
    return FaultPolicy(
        error_rate=0.15,
        reset_rate=0.05,
        slow_rate=0.1,
        slow_delay=0.2,
        seed=chaos_seed,
    )


def test_parallel_vec_chaos_bytes_match_sequential(chaos_seed):
    """Under an identical fault schedule, parallel dispatch returns the
    same bytes a sequential run does — and both are correct."""
    expected = [
        [BLOB[o : o + n] for o, n in reads]
        for reads in schedule(chaos_seed)
    ]
    faults = make_faults(chaos_seed)
    sequential, _ = run_schedule(chaos_seed, faults, max_inflight=1)
    faults.reset()
    parallel, parallel_obs = run_schedule(
        chaos_seed, faults, max_inflight=4
    )
    assert sequential == expected
    assert parallel == expected
    # Every batch lane drained: the gauge is back to zero.
    assert parallel_obs["inflight_gauge"] == 0


def test_parallel_vec_chaos_run_is_deterministic(chaos_seed):
    """Same seed + FaultPolicy.reset() => byte-identical metrics."""
    faults = make_faults(chaos_seed)
    first_results, first = run_schedule(
        chaos_seed, faults, max_inflight=4
    )
    faults.reset()
    second_results, second = run_schedule(
        chaos_seed, faults, max_inflight=4
    )
    assert first_results == second_results
    assert first == second
    # The sweep was actually chaotic on every seed.
    assert sum(first["injected"].values()) > 0


def test_parallel_vec_distinct_seeds_diverge():
    """The determinism above is not vacuous: different fault seeds
    leave different fingerprints."""
    fingerprints = set()
    for seed in (101, 202):
        faults = FaultPolicy(error_rate=0.3, seed=seed)
        _, obs = run_schedule(7, faults, max_inflight=4)
        fingerprints.add(
            (
                obs["retries"],
                tuple(sorted(obs["injected"].items())),
            )
        )
    assert len(fingerprints) == 2
