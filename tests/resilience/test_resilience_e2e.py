"""End-to-end resilience behaviour through the full client stack."""

import pytest

from repro.core import BreakerConfig, RequestParams, RetryPolicy
from repro.errors import (
    CircuitOpenError,
    ConnectError,
    DeadlineExceeded,
    RequestError,
)
from repro.server import FaultPolicy

from tests.helpers import davix_world
from tests.resilience.conftest import ScriptedFaults, errors, resets

FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.05, max_delay=0.5,
    multiplier=2.0, jitter="none",
)


def test_deadline_cuts_slow_server_short():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(slow_rate=1.0, slow_delay=30.0, seed=0),
        params=RequestParams(deadline=2.0, operation_timeout=60.0),
    )
    store.put("/x", b"abc")
    start = client.runtime.now()
    with pytest.raises(DeadlineExceeded):
        client.get("http://server/x")
    # The budget, not the 60 s operation timeout, bounded the wait.
    assert client.runtime.now() - start == pytest.approx(2.0, abs=0.1)
    assert client.metrics().counter("deadline.exceeded_total").value >= 1


def test_deadline_is_never_retried():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(slow_rate=1.0, slow_delay=30.0, seed=0),
        params=RequestParams(
            deadline=1.0, retry_policy=FAST_RETRY
        ),
    )
    store.put("/x", b"abc")
    with pytest.raises(DeadlineExceeded):
        client.get("http://server/x")
    assert client.context.counters.get("retries", 0) == 0


def test_deadline_leaves_room_for_fast_operations():
    client, app, store, _ = davix_world(
        params=RequestParams(deadline=10.0)
    )
    store.put("/x", b"payload")
    assert client.get("http://server/x") == b"payload"


def test_breaker_opens_after_error_storm_and_fails_fast():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(error_rate=1.0, seed=0),
        params=RequestParams(retry_policy=FAST_RETRY),
        breaker=BreakerConfig(threshold=4, cooldown=60.0),
    )
    store.put("/x", b"abc")
    # First operation burns its 4 attempts on 503s -> breaker opens.
    with pytest.raises(RequestError):
        client.get("http://server/x")
    assert client.breakers().state(("http", "server", 80)) == "open"
    # The next operation short-circuits without touching the wire.
    handled_before = app.requests_handled
    with pytest.raises(CircuitOpenError):
        client.get("http://server/x")
    assert app.requests_handled == handled_before
    assert (
        client.metrics().counter("breaker.short_circuits_total").value
        >= 1
    )


def test_breaker_recovers_through_half_open_probe():
    client, app, store, _ = davix_world(
        faults=ScriptedFaults(errors(4)),
        params=RequestParams(retry_policy=FAST_RETRY),
        breaker=BreakerConfig(threshold=4, cooldown=0.5),
    )
    store.put("/x", b"back-online")
    with pytest.raises(RequestError):
        client.get("http://server/x")
    origin = ("http", "server", 80)
    assert client.breakers().state(origin) == "open"
    # Sim time advances past the cooldown during the next op's backoff
    # -- but an immediate call is still short-circuited.
    with pytest.raises(CircuitOpenError):
        client.get("http://server/x")
    client.runtime.run(sleep_op(0.6))
    assert client.get("http://server/x") == b"back-online"
    assert client.breakers().state(origin) == "closed"
    transitions = [
        (prev, to)
        for (_, o, prev, to) in client.breakers().transitions
        if o == origin
    ]
    assert transitions == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]


def sleep_op(seconds):
    from repro.concurrency import Sleep

    def op():
        yield Sleep(seconds)

    return op()


def test_breaker_can_be_disabled_per_request():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(error_rate=1.0, seed=0),
        params=RequestParams(
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_enabled=False,
        ),
        breaker=BreakerConfig(threshold=1, cooldown=60.0),
    )
    store.put("/x", b"abc")
    for _ in range(3):
        with pytest.raises(RequestError):
            client.get("http://server/x")
    # Every attempt reached the server; nothing short-circuited.
    assert app.requests_handled == 3
    assert client.breakers().states() == {}


def test_mid_body_reset_retried_for_get_but_not_move():
    # GET: idempotent, the reset is absorbed.
    client, app, store, _ = davix_world(
        faults=ScriptedFaults(resets(1)),
        params=RequestParams(retry_policy=FAST_RETRY),
    )
    store.put("/x", b"G" * 50_000)
    assert client.get("http://server/x") == b"G" * 50_000
    assert client.context.counters["retries"] == 1

    # MOVE: not idempotent -> the transport error surfaces, unretried.
    client2, app2, store2, _ = davix_world(
        faults=ScriptedFaults(resets(1)),
        params=RequestParams(retry_policy=FAST_RETRY),
    )
    store2.put("/a", b"payload")
    with pytest.raises(RequestError):
        client2.rename("http://server/a", "http://server/b")
    assert client2.context.counters.get("retries", 0) == 0
    assert (
        client2.metrics().counter("retry.unsafe_skipped_total").value
        == 1
    )


def test_retry_non_idempotent_opt_in():
    # COPY is not on the idempotent list, but re-copying is harmless
    # here — exactly the judgement call the opt-in knob delegates.
    client, app, store, _ = davix_world(
        faults=ScriptedFaults(resets(1)),
        params=RequestParams(
            retry_policy=FAST_RETRY, retry_non_idempotent=True
        ),
    )
    store.put("/a", b"payload")
    client.copy("http://server/a", "http://server/b")
    assert store.read("/b") == b"payload"
    assert client.context.counters["retries"] == 1


def test_vectored_read_survives_mid_multipart_reset():
    """A reset halfway through a multipart body only refetches the
    ranges the truncated response left uncovered."""
    client, app, store, _ = davix_world(
        faults=ScriptedFaults(resets(1)),
        params=RequestParams(retry_policy=FAST_RETRY),
    )
    content = bytes(i % 251 for i in range(100_000))
    store.put("/x", content)
    reads = [(0, 300), (40_000, 300), (99_000, 300)]
    chunks = client.pread_vec("http://server/x", reads)
    assert chunks == [content[o : o + n] for o, n in reads]
    assert client.context.counters["retries"] >= 1


def test_connect_failures_retry_and_finally_raise():
    client, app, store, server_rt = davix_world(
        params=RequestParams(
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=0.05, jitter="none"
            ),
            connect_timeout=0.5,
        )
    )
    server_rt.network.host("server").fail()
    with pytest.raises((RequestError, ConnectError)):
        client.get("http://server/x")
    assert client.context.counters["retries"] == 2
    assert client.metrics().counter("retry.exhausted_total").value == 1
