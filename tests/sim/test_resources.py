"""Unit tests for Resource, Store and Container."""

import pytest

from repro.sim import Container, Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def worker(tag, hold):
        with res.request() as req:
            yield req
            log.append(("start", tag, env.now))
            yield env.timeout(hold)
            log.append(("end", tag, env.now))

    env.process(worker("a", 5))
    env.process(worker("b", 5))
    env.process(worker("c", 5))
    env.run()
    starts = {tag: t for kind, tag, t in log if kind == "start"}
    assert starts == {"a": 0, "b": 0, "c": 5}


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in "abcd":
        env.process(worker(tag))
    env.run()
    assert order == list("abcd")


def test_resource_counters():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def checker():
        yield env.timeout(1)
        assert res.count == 1
        assert res.queue_length == 1

    env.process(holder())
    env.process(holder())
    env.process(checker())
    env.run()
    assert res.count == 0


def test_resource_release_unqueued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def impatient():
        req = res.request()
        yield env.timeout(1)
        req.release()  # withdraw before grant

    def late():
        yield env.timeout(2)
        with res.request() as req:
            yield req
            return env.now

    env.process(holder())
    env.process(impatient())
    task = env.process(late())
    assert env.run(task) == 5  # not blocked behind the withdrawn request


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_store_fifo_and_blocking():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((env.now, item))

    def producer():
        store.put("x")
        yield env.timeout(2)
        store.put("y")
        yield env.timeout(2)
        store.put("z")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == [(0, "x"), (2, "y"), (4, "z")]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put(1)
    assert len(store) == 1
    assert store.try_get() == 1
    assert store.try_get() is None


def test_container_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def consumer():
        yield tank.get(30)
        log.append(("got", env.now))

    def producer():
        yield env.timeout(1)
        yield tank.put(10)
        yield env.timeout(1)
        yield tank.put(25)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [("got", 2)]
    assert tank.level == 5


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer():
        yield tank.put(5)
        log.append(("put", env.now))

    def consumer():
        yield env.timeout(3)
        yield tank.get(8)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put", 3)]
    assert tank.level == 7


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        tank.put(-1)
