"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5)
        yield env.timeout(2.5)
        return env.now

    result = env.run(env.process(proc()))
    assert result == 7.5
    assert env.now == 7.5


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        value = yield env.timeout(1, value="hello")
        return value

    assert env.run(env.process(proc())) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return 42

    def parent():
        result = yield env.process(child())
        return result * 2

    assert env.run(env.process(parent())) == 84


def test_events_fire_in_time_order():
    env = Environment()
    log = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        log.append((env.now, tag))

    env.process(waiter(3, "c"))
    env.process(waiter(1, "a"))
    env.process(waiter(2, "b"))
    env.run()
    assert log == [(1, "a"), (2, "b"), (3, "c")]


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    log = []

    def waiter(tag):
        yield env.timeout(1)
        log.append(tag)

    for tag in "abcde":
        env.process(waiter(tag))
    env.run()
    assert log == list("abcde")


def test_manual_event_succeed():
    env = Environment()
    evt = env.event()

    def trigger():
        yield env.timeout(4)
        evt.succeed("done")

    def wait():
        value = yield evt
        return (env.now, value)

    env.process(trigger())
    assert env.run(env.process(wait())) == (4, "done")


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_failed_event_raises_in_process():
    env = Environment()
    evt = env.event()

    def proc():
        try:
            yield evt
        except RuntimeError as exc:
            return f"caught {exc}"

    task = env.process(proc())
    evt.fail(RuntimeError("boom"))
    assert env.run(task) == "caught boom"


def test_unhandled_process_failure_propagates():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_run_until_time():
    env = Environment()
    ticks = []

    def clock():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(clock())
    env.run(until=10)
    assert env.now == 10
    assert ticks == list(range(1, 11))


def test_run_until_past_time_rejected():
    env = Environment()
    env.timeout(1)
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=3)


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="one")
        t2 = env.timeout(5, value="five")
        results = yield AllOf(env, [t1, t2])
        return (env.now, list(results.values()))

    when, values = env.run(env.process(proc()))
    assert when == 5
    assert values == ["one", "five"]


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, list(results.values()))

    when, values = env.run(env.process(proc()))
    assert when == 1
    assert values == ["fast"]


def test_condition_operators():
    env = Environment()

    def proc():
        a = env.timeout(1)
        b = env.timeout(2)
        yield a | b
        first = env.now
        c = env.timeout(1)
        d = env.timeout(3)
        yield c & d
        return (first, env.now)

    assert env.run(env.process(proc())) == (1, 4)


def test_interrupt_delivers_cause():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100)
        except ProcessInterrupt as exc:
            return ("interrupted", exc.cause, env.now)

    def attacker(target):
        yield env.timeout(3)
        target.interrupt(cause="stop now")

    task = env.process(victim())
    env.process(attacker(task))
    assert env.run(task) == ("interrupted", "stop now", 3)


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    task = env.process(quick())
    env.run(task)
    with pytest.raises(SimulationError):
        task.interrupt()


def test_yield_on_already_processed_event_resumes():
    env = Environment()
    evt = env.event()
    evt.succeed("early")

    def late():
        yield env.timeout(2)
        value = yield evt  # evt processed long ago
        return value

    # Drain evt's callbacks first.
    assert env.run(env.process(late())) == "early"


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(2)

    task = env.process(proc())
    assert task.is_alive
    env.run()
    assert not task.is_alive


def test_run_until_event_failure_raises():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise KeyError("inner")

    task = env.process(proc())
    with pytest.raises(KeyError):
        env.run(task)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_determinism_two_identical_runs():
    def build():
        env = Environment()
        log = []

        def proc(pid):
            for step in range(3):
                yield env.timeout((pid + 1) * 0.5)
                log.append((round(env.now, 6), pid, step))

        for pid in range(4):
            env.process(proc(pid))
        env.run()
        return log

    assert build() == build()
