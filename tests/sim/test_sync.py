"""Unit tests for Signal, Gate and Mailbox."""

import pytest

from repro.errors import SimulationError
from repro.sim import EOF, Environment, Gate, Mailbox, Signal


def test_signal_wakes_all_waiters():
    env = Environment()
    sig = Signal(env)
    woken = []

    def waiter(tag):
        value = yield sig.wait()
        woken.append((tag, value, env.now))

    def firer():
        yield env.timeout(3)
        assert sig.fire("go") == 2

    env.process(waiter("a"))
    env.process(waiter("b"))
    env.process(firer())
    env.run()
    assert woken == [("a", "go", 3), ("b", "go", 3)]


def test_signal_wait_after_fire_blocks_until_next():
    env = Environment()
    sig = Signal(env)
    log = []

    def late_waiter():
        yield env.timeout(2)
        yield sig.wait()
        log.append(env.now)

    def firer():
        yield env.timeout(1)
        sig.fire()  # nobody waiting yet except... no one
        yield env.timeout(4)
        sig.fire()

    env.process(late_waiter())
    env.process(firer())
    env.run()
    assert log == [5]


def test_gate_releases_current_and_future_waiters():
    env = Environment()
    gate = Gate(env)
    log = []

    def early():
        value = yield gate.wait()
        log.append(("early", value, env.now))

    def opener():
        yield env.timeout(2)
        gate.open("opened")

    def late():
        yield env.timeout(5)
        value = yield gate.wait()
        log.append(("late", value, env.now))

    env.process(early())
    env.process(opener())
    env.process(late())
    env.run()
    assert log == [("early", "opened", 2), ("late", "opened", 5)]
    assert gate.is_open


def test_gate_fail_propagates_to_waiters():
    env = Environment()
    gate = Gate(env)

    def waiter():
        try:
            yield gate.wait()
        except RuntimeError:
            return "failed"

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("nope"))

    task = env.process(waiter())
    env.process(failer())
    assert env.run(task) == "failed"

    def late_waiter():
        try:
            yield gate.wait()
        except RuntimeError:
            return "late-failed"

    assert env.run(env.process(late_waiter())) == "late-failed"


def test_gate_double_open_rejected():
    env = Environment()
    gate = Gate(env)
    gate.open()
    with pytest.raises(SimulationError):
        gate.open()


def test_mailbox_delivers_then_eof():
    env = Environment()
    box = Mailbox(env)
    received = []

    def consumer():
        while True:
            item = yield box.get()
            if item is EOF:
                received.append("eof")
                return
            received.append(item)

    def producer():
        box.put(1)
        yield env.timeout(1)
        box.put(2)
        box.close()

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == [1, 2, "eof"]


def test_mailbox_close_wakes_blocked_getter():
    env = Environment()
    box = Mailbox(env)

    def consumer():
        item = yield box.get()
        return item is EOF

    def closer():
        yield env.timeout(2)
        box.close()

    task = env.process(consumer())
    env.process(closer())
    assert env.run(task) is True


def test_mailbox_put_after_close_rejected():
    env = Environment()
    box = Mailbox(env)
    box.close()
    with pytest.raises(SimulationError):
        box.put(1)
    box.close()  # idempotent
