"""Tests for promises and the promise-chain lock on both runtimes."""

import pytest

from repro.concurrency import (
    Await,
    EffectLock,
    Join,
    MakePromise,
    SimRuntime,
    Sleep,
    Spawn,
    ThreadRuntime,
)
from repro.errors import TransferTimeout
from repro.net import Network
from repro.sim import Environment


def sim_runtime():
    env = Environment()
    net = Network(env)
    net.add_host("host")
    return SimRuntime(net, "host")


RUNTIMES = [sim_runtime, ThreadRuntime]


@pytest.mark.parametrize("make_runtime", RUNTIMES)
def test_promise_resolve_from_another_task(make_runtime):
    runtime = make_runtime()

    def producer(promise):
        yield Sleep(0.01)
        promise.resolve("the value")

    def op():
        promise = yield MakePromise()
        yield Spawn(producer(promise))
        value = yield Await(promise)
        return value

    assert runtime.run(op()) == "the value"


@pytest.mark.parametrize("make_runtime", RUNTIMES)
def test_promise_reject_raises_at_await(make_runtime):
    runtime = make_runtime()

    def op():
        promise = yield MakePromise()
        promise.reject(RuntimeError("boom"))
        try:
            yield Await(promise)
        except RuntimeError as exc:
            return str(exc)

    assert runtime.run(op()) == "boom"


@pytest.mark.parametrize("make_runtime", RUNTIMES)
def test_promise_resolve_before_await(make_runtime):
    runtime = make_runtime()

    def op():
        promise = yield MakePromise()
        promise.resolve(42)
        assert promise.done
        value = yield Await(promise)
        return value

    assert runtime.run(op()) == 42


@pytest.mark.parametrize("make_runtime", RUNTIMES)
def test_await_timeout(make_runtime):
    runtime = make_runtime()

    def op():
        promise = yield MakePromise()
        try:
            yield Await(promise, timeout=0.05)
        except TransferTimeout:
            return "timed out"

    assert runtime.run(op()) == "timed out"


@pytest.mark.parametrize("make_runtime", RUNTIMES)
def test_double_resolve_is_ignored(make_runtime):
    runtime = make_runtime()

    def op():
        promise = yield MakePromise()
        promise.resolve("first")
        promise.resolve("second")
        promise.reject(RuntimeError("late"))
        value = yield Await(promise)
        return value

    assert runtime.run(op()) == "first"


@pytest.mark.parametrize("make_runtime", RUNTIMES)
def test_effect_lock_mutual_exclusion(make_runtime):
    runtime = make_runtime()
    lock = EffectLock()
    log = []

    def worker(tag):
        ticket = yield from lock.acquire()
        log.append(("enter", tag))
        yield Sleep(0.005)
        log.append(("exit", tag))
        lock.release(ticket)

    def op():
        tasks = []
        for tag in range(4):
            task = yield Spawn(worker(tag))
            tasks.append(task)
        for task in tasks:
            yield Join(task)

    runtime.run(op())
    # Critical sections never interleave: enter/exit strictly alternate.
    for i in range(0, len(log), 2):
        assert log[i][0] == "enter"
        assert log[i + 1][0] == "exit"
        assert log[i][1] == log[i + 1][1]
    assert len(log) == 8


def test_effect_lock_is_fifo_in_sim():
    runtime = sim_runtime()
    lock = EffectLock()
    order = []

    def worker(tag):
        ticket = yield from lock.acquire()
        order.append(tag)
        yield Sleep(0.001)
        lock.release(ticket)

    def op():
        tasks = []
        for tag in range(5):
            task = yield Spawn(worker(tag))
            tasks.append(task)
        for task in tasks:
            yield Join(task)

    runtime.run(op())
    assert order == [0, 1, 2, 3, 4]
