"""The same effect-generator protocol must behave identically on the
simulated runtime and on the real-socket runtime."""

import pytest

from repro.concurrency import (
    Accept,
    Close,
    Connect,
    Join,
    Now,
    Recv,
    Send,
    SimRuntime,
    Sleep,
    Spawn,
    ThreadRuntime,
)
from repro.errors import ConnectError, TransferTimeout
from repro.net import LinkSpec, Network
from repro.sim import Environment


# -- a protocol written once -------------------------------------------------


def echo_server(listener, rounds=1):
    """Accept `rounds` connections; echo one message each, then EOF."""
    for _ in range(rounds):
        channel = yield Accept(listener)
        yield Spawn(echo_one(channel))


def echo_one(channel):
    buf = bytearray()
    while b"\n" not in buf:
        data = yield Recv(channel)
        if not data:
            break
        buf.extend(data)
    yield Send(channel, bytes(buf).upper())
    yield Close(channel)


def echo_client(endpoint, message):
    channel = yield Connect(endpoint)
    yield Send(channel, message + b"\n")
    out = bytearray()
    while True:
        data = yield Recv(channel)
        if not data:
            break
        out.extend(data)
    return bytes(out)


# -- fixtures ----------------------------------------------------------------


def sim_world():
    env = Environment()
    net = Network(env, seed=5)
    net.add_host("client")
    net.add_host("server")
    net.set_route("client", "server", LinkSpec(latency=0.005, bandwidth=1e8))
    return SimRuntime(net, "client"), SimRuntime(net, "server")


# -- cross-runtime behaviour ---------------------------------------------------


def test_echo_on_sim_runtime():
    client_rt, server_rt = sim_world()
    listener = server_rt.listen(80)
    server_rt.spawn(echo_server(listener))
    result = client_rt.run(echo_client(("server", 80), b"hello sim"))
    assert result == b"HELLO SIM\n"


def test_echo_on_thread_runtime():
    runtime = ThreadRuntime()
    listener = runtime.listen(0)
    server = runtime.spawn(echo_server(listener))
    result = runtime.run(
        echo_client(("127.0.0.1", listener.port), b"hello sockets")
    )
    assert result == b"HELLO SOCKETS\n"
    runtime.join(server)
    listener.close()


def test_multiple_clients_both_runtimes():
    # sim
    client_rt, server_rt = sim_world()
    listener = server_rt.listen(80)
    server_rt.spawn(echo_server(listener, rounds=3))
    tasks = [
        client_rt.spawn(echo_client(("server", 80), b"msg%d" % i))
        for i in range(3)
    ]
    results = {client_rt.join(task) for task in tasks}
    assert results == {b"MSG0\n", b"MSG1\n", b"MSG2\n"}

    # threads
    runtime = ThreadRuntime()
    listener = runtime.listen(0)
    runtime.spawn(echo_server(listener, rounds=3))
    tasks = [
        runtime.spawn(
            echo_client(("127.0.0.1", listener.port), b"msg%d" % i)
        )
        for i in range(3)
    ]
    results = {runtime.join(task) for task in tasks}
    assert results == {b"MSG0\n", b"MSG1\n", b"MSG2\n"}
    listener.close()


def test_connect_error_raised_inside_operation():
    def op():
        try:
            yield Connect(("server", 9999))
        except ConnectError:
            return "refused"

    client_rt, _server_rt = sim_world()
    assert client_rt.run(op()) == "refused"

    runtime = ThreadRuntime(connect_timeout=0.5)
    # Port 1 on localhost is almost certainly closed.
    def op_real():
        try:
            yield Connect(("127.0.0.1", 1))
        except ConnectError:
            return "refused"

    assert runtime.run(op_real()) == "refused"


def test_sleep_and_now_in_sim_are_virtual():
    client_rt, _ = sim_world()

    def op():
        start = yield Now()
        yield Sleep(120.0)  # two simulated minutes, instant wall time
        end = yield Now()
        return end - start

    assert client_rt.run(op()) == pytest.approx(120.0)


def test_spawn_join_returns_value_and_propagates_failure():
    def child_ok():
        yield Sleep(0.001)
        return 7

    def child_boom():
        yield Sleep(0.001)
        raise RuntimeError("boom")

    def parent():
        ok = yield Spawn(child_ok())
        bad = yield Spawn(child_boom())
        value = yield Join(ok)
        try:
            yield Join(bad)
        except RuntimeError:
            return value, "caught"

    client_rt, _ = sim_world()
    assert client_rt.run(parent()) == (7, "caught")
    assert ThreadRuntime().run(parent()) == (7, "caught")


def test_recv_timeout_sim():
    client_rt, server_rt = sim_world()
    listener = server_rt.listen(80)

    def silent_server():
        channel = yield Accept(listener)
        yield Sleep(100)
        yield Close(channel)

    def op():
        channel = yield Connect(("server", 80))
        try:
            yield Recv(channel, timeout=0.5)
        except TransferTimeout:
            return "timed out"

    server_rt.spawn(silent_server())
    assert client_rt.run(op()) == "timed out"


def test_recv_timeout_threads():
    runtime = ThreadRuntime()
    listener = runtime.listen(0)

    def silent_server():
        channel = yield Accept(listener)
        yield Sleep(5)
        yield Close(channel)

    def op():
        channel = yield Connect(("127.0.0.1", listener.port))
        try:
            yield Recv(channel, timeout=0.2)
        except TransferTimeout:
            return "timed out"

    runtime.spawn(silent_server())
    assert runtime.run(op()) == "timed out"
    listener.close()


def test_unknown_effect_rejected():
    class Weird:
        pass

    def op():
        yield Weird()

    client_rt, _ = sim_world()
    with pytest.raises(TypeError):
        client_rt.run(op())
    with pytest.raises(TypeError):
        ThreadRuntime().run(op())


def test_sim_runtime_validates_host():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    from repro.errors import NetworkError

    with pytest.raises(NetworkError):
        SimRuntime(net, "nope")
