"""End-to-end storage-server tests over the simulated network."""

import pytest

from repro.errors import ConnectionClosed
from repro.http import Headers, Request, decode_byteranges
from repro.http.multipart import content_type_boundary
from repro.metalink import parse_metalink
from repro.server import (
    FaultPolicy,
    FederationApp,
    HttpServer,
    ObjectStore,
    ServerConfig,
    StorageApp,
    SyntheticContent,
    parse_multistatus,
)

from tests.helpers import get, http_exchange, one_request, put, sim_world


def start_server(server_rt, app, port=80):
    return HttpServer(server_rt, app, port=port).start()


def make_world(config=None, faults=None, replicas=None):
    client_rt, server_rt = sim_world()
    store = ObjectStore(clock=server_rt.now)
    app = StorageApp(
        store, config=config, faults=faults, replicas=replicas
    )
    start_server(server_rt, app)
    return client_rt, app, store


def test_get_full_object():
    client_rt, app, store = make_world()
    store.put("/data/a.bin", b"payload-bytes", content_type="text/plain")
    response = client_rt.run(one_request(("server", 80), get("/data/a.bin")))
    assert response.status == 200
    assert response.body == b"payload-bytes"
    assert response.content_type == "text/plain"
    assert response.headers.get("Accept-Ranges") == "bytes"
    assert response.headers.get("Server") == "repro-dpm/1.0"


def test_get_missing_is_404():
    client_rt, app, store = make_world()
    response = client_rt.run(one_request(("server", 80), get("/none")))
    assert response.status == 404


def test_head_reports_length_without_body():
    client_rt, app, store = make_world()
    store.put("/x", b"0123456789")
    response = client_rt.run(
        one_request(("server", 80), Request("HEAD", "/x"))
    )
    assert response.status == 200
    assert response.headers.get_int("Content-Length") == 10
    assert response.body == b""


def test_put_creates_then_updates():
    client_rt, app, store = make_world()
    created = client_rt.run(one_request(("server", 80), put("/new", b"v1")))
    assert created.status == 201
    updated = client_rt.run(one_request(("server", 80), put("/new", b"v2")))
    assert updated.status == 204
    assert store.read("/new") == b"v2"


def test_put_if_match_precondition():
    client_rt, app, store = make_world()
    obj = store.put("/x", b"original")
    bad = client_rt.run(
        one_request(
            ("server", 80),
            put("/x", b"clobber", Headers([("If-Match", '"wrong"')])),
        )
    )
    assert bad.status == 412
    good = client_rt.run(
        one_request(
            ("server", 80),
            put("/x", b"update", Headers([("If-Match", obj.etag)])),
        )
    )
    assert good.status == 204
    assert store.read("/x") == b"update"


def test_delete():
    client_rt, app, store = make_world()
    store.put("/x", b"data")
    response = client_rt.run(
        one_request(("server", 80), Request("DELETE", "/x"))
    )
    assert response.status == 204
    assert not store.exists("/x")
    again = client_rt.run(
        one_request(("server", 80), Request("DELETE", "/x"))
    )
    assert again.status == 404


def test_options_advertises_dav():
    client_rt, app, store = make_world()
    response = client_rt.run(
        one_request(("server", 80), Request("OPTIONS", "/"))
    )
    assert response.status == 200
    assert "PROPFIND" in response.headers.get("Allow")
    assert response.headers.get("DAV") == "1"


def test_single_range_get():
    client_rt, app, store = make_world()
    store.put("/x", b"0123456789")
    response = client_rt.run(
        one_request(
            ("server", 80),
            get("/x", Headers([("Range", "bytes=2-5")])),
        )
    )
    assert response.status == 206
    assert response.body == b"2345"
    assert response.headers.get("Content-Range") == "bytes 2-5/10"


def test_multirange_get_roundtrip():
    client_rt, app, store = make_world()
    store.put("/x", bytes(range(256)))
    response = client_rt.run(
        one_request(
            ("server", 80),
            get("/x", Headers([("Range", "bytes=0-3,100-103,250-")])),
        )
    )
    assert response.status == 206
    boundary = content_type_boundary(response.content_type)
    parts = decode_byteranges(response.body, boundary)
    assert [(p.offset, p.data) for p in parts] == [
        (0, bytes([0, 1, 2, 3])),
        (100, bytes([100, 101, 102, 103])),
        (250, bytes([250, 251, 252, 253, 254, 255])),
    ]


def test_range_416():
    client_rt, app, store = make_world()
    store.put("/x", b"tiny")
    response = client_rt.run(
        one_request(
            ("server", 80), get("/x", Headers([("Range", "bytes=100-")]))
        )
    )
    assert response.status == 416
    assert response.headers.get("Content-Range") == "bytes */4"


def test_keepalive_serves_multiple_requests_on_one_connection():
    client_rt, app, store = make_world()
    store.put("/x", b"abc")
    responses = client_rt.run(
        http_exchange(("server", 80), [get("/x"), get("/x"), get("/x")])
    )
    assert [r.status for r in responses] == [200, 200, 200]
    assert app.requests_handled == 3


def test_keepalive_disabled_closes_after_first_response():
    config = ServerConfig(keepalive=False)
    client_rt, app, store = make_world(config=config)
    store.put("/x", b"abc")

    def op():
        try:
            yield from http_exchange(("server", 80), [get("/x"), get("/x")])
        except ConnectionClosed:
            return "closed"

    assert client_rt.run(op()) == "closed"


def test_max_requests_per_connection():
    config = ServerConfig(max_requests_per_connection=2)
    client_rt, app, store = make_world(config=config)
    store.put("/x", b"abc")

    def op():
        try:
            yield from http_exchange(
                ("server", 80), [get("/x")] * 4
            )
        except ConnectionClosed:
            return "closed"

    assert client_rt.run(op()) == "closed"
    assert app.requests_handled == 2


def test_connection_close_header_honoured():
    client_rt, app, store = make_world()
    store.put("/x", b"abc")
    response = client_rt.run(
        one_request(
            ("server", 80),
            get("/x", Headers([("Connection", "close")])),
        )
    )
    assert response.status == 200
    assert response.keep_alive() is False


def test_propfind_depth0_and_depth1():
    client_rt, app, store = make_world()
    store.put("/dir/a.bin", b"aa")
    store.put("/dir/b.bin", b"bbb")

    response = client_rt.run(
        one_request(
            ("server", 80),
            Request("PROPFIND", "/dir", Headers([("Depth", "0")])),
        )
    )
    assert response.status == 207
    resources = parse_multistatus(response.body)
    assert len(resources) == 1
    assert resources[0].is_collection

    response = client_rt.run(
        one_request(
            ("server", 80),
            Request("PROPFIND", "/dir", Headers([("Depth", "1")])),
        )
    )
    listing = parse_multistatus(response.body)
    names = sorted(r.name for r in listing if not r.is_collection)
    assert names == ["a.bin", "b.bin"]
    sizes = {r.name: r.size for r in listing}
    assert sizes["a.bin"] == 2
    assert sizes["b.bin"] == 3


def test_propfind_infinity_rejected():
    client_rt, app, store = make_world()
    response = client_rt.run(
        one_request(("server", 80), Request("PROPFIND", "/"))
    )
    assert response.status == 403


def test_mkcol():
    client_rt, app, store = make_world()
    response = client_rt.run(
        one_request(("server", 80), Request("MKCOL", "/newdir"))
    )
    assert response.status == 201
    assert store.is_collection("/newdir")


def test_unknown_method_405():
    client_rt, app, store = make_world()
    response = client_rt.run(
        one_request(("server", 80), Request("PATCH", "/x"))
    )
    assert response.status == 405


def test_conditional_get_304():
    client_rt, app, store = make_world()
    obj = store.put("/x", b"abc")
    response = client_rt.run(
        one_request(
            ("server", 80),
            get("/x", Headers([("If-None-Match", obj.etag)])),
        )
    )
    assert response.status == 304
    assert response.body == b""


def test_metalink_negotiation():
    client_rt, server_rt = sim_world()
    store = ObjectStore()
    store.put("/data/f.root", b"content!")
    app = StorageApp(
        store,
        replicas={
            "/data/f.root": [
                "http://server/data/f.root",
                "http://mirror/data/f.root",
            ]
        },
    )
    HttpServer(server_rt, app, port=80).start()
    response = client_rt.run(
        one_request(
            ("server", 80),
            get(
                "/data/f.root",
                Headers([("Accept", "application/metalink4+xml")]),
            ),
        )
    )
    assert response.status == 200
    doc = parse_metalink(response.body)
    entry = doc.single()
    assert entry.size == 8
    assert [u.url for u in entry.ordered_urls()] == [
        "http://server/data/f.root",
        "http://mirror/data/f.root",
    ]
    assert entry.checksum("adler32") is not None


def test_redirect_mode():
    config = ServerConfig(redirect_base="http://disknode:8080")
    client_rt, app, store = make_world(config=config)
    store.put("/data/x", b"abc")
    response = client_rt.run(one_request(("server", 80), get("/data/x")))
    assert response.status == 302
    assert response.headers.get("Location") == (
        "http://disknode:8080/data/x?direct=1"
    )
    # ?direct bypasses the redirect
    direct = client_rt.run(
        one_request(("server", 80), get("/data/x?direct=1"))
    )
    assert direct.status == 200
    assert direct.body == b"abc"


def test_injected_error_fault():
    faults = FaultPolicy()
    faults.break_path("/broken")
    client_rt, app, store = make_world(faults=faults)
    store.put("/broken", b"data")
    response = client_rt.run(one_request(("server", 80), get("/broken")))
    assert response.status == 503


def test_injected_reset_fault():
    faults = FaultPolicy(reset_rate=1.0, seed=1)
    client_rt, app, store = make_world(faults=faults)
    store.put("/x", b"D" * 100_000)

    def op():
        try:
            yield from one_request(("server", 80), get("/x"))
        except ConnectionClosed:
            return "reset"

    assert client_rt.run(op()) == "reset"


def test_slow_fault_adds_latency():
    def elapsed(faults):
        client_rt, app, store = make_world(faults=faults)
        store.put("/x", b"abc")

        def op():
            yield from one_request(("server", 80), get("/x"))
            from repro.concurrency import Now

            return (yield Now())

        return client_rt.run(op())

    fast = elapsed(None)
    slow = elapsed(FaultPolicy(slow_rate=1.0, slow_delay=3.0, seed=0))
    assert slow == pytest.approx(fast + 3.0, rel=0.01)


def test_large_synthetic_object_streams():
    client_rt, app, store = make_world()
    size = 3_000_000
    store.put("/big", SyntheticContent(size, seed=11))
    response = client_rt.run(one_request(("server", 80), get("/big")))
    assert response.status == 200
    assert len(response.body) == size
    assert response.body[:4096] == SyntheticContent(size, seed=11).read(
        0, 4096
    )


def test_federation_redirect_and_metalink():
    client_rt, server_rt = sim_world()
    fed = FederationApp()
    fed.register(
        "/fed/data.root",
        ["http://site-a/data.root", "http://site-b/data.root"],
        size=1234,
        adler32="deadbeef",
    )
    HttpServer(server_rt, fed, port=80).start()

    first = client_rt.run(one_request(("server", 80), get("/fed/data.root")))
    second = client_rt.run(one_request(("server", 80), get("/fed/data.root")))
    assert first.status == second.status == 302
    assert first.headers.get("Location") == "http://site-a/data.root"
    assert second.headers.get("Location") == "http://site-b/data.root"

    meta = client_rt.run(
        one_request(("server", 80), get("/fed/data.root?metalink"))
    )
    entry = parse_metalink(meta.body).single()
    assert entry.size == 1234
    assert entry.checksum("adler32") == "deadbeef"

    missing = client_rt.run(one_request(("server", 80), get("/unknown")))
    assert missing.status == 404
