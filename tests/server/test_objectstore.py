"""Tests for the object store and its content representations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.server import (
    BytesContent,
    ObjectStore,
    StoreError,
    SyntheticContent,
)


def test_put_get_roundtrip():
    store = ObjectStore()
    store.put("/data/a.bin", b"hello world")
    assert store.read("/data/a.bin") == b"hello world"
    assert store.get("/data/a.bin").size == 11


def test_put_replaces_and_changes_etag():
    store = ObjectStore()
    first = store.put("/x", b"one")
    second = store.put("/x", b"two")
    assert store.read("/x") == b"two"
    assert first.etag != second.etag


def test_read_range():
    store = ObjectStore()
    store.put("/x", b"0123456789")
    assert store.read("/x", 2, 3) == b"234"
    assert store.read("/x", 8, 100) == b"89"
    assert store.read("/x", 5) == b"56789"


def test_missing_object_raises():
    store = ObjectStore()
    with pytest.raises(StoreError):
        store.get("/nope")
    with pytest.raises(StoreError):
        store.delete("/nope")
    with pytest.raises(StoreError):
        store.stat("/nope")


def test_delete_object():
    store = ObjectStore()
    store.put("/x", b"data")
    store.delete("/x")
    assert not store.exists("/x")


def test_implicit_parent_collections():
    store = ObjectStore()
    store.put("/a/b/c.bin", b"data")
    assert store.is_collection("/a")
    assert store.is_collection("/a/b")
    assert store.list_collection("/a") == ["/a/b"]
    assert store.list_collection("/a/b") == ["/a/b/c.bin"]


def test_list_root():
    store = ObjectStore()
    store.put("/top.bin", b"x")
    store.put("/dir/nested.bin", b"y")
    assert store.list_collection("/") == ["/dir", "/top.bin"]


def test_mkcol_semantics():
    store = ObjectStore()
    store.mkcol("/new")
    assert store.is_collection("/new")
    with pytest.raises(StoreError):
        store.mkcol("/new")  # exists
    with pytest.raises(StoreError):
        store.mkcol("/missing/child")  # parent missing


def test_delete_collection_rules():
    store = ObjectStore()
    store.put("/dir/file", b"x")
    with pytest.raises(StoreError):
        store.delete("/dir")  # not empty
    store.delete("/dir/file")
    store.delete("/dir")
    assert not store.exists("/dir")
    with pytest.raises(StoreError):
        store.delete("/")


def test_put_over_collection_rejected():
    store = ObjectStore()
    store.mkcol("/dir")
    with pytest.raises(StoreError):
        store.put("/dir", b"data")


def test_path_normalisation():
    store = ObjectStore()
    store.put("no/leading/slash", b"x")
    assert store.exists("/no/leading/slash")
    store.put("/double//slash", b"y")
    assert store.read("/double/slash") == b"y"


def test_stat_and_clock_injection():
    now = {"t": 100.0}
    store = ObjectStore(clock=lambda: now["t"])
    store.put("/x", b"abc")
    size, mtime, is_dir = store.stat("/x")
    assert (size, mtime, is_dir) == (3, 100.0, False)
    assert store.stat("/")[2] is True


def test_checksums_match_known_values():
    store = ObjectStore()
    obj = store.put("/x", b"hello")
    import hashlib
    import zlib

    assert obj.checksum("adler32") == f"{zlib.adler32(b'hello'):08x}"
    assert obj.checksum("md5") == hashlib.md5(b"hello").hexdigest()
    with pytest.raises(StoreError):
        obj.checksum("sha999")


def test_io_counters():
    store = ObjectStore()
    store.put("/x", b"0123456789")
    store.read("/x", 0, 4)
    assert store.bytes_written == 10
    assert store.bytes_read == 4


# -- synthetic content ---------------------------------------------------------


def test_synthetic_deterministic_and_range_consistent():
    content = SyntheticContent(1_000_000, seed=42)
    again = SyntheticContent(1_000_000, seed=42)
    assert content.read(123_456, 1000) == again.read(123_456, 1000)
    whole = content.read(0, 200_000)
    assert content.read(50_000, 1000) == whole[50_000:51_000]


def test_synthetic_different_seeds_differ():
    a = SyntheticContent(4096, seed=1).read(0, 4096)
    b = SyntheticContent(4096, seed=2).read(0, 4096)
    assert a != b


def test_synthetic_blocks_are_position_dependent():
    content = SyntheticContent(4 * SyntheticContent.BLOCK, seed=3)
    block0 = content.read(0, 64)
    block1 = content.read(SyntheticContent.BLOCK, 64)
    assert block0 != block1  # index stamp makes repeats distinguishable


def test_synthetic_clamps_at_size():
    content = SyntheticContent(100, seed=0)
    assert len(content.read(90, 1000)) == 10
    assert content.read(200, 10) == b""


def test_synthetic_checksum_stable():
    assert (
        SyntheticContent(10_000, seed=9).adler32()
        == SyntheticContent(10_000, seed=9).adler32()
    )


@given(
    st.integers(min_value=0, max_value=300_000),
    st.integers(min_value=0, max_value=70_000),
    st.integers(min_value=1, max_value=10),
)
def test_synthetic_read_concat_property(offset, length, splits):
    content = SyntheticContent(300_000, seed=7)
    whole = content.read(offset, length)
    step = max(1, length // splits)
    pieces = []
    position = offset
    while position < min(offset + length, content.size):
        pieces.append(content.read(position, step))
        position += step
    assert b"".join(pieces)[: len(whole)] == whole


@given(st.binary(min_size=0, max_size=10_000))
def test_bytes_content_read_matches_slice(data):
    content = BytesContent(data)
    assert content.read(0, len(data)) == data
    mid = len(data) // 2
    assert content.read(mid, 100) == data[mid : mid + 100]
