"""Tests for the S3-compatible interface and signed client requests."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import DavixClient, RequestParams
from repro.errors import PermissionDenied, RequestError
from repro.http import Headers, Request, decode_byteranges
from repro.http.multipart import content_type_boundary
from repro.server import (
    HttpServer,
    ObjectStore,
    S3App,
    S3Credentials,
    StorageApp,
)
from repro.server.s3 import compute_signature

from tests.helpers import get, one_request, put, sim_world

CREDS = S3Credentials(access_key="AKIATEST", secret_key="sekrit")


def s3_world(credentials=CREDS):
    client_rt, server_rt = sim_world()
    store = ObjectStore()
    store.mkcol("/bucket")
    app = S3App(store, credentials=credentials)
    HttpServer(server_rt, app, port=80).start()
    params = RequestParams(s3_credentials=credentials)
    client = DavixClient(client_rt, params=params)
    return client, app, store


def test_signed_put_get_delete_cycle():
    client, app, store = s3_world()
    url = "http://server/bucket/data/obj.bin"
    client.put(url, b"s3-payload")
    assert store.read("/bucket/data/obj.bin") == b"s3-payload"
    assert client.get(url) == b"s3-payload"
    assert client.stat(url).size == 10
    client.delete(url)
    assert not store.exists("/bucket/data/obj.bin")


def test_unsigned_request_rejected_403():
    client, app, store = s3_world()
    store.put("/bucket/x", b"secret")
    anon = DavixClient(client.runtime, params=RequestParams())
    with pytest.raises(PermissionDenied):
        anon.get("http://server/bucket/x")
    assert app.auth_failures >= 1


def test_wrong_secret_rejected():
    client, app, store = s3_world()
    store.put("/bucket/x", b"secret")
    bad = DavixClient(
        client.runtime,
        params=RequestParams(
            s3_credentials=S3Credentials("AKIATEST", "wrong")
        ),
    )
    with pytest.raises(PermissionDenied):
        bad.get("http://server/bucket/x")


def test_public_bucket_needs_no_signature():
    client, app, store = s3_world(credentials=None)
    store.put("/bucket/x", b"open")
    anon = DavixClient(client.runtime, params=RequestParams())
    assert anon.get("http://server/bucket/x") == b"open"


def test_range_and_vectored_reads_work_on_s3():
    client, app, store = s3_world()
    content = bytes(i % 251 for i in range(50_000))
    store.put("/bucket/big", content)
    url = "http://server/bucket/big"
    assert client.pread(url, 1000, 100) == content[1000:1100]
    reads = [(0, 10), (25_000, 20), (49_990, 10)]
    assert client.pread_vec(url, reads) == [
        content[o : o + n] for o, n in reads
    ]


def test_list_objects_xml():
    client, app, store = s3_world()
    store.put("/bucket/a/one.bin", b"1")
    store.put("/bucket/a/two.bin", b"22")
    store.put("/bucket/b/three.bin", b"333")

    from tests.helpers import http_exchange
    from repro.server.s3 import sign_request

    def op():
        request = Request("GET", "/bucket?list-type=2")
        sign_request(request, CREDS, date="0.000000")
        responses = yield from http_exchange(("server", 80), [request])
        return responses[0]

    response = client.runtime.run(op())
    assert response.status == 200
    root = ET.fromstring(response.body)
    keys = [el.findtext("Key") for el in root.findall("Contents")]
    assert keys == ["a/one.bin", "a/two.bin", "b/three.bin"]
    assert root.findtext("KeyCount") == "3"


def test_list_objects_prefix_filter():
    client, app, store = s3_world()
    store.put("/bucket/logs/x.log", b"1")
    store.put("/bucket/data/y.bin", b"2")

    from repro.server.s3 import sign_request
    from tests.helpers import http_exchange

    def op():
        request = Request("GET", "/bucket?list-type=2&prefix=logs/")
        sign_request(request, CREDS, date="0.000000")
        responses = yield from http_exchange(("server", 80), [request])
        return responses[0]

    response = client.runtime.run(op())
    root = ET.fromstring(response.body)
    keys = [el.findtext("Key") for el in root.findall("Contents")]
    assert keys == ["logs/x.log"]


def test_missing_key_is_404_with_xml_code():
    client, app, store = s3_world()
    with pytest.raises(Exception) as info:
        client.get("http://server/bucket/nope")
    assert getattr(info.value, "status", None) == 404


def test_missing_bucket_listing_404():
    client, app, store = s3_world(credentials=None)
    from tests.helpers import one_request

    response = client.runtime.run(
        one_request(("server", 80), get("/nobucket"))
    )
    assert response.status == 404
    assert b"NoSuchBucket" in response.body


def test_signature_is_method_and_path_bound():
    sig_get = compute_signature(CREDS, "GET", "/bucket/x", "123")
    sig_put = compute_signature(CREDS, "PUT", "/bucket/x", "123")
    sig_other = compute_signature(CREDS, "GET", "/bucket/y", "123")
    assert sig_get != sig_put
    assert sig_get != sig_other
    assert sig_get == compute_signature(CREDS, "GET", "/bucket/x", "123")
