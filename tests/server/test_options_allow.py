"""Per-resource OPTIONS ``Allow`` headers and 405 responses.

The advertised verb set must reflect what the resource actually
supports — files, collections, and missing paths differ — with COPY
advertised consistently now that third-party copy landed.
"""

from repro.http import Headers, Request

from tests.helpers import davix_world


def options(app, path):
    return app.handle(Request("OPTIONS", path)).response


def allowed(app, path):
    value = options(app, path).headers.get("Allow")
    return {verb.strip() for verb in value.split(",")}


def world():
    client, app, store, _ = davix_world()
    store.put("/data/file.bin", b"x" * 10)
    store.mkcol("/docs")
    return client, app, store


def test_file_advertises_full_verb_set():
    _, app, store = world()
    verbs = allowed(app, "/data/file.bin")
    assert verbs == {
        "GET", "HEAD", "OPTIONS", "PROPFIND", "PUT",
        "DELETE", "COPY", "MOVE",
    }


def test_collection_advertises_collection_verbs():
    _, app, store = world()
    verbs = allowed(app, "/docs")
    assert "COPY" in verbs and "MOVE" in verbs
    assert "PROPFIND" in verbs
    # A collection has no byte body to GET or PUT.
    assert "GET" not in verbs and "PUT" not in verbs


def test_missing_path_advertises_creation_verbs():
    _, app, store = world()
    verbs = allowed(app, "/nope")
    # A missing path can be created — and is a valid pull-mode TPC
    # destination, so COPY appears here too.
    assert verbs == {"OPTIONS", "PUT", "MKCOL", "COPY"}


def test_options_ranges_only_on_files():
    _, app, store = world()
    assert (
        options(app, "/data/file.bin").headers.get("Accept-Ranges")
        == "bytes"
    )
    assert options(app, "/docs").headers.get("Accept-Ranges") is None
    assert options(app, "/nope").headers.get("Accept-Ranges") is None


def test_405_allow_matches_resource():
    _, app, store = world()
    # An unsupported verb answers 405 with the resource's actual
    # verb set, not a static list.
    for path in ("/data/file.bin", "/docs", "/nope"):
        response = app.handle(Request("PATCH", path)).response
        assert response.status == 405
        assert response.headers.get("Allow") == options(
            app, path
        ).headers.get("Allow")


def test_collection_copy_is_deep():
    client, app, store = world()
    store.put("/docs/a.txt", b"alpha")
    store.put("/docs/sub/b.txt", b"beta")
    request = Request(
        "COPY", "/docs", Headers([("Destination", "/docs2")])
    )
    response = app.handle(request).response
    assert response.status in (201, 204)
    assert store.read("/docs2/a.txt") == b"alpha"
    assert store.read("/docs2/sub/b.txt") == b"beta"
    assert store.read("/docs/a.txt") == b"alpha"  # source untouched


def test_collection_move_removes_source_tree():
    client, app, store = world()
    store.put("/docs/a.txt", b"alpha")
    request = Request(
        "MOVE", "/docs", Headers([("Destination", "/archive")])
    )
    response = app.handle(request).response
    assert response.status in (201, 204)
    assert store.read("/archive/a.txt") == b"alpha"
    assert not store.exists("/docs")
