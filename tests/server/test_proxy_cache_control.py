"""Origin ``Cache-Control`` directives steering the proxy's TTL.

``max-age`` replaces the proxy's fixed ``default_ttl``, ``no-store``
pins a URL to the relay path, ``no-cache`` forces revalidation on
every request — and with no directive the default still applies.
"""

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.http import parse_cache_control
from repro.net import LinkSpec, Network
from repro.server import (
    HttpServer,
    ObjectStore,
    ProxyApp,
    ServerConfig,
    StorageApp,
)
from repro.sim import Environment


def world(cache_control=None, default_ttl=60.0):
    env = Environment()
    net = Network(env, seed=12)
    for name in ("client", "proxy", "origin"):
        net.add_host(name)
    net.set_route(
        "client", "proxy", LinkSpec(latency=0.001, bandwidth=125_000_000)
    )
    net.set_route(
        "proxy", "origin", LinkSpec(latency=0.02, bandwidth=12_500_000)
    )
    store = ObjectStore()
    origin = StorageApp(
        store, config=ServerConfig(cache_control=cache_control)
    )
    HttpServer(SimRuntime(net, "origin"), origin, port=80).start()
    proxy = ProxyApp(default_ttl=default_ttl)
    HttpServer(SimRuntime(net, "proxy"), proxy, port=3128).start()
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(proxy="http://proxy:3128", retries=0),
    )
    return client, proxy, origin, store


def test_parse_cache_control_directives():
    assert parse_cache_control(None) == {}
    assert parse_cache_control("") == {}
    assert parse_cache_control("no-store") == {"no-store": None}
    assert parse_cache_control("max-age=60, no-cache") == {
        "max-age": "60",
        "no-cache": None,
    }
    assert parse_cache_control('private, max-age="5"') == {
        "private": None,
        "max-age": "5",
    }


def test_max_age_overrides_default_ttl():
    # default_ttl tiny, origin grants a long max-age: entries stay
    # fresh far beyond the default window.
    client, proxy, origin, store = world(
        cache_control="max-age=3600", default_ttl=0.001
    )
    store.put("/x", b"fresh for an hour")
    client.get("http://origin/x")
    baseline = origin.requests_handled
    client.runtime.run(_sleep(10.0))
    for _ in range(3):
        assert client.get("http://origin/x") == b"fresh for an hour"
    # Still fresh: no revalidation round trips reached the origin.
    assert origin.requests_handled == baseline


def test_short_max_age_expires_before_default_ttl():
    client, proxy, origin, store = world(
        cache_control="max-age=1", default_ttl=3600.0
    )
    store.put("/x", b"stale in a second")
    client.get("http://origin/x")
    baseline = origin.requests_handled
    client.runtime.run(_sleep(5.0))
    assert client.get("http://origin/x") == b"stale in a second"
    # Expired despite the huge default_ttl: the origin saw a
    # revalidation (304 — the cached body was still served).
    assert origin.requests_handled == baseline + 1
    assert proxy.stats["revalidated"] == 1


def test_no_store_bypasses_the_cache():
    client, proxy, origin, store = world(cache_control="no-store")
    store.put("/secret", b"never cached")
    for _ in range(3):
        assert client.get("http://origin/secret") == b"never cached"
    # Every request reached the origin; nothing landed in the store.
    assert origin.requests_by_method.get("GET", 0) == 3
    assert proxy.cached_objects == 0
    assert proxy.stats["bypassed"] >= 2


def test_no_cache_revalidates_every_time():
    client, proxy, origin, store = world(cache_control="no-cache")
    store.put("/x", b"always check")
    for _ in range(3):
        assert client.get("http://origin/x") == b"always check"
    # Cached (bodies served from pages) but never served blind: each
    # repeat costs exactly one conditional round trip.
    assert proxy.stats["revalidated"] == 2
    assert origin.requests_handled == 3


def test_default_ttl_still_applies_without_directives():
    client, proxy, origin, store = world(cache_control=None)
    store.put("/x", b"default rules")
    for _ in range(4):
        assert client.get("http://origin/x") == b"default rules"
    assert origin.requests_handled == 1
    assert proxy.stats["hits"] == 3


def _sleep(seconds):
    from repro.concurrency import Sleep

    def op():
        yield Sleep(seconds)

    return op()
