"""Tests for the flat-object (S3-like) storage dialect.

The dialect speaks only GET/HEAD/PUT/DELETE/OPTIONS over a flat key
space: WebDAV verbs answer 405, ranged and multi-range GETs ride the
shared RFC 7233 machinery, and listing is one JSON endpoint. These
tests drive :class:`FlatObjectApp.handle` directly (the app computes
responses; the HTTP server only moves bytes).
"""

import json

import pytest

from repro.http import Headers, Request
from repro.server import FlatObjectApp, ObjectStore, ServerConfig
from repro.server.faults import FaultAction
from tests.resilience.conftest import ScriptedFaults

BODY = bytes((i * 13 + 5) % 256 for i in range(10_000))


def app_with(key="/data/blob", config=None, faults=None):
    store = ObjectStore()
    app = FlatObjectApp(store, config=config, faults=faults)
    store.put(key, BODY)
    return app, store


def req(method, target, headers=None, body=b""):
    return Request(method, target, Headers(headers or []), body=body)


# -- object verbs -----------------------------------------------------------


def test_get_whole_object():
    app, _ = app_with()
    served = app.handle(req("GET", "/data/blob"))
    assert served.response.status == 200
    assert served.response.body == BODY
    assert served.response.headers.get("Server") == "repro-flatstore/1.0"


def test_get_missing_key_is_404_json():
    app, _ = app_with()
    served = app.handle(req("GET", "/nope"))
    assert served.response.status == 404
    assert "error" in json.loads(served.response.body)


def test_head_reports_size_etag_and_ranges():
    app, store = app_with()
    served = app.handle(req("HEAD", "/data/blob"))
    response = served.response
    assert response.status == 200
    assert int(response.headers.get("Content-Length")) == len(BODY)
    assert response.headers.get("ETag") == store.get("/data/blob").etag
    assert response.headers.get("Accept-Ranges") == "bytes"
    assert response.body == b""


def test_put_create_then_replace():
    app, store = app_with()
    created = app.handle(req("PUT", "/fresh", body=b"one"))
    assert created.response.status == 201
    assert store.get("/fresh").content.read(0, 3) == b"one"
    replaced = app.handle(req("PUT", "/fresh", body=b"two"))
    assert replaced.response.status == 204
    assert store.get("/fresh").content.read(0, 3) == b"two"
    assert created.response.headers.get("ETag") != replaced.response.headers.get(
        "ETag"
    )


def test_delete_then_404():
    app, store = app_with()
    assert app.handle(req("DELETE", "/data/blob")).response.status == 204
    assert not store.exists("/data/blob")
    assert app.handle(req("DELETE", "/data/blob")).response.status == 404


def test_options_advertises_the_flat_verbs():
    app, _ = app_with()
    response = app.handle(req("OPTIONS", "/")).response
    assert response.status == 204
    assert response.headers.get("Allow") == "GET, HEAD, PUT, DELETE, OPTIONS"


@pytest.mark.parametrize("verb", ["PROPFIND", "MKCOL", "COPY", "MOVE", "LOCK"])
def test_webdav_verbs_are_405_with_allow(verb):
    app, _ = app_with()
    response = app.handle(req(verb, "/data/blob")).response
    assert response.status == 405
    assert "GET" in response.headers.get("Allow")


# -- ranges -----------------------------------------------------------------


def test_single_range_get():
    app, _ = app_with()
    response = app.handle(
        req("GET", "/data/blob", [("Range", "bytes=100-199")])
    ).response
    assert response.status == 206
    assert response.body == BODY[100:200]
    assert response.headers.get("Content-Range") == (
        f"bytes 100-199/{len(BODY)}"
    )


def test_multi_range_get_is_multipart():
    app, _ = app_with()
    response = app.handle(
        req("GET", "/data/blob", [("Range", "bytes=0-9,100-109")])
    ).response
    assert response.status == 206
    assert "multipart/byteranges" in response.headers.get("Content-Type")
    assert BODY[:10] in response.body
    assert BODY[100:110] in response.body


def test_unsatisfiable_range_is_416():
    app, _ = app_with()
    response = app.handle(
        req("GET", "/data/blob", [("Range", f"bytes={len(BODY)}-")])
    ).response
    assert response.status == 416
    assert response.headers.get("Content-Range") == f"bytes */{len(BODY)}"


def test_if_range_mismatch_serves_the_full_object():
    app, _ = app_with()
    response = app.handle(
        req(
            "GET",
            "/data/blob",
            [("Range", "bytes=0-9"), ("If-Range", '"stale-etag"')],
        )
    ).response
    assert response.status == 200
    assert response.body == BODY


def test_bytes_read_accounting():
    app, store = app_with()
    app.handle(req("GET", "/data/blob", [("Range", "bytes=0-99")]))
    assert store.bytes_read == 100


# -- listing ----------------------------------------------------------------


def test_listing_enumerates_keys_sorted():
    app, store = app_with()
    store.put("/data/a", b"x")
    store.put("/logs/z", b"y")
    response = app.handle(req("GET", "/?list=1")).response
    assert response.status == 200
    keys = json.loads(response.body)["keys"]
    assert keys == sorted(keys)
    assert set(keys) == {"/data/a", "/data/blob", "/logs/z"}


def test_listing_prefix_filter():
    app, store = app_with()
    store.put("/data/a", b"x")
    store.put("/logs/z", b"y")
    keys = json.loads(
        app.handle(req("GET", "/?list=1&prefix=/data")).response.body
    )["keys"]
    assert keys == ["/data/a", "/data/blob"]


def test_plain_root_get_is_not_a_listing():
    app, _ = app_with()
    assert app.handle(req("GET", "/")).response.status == 404


# -- config / faults --------------------------------------------------------


def test_cache_control_on_read_verbs_only():
    app, _ = app_with(config=ServerConfig(cache_control="max-age=60"))
    assert (
        app.handle(req("GET", "/data/blob")).response.headers.get(
            "Cache-Control"
        )
        == "max-age=60"
    )
    assert (
        app.handle(req("PUT", "/x", body=b"1")).response.headers.get(
            "Cache-Control"
        )
        is None
    )
    assert (
        app.handle(req("GET", "/missing")).response.headers.get(
            "Cache-Control"
        )
        is None
    )


def test_service_time_charges_overhead_and_disk():
    config = ServerConfig(service_overhead=0.01, disk_bandwidth=1e6)
    app, _ = app_with(config=config)
    served = app.handle(req("GET", "/data/blob"))
    assert served.service_time == pytest.approx(0.01 + len(BODY) / 1e6)


def test_fault_error_short_circuits():
    faults = ScriptedFaults([FaultAction("error", status=503)])
    app, _ = app_with(faults=faults)
    assert app.handle(req("GET", "/data/blob")).response.status == 503
    # Script exhausted: next request serves normally.
    assert app.handle(req("GET", "/data/blob")).response.status == 200


def test_fault_slow_and_reset_decorate_the_response():
    slow = app_with(faults=ScriptedFaults([FaultAction("slow", delay=2.0)]))[0]
    served = slow.handle(req("GET", "/data/blob"))
    assert served.response.status == 200
    assert served.service_time >= 2.0

    reset = app_with(faults=ScriptedFaults([FaultAction("reset")]))[0]
    served = reset.handle(req("GET", "/data/blob"))
    assert served.reset_midway


# -- observability parity ---------------------------------------------------


def observable_flat_world():
    """FlatObjectApp behind a real sim server, fully instrumented —
    the same kit StorageApp wears (access log, tracer, events,
    metrics endpoint)."""
    from repro.concurrency import SimRuntime
    from repro.core import DavixClient, RequestParams
    from repro.net import LinkSpec, Network
    from repro.obs import EventLog, MetricsRegistry, Tracer
    from repro.server import AccessLog, HttpServer
    from repro.sim import Environment

    env = Environment()
    net = Network(env, seed=7)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client", "server",
        LinkSpec(latency=0.001, bandwidth=125_000_000),
    )
    server_rt = SimRuntime(net, "server")
    store = ObjectStore()
    store.put("/data/blob", BODY)
    app = FlatObjectApp(
        store,
        config=ServerConfig(metrics_path="/metrics"),
        metrics=MetricsRegistry(),
    )
    app.tracer = Tracer(clock=server_rt.now, node="flat")
    app.events = EventLog()
    app.access_log = AccessLog(metrics=app.metrics)
    HttpServer(server_rt, app, port=80).start()
    client = DavixClient(
        SimRuntime(net, "client"), params=RequestParams(retries=0)
    )
    return client, app


def test_flat_app_joins_client_traces_and_logs_access():
    from repro.obs import format_trace_id

    client, app = observable_flat_world()
    assert client.get("http://server/data/blob") == BODY

    (span,) = app.tracer.by_name("server-request")
    client_span = client.tracer().by_name("request")[0]
    assert format_trace_id(span.trace_id) == format_trace_id(
        client_span.trace_id
    )
    (entry,) = app.access_log.entries
    assert entry.status == 200
    assert entry.method == "GET"


def test_flat_app_counts_requests_and_serves_prometheus():
    from tests.helpers import get, one_request

    client, app = observable_flat_world()
    client.get("http://server/data/blob")
    client.stat("http://server/data/blob")

    response = client.runtime.run(
        one_request(("server", 80), get("/metrics"))
    )
    assert response.status == 200
    body = response.body.decode("utf-8")
    assert 'server_requests_total{method="GET"} 1' in body
    assert 'server_requests_total{method="HEAD"} 1' in body
    # The scrape is an observer: no span, no access-log entry for it.
    assert len(app.tracer.by_name("server-request")) == 2
    assert app.access_log.total_requests == 2


def test_flat_app_ships_spans_into_a_telemetry_sink():
    from repro.obs.collector import TelemetryCollector, TelemetrySink

    client, app = observable_flat_world()
    collector = TelemetryCollector()
    sink = TelemetrySink("flat", target=collector)
    app.tracer.sink = sink.record_span
    app.events.sink = sink.record_event
    client.get("http://server/data/blob")
    sink.flush()
    assert [r["node"] for r in collector.spans()] == ["flat"]
    assert collector.spans()[0]["name"] == "server-request"
