"""Tests for the access log and its serve-loop integration."""

import pytest

from repro.server import ObjectStore, StorageApp
from repro.server.accesslog import AccessEntry, AccessLog

from tests.helpers import davix_world, get, one_request


def entry(status=200, method="GET", duration=0.01, nbytes=100):
    return AccessEntry(
        timestamp=1.0,
        client="client",
        method=method,
        path="/x",
        status=status,
        bytes_sent=nbytes,
        duration=duration,
    )


def test_record_and_aggregate():
    log = AccessLog()
    log.record(entry(200, "GET"))
    log.record(entry(404, "GET"))
    log.record(entry(201, "PUT", nbytes=0))
    assert len(log) == 3
    assert log.total_requests == 3
    assert log.total_bytes == 200
    assert log.by_status() == {200: 1, 404: 1, 201: 1}
    assert log.by_method() == {"GET": 2, "PUT": 1}


def test_error_rate():
    log = AccessLog()
    assert log.error_rate() == 0.0
    log.record(entry(200))
    log.record(entry(503))
    assert log.error_rate() == 0.5


def test_latency_percentile():
    log = AccessLog()
    assert log.latency_percentile(0.5) is None
    for duration in (0.01, 0.02, 0.03, 0.04, 0.10):
        log.record(entry(duration=duration))
    assert log.latency_percentile(0.0) == 0.01
    assert log.latency_percentile(0.5) == pytest.approx(0.03)
    assert log.latency_percentile(1.0) == 0.10
    with pytest.raises(ValueError):
        log.latency_percentile(2.0)


def test_ring_buffer_capacity():
    log = AccessLog(capacity=2)
    for status in (200, 201, 204):
        log.record(entry(status))
    assert len(log) == 2
    assert [e.status for e in log.entries] == [201, 204]
    assert log.total_requests == 3  # monotone counters keep counting
    with pytest.raises(ValueError):
        AccessLog(capacity=0)


def test_common_log_format():
    line = entry().common_log_format()
    assert '"GET /x HTTP/1.1" 200 100' in line
    assert line.startswith("client - - [1.000000]")


def test_render_tail():
    log = AccessLog()
    for i in range(5):
        log.record(entry(200 + i))
    rendered = log.render(2)
    assert rendered.count("\n") == 1
    assert "203" in rendered and "204" in rendered


def test_to_record_is_flat_and_complete():
    record = entry().to_record()
    assert record == {
        "kind": "access",
        "ts": 1.0,
        "client": "client",
        "method": "GET",
        "path": "/x",
        "status": 200,
        "bytes_sent": 100,
        "duration": 0.01,
        "trace_id": "",
        "parent_span_id": "",
    }


def test_clf_is_a_rendering_of_the_record():
    plain = entry()
    assert "trace=" not in plain.common_log_format()
    traced = AccessEntry(
        timestamp=1.0,
        client="client",
        method="GET",
        path="/x",
        status=200,
        bytes_sent=100,
        duration=0.01,
        trace_id="ab" * 16,
        parent_span_id="cd" * 8,
    )
    line = traced.common_log_format()
    assert line.endswith(f" trace={'ab' * 16}")
    # Everything in the CLF line comes from to_record().
    assert traced.to_record()["trace_id"] == "ab" * 16


def test_to_json_lines_is_deterministic_jsonl():
    from repro.obs import parse_json_lines

    log = AccessLog()
    log.record(entry(200))
    log.record(entry(404))
    text = log.to_json_lines()
    parsed = parse_json_lines(text)
    assert [record["status"] for record in parsed] == [200, 404]
    assert all(record["kind"] == "access" for record in parsed)
    assert log.to_json_lines(1) == text.splitlines()[-1]


def test_attached_window_sees_durations():
    from repro.obs import RollingHistogram

    window = RollingHistogram(lambda: 0.0, buckets=(0.05, 1.0))
    log = AccessLog(window=window)
    log.record(entry(duration=0.01))
    log.record(entry(duration=0.5))
    snap = window.snapshot()
    assert snap.count == 2
    assert snap.bucket_counts == (1, 1, 0)


def test_serve_loop_records_requests():
    client, app, store, _ = davix_world()
    app.access_log = AccessLog()
    store.put("/x", b"0123456789")
    client.get("http://server/x")
    client.pread("http://server/x", 0, 4)
    try:
        client.get("http://server/missing")
    except Exception:
        pass
    log = app.access_log
    assert log.total_requests == 3
    statuses = [e.status for e in log.entries]
    assert statuses == [200, 206, 404]
    assert log.entries[0].bytes_sent == 10
    assert log.entries[0].client == "client"
    assert all(e.duration >= 0 for e in log.entries)
    assert "GET /x" in log.render()
