"""Property tests for the proxy's range-aware partial-hit path.

Two invariants, per the caching-tier design:

* **identity** — any interleaving of full and ranged GETs (with
  concurrent object updates) served through the proxy is
  byte-identical to what the origin would serve (``default_ttl=0`` so
  every serve revalidates — strong consistency mode);
* **no re-fetch** — the spans the origin actually serves never overlap
  bytes already page-cached at the proxy for the current ETag (origin
  fetches are gaps only; the budget is large enough that nothing
  evicts).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import HttpProtocolError
from repro.http import parse_range_header, resolve_ranges
from repro.net import LinkSpec, Network
from repro.server import (
    HttpServer,
    ObjectStore,
    ProxyApp,
    StorageApp,
    StoreError,
)
from repro.sim import Environment

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PAGE = 97  # deliberately odd page size: exercises ragged tails


class RecordingApp(StorageApp):
    """Origin that records the byte spans each GET actually serves."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: ``(etag, [(offset, length), ...])`` per body-bearing GET.
        self.served = []

    def _handle_get(self, request):
        try:
            obj = self.store.get(request.path)
        except StoreError:
            return super()._handle_get(request)
        if not self._not_modified(request, obj):
            header = request.headers.get("Range")
            if_range = request.headers.get("If-Range")
            if header is not None and (
                if_range is None or if_range.strip() == obj.etag
            ):
                try:
                    spans = resolve_ranges(
                        parse_range_header(header), obj.size
                    )
                except HttpProtocolError:
                    spans = [(0, obj.size)]
            else:
                spans = [(0, obj.size)]
            if spans:
                self.served.append((obj.etag, spans))
        return super()._handle_get(request)


def proxy_world():
    env = Environment()
    net = Network(env, seed=7)
    for host in ("client", "proxy", "origin"):
        net.add_host(host)
    net.set_route(
        "client", "proxy", LinkSpec(latency=0.0005, bandwidth=1e9)
    )
    net.set_route(
        "proxy", "origin", LinkSpec(latency=0.02, bandwidth=1e8)
    )
    store = ObjectStore()
    origin = RecordingApp(store)
    HttpServer(SimRuntime(net, "origin"), origin, port=80).start()
    proxy = ProxyApp(
        cache_bytes=64 << 20, default_ttl=0.0, page_size=PAGE
    )
    HttpServer(SimRuntime(net, "proxy"), proxy, port=3128).start()
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(proxy="http://proxy:3128", retries=0),
    )
    return client, proxy, origin, store


def page_bytes_covered(spans, size, page=PAGE):
    """Byte ranges the page store retains from serving ``spans`` —
    mirrors ``PageCache.insert``: only fully covered pages stick."""
    covered = []
    for offset, length in spans:
        end = min(offset + length, size)
        index = -(-offset // page)
        while True:
            start = index * page
            want = min(page, size - start)
            if want <= 0 or start + want > end:
                break
            covered.append((start, want))
            index += 1
    return covered


def overlaps(span, spans):
    offset, length = span
    for a, n in spans:
        if max(offset, a) < min(offset + length, a + n):
            return True
    return False


@SLOW
@given(data=st.data())
def test_interleaved_ranged_gets_match_origin_and_never_refetch(data):
    client, proxy, origin, store = proxy_world()
    size = data.draw(st.integers(min_value=1, max_value=4000), label="size")
    version = 0

    def body(v):
        return bytes((i * 31 + v * 7 + 1) % 256 for i in range(size))

    store.put("/x", body(version))
    url = "http://origin/x"
    #: etag -> byte spans the proxy must now hold (no eviction here).
    shadow = {}

    n_ops = data.draw(st.integers(min_value=1, max_value=15), label="ops")
    for _ in range(n_ops):
        op = data.draw(
            st.sampled_from(["full", "single", "vec", "update"]),
            label="op",
        )
        content = body(version)
        if op == "update":
            version += 1
            store.put("/x", body(version))
        elif op == "full":
            assert client.get(url) == content
        elif op == "single":
            offset = data.draw(st.integers(0, size + 40), label="offset")
            length = data.draw(st.integers(0, size + 40), label="length")
            assert (
                client.pread(url, offset, length)
                == content[offset : offset + length]
            )
        else:
            reads = [
                (o, min(n, size - o))
                for o, n in data.draw(
                    st.lists(
                        st.tuples(
                            st.integers(0, size - 1),
                            st.integers(1, size),
                        ),
                        min_size=1,
                        max_size=6,
                    ),
                    label="reads",
                )
            ]
            assert client.pread_vec(url, reads) == [
                content[o : o + n] for o, n in reads
            ]
        # Replay the origin's served spans against the shadow store:
        # nothing served may overlap bytes already held for that etag.
        for etag, spans in origin.served:
            held = shadow.setdefault(etag, [])
            for span in spans:
                assert not overlaps(span, held), (
                    f"origin re-served {span} already cached for {etag}"
                )
            # Updates keep the object length, so ``size`` is stable.
            held.extend(page_bytes_covered(spans, size))
        origin.served.clear()
