"""Tests for server-side range planning."""

from repro.http import decode_byteranges
from repro.server import ObjectStore
from repro.server.rangeserver import plan_range_response


def make_obj(data=b"0123456789" * 10):
    store = ObjectStore()
    return store.put("/x", data)


def test_no_range_full_200():
    obj = make_obj()
    plan = plan_range_response(obj, None)
    assert plan.status == 200
    assert plan.segments == [(0, 100)]
    assert plan.headers.get("Accept-Ranges") == "bytes"


def test_single_range_206_with_content_range():
    obj = make_obj()
    plan = plan_range_response(obj, "bytes=10-19")
    assert plan.status == 206
    assert plan.segments == [(10, 10)]
    assert plan.headers.get("Content-Range") == "bytes 10-19/100"
    assert plan.multipart_boundary is None


def test_multi_range_multipart():
    obj = make_obj()
    plan = plan_range_response(obj, "bytes=0-4,50-54")
    assert plan.status == 206
    assert plan.multipart_boundary is not None
    assert "multipart/byteranges" in plan.headers.get("Content-Type")
    body = plan.build_multipart_body(obj)
    parts = decode_byteranges(body, plan.multipart_boundary)
    assert [(p.offset, p.data) for p in parts] == [
        (0, b"01234"),
        (50, b"01234"),
    ]
    assert all(p.total == 100 for p in parts)


def test_unsatisfiable_416():
    obj = make_obj()
    plan = plan_range_response(obj, "bytes=500-600")
    assert plan.status == 416
    assert plan.headers.get("Content-Range") == "bytes */100"
    assert plan.segments == []


def test_malformed_range_ignored():
    obj = make_obj()
    plan = plan_range_response(obj, "bytes=oops")
    assert plan.status == 200


def test_multirange_disabled_falls_back_to_full():
    obj = make_obj()
    plan = plan_range_response(
        obj, "bytes=0-4,50-54", multirange_supported=False
    )
    assert plan.status == 200
    assert plan.segments == [(0, 100)]


def test_max_ranges_guard():
    obj = make_obj()
    header = "bytes=" + ",".join(f"{i}-{i}" for i in range(0, 20, 2))
    plan = plan_range_response(obj, header, max_ranges=5)
    assert plan.status == 200


def test_partially_satisfiable_serves_valid_members():
    obj = make_obj()
    plan = plan_range_response(obj, "bytes=0-4,500-600")
    assert plan.status == 206
    assert plan.segments == [(0, 5)]
    assert plan.multipart_boundary is None  # one survivor -> plain 206


def test_body_bytes_accounting():
    obj = make_obj()
    plan = plan_range_response(obj, "bytes=0-9,20-24")
    assert plan.body_bytes == 15
