"""HTTP third-party copy: storage nodes move objects site-to-site.

Pull mode (COPY to the destination with a ``Source`` header) and push
mode (COPY to the source with an absolute ``Destination``) both answer
202 with a perf-marker stream; the orchestrating client only carries
control traffic.
"""

import pytest

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.core.tpc import parse_marker_stream
from repro.errors import DavixError
from repro.http import Headers, Request
from repro.net import LinkSpec, Network
from repro.obs import EventLog, MetricsRegistry, Tracer
from repro.server import HttpServer, ObjectStore, ServerConfig, StorageApp
from repro.sim import Environment


def tpc_world(server_config=None, observe=False, tracer=None):
    """client + two storage sites; sites can reach each other."""
    env = Environment()
    net = Network(env, seed=2)
    for name in ("client", "site-a", "site-b"):
        net.add_host(name)
    fast = LinkSpec(latency=0.005, bandwidth=125_000_000)
    slow = LinkSpec(latency=0.05, bandwidth=2_000_000)  # thin client link
    net.set_route("client", "site-a", slow)
    net.set_route("client", "site-b", slow)
    net.set_route("site-a", "site-b", fast)

    apps = {}
    for name in ("site-a", "site-b"):
        store = ObjectStore()
        app = StorageApp(store, config=server_config)
        if observe:
            app.metrics = MetricsRegistry()
            app.events = EventLog()
        runtime = SimRuntime(net, name)
        if tracer is not None:
            app.tracer = Tracer(clock=runtime.now)
        HttpServer(runtime, app, port=80).start()
        apps[name] = app
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(retries=0),
        tracer=tracer,
    )
    return client, net, apps


def tpc_request(path, source):
    return Request(
        "COPY", path, Headers([("Source", source)])
    )


def run_copy(client, destination_host, path, source):
    from repro.core.request import execute_request
    from repro.http import Url

    url = Url.parse(f"http://{destination_host}{path}")

    def op():
        response, _ = yield from execute_request(
            client.context, url, tpc_request(path, source),
            client.context.params,
        )
        return response

    return client.runtime.run(op())


def test_third_party_copy_moves_data_site_to_site():
    client, net, apps = tpc_world()
    payload = bytes(range(256)) * 4000  # ~1 MB
    apps["site-a"].store.put("/data/src.bin", payload)

    response = run_copy(
        client, "site-b", "/data/dst.bin", "http://site-a/data/src.bin"
    )
    assert response.status == 202
    summary = parse_marker_stream(response.body)
    assert summary.ok
    assert summary.bytes_transferred == len(payload)
    assert apps["site-b"].store.read("/data/dst.bin") == payload


def test_third_party_copy_multi_stream_chunks():
    config = ServerConfig(tpc_chunk=256 * 1024, tpc_streams=4)
    client, net, apps = tpc_world(server_config=config)
    payload = bytes(range(256)) * 4000  # ~1 MB -> 4 chunks
    apps["site-a"].store.put("/data/src.bin", payload)

    response = run_copy(
        client, "site-b", "/data/dst.bin", "http://site-a/data/src.bin"
    )
    summary = parse_marker_stream(response.body)
    assert summary.ok
    assert len(summary.markers) == 4  # one frame per chunk
    assert all(m.stripe_count == 4 for m in summary.markers)
    # Cumulative byte counts are monotone and end at the full size.
    counts = [m.bytes_transferred for m in summary.markers]
    assert counts == sorted(counts)
    assert counts[-1] == len(payload)
    assert apps["site-b"].store.read("/data/dst.bin") == payload


def test_third_party_copy_bypasses_client_link():
    # 1 MB over the 2 MB/s client link would take ~0.5 s each way; the
    # site-to-site path does it in ~0.01 s. The COPY must complete in
    # far less time than a relay through the client would need.
    client, net, apps = tpc_world()
    payload = b"x" * 1_000_000
    apps["site-a"].store.put("/src", payload)
    start = client.runtime.now()
    response = run_copy(client, "site-b", "/dst", "http://site-a/src")
    elapsed = client.runtime.now() - start
    assert response.status == 202
    assert parse_marker_stream(response.body).ok
    assert elapsed < 0.5  # relay via client would be ~1 s
    client_bytes = (
        net.host("client").uplink.bytes_carried
        + net.host("client").downlink.bytes_carried
    )
    assert client_bytes < 10_000  # only control traffic crossed


def test_third_party_copy_missing_source_is_502():
    client, net, apps = tpc_world()
    response = run_copy(
        client, "site-b", "/dst", "http://site-a/nope"
    )
    assert response.status == 502
    assert b"third-party copy failed" in response.body
    assert not apps["site-b"].store.exists("/dst")


def test_third_party_copy_source_host_down_is_502():
    client, net, apps = tpc_world()
    apps["site-a"].store.put("/src", b"data")
    net.host("site-a").fail()
    response = run_copy(client, "site-b", "/dst", "http://site-a/src")
    assert response.status == 502


def test_local_copy_still_works_without_source_header():
    client, net, apps = tpc_world()
    apps["site-b"].store.put("/a", b"local")
    client.copy("http://site-b/a", "http://site-b/b")
    assert apps["site-b"].store.read("/b") == b"local"


def test_client_third_party_copy_pull():
    client, net, apps = tpc_world()
    payload = b"payload-" * 1000
    apps["site-a"].store.put("/src", payload)
    summary = client.third_party_copy(
        "http://site-a/src", "http://site-b/dst"
    )
    assert summary.ok
    assert summary.bytes_transferred == len(payload)
    assert apps["site-b"].store.read("/dst") == payload


def test_client_third_party_copy_push():
    client, net, apps = tpc_world()
    payload = b"pushed-" * 2000
    apps["site-a"].store.put("/src", payload)
    summary = client.third_party_copy(
        "http://site-a/src", "http://site-b/dst", mode="push"
    )
    assert summary.ok
    assert apps["site-b"].store.read("/dst") == payload


def test_push_missing_source_is_404():
    client, net, apps = tpc_world()
    with pytest.raises(DavixError) as excinfo:
        client.third_party_copy(
            "http://site-a/nope", "http://site-b/dst", mode="push"
        )
    assert excinfo.value.status == 404


def test_streams_header_caps_at_server_limit():
    config = ServerConfig(tpc_chunk=64 * 1024, tpc_max_streams=3)
    client, net, apps = tpc_world(server_config=config)
    payload = b"s" * (8 * 64 * 1024)  # 8 chunks
    apps["site-a"].store.put("/src", payload)
    summary = client.third_party_copy(
        "http://site-a/src", "http://site-b/dst", streams=16
    )
    assert summary.ok
    # Requested 16 streams, the server clamps to its configured max.
    assert all(m.stripe_count == 3 for m in summary.markers)
    assert apps["site-b"].store.read("/dst") == payload


def test_pull_digest_mismatch_never_reports_success():
    client, net, apps = tpc_world(observe=True)
    payload = b"honest bytes" * 100
    obj = apps["site-a"].store.put("/src", payload)
    # Poison the advertised checksum: the wire bytes are fine but the
    # end-to-end Digest comparison must fail and nothing may commit.
    obj._checksums["adler32"] = "deadbeef"
    with pytest.raises(DavixError) as excinfo:
        client.third_party_copy("http://site-a/src", "http://site-b/dst")
    assert "digest mismatch" in str(excinfo.value)
    assert not apps["site-b"].store.exists("/dst")
    mismatches = apps["site-b"].metrics.counter(
        "tpc.digest_mismatch_total"
    )
    assert mismatches.value == 1


def test_zero_length_object_copies_both_modes():
    client, net, apps = tpc_world()
    apps["site-a"].store.put("/empty", b"")
    pulled = client.third_party_copy(
        "http://site-a/empty", "http://site-b/pulled"
    )
    assert pulled.ok
    assert apps["site-b"].store.read("/pulled") == b""
    pushed = client.third_party_copy(
        "http://site-a/empty", "http://site-b/pushed", mode="push"
    )
    assert pushed.ok
    assert apps["site-b"].store.read("/pushed") == b""


def test_tpc_metrics_and_events():
    client, net, apps = tpc_world(observe=True)
    payload = b"m" * 500_000
    apps["site-a"].store.put("/src", payload)
    client.third_party_copy("http://site-a/src", "http://site-b/dst")
    metrics = apps["site-b"].metrics
    assert metrics.counter(
        "tpc.transfers_total", mode="pull"
    ).value == 1
    assert metrics.counter(
        "tpc.bytes_total", mode="pull"
    ).value == len(payload)
    events = [
        e for e in apps["site-b"].events.records() if e["kind"] == "tpc"
    ]
    assert len(events) == 1
    assert events[0]["ok"] is True
    assert events[0]["bytes"] == len(payload)
    assert events[0]["throughput"] > 0


def test_transfer_span_joins_client_trace():
    tracer = Tracer()
    client, net, apps = tpc_world(tracer=tracer)
    apps["site-a"].store.put("/src", b"traced")
    with client.span("replicate") as root:
        client.third_party_copy("http://site-a/src", "http://site-b/dst")
    transfer_spans = apps["site-b"].tracer.by_name("tpc-transfer")
    assert len(transfer_spans) == 1
    # The destination server's transfer span carries the client's
    # trace id: one story across both processes.
    assert transfer_spans[0].trace_id == root.trace_id
    assert apps["site-b"].tracer.by_name("tpc-chunk")
