"""HTTP third-party copy: destination server pulls from the source."""

import pytest

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import RequestError
from repro.http import Headers, Request
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.sim import Environment


def tpc_world():
    """client + two storage sites; sites can reach each other."""
    env = Environment()
    net = Network(env, seed=2)
    for name in ("client", "site-a", "site-b"):
        net.add_host(name)
    fast = LinkSpec(latency=0.005, bandwidth=125_000_000)
    slow = LinkSpec(latency=0.05, bandwidth=2_000_000)  # thin client link
    net.set_route("client", "site-a", slow)
    net.set_route("client", "site-b", slow)
    net.set_route("site-a", "site-b", fast)

    apps = {}
    for name in ("site-a", "site-b"):
        store = ObjectStore()
        app = StorageApp(store)
        HttpServer(SimRuntime(net, name), app, port=80).start()
        apps[name] = app
    client = DavixClient(
        SimRuntime(net, "client"), params=RequestParams(retries=0)
    )
    return client, net, apps


def tpc_request(path, source):
    return Request(
        "COPY", path, Headers([("Source", source)])
    )


def run_copy(client, destination_host, path, source):
    from repro.core.request import execute_request
    from repro.http import Url

    url = Url.parse(f"http://{destination_host}{path}")

    def op():
        response, _ = yield from execute_request(
            client.context, url, tpc_request(path, source),
            client.context.params,
        )
        return response

    return client.runtime.run(op())


def test_third_party_copy_moves_data_site_to_site():
    client, net, apps = tpc_world()
    payload = bytes(range(256)) * 4000  # ~1 MB
    apps["site-a"].store.put("/data/src.bin", payload)

    response = run_copy(
        client, "site-b", "/data/dst.bin", "http://site-a/data/src.bin"
    )
    assert response.status == 201
    assert apps["site-b"].store.read("/data/dst.bin") == payload


def test_third_party_copy_bypasses_client_link():
    # 1 MB over the 2 MB/s client link would take ~0.5 s each way; the
    # site-to-site path does it in ~0.01 s. The COPY must complete in
    # far less time than a relay through the client would need.
    client, net, apps = tpc_world()
    payload = b"x" * 1_000_000
    apps["site-a"].store.put("/src", payload)
    start = client.runtime.now()
    response = run_copy(client, "site-b", "/dst", "http://site-a/src")
    elapsed = client.runtime.now() - start
    assert response.status == 201
    assert elapsed < 0.5  # relay via client would be ~1 s
    client_bytes = (
        net.host("client").uplink.bytes_carried
        + net.host("client").downlink.bytes_carried
    )
    assert client_bytes < 10_000  # only control traffic crossed


def test_third_party_copy_missing_source_is_502():
    client, net, apps = tpc_world()
    response = run_copy(
        client, "site-b", "/dst", "http://site-a/nope"
    )
    assert response.status == 502
    assert b"third-party copy failed" in response.body
    assert not apps["site-b"].store.exists("/dst")


def test_third_party_copy_source_host_down_is_502():
    client, net, apps = tpc_world()
    apps["site-a"].store.put("/src", b"data")
    net.host("site-a").fail()
    response = run_copy(client, "site-b", "/dst", "http://site-a/src")
    assert response.status == 502


def test_local_copy_still_works_without_source_header():
    client, net, apps = tpc_world()
    apps["site-b"].store.put("/a", b"local")
    client.copy("http://site-b/a", "http://site-b/b")
    assert apps["site-b"].store.read("/b") == b"local"
