"""Tests for the caching forward proxy and the client's proxy mode."""

import pytest

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import RequestError
from repro.net import LinkSpec, Network
from repro.server import (
    HttpServer,
    ObjectStore,
    ProxyApp,
    ServerConfig,
    StorageApp,
)
from repro.sim import Environment


def proxy_world(cache_bytes=256 << 20, default_ttl=60.0):
    """client -- proxy -- origin, with a slow client<->origin path so
    the cache benefit is visible."""
    env = Environment()
    net = Network(env, seed=12)
    net.add_host("client")
    net.add_host("proxy")
    net.add_host("origin")
    net.set_route(
        "client", "proxy", LinkSpec(latency=0.001, bandwidth=125_000_000)
    )
    net.set_route(
        "proxy", "origin", LinkSpec(latency=0.08, bandwidth=12_500_000)
    )
    net.set_route(
        "client", "origin", LinkSpec(latency=0.08, bandwidth=12_500_000)
    )
    origin_store = ObjectStore()
    origin_app = StorageApp(origin_store)
    HttpServer(SimRuntime(net, "origin"), origin_app, port=80).start()
    proxy_app = ProxyApp(cache_bytes=cache_bytes, default_ttl=default_ttl)
    HttpServer(SimRuntime(net, "proxy"), proxy_app, port=3128).start()
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(proxy="http://proxy:3128", retries=0),
    )
    return client, proxy_app, origin_app, origin_store, net


def test_proxied_get_relays_content():
    client, proxy, origin, store, net = proxy_world()
    store.put("/data/x.bin", b"through-the-proxy")
    data = client.get("http://origin/data/x.bin")
    assert data == b"through-the-proxy"
    assert proxy.stats["misses"] == 1
    assert origin.requests_handled == 1
    # The client connected to the proxy, never to the origin.
    assert net.host("origin").counters["connections_accepted"] == 1  # proxy's


def test_cache_hit_skips_origin():
    client, proxy, origin, store, net = proxy_world()
    store.put("/x", b"cache me")
    for _ in range(5):
        assert client.get("http://origin/x") == b"cache me"
    assert proxy.stats["misses"] == 1
    assert proxy.stats["hits"] == 4
    assert origin.requests_handled == 1
    assert proxy.hit_ratio() == pytest.approx(0.8)


def test_cache_hit_is_much_faster():
    client, proxy, origin, store, net = proxy_world()
    store.put("/big", b"B" * 5_000_000)
    start = client.runtime.now()
    client.get("http://origin/big")
    miss_time = client.runtime.now() - start
    start = client.runtime.now()
    client.get("http://origin/big")
    hit_time = client.runtime.now() - start
    assert hit_time < miss_time / 4


def test_revalidation_after_ttl_expiry():
    client, proxy, origin, store, net = proxy_world(default_ttl=1.0)
    store.put("/x", b"fresh")
    client.get("http://origin/x")
    client.runtime.env.run(until=client.runtime.env.now + 5.0)
    assert client.get("http://origin/x") == b"fresh"
    assert proxy.stats["revalidated"] == 1
    # The revalidation was a conditional GET answered 304: the origin
    # served no second body.
    assert origin.requests_handled == 2


def test_changed_content_refetched_after_ttl():
    client, proxy, origin, store, net = proxy_world(default_ttl=1.0)
    store.put("/x", b"version-1")
    assert client.get("http://origin/x") == b"version-1"
    store.put("/x", b"version-2")  # new etag
    client.runtime.env.run(until=client.runtime.env.now + 5.0)
    assert client.get("http://origin/x") == b"version-2"
    assert proxy.stats["misses"] == 2


def test_stale_served_when_origin_down():
    client, proxy, origin, store, net = proxy_world(default_ttl=0.0)
    store.put("/x", b"survivor")
    assert client.get("http://origin/x") == b"survivor"
    net.host("origin").fail()
    # TTL 0: every request revalidates; with the origin dead the proxy
    # serves the stale copy instead of failing.
    assert client.get("http://origin/x") == b"survivor"
    assert proxy.stats["hits"] == 1


def test_ranged_requests_are_cached():
    """Regression: ranged GETs used to bypass the cache entirely —
    they now populate the page store and repeat reads never reach the
    origin."""
    client, proxy, origin, store, net = proxy_world()
    store.put("/x", b"0123456789")
    assert client.pread("http://origin/x", 2, 3) == b"234"
    assert proxy.stats["bypassed"] == 0
    assert proxy.stats["misses"] == 1
    assert proxy.cached_objects == 1
    before = origin.requests_handled
    assert client.pread("http://origin/x", 2, 3) == b"234"
    assert client.pread("http://origin/x", 3, 2) == b"34"
    assert proxy.stats["hits"] == 2
    assert origin.requests_handled == before


def test_whole_object_entry_answers_ranged_requests():
    """Regression: a cached full GET is reused for later Range
    requests instead of re-fetching from the origin."""
    client, proxy, origin, store, net = proxy_world()
    content = bytes(i % 251 for i in range(100_000))
    store.put("/x", content)
    assert client.get("http://origin/x") == content
    before = origin.requests_handled
    assert client.pread("http://origin/x", 10, 100) == content[10:110]
    reads = [(0, 10), (50_000, 64), (99_990, 10)]
    assert client.pread_vec("http://origin/x", reads) == [
        content[o : o + n] for o, n in reads
    ]
    assert origin.requests_handled == before
    assert proxy.stats["hits"] == 2
    assert proxy.stats["bypassed"] == 0


def test_partial_hit_fetches_only_the_gaps():
    """A request straddling cached and uncached spans fetches only the
    missing page-aligned gaps from the origin."""
    client, proxy, origin, store, net = proxy_world()
    content = bytes(i % 251 for i in range(400_000))
    store.put("/x", content)
    # Warm the first 64 KiB page via a ranged read.
    assert client.pread("http://origin/x", 0, 70_000) == content[:70_000]
    bytes_before = store.bytes_read
    # Overlaps the cached pages and extends beyond them.
    assert client.pread("http://origin/x", 0, 200_000) == content[:200_000]
    assert proxy.stats["partial_hits"] == 1
    # The origin only served the gap, not the full 200 000 bytes.
    assert store.bytes_read - bytes_before < 200_000
    assert proxy.stats["origin_bytes_saved"] > 0


def test_ranged_request_after_update_serves_new_version():
    """An ETag change observed during a gap fetch drops the stale
    pages — the proxy never mixes versions in one response."""
    client, proxy, origin, store, net = proxy_world()
    content_v1 = b"A" * 200_000
    store.put("/x", content_v1)
    assert client.pread("http://origin/x", 0, 70_000) == content_v1[:70_000]
    store.put("/x", b"B" * 200_000)  # new etag
    client.runtime.env.run(until=client.runtime.env.now + 120.0)  # expire ttl
    data = client.pread("http://origin/x", 0, 200_000)
    assert data == b"B" * 200_000  # coherent: no v1/v2 mix


def test_put_passes_through():
    client, proxy, origin, store, net = proxy_world()
    assert client.put("http://origin/new", b"written") == 201
    assert store.read("/new") == b"written"
    assert proxy.stats["bypassed"] == 1


def test_lru_eviction_bounded_by_bytes():
    client, proxy, origin, store, net = proxy_world(cache_bytes=25_000)
    for i in range(4):
        store.put(f"/obj{i}", bytes(10_000))
        client.get(f"http://origin/obj{i}")
    assert proxy.cached_bytes <= 25_000
    assert proxy.cached_objects == 2
    assert proxy.stats["evictions"] == 2
    # The oldest entries were evicted: obj0 misses again.
    client.get("http://origin/obj0")
    assert proxy.stats["misses"] == 5


def test_missing_object_propagates_404():
    client, proxy, origin, store, net = proxy_world()
    from repro.errors import FileNotFound

    with pytest.raises(FileNotFound):
        client.get("http://origin/nope")


def test_bad_proxy_request_rejected():
    # A relative-URI request straight at the proxy is a client error.
    from tests.helpers import one_request, get

    client, proxy, origin, store, net = proxy_world()
    runtime = client.runtime
    response = runtime.run(one_request(("proxy", 3128), get("/not-absolute")))
    assert response.status == 400


def test_validation():
    with pytest.raises(ValueError):
        ProxyApp(cache_bytes=-1)
    with pytest.raises(ValueError):
        ProxyApp(default_ttl=-1)
