"""The same storage server over real localhost sockets."""

from repro.concurrency import ThreadRuntime
from repro.http import Headers, Request, decode_byteranges
from repro.http.multipart import content_type_boundary
from repro.server import ObjectStore, StorageApp, real_server

from tests.helpers import get, http_exchange, one_request, put


def test_real_get_put_delete_cycle():
    store = ObjectStore()
    app = StorageApp(store)
    runtime = ThreadRuntime()
    with real_server(app) as server:
        endpoint = ("127.0.0.1", server.port)
        created = runtime.run(one_request(endpoint, put("/x", b"hello")))
        assert created.status == 201
        got = runtime.run(one_request(endpoint, get("/x")))
        assert got.status == 200
        assert got.body == b"hello"
        gone = runtime.run(
            one_request(endpoint, Request("DELETE", "/x"))
        )
        assert gone.status == 204
        missing = runtime.run(one_request(endpoint, get("/x")))
        assert missing.status == 404


def test_real_multirange_over_sockets():
    store = ObjectStore()
    store.put("/x", bytes(range(200)))
    app = StorageApp(store)
    runtime = ThreadRuntime()
    with real_server(app) as server:
        endpoint = ("127.0.0.1", server.port)
        response = runtime.run(
            one_request(
                endpoint,
                get("/x", Headers([("Range", "bytes=0-1,100-101")])),
            )
        )
        assert response.status == 206
        boundary = content_type_boundary(response.content_type)
        parts = decode_byteranges(response.body, boundary)
        assert [(p.offset, p.data) for p in parts] == [
            (0, bytes([0, 1])),
            (100, bytes([100, 101])),
        ]


def test_real_keepalive_multiple_requests():
    store = ObjectStore()
    store.put("/x", b"abc" * 1000)
    app = StorageApp(store)
    runtime = ThreadRuntime()
    with real_server(app) as server:
        endpoint = ("127.0.0.1", server.port)
        responses = runtime.run(
            http_exchange(endpoint, [get("/x") for _ in range(5)])
        )
        assert [r.status for r in responses] == [200] * 5
        assert all(r.body == b"abc" * 1000 for r in responses)
        assert app.requests_handled == 5


def test_real_large_streamed_body():
    store = ObjectStore()
    payload = bytes(range(256)) * 8192  # 2 MiB
    store.put("/big", payload)
    app = StorageApp(store)
    runtime = ThreadRuntime()
    with real_server(app) as server:
        endpoint = ("127.0.0.1", server.port)
        response = runtime.run(one_request(endpoint, get("/big")))
        assert response.status == 200
        assert response.body == payload
