"""Tests for PROPFIND multistatus building/parsing."""

import pytest

from repro.errors import HttpParseError
from repro.server import DavResource, build_multistatus, parse_multistatus


def test_roundtrip_file_and_collection():
    resources = [
        DavResource(href="/dir/", is_collection=True),
        DavResource(
            href="/dir/file.root",
            is_collection=False,
            size=700_000_000,
            mtime=1_400_000_000.0,
            etag='"abc"',
        ),
    ]
    parsed = parse_multistatus(build_multistatus(resources))
    assert len(parsed) == 2
    assert parsed[0].is_collection
    assert parsed[0].href == "/dir/"
    assert parsed[1].size == 700_000_000
    assert parsed[1].mtime == 1_400_000_000.0
    assert parsed[1].etag == '"abc"'
    assert parsed[1].name == "file.root"


def test_resource_name_of_collection_href():
    assert DavResource(href="/a/b/", is_collection=True).name == "b"


def test_parse_rejects_garbage():
    with pytest.raises(HttpParseError):
        parse_multistatus(b"this is not xml")
    with pytest.raises(HttpParseError):
        parse_multistatus(b"<wrong/>")


def test_parse_tolerates_missing_optionals():
    body = build_multistatus(
        [DavResource(href="/x", is_collection=False, size=5)]
    )
    parsed = parse_multistatus(body)[0]
    assert parsed.size == 5
    assert parsed.mtime is None
    assert parsed.etag is None
