"""Tests for the fault-injection policy."""

import pytest

from repro.server import FaultPolicy


def test_no_faults_by_default():
    policy = FaultPolicy()
    assert all(policy.next_action("/x") is None for _ in range(100))


def test_broken_path_always_errors():
    policy = FaultPolicy(error_status=503)
    policy.break_path("/dead")
    for _ in range(5):
        action = policy.next_action("/dead")
        assert action.kind == "error"
        assert action.status == 503
    assert policy.next_action("/alive") is None
    policy.heal_path("/dead")
    assert policy.next_action("/dead") is None


def test_rates_are_deterministic_per_seed():
    def rolls(seed):
        policy = FaultPolicy(
            error_rate=0.2, reset_rate=0.1, slow_rate=0.3, seed=seed
        )
        return [
            getattr(policy.next_action("/x"), "kind", None)
            for _ in range(50)
        ]

    assert rolls(1) == rolls(1)
    assert rolls(1) != rolls(2)


def test_rates_approximately_respected():
    policy = FaultPolicy(error_rate=0.5, seed=3)
    kinds = [
        getattr(policy.next_action("/x"), "kind", None)
        for _ in range(2000)
    ]
    errors = kinds.count("error")
    assert 850 < errors < 1150


def test_slow_action_carries_delay():
    policy = FaultPolicy(slow_rate=1.0, slow_delay=2.5, seed=0)
    action = policy.next_action("/x")
    assert action.kind == "slow"
    assert action.delay == 2.5


def test_counters():
    policy = FaultPolicy(error_rate=1.0, seed=0)
    policy.next_action("/x")
    policy.next_action("/x")
    assert policy.injected["error"] == 2


def test_rate_validation():
    with pytest.raises(ValueError):
        FaultPolicy(error_rate=1.5)
    with pytest.raises(ValueError):
        FaultPolicy(reset_rate=-0.1)
