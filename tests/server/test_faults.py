"""Tests for the fault-injection policy."""

import pytest

from repro.server import FaultPolicy


def test_no_faults_by_default():
    policy = FaultPolicy()
    assert all(policy.next_action("/x") is None for _ in range(100))


def test_broken_path_always_errors():
    policy = FaultPolicy(error_status=503)
    policy.break_path("/dead")
    for _ in range(5):
        action = policy.next_action("/dead")
        assert action.kind == "error"
        assert action.status == 503
    assert policy.next_action("/alive") is None
    policy.heal_path("/dead")
    assert policy.next_action("/dead") is None


def test_rates_are_deterministic_per_seed():
    def rolls(seed):
        policy = FaultPolicy(
            error_rate=0.2, reset_rate=0.1, slow_rate=0.3, seed=seed
        )
        return [
            getattr(policy.next_action("/x"), "kind", None)
            for _ in range(50)
        ]

    assert rolls(1) == rolls(1)
    assert rolls(1) != rolls(2)


def test_rates_approximately_respected():
    policy = FaultPolicy(error_rate=0.5, seed=3)
    kinds = [
        getattr(policy.next_action("/x"), "kind", None)
        for _ in range(2000)
    ]
    errors = kinds.count("error")
    assert 850 < errors < 1150


def test_slow_action_carries_delay():
    policy = FaultPolicy(slow_rate=1.0, slow_delay=2.5, seed=0)
    action = policy.next_action("/x")
    assert action.kind == "slow"
    assert action.delay == 2.5


def test_counters():
    policy = FaultPolicy(error_rate=1.0, seed=0)
    policy.next_action("/x")
    policy.next_action("/x")
    assert policy.injected["error"] == 2


def test_rate_validation():
    with pytest.raises(ValueError):
        FaultPolicy(error_rate=1.5)
    with pytest.raises(ValueError):
        FaultPolicy(reset_rate=-0.1)


# -- stateful-reuse regressions ------------------------------------------------
#
# A FaultPolicy instance carries mutable state (the RNG stream and the
# injection counters). Reusing one across runs used to leak the first
# run's RNG position into the second, silently breaking determinism.


def test_reset_rewinds_rng_and_counters():
    policy = FaultPolicy(
        error_rate=0.2, reset_rate=0.1, slow_rate=0.3, seed=5
    )
    first = [
        getattr(policy.next_action("/x"), "kind", None)
        for _ in range(40)
    ]
    injected_first = policy.snapshot()
    assert sum(injected_first.values()) > 0

    policy.reset()
    assert policy.snapshot() == {"error": 0, "reset": 0, "slow": 0}
    second = [
        getattr(policy.next_action("/x"), "kind", None)
        for _ in range(40)
    ]
    assert first == second
    assert policy.snapshot() == injected_first


def test_reset_matches_fresh_instance():
    recycled = FaultPolicy(error_rate=0.4, seed=9)
    for _ in range(25):
        recycled.next_action("/x")
    recycled.reset()
    fresh = FaultPolicy(error_rate=0.4, seed=9)
    for _ in range(25):
        assert (
            getattr(recycled.next_action("/x"), "kind", None)
            == getattr(fresh.next_action("/x"), "kind", None)
        )


def test_snapshot_is_a_copy():
    policy = FaultPolicy(error_rate=1.0, seed=0)
    policy.next_action("/x")
    snap = policy.snapshot()
    snap["error"] = 99
    assert policy.snapshot() == {"error": 1, "reset": 0, "slow": 0}


def test_concurrent_next_action_is_consistent():
    """Threaded servers share one policy: counters must not lose
    updates and every thread must draw from the one RNG stream."""
    import threading

    policy = FaultPolicy(
        error_rate=0.3, reset_rate=0.2, slow_rate=0.1, seed=2
    )
    per_thread = 500
    n_threads = 8
    results = [[] for _ in range(n_threads)]

    def worker(bucket):
        for _ in range(per_thread):
            bucket.append(policy.next_action("/x"))

    threads = [
        threading.Thread(target=worker, args=(results[i],))
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    injected = policy.snapshot()
    fired = [
        action
        for bucket in results
        for action in bucket
        if action is not None
    ]
    # No lost counter updates under contention.
    assert sum(injected.values()) == len(fired)
    for kind in ("error", "reset", "slow"):
        assert injected[kind] == sum(
            1 for action in fired if action.kind == kind
        )
