"""tools/bench_diff.py: the CI p50 regression gate."""

import io
import json
import sys

import pytest

sys.path.insert(0, "tools")

import bench_diff  # noqa: E402


def artifact(tmp_path, name, p50s):
    path = tmp_path / name
    path.write_text(
        json.dumps(
            {
                "bench": name,
                "configs": {
                    label: {
                        "samples": [],
                        "summary": (
                            {"mean": p50, "n": 1, "p50": p50, "p95": p50}
                            if p50 is not None
                            else {}
                        ),
                    }
                    for label, p50 in p50s.items()
                },
            }
        )
    )
    return str(path)


def test_identical_artifacts_pass(tmp_path):
    base = artifact(tmp_path, "base.json", {"a": 1.0, "b": 2.0})
    assert bench_diff.main([base, base]) == 0


def test_regression_beyond_threshold_fails(tmp_path):
    base = artifact(tmp_path, "base.json", {"a": 1.0})
    cur = artifact(tmp_path, "cur.json", {"a": 1.2})
    assert bench_diff.main([base, cur, "--threshold", "0.15"]) == 1
    # A looser gate lets the same drift through.
    assert bench_diff.main([base, cur, "--threshold", "0.25"]) == 0


def test_improvement_never_fails(tmp_path):
    base = artifact(tmp_path, "base.json", {"a": 1.0})
    cur = artifact(tmp_path, "cur.json", {"a": 0.1})
    assert bench_diff.main([base, cur]) == 0


def test_missing_configs_are_reported_not_failed(tmp_path):
    base = bench_diff.load_p50s(
        artifact(tmp_path, "base.json", {"a": 1.0, "gone": 1.0})
    )
    cur = bench_diff.load_p50s(
        artifact(tmp_path, "cur.json", {"a": 1.0, "new": 9.0})
    )
    out = io.StringIO()
    assert bench_diff.diff(base, cur, 0.15, out=out) == 0
    text = out.getvalue()
    assert "gone: only in baseline (skipped)" in text
    assert "new: only in current (skipped)" in text


def test_zero_or_absent_baseline_p50_skipped(tmp_path):
    base = bench_diff.load_p50s(
        artifact(tmp_path, "base.json", {"zero": 0.0, "empty": None})
    )
    cur = bench_diff.load_p50s(
        artifact(tmp_path, "cur.json", {"zero": 5.0, "empty": 5.0})
    )
    out = io.StringIO()
    assert bench_diff.diff(base, cur, 0.15, out=out) == 0
    assert out.getvalue().count("no comparable p50 (skipped)") == 2


def test_diff_lines_show_percent_change(tmp_path):
    base = bench_diff.load_p50s(artifact(tmp_path, "b.json", {"a": 1.0}))
    cur = bench_diff.load_p50s(artifact(tmp_path, "c.json", {"a": 1.1}))
    out = io.StringIO()
    bench_diff.diff(base, cur, 0.15, out=out)
    assert "a: p50 1 -> 1.1 (+10.0%) ok" in out.getvalue()


def test_negative_threshold_rejected(tmp_path):
    base = artifact(tmp_path, "base.json", {"a": 1.0})
    with pytest.raises(SystemExit):
        bench_diff.main([base, base, "--threshold", "-0.1"])


def test_committed_baselines_self_compare_clean():
    """The artifacts CI diffs against must be self-consistent."""
    for name in ("BENCH_vectored_io.json", "BENCH_keepalive_pool.json"):
        path = f"benchmarks/results/{name}"
        p50s = bench_diff.load_p50s(path)
        assert p50s, f"{name} has no configs"
        assert bench_diff.diff(p50s, p50s, 0.0, out=io.StringIO()) == 0
