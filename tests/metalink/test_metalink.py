"""Tests for the Metalink model, writer and parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MetalinkError
from repro.metalink import (
    Metalink,
    MetalinkFile,
    MetalinkUrl,
    parse_metalink,
    write_metalink,
)


def sample_doc():
    return Metalink(
        files=[
            MetalinkFile(
                name="data.root",
                size=700_000_000,
                hashes={"adler32": "0a1b2c3d", "md5": "d" * 32},
                urls=[
                    MetalinkUrl(
                        "http://cern/data.root", priority=1, location="ch"
                    ),
                    MetalinkUrl("http://bnl/data.root", priority=2),
                ],
            )
        ]
    )


def test_roundtrip():
    doc = parse_metalink(write_metalink(sample_doc()))
    entry = doc.single()
    assert entry.name == "data.root"
    assert entry.size == 700_000_000
    assert entry.checksum("adler32") == "0a1b2c3d"
    assert entry.checksum("MD5") == "d" * 32
    assert [u.url for u in entry.urls] == [
        "http://cern/data.root",
        "http://bnl/data.root",
    ]
    assert entry.urls[0].location == "ch"


def test_ordered_urls_sorts_by_priority_stably():
    entry = MetalinkFile(
        name="f",
        urls=[
            MetalinkUrl("http://c", priority=5),
            MetalinkUrl("http://a", priority=1),
            MetalinkUrl("http://b", priority=5),
        ],
    )
    assert [u.url for u in entry.ordered_urls()] == [
        "http://a",
        "http://c",
        "http://b",
    ]


def test_model_validation():
    with pytest.raises(MetalinkError):
        MetalinkUrl("")
    with pytest.raises(MetalinkError):
        MetalinkUrl("http://x", priority=0)
    with pytest.raises(MetalinkError):
        MetalinkFile(name="")
    with pytest.raises(MetalinkError):
        MetalinkFile(name="x", size=-1)


def test_single_requires_exactly_one_file():
    with pytest.raises(MetalinkError):
        Metalink(files=[]).single()


def test_parse_rejects_garbage():
    with pytest.raises(MetalinkError):
        parse_metalink(b"not xml at all <")
    with pytest.raises(MetalinkError):
        parse_metalink(b"<wrongroot/>")


def test_parse_rejects_structural_violations():
    ns = "urn:ietf:params:xml:ns:metalink"
    with pytest.raises(MetalinkError):
        parse_metalink(
            f'<metalink xmlns="{ns}"><file><url>http://x</url></file>'
            f"</metalink>".encode()
        )  # file without name
    with pytest.raises(MetalinkError):
        parse_metalink(
            f'<metalink xmlns="{ns}"><file name="f"><url></url></file>'
            f"</metalink>".encode()
        )  # empty url
    with pytest.raises(MetalinkError):
        parse_metalink(
            f'<metalink xmlns="{ns}"><file name="f"><size>abc</size>'
            f"</file></metalink>".encode()
        )  # non-numeric size


def test_generator_field_roundtrip():
    doc = sample_doc()
    doc.generator = "test-gen/9"
    assert parse_metalink(write_metalink(doc)).generator == "test-gen/9"


names = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N"), whitelist_characters="._-"
    ),
    min_size=1,
    max_size=30,
)


@given(
    names,
    st.integers(min_value=0, max_value=10**15),
    st.lists(
        st.tuples(st.integers(1, 99), names), min_size=1, max_size=8
    ),
)
def test_roundtrip_property(name, size, url_specs):
    doc = Metalink(
        files=[
            MetalinkFile(
                name=name,
                size=size,
                urls=[
                    MetalinkUrl(f"http://host/{path}", priority=priority)
                    for priority, path in url_specs
                ],
            )
        ]
    )
    parsed = parse_metalink(write_metalink(doc)).single()
    assert parsed.name == name
    assert parsed.size == size
    assert [(u.priority, u.url) for u in parsed.urls] == [
        (priority, f"http://host/{path}")
        for priority, path in url_specs
    ]
