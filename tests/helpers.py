"""Shared test helpers: a minimal effect-based HTTP client and sim
world builders (used to exercise the server before/beside the davix
client)."""

from __future__ import annotations

from repro.concurrency import Close, Connect, Recv, Send, SimRuntime
from repro.errors import ConnectionClosed
from repro.http import (
    CONNECTION_CLOSED,
    NEED_DATA,
    Data,
    EndOfMessage,
    HttpParser,
    Request,
    Response,
    serialize_request,
)
from repro.net import LinkSpec, Network
from repro.sim import Environment


def read_response(channel, parser):
    """Effect sub-op: read one complete response."""
    head = None
    body = bytearray()
    while True:
        event = parser.next_event()
        if event == NEED_DATA:
            data = yield Recv(channel)
            parser.receive_data(data)
            continue
        if event == CONNECTION_CLOSED:
            raise ConnectionClosed("server closed mid-exchange")
        if isinstance(event, Response):
            head = event
        elif isinstance(event, Data):
            body.extend(event.data)
        elif isinstance(event, EndOfMessage):
            head.body = bytes(body)
            return head


def http_exchange(endpoint, requests, options=None):
    """Effect op: send ``requests`` on one connection, sequentially."""
    channel = yield Connect(endpoint, options)
    parser = HttpParser("client")
    responses = []
    for request in requests:
        request.headers.setdefault("Host", endpoint[0])
        parser.expect_response_to(request.method)
        yield Send(channel, serialize_request(request))
        response = yield from read_response(channel, parser)
        responses.append(response)
    yield Close(channel)
    return responses


def one_request(endpoint, request, options=None):
    """Effect op: single request/response on a fresh connection."""
    responses = yield from http_exchange(endpoint, [request], options)
    return responses[0]


def sim_world(latency=0.001, bandwidth=1e8, seed=0, jitter=0.0):
    """(client_runtime, server_runtime) on a 2-host simulated network."""
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client",
        "server",
        LinkSpec(latency=latency, bandwidth=bandwidth, jitter=jitter),
    )
    return SimRuntime(net, "client"), SimRuntime(net, "server")


def get(path, headers=None):
    return Request("GET", path, headers or {})


def put(path, body, headers=None):
    return Request("PUT", path, headers or {}, body=body)


def davix_world(
    latency=0.001,
    bandwidth=1e8,
    seed=0,
    config=None,
    faults=None,
    replicas=None,
    params=None,
    breaker=None,
):
    """A DavixClient wired to a simulated storage server.

    Returns (client, app, store, server_runtime).
    """
    from repro.core import Context, DavixClient
    from repro.server import HttpServer, ObjectStore, StorageApp

    client_rt, server_rt = sim_world(
        latency=latency, bandwidth=bandwidth, seed=seed
    )
    store = ObjectStore(clock=server_rt.now)
    app = StorageApp(store, config=config, faults=faults, replicas=replicas)
    HttpServer(server_rt, app, port=80).start()
    context = Context(params=params, breaker=breaker)
    client = DavixClient(client_rt, context=context)
    return client, app, store, server_rt
