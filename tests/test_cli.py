"""CLI tests against a live localhost server."""

import io

import pytest

from repro.cli import COMMANDS, build_parser, main
from repro.server import ObjectStore, StorageApp, real_server


@pytest.fixture()
def live():
    store = ObjectStore()
    app = StorageApp(store)
    with real_server(app) as server:
        yield f"http://127.0.0.1:{server.port}", store, app


def run_cli(argv, out=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    sink = out if out is not None else io.StringIO()
    code = COMMANDS[args.command](args, out=sink)
    return code, sink.getvalue()


def test_put_then_get(live, tmp_path):
    base, store, app = live
    source = tmp_path / "in.bin"
    source.write_bytes(b"cli-payload")
    code, output = run_cli(["put", f"{base}/data/x.bin", str(source)])
    assert code == 0
    assert "HTTP 201" in output
    assert store.read("/data/x.bin") == b"cli-payload"

    target = tmp_path / "out.bin"
    code, output = run_cli(["get", f"{base}/data/x.bin", str(target)])
    assert code == 0
    assert target.read_bytes() == b"cli-payload"


def test_ls_and_stat(live, tmp_path):
    base, store, app = live
    store.put("/dir/a.bin", b"12345")
    store.put("/dir/b.bin", b"1")
    code, output = run_cli(["ls", f"{base}/dir"])
    assert code == 0
    assert output.split() == ["a.bin", "b.bin"]

    code, output = run_cli(["ls", "--long", f"{base}/dir"])
    assert "- " in output and " 5 " in output.replace("    ", " ")

    code, output = run_cli(["stat", f"{base}/dir/a.bin"])
    assert "size:  5" in output
    assert "type:  file" in output


def test_rm_and_mkdir(live):
    base, store, app = live
    store.put("/x", b"gone soon")
    code, _ = run_cli(["rm", f"{base}/x"])
    assert code == 0
    assert not store.exists("/x")

    code, _ = run_cli(["mkdir", f"{base}/newdir"])
    assert code == 0
    assert store.is_collection("/newdir")


def test_metalink_command(live):
    base, store, app = live
    store.put("/f", b"content")
    app.replicas["/f"] = [f"{base}/f", "http://mirror/f"]
    code, output = run_cli(["metalink", f"{base}/f"])
    assert code == 0
    assert "size: 7" in output
    assert "replica[1]:" in output
    assert "http://mirror/f" in output


def test_get_with_failover_flag(live):
    base, store, app = live
    store.put("/f", b"fail-over me")
    app.replicas["/f"] = [f"{base}/f"]
    code, output = run_cli(["get", "--failover", f"{base}/f", "/dev/null"])
    assert code == 0


def test_vec_summary_output(live):
    base, store, app = live
    store.put("/big", bytes(range(256)) * 256)
    code, output = run_cli(
        ["vec", f"{base}/big", "0:16", "1024:32", "4096:8"]
    )
    assert code == 0
    assert "0:16 -> 16 bytes" in output
    assert "1024:32 -> 32 bytes" in output
    assert "4096:8 -> 8 bytes" in output
    assert "round trips: 1" in output


def test_vec_output_file_and_inflight_flags(live, tmp_path):
    base, store, app = live
    payload = bytes(range(256)) * 256
    store.put("/big", payload)
    target = tmp_path / "frags.bin"
    code, output = run_cli(
        [
            "--inflight",
            "2",
            "vec",
            f"{base}/big",
            "0:16",
            "65000:32",
            "-o",
            str(target),
        ]
    )
    assert code == 0
    assert target.read_bytes() == payload[0:16] + payload[65000:65032]
    assert "48 bytes (2 fragments)" in output


def test_vec_read_ahead_flag(live, tmp_path):
    base, store, app = live
    payload = bytes(range(256)) * 256
    store.put("/big", payload)
    target = tmp_path / "ra.bin"
    code, output = run_cli(
        [
            "--inflight",
            "2",
            "--read-ahead",
            "vec",
            f"{base}/big",
            "0:16",
            "65000:32",
            "-o",
            str(target),
        ]
    )
    assert code == 0
    assert target.read_bytes() == payload[0:16] + payload[65000:65032]


def test_vec_rejects_malformed_range(live):
    base, store, app = live
    with pytest.raises(SystemExit):
        run_cli(["vec", f"{base}/big", "banana"])


def test_inflight_flag_sets_transfer_config():
    from repro.cli import _client

    args = build_parser().parse_args(["--inflight", "7", "stats"])
    client = _client(args)
    transfer = client.context.params.effective_transfer()
    assert transfer.max_inflight == 7
    assert transfer.read_ahead is False
    assert client.context.params.multistream_max_streams == 7

    args = build_parser().parse_args(["--read-ahead", "stats"])
    client = _client(args)
    transfer = client.context.params.effective_transfer()
    assert transfer.read_ahead is True
    # --read-ahead alone must not narrow the multistream default.
    assert client.context.params.multistream_max_streams == 4

    args = build_parser().parse_args(["stats"])
    client = _client(args)
    assert client.context.params.transfer is None
    assert client.context.params.effective_transfer().max_inflight == 1


def test_deprecated_parallel_flags_removed():
    """--parallel / --max-inflight finished their deprecation cycle;
    the parser now rejects them outright."""
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--parallel", "stats"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--max-inflight", "7", "stats"])


def test_main_reports_errors(live, capsys):
    base, store, app = live
    assert main(["stat", f"{base}/missing"]) == 1
    assert "davix-tool:" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_same_server_copy_and_move(live):
    base, store, app = live
    store.put("/a", b"data")
    code, output = run_cli(["copy", f"{base}/a", f"{base}/b"])
    assert code == 0
    assert store.read("/b") == b"data"
    code, output = run_cli(["copy", "--move", f"{base}/b", f"{base}/c"])
    assert code == 0
    assert store.read("/c") == b"data"
    assert not store.exists("/b")


def test_cli_third_party_copy():
    from repro.server import ObjectStore, StorageApp, real_server

    src_store = ObjectStore()
    src_store.put("/payload", b"tpc-bytes")
    with real_server(StorageApp(src_store)) as source:
        with real_server(StorageApp(ObjectStore())) as target:
            target_app = target.app
            code, output = run_cli(
                [
                    "copy",
                    f"http://127.0.0.1:{source.port}/payload",
                    f"http://127.0.0.1:{target.port}/copied",
                ]
            )
            assert code == 0
            assert "third-party" in output
            assert target_app.store.read("/copied") == b"tpc-bytes"


def test_cli_third_party_copy_push_with_streams():
    from repro.server import ObjectStore, StorageApp, real_server

    src_store = ObjectStore()
    src_store.put("/payload", b"push-bytes" * 1000)
    with real_server(StorageApp(src_store)) as source:
        with real_server(StorageApp(ObjectStore())) as target:
            target_app = target.app
            code, output = run_cli(
                [
                    "copy",
                    "--mode",
                    "push",
                    "--streams",
                    "2",
                    f"http://127.0.0.1:{source.port}/payload",
                    f"http://127.0.0.1:{target.port}/copied",
                ]
            )
            assert code == 0
            assert "push" in output
            assert (
                target_app.store.read("/copied") == b"push-bytes" * 1000
            )


def test_cli_get_through_proxy():
    """The --proxy flag routes traffic through a caching proxy."""
    from repro.server import (
        HttpServer,
        ObjectStore,
        ProxyApp,
        StorageApp,
        real_server,
    )
    from repro.concurrency import ThreadRuntime

    origin_store = ObjectStore()
    origin_store.put("/x", b"via-proxy")
    with real_server(StorageApp(origin_store)) as origin:
        proxy_app = ProxyApp()
        runtime = ThreadRuntime()
        proxy = HttpServer(runtime, proxy_app, port=0, host="127.0.0.1")
        proxy.start()
        try:
            code, output = run_cli(
                [
                    "--proxy",
                    f"http://127.0.0.1:{proxy.port}",
                    "get",
                    f"http://127.0.0.1:{origin.port}/x",
                    "/dev/null",
                ]
            )
            assert code == 0
            assert proxy_app.stats["misses"] == 1
        finally:
            proxy.stop()


def trace_artifact(tmp_path, name="trace.jsonl", scale=1.0):
    """A two-node artifact in canonical JSONL, written to disk."""
    import json

    trace = "0" * 24 + "deadbeef"
    records = [
        {"type": "span", "node": "client", "name": "request",
         "trace": trace, "span": "a1", "parent": None,
         "remote": False, "start": 0.0, "end": 1.0 * scale,
         "attrs": {}},
        {"type": "span", "node": "server", "name": "server-request",
         "trace": trace, "span": "b2", "parent": "a1",
         "remote": True, "start": 0.2, "end": 0.8 * scale,
         "attrs": {}},
        {"type": "metrics", "node": "client", "ts": 1.0,
         "series": {
             "provenance.bytes_total{source=network}": 4096,
             "provenance.bytes_total{source=page-cache}": 1024,
         }},
    ]
    path = tmp_path / name
    path.write_text(
        "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
    )
    return str(path)


def test_cli_trace_summarizes_an_artifact(tmp_path):
    path = trace_artifact(tmp_path)
    code, output = run_cli(["trace", path])
    assert code == 0
    assert (
        "collected 3 records, 1 trace(s) (1 single-tree,"
        " 0 orphan span(s)) from nodes: client, server" in output
    )
    assert "critical path" in output
    assert "byte provenance  total delivered=5120" in output
    assert "server-request" in output
    assert output.endswith("\n")


def test_cli_trace_waterfall_flag_renders_every_tree(tmp_path):
    path = trace_artifact(tmp_path)
    _, plain = run_cli(["trace", path])
    _, with_waterfall = run_cli(["trace", path, "--waterfall"])
    assert with_waterfall.count("server:server-request") >= plain.count(
        "server:server-request"
    )


def test_cli_trace_diff_compares_two_artifacts(tmp_path):
    base = trace_artifact(tmp_path, "a.jsonl", scale=1.0)
    slower = trace_artifact(tmp_path, "b.jsonl", scale=2.0)
    code, output = run_cli(["trace", base, "--diff", slower])
    assert code == 0
    assert "a.jsonl" in output and "b.jsonl" in output
    assert output.endswith("\n")
    # The slowed-down artifact moves the compared buckets.
    assert "request" in output
