"""Tests for the v2 ntuple container format.

Round-trip, footer wire format, v1/v2 decoded equality, per-column
compression (including level-0 store), structural validation and the
checksum contract: a corrupted page surfaces as
:class:`~repro.errors.PageChecksumError` before decompression, never as
silent corruption.
"""

import json
import struct
import zlib

import pytest

from repro.concurrency import ThreadRuntime
from repro.errors import PageChecksumError, RootIOError
from repro.rootio import (
    BranchSpec,
    DatasetSpec,
    LocalFetcher,
    NTupleReader,
    TreeFileReader,
    decode_page,
    generate_ntuple_bytes,
    generate_tree_bytes,
    ntuple_meta_from_json,
    write_ntuple_file,
)
from repro.rootio.ntuple import HEADER, NTUPLE_MAGIC


def run(op):
    """Drive an effect sub-op that never does I/O (LocalFetcher)."""
    return ThreadRuntime().run(op)


def arrays_for(n_entries, sizes=(4, 2)):
    return {
        f"col{i}": bytes(
            (j * (3 + 2 * i) + i) % 256 for j in range(n_entries * size)
        )
        for i, size in enumerate(sizes)
    }


def small_ntuple(
    n_entries=250,
    cluster_entries=100,
    page_bytes=64,
    compression=1,
):
    arrays = arrays_for(n_entries)
    blob = write_ntuple_file(
        "events",
        arrays,
        n_entries=n_entries,
        cluster_entries=cluster_entries,
        page_bytes=page_bytes,
        compression=compression,
    )
    return blob, arrays


def open_reader(blob):
    reader = NTupleReader(LocalFetcher(blob))
    meta = run(reader.open())
    return reader, meta


# -- round-trip -------------------------------------------------------------


def test_write_and_open():
    blob, arrays = small_ntuple()
    reader, meta = open_reader(blob)
    assert meta.name == "events"
    assert meta.n_entries == 250
    assert meta.column_names == ["col0", "col1"]
    assert [c.n_entries for c in meta.cluster_list] == [100, 100, 50]
    assert meta.file_size == len(blob)


def test_read_entries_round_trips_every_column():
    blob, arrays = small_ntuple()
    reader, meta = open_reader(blob)
    data = run(reader.read_entries(0, meta.n_entries))
    assert data == arrays


def test_read_entries_sub_range_and_column_selection():
    blob, arrays = small_ntuple()
    reader, meta = open_reader(blob)
    data = run(reader.read_entries(73, 188, branch_names=["col1"]))
    assert list(data) == ["col1"]
    assert data["col1"] == arrays["col1"][73 * 2 : 188 * 2]


def test_lanes_do_not_change_bytes():
    blob, arrays = small_ntuple()
    reader, meta = open_reader(blob)
    serial = run(reader.read_entries(0, meta.n_entries, lanes=1))
    fanned = run(reader.read_entries(0, meta.n_entries, lanes=4))
    assert serial == fanned == arrays


def test_open_costs_exactly_two_fetches():
    """Header read + one ranged footer GET — the separable-footer
    promise (v1 needs the whole index tail scan)."""
    blob, _ = small_ntuple()
    fetcher = LocalFetcher(blob)
    reader = NTupleReader(fetcher)
    run(reader.open())
    assert fetcher.reads == 2


def test_pages_respect_byte_budget_and_cluster_bounds():
    blob, _ = small_ntuple(page_bytes=64)
    _, meta = open_reader(blob)
    for column in meta.columns:
        for page in column.pages:
            assert page.uncompressed <= max(64, column.event_size)
    # validate() enforces no page straddles a cluster; rerun explicitly.
    meta.validate()


# -- per-column compression -------------------------------------------------


def test_per_column_levels_including_store():
    n = 200
    arrays = {
        "noise": bytes((i * 131 + 17) % 256 for i in range(n * 8)),
        "zeros": bytes(n * 8),
    }
    blob = write_ntuple_file(
        "mixed",
        arrays,
        n_entries=n,
        cluster_entries=100,
        page_bytes=256,
        compression={"noise": 0, "zeros": 9},
    )
    reader, meta = open_reader(blob)
    assert meta.column("noise").level == 0
    assert meta.column("zeros").level == 9
    # Store pays only the frame overhead; zlib-9 crushes the zeros.
    assert meta.column("noise").compressed_bytes > n * 8
    assert meta.column("zeros").compressed_bytes < n * 8 // 4
    assert run(reader.read_entries(0, n)) == arrays


def test_scalar_compression_applies_to_every_column():
    blob, _ = small_ntuple(compression=5)
    _, meta = open_reader(blob)
    assert all(column.level == 5 for column in meta.columns)


# -- v1 equivalence ---------------------------------------------------------


def test_v1_and_v2_decode_identically_from_one_spec():
    spec = DatasetSpec(
        name="equiv",
        n_entries=300,
        branches=(
            BranchSpec(name="a", event_size=16, compress_ratio=0.5),
            BranchSpec(name="b", event_size=4, compress_ratio=1.0),
        ),
        basket_entries=50,
    )
    v1 = TreeFileReader(LocalFetcher(generate_tree_bytes(spec)))
    run(v1.open())
    v2 = NTupleReader(
        LocalFetcher(
            generate_ntuple_bytes(spec, cluster_entries=100, page_bytes=512)
        )
    )
    run(v2.open())
    for name in ("a", "b"):
        branch = v1.meta.branch(name)
        want = b"".join(
            run(v1.read_basket(basket)) for basket in branch.baskets
        )
        got = run(v2.read_entries(0, spec.n_entries, branch_names=[name]))
        assert got[name] == want


# -- footer / validation errors ---------------------------------------------


def test_bad_magic_is_typed():
    blob, _ = small_ntuple()
    reader = NTupleReader(LocalFetcher(b"JUNK4567" + blob[8:]))
    with pytest.raises(RootIOError, match="magic"):
        run(reader.open())


def test_truncated_footer_is_typed():
    blob, _ = small_ntuple()
    reader = NTupleReader(LocalFetcher(blob[:-10]))
    with pytest.raises(RootIOError, match="truncated"):
        run(reader.open())


def test_garbage_footer_is_typed():
    blob, _ = small_ntuple()
    magic, footer_offset, footer_len = HEADER.unpack(blob[: HEADER.size])
    bad = blob[:footer_offset] + b"\xff" * footer_len
    with pytest.raises(RootIOError, match="footer"):
        run(NTupleReader(LocalFetcher(bad)).open())


def test_file_shorter_than_header_is_typed():
    with pytest.raises(RootIOError, match="too short"):
        run(NTupleReader(LocalFetcher(b"RNTP")).open())


def test_footer_with_missing_fields_is_typed():
    with pytest.raises(RootIOError, match="malformed"):
        ntuple_meta_from_json({"name": "x"})


@pytest.mark.parametrize(
    "mutate,message",
    [
        # Clusters must tile [0, n_entries) contiguously.
        (lambda d: d["clusters"].pop(0), "cluster"),
        (lambda d: d.__setitem__("n_entries", 999), "entries"),
        # A page that crosses its cluster's end breaks lane independence.
        (
            lambda d: d["columns"][0]["pages"].__setitem__(
                1,
                d["columns"][0]["pages"][1][:3]
                + [150]
                + [150 * d["columns"][0]["event_size"]]
                + d["columns"][0]["pages"][1][5:],
            ),
            "straddles|expected",
        ),
    ],
)
def test_validate_rejects_inconsistent_footers(mutate, message):
    blob, _ = small_ntuple()
    _, footer_offset, footer_len = HEADER.unpack(blob[: HEADER.size])
    doc = json.loads(blob[footer_offset : footer_offset + footer_len])
    mutate(doc)
    with pytest.raises(RootIOError, match=message):
        ntuple_meta_from_json(doc)


def test_write_rejects_misaligned_column():
    with pytest.raises(RootIOError, match="divide"):
        write_ntuple_file("x", {"a": b"12345"}, n_entries=2)


# -- checksum contract ------------------------------------------------------


def test_corrupt_page_raises_checksum_error_not_garbage():
    blob, _ = small_ntuple()
    reader, meta = open_reader(blob)
    page = meta.column("col0").pages[2]
    corrupt = bytearray(blob)
    corrupt[page.offset + page.nbytes - 1] ^= 0xFF
    bad = NTupleReader(LocalFetcher(bytes(corrupt)))
    run(bad.open())
    with pytest.raises(PageChecksumError):
        run(bad.read_entries(0, meta.n_entries))


def test_corrupt_store_page_is_still_caught():
    """Level-0 pages carry no codec integrity data — the page adler32
    is the only guard, and it must fire."""
    n = 120
    arrays = {"a": bytes((i * 7) % 256 for i in range(n * 4))}
    blob = write_ntuple_file(
        "s", arrays, n_entries=n, cluster_entries=60,
        page_bytes=128, compression=0,
    )
    reader, meta = open_reader(blob)
    page = meta.column("a").pages[0]
    corrupt = bytearray(blob)
    # Flip a payload byte (past the 11-byte frame header).
    corrupt[page.offset + 15] ^= 0x01
    bad = NTupleReader(LocalFetcher(bytes(corrupt)))
    run(bad.open())
    with pytest.raises(PageChecksumError):
        run(bad.read_entries(0, n))


def test_decode_page_verify_off_skips_the_checksum():
    blob, arrays = small_ntuple(compression=0)
    _, meta = open_reader(blob)
    page = meta.column("col0").pages[0]
    raw = bytearray(blob[page.offset : page.offset + page.nbytes])
    raw[-1] ^= 0x01  # corrupt a stored payload byte
    with pytest.raises(PageChecksumError):
        decode_page(bytes(raw), page)
    # verify=False lets the (wrong) bytes through — the knob layout
    # runs use, since synthetic content has checksum=0.
    assert len(decode_page(bytes(raw), page, verify=False)) == page.uncompressed


def test_short_page_read_is_typed():
    blob, _ = small_ntuple()
    _, meta = open_reader(blob)
    page = meta.column("col0").pages[0]
    with pytest.raises(RootIOError, match="short page"):
        decode_page(blob[page.offset : page.offset + page.nbytes - 1], page)


def test_header_layout_is_stable():
    assert HEADER.size == 24
    assert struct.calcsize(">8sQQ") == 24
    blob, _ = small_ntuple()
    assert blob[:8] == NTUPLE_MAGIC
    # adler32 in the footer matches the on-disk page bytes.
    _, meta = open_reader(blob)
    page = meta.column("col1").pages[0]
    disk = blob[page.offset : page.offset + page.nbytes]
    assert zlib.adler32(disk) & 0xFFFFFFFF == page.checksum
