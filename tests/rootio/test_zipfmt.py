"""Tests for the basket compression codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RootIOError
from repro.rootio import compress_basket, decompress_basket
from repro.rootio.zipfmt import basket_overhead


def test_roundtrip():
    data = b"event data " * 1000
    blob = compress_basket(data)
    assert decompress_basket(blob) == data
    assert len(blob) < len(data)  # repetitive data compresses


def test_overhead_constant():
    assert basket_overhead() == 11


def test_bad_magic_rejected():
    blob = bytearray(compress_basket(b"data"))
    blob[0:2] = b"XX"
    with pytest.raises(RootIOError):
        decompress_basket(bytes(blob))


def test_truncated_rejected():
    blob = compress_basket(b"data" * 100)
    with pytest.raises(RootIOError):
        decompress_basket(blob[:-5])
    with pytest.raises(RootIOError):
        decompress_basket(blob[:4])


def test_corrupt_payload_rejected():
    blob = bytearray(compress_basket(b"data" * 100))
    blob[15] ^= 0xFF
    with pytest.raises(RootIOError):
        decompress_basket(bytes(blob))


def test_unknown_method_rejected():
    blob = bytearray(compress_basket(b"data"))
    blob[2] = 99
    with pytest.raises(RootIOError):
        decompress_basket(bytes(blob))


@given(st.binary(max_size=20_000), st.integers(min_value=0, max_value=9))
def test_roundtrip_property(data, level):
    assert decompress_basket(compress_basket(data, level=level)) == data
