"""Tests for tree metadata and the container format."""

import pytest

from repro.errors import RootIOError
from repro.rootio import (
    BasketInfo,
    BranchMeta,
    LocalFetcher,
    TreeFileReader,
    TreeMeta,
    write_tree_file,
)
from repro.concurrency import ThreadRuntime


def run(op):
    """Drive an effect sub-op that never does I/O (LocalFetcher)."""
    return ThreadRuntime().run(op)


def small_tree(n_entries=250, basket_entries=100):
    arrays = {
        "px": bytes(
            (i * 3) % 256 for i in range(n_entries * 8)
        ),
        "py": bytes((i * 7) % 256 for i in range(n_entries * 4)),
    }
    blob = write_tree_file(
        "events", arrays, n_entries=n_entries, basket_entries=basket_entries
    )
    return blob, arrays


def test_write_and_open():
    blob, arrays = small_tree()
    reader = TreeFileReader(LocalFetcher(blob))
    meta = run(reader.open())
    assert meta.name == "events"
    assert meta.n_entries == 250
    assert meta.branch_names == ["px", "py"]
    assert meta.branch("px").event_size == 8
    assert meta.branch("py").event_size == 4
    assert len(meta.branch("px").baskets) == 3  # 100+100+50


def test_read_entries_byte_exact():
    blob, arrays = small_tree()
    reader = TreeFileReader(LocalFetcher(blob))
    run(reader.open())
    out = run(reader.read_entries(130, 180))
    assert out["px"] == arrays["px"][130 * 8 : 180 * 8]
    assert out["py"] == arrays["py"][130 * 4 : 180 * 4]


def test_read_entries_single_branch():
    blob, arrays = small_tree()
    reader = TreeFileReader(LocalFetcher(blob))
    run(reader.open())
    out = run(reader.read_entries(0, 250, branch_names=["py"]))
    assert list(out) == ["py"]
    assert out["py"] == arrays["py"]


def test_read_basket_roundtrip():
    blob, arrays = small_tree()
    reader = TreeFileReader(LocalFetcher(blob))
    meta = run(reader.open())
    basket = meta.branch("px").baskets[1]
    raw = run(reader.read_basket(basket))
    assert raw == arrays["px"][100 * 8 : 200 * 8]


def test_bad_magic_rejected():
    blob, _ = small_tree()
    reader = TreeFileReader(LocalFetcher(b"JUNK" + blob[4:]))
    with pytest.raises(RootIOError):
        run(reader.open())


def test_truncated_index_rejected():
    blob, _ = small_tree()
    reader = TreeFileReader(LocalFetcher(blob[:-10]))
    with pytest.raises(RootIOError):
        run(reader.open())


def test_read_before_open_rejected():
    blob, _ = small_tree()
    reader = TreeFileReader(LocalFetcher(blob))
    with pytest.raises(RootIOError):
        run(reader.read_entries(0, 10))


def test_misaligned_branch_rejected():
    with pytest.raises(RootIOError):
        write_tree_file("t", {"x": b"12345"}, n_entries=2)


# -- TreeMeta behaviour --------------------------------------------------------


def make_meta():
    branch = BranchMeta(name="x", event_size=10)
    offset = 24
    for first in range(0, 1000, 100):
        branch.baskets.append(
            BasketInfo(
                offset=offset,
                nbytes=500,
                first_entry=first,
                n_entries=100,
                uncompressed=1000,
            )
        )
        offset += 500
    return TreeMeta(name="t", n_entries=1000, branches=[branch])


def test_basket_for_entry_binary_search():
    meta = make_meta()
    branch = meta.branch("x")
    assert branch.basket_for_entry(0).first_entry == 0
    assert branch.basket_for_entry(99).first_entry == 0
    assert branch.basket_for_entry(100).first_entry == 100
    assert branch.basket_for_entry(999).first_entry == 900
    with pytest.raises(RootIOError):
        branch.basket_for_entry(1000)


def test_baskets_for_entries_window():
    meta = make_meta()
    branch = meta.branch("x")
    assert [
        b.first_entry for b in branch.baskets_for_entries(150, 350)
    ] == [100, 200, 300]
    assert branch.baskets_for_entries(5, 5) == []


def test_segments_for_entries_dedup_sorted():
    meta = make_meta()
    segments = meta.segments_for_entries(0, 250)
    assert segments == [(24, 500), (524, 500), (1024, 500)]


def test_clusters_iteration():
    meta = make_meta()
    windows = list(meta.clusters(300))
    assert windows == [(0, 300), (300, 600), (600, 900), (900, 1000)]
    with pytest.raises(ValueError):
        list(meta.clusters(0))


def test_validate_catches_gaps():
    meta = make_meta()
    bad = meta.branch("x").baskets.pop(3)
    with pytest.raises(RootIOError):
        meta.validate()


def test_unknown_branch_rejected():
    with pytest.raises(RootIOError):
        make_meta().branch("nope")
