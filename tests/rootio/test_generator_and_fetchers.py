"""Tests for dataset generation and the remote fetchers."""

import pytest

from repro.concurrency import SimRuntime, ThreadRuntime
from repro.core import Context
from repro.rootio import (
    BranchSpec,
    DatasetSpec,
    DavixFetcher,
    LocalFetcher,
    TreeFileReader,
    XrootdFetcher,
    generate_tree_bytes,
    generate_tree_layout,
    paper_dataset,
)
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.xrootd import XrdClient, XrdServer, serve_xrootd

from tests.helpers import sim_world


def small_spec(n_entries=300):
    return DatasetSpec(
        name="t",
        n_entries=n_entries,
        branches=(
            BranchSpec("x", event_size=64, compress_ratio=0.5),
            BranchSpec("y", event_size=32, compress_ratio=0.9),
        ),
        basket_entries=100,
        seed=7,
    )


def test_spec_validation():
    with pytest.raises(ValueError):
        BranchSpec("x", event_size=0)
    with pytest.raises(ValueError):
        BranchSpec("x", event_size=10, compress_ratio=0.0)
    with pytest.raises(ValueError):
        DatasetSpec(name="t", n_entries=0, branches=(BranchSpec("x", 1),))
    with pytest.raises(ValueError):
        DatasetSpec(name="t", n_entries=1, branches=())


def test_paper_dataset_matches_quoted_numbers():
    spec = paper_dataset()
    assert spec.n_entries == 12_000
    compressed = spec.approx_compressed_size
    assert 6e8 < compressed < 8e8  # ~700 MB
    scaled = paper_dataset(scale=0.1)
    assert scaled.n_entries == 12_000  # request counts preserved
    assert scaled.approx_compressed_size < compressed / 8


def test_generated_bytes_are_readable_and_sized():
    spec = small_spec()
    blob = generate_tree_bytes(spec)
    reader = TreeFileReader(LocalFetcher(blob))
    meta = ThreadRuntime().run(reader.open())
    assert meta.n_entries == 300
    out = ThreadRuntime().run(reader.read_entries(50, 60))
    assert len(out["x"]) == 10 * 64
    assert len(out["y"]) == 10 * 32


def test_generated_compression_ratio_approximate():
    spec = small_spec(n_entries=2000)
    blob = generate_tree_bytes(spec)
    reader = TreeFileReader(LocalFetcher(blob))
    meta = ThreadRuntime().run(reader.open())
    x = meta.branch("x")
    ratio = x.compressed_bytes / x.uncompressed_bytes
    assert 0.35 < ratio < 0.65  # targeted 0.5


def test_generation_is_deterministic():
    assert generate_tree_bytes(small_spec()) == generate_tree_bytes(
        small_spec()
    )


def test_layout_matches_materialised_structure():
    spec = small_spec()
    layout = generate_tree_layout(spec)
    blob = generate_tree_bytes(spec)
    reader = TreeFileReader(LocalFetcher(blob))
    real = ThreadRuntime().run(reader.open())
    assert layout.n_entries == real.n_entries
    assert layout.branch_names == real.branch_names
    for name in layout.branch_names:
        assert len(layout.branch(name).baskets) == len(
            real.branch(name).baskets
        )
    # Sizes statistically close (same ratio target).
    assert layout.compressed_bytes == pytest.approx(
        real.compressed_bytes, rel=0.35
    )


def test_layout_validates():
    layout = generate_tree_layout(paper_dataset(scale=0.01))
    layout.validate()
    assert layout.file_size > 0


def test_davix_fetcher_reads_tree_over_http():
    client_rt, server_rt = sim_world()
    store = ObjectStore()
    spec = small_spec()
    blob = generate_tree_bytes(spec)
    store.put("/t.root", blob)
    HttpServer(server_rt, StorageApp(store), port=80).start()
    context = Context()
    fetcher = DavixFetcher(context, "http://server/t.root")

    def op():
        size = yield from fetcher.size()
        reader = TreeFileReader(fetcher)
        meta = yield from reader.open()
        out = yield from reader.read_entries(120, 140)
        return size, meta.n_entries, out

    size, entries, out = client_rt.run(op())
    assert size == len(blob)
    assert entries == 300
    local = TreeFileReader(LocalFetcher(blob))
    ThreadRuntime().run(local.open())
    expected = ThreadRuntime().run(local.read_entries(120, 140))
    assert out == expected
    # The vectored fetch really was one HTTP request for many baskets.
    assert fetcher.reads == 3  # size + open(2 reads? no: header+index) ...


def test_xrootd_fetcher_reads_tree():
    client_rt, server_rt = sim_world()
    store = ObjectStore()
    spec = small_spec()
    blob = generate_tree_bytes(spec)
    store.put("/t.root", blob)
    serve_xrootd(server_rt, XrdServer(store), port=1094)

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        file = yield from client.open("/t.root")
        fetcher = XrootdFetcher(client, file)
        reader = TreeFileReader(fetcher)
        yield from reader.open()
        out = yield from reader.read_entries(120, 140)
        return out

    out = client_rt.run(op())
    local = TreeFileReader(LocalFetcher(blob))
    ThreadRuntime().run(local.open())
    expected = ThreadRuntime().run(local.read_entries(120, 140))
    assert out == expected


def test_xrootd_fetcher_with_readahead_window():
    client_rt, server_rt = sim_world(latency=0.02)
    store = ObjectStore()
    blob = generate_tree_bytes(small_spec())
    store.put("/t.root", blob)
    serve_xrootd(server_rt, XrdServer(store), port=1094)

    def op():
        client = yield from XrdClient.connect(("server", 1094))
        file = yield from client.open("/t.root")
        fetcher = XrootdFetcher(client, file, window_bytes=1 << 20)
        reader = TreeFileReader(fetcher)
        meta = yield from reader.open()
        segments = meta.segments_for_entries(0, meta.n_entries)
        fetcher.plan(segments)
        pieces = []
        for offset, length in segments:
            piece = yield from fetcher.fetch(offset, length)
            pieces.append(piece)
        return fetcher.window.stats, len(pieces)

    stats, n = client_rt.run(op())
    assert n == 6  # 3 baskets x 2 branches
    assert stats["hits"] == 6
