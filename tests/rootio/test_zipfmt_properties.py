"""Property tests for the basket/page compression codec.

Invariants of :mod:`repro.rootio.zipfmt` under Hypothesis:

* **round-trip** — every payload survives compress→decompress at
  every level (0 = store, 1-9 = zlib), bit-for-bit;
* **typed failure** — any truncation of a valid frame, and any header
  corruption, surfaces as :class:`RootIOError` (or returns the exact
  original bytes when the flip happens to be harmless); a raw
  ``zlib.error`` must never escape the codec.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RootIOError
from repro.rootio.zipfmt import (
    HEADER,
    basket_overhead,
    compress_basket,
    decompress_basket,
)

payloads = st.binary(min_size=0, max_size=4096)
levels = st.integers(min_value=0, max_value=9)


@settings(max_examples=200, deadline=None)
@given(data=payloads, level=levels)
def test_round_trip_all_levels(data, level):
    blob = compress_basket(data, level=level)
    assert len(blob) >= basket_overhead()
    assert decompress_basket(blob) == data


@settings(max_examples=200, deadline=None)
@given(data=payloads, level=levels)
def test_store_level_is_verbatim(data, level):
    blob = compress_basket(data, level=0)
    assert blob[basket_overhead():] == data
    assert len(blob) == basket_overhead() + len(data)


@settings(max_examples=200, deadline=None)
@given(data=payloads, level=levels, cut=st.integers(min_value=1))
def test_truncation_is_a_typed_error(data, level, cut):
    blob = compress_basket(data, level=level)
    cut = cut % len(blob)  # 0 .. len-1: always strictly shorter
    try:
        decompress_basket(blob[:cut])
    except RootIOError:
        pass
    except zlib.error as exc:  # pragma: no cover - the regression
        pytest.fail(f"zlib.error escaped the codec: {exc}")
    else:
        pytest.fail("truncated frame decoded without error")


@settings(max_examples=300, deadline=None)
@given(
    data=payloads,
    level=levels,
    position=st.integers(min_value=0),
    flip=st.integers(min_value=1, max_value=255),
)
def test_corruption_is_typed_or_harmless(data, level, position, flip):
    """Flipping any byte either raises RootIOError or decodes to the
    original payload — never a raw zlib.error. Exception: a flip in a
    METHOD_STORE *payload* is invisible to the frame (store carries no
    integrity data; the v2 per-page adler32 exists exactly to catch
    this), so there the contract is only length preservation."""
    blob = bytearray(compress_basket(data, level=level))
    position %= len(blob)
    blob[position] ^= flip
    try:
        result = decompress_basket(bytes(blob))
    except RootIOError:
        return
    except zlib.error as exc:  # pragma: no cover - the regression
        pytest.fail(f"zlib.error escaped the codec: {exc}")
    if level == 0 and position >= basket_overhead():
        assert len(result) == len(data)
    else:
        assert result == data


@settings(max_examples=100, deadline=None)
@given(data=payloads)
def test_garbage_header_is_typed(data):
    try:
        decompress_basket(b"XX" + bytes(data))
    except RootIOError:
        pass
    else:
        pytest.fail("bad magic decoded without error")


def test_level_out_of_range_rejected():
    with pytest.raises(ValueError):
        compress_basket(b"x", level=10)
    with pytest.raises(ValueError):
        compress_basket(b"x", level=-1)


def test_header_struct_is_stable():
    """The frame layout is on-disk format: 2s magic, u8 method, two
    u32 lengths, big-endian."""
    assert HEADER.size == 11
    assert basket_overhead() == 11
