"""Tests for the TTreeCache cluster prefetcher."""

import pytest

from repro.concurrency import ThreadRuntime
from repro.errors import RootIOError
from repro.rootio import (
    LocalFetcher,
    TTreeCache,
    TreeFileReader,
    write_tree_file,
)


def run(op):
    return ThreadRuntime().run(op)


def build(n_entries=500, basket_entries=50):
    arrays = {
        "a": bytes((i * 3) % 256 for i in range(n_entries * 4)),
        "b": bytes((i * 5) % 256 for i in range(n_entries * 2)),
    }
    blob = write_tree_file(
        "t", arrays, n_entries=n_entries, basket_entries=basket_entries
    )
    fetcher = LocalFetcher(blob)
    reader = TreeFileReader(fetcher)
    run(reader.open())
    return reader, fetcher, arrays


def read_all(cache, n_entries, arrays):
    def op():
        for entry in range(n_entries):
            record = yield from cache.read_entry(entry)
            assert record["a"] == arrays["a"][entry * 4 : entry * 4 + 4]
            assert record["b"] == arrays["b"][entry * 2 : entry * 2 + 2]
        return True

    return run(op())


def test_sequential_read_correct_and_vectored():
    reader, fetcher, arrays = build()
    fetcher.reads = 0
    cache = TTreeCache(reader, entries_per_cluster=100)
    assert read_all(cache, 500, arrays)
    # 5 clusters -> 5 vectored reads, nothing else.
    assert cache.stats["refills"] == 5
    assert cache.stats["vector_reads"] == 5
    assert cache.stats["single_reads"] == 0
    assert fetcher.reads == 5


def test_learning_phase_uses_single_reads():
    reader, fetcher, arrays = build()
    cache = TTreeCache(
        reader, entries_per_cluster=100, learn_entries=50
    )
    assert read_all(cache, 500, arrays)
    # First cluster (learning, 50 entries): one read per basket
    # (2 branches x 1 basket each); then vectored refills.
    assert cache.stats["single_reads"] == 2
    assert cache.stats["vector_reads"] >= 4


def test_random_access_refills():
    reader, fetcher, arrays = build()
    cache = TTreeCache(reader, entries_per_cluster=100)

    def op():
        first = yield from cache.read_entry(400)
        second = yield from cache.read_entry(0)
        third = yield from cache.read_entry(401)  # within 2nd window? no
        return first, second, third

    run(op())
    # 400 -> refill, 0 -> refill, 401 -> refill (window restarted at 0)
    assert cache.stats["refills"] == 3


def test_subset_of_branches():
    reader, fetcher, arrays = build()
    cache = TTreeCache(
        reader, branch_names=["b"], entries_per_cluster=250
    )

    def op():
        record = yield from cache.read_entry(10)
        return record

    record = run(op())
    assert list(record) == ["b"]
    # Only branch b's baskets (covering the window) were fetched.
    expected = sum(
        basket.nbytes
        for basket in reader.meta.branch("b").baskets_for_entries(10, 260)
    )
    assert cache.stats["bytes_fetched"] == expected


def test_out_of_range_entry_rejected():
    reader, fetcher, arrays = build()
    cache = TTreeCache(reader)

    def op():
        yield from cache.read_entry(10_000)

    with pytest.raises(RootIOError):
        run(op())


def test_decode_off_returns_none_payloads():
    reader, fetcher, arrays = build()
    cache = TTreeCache(reader, decode=False, entries_per_cluster=100)

    def op():
        record = yield from cache.read_entry(0)
        return record

    record = run(op())
    assert record == {"a": None, "b": None}
    assert cache.stats["bytes_decompressed"] > 0  # accounted, not done


def test_decompression_cpu_model_advances_sim_clock():
    from repro.concurrency import SimRuntime
    from repro.net import LinkSpec, Network
    from repro.server import HttpServer, ObjectStore, StorageApp
    from repro.sim import Environment
    from repro.core import Context
    from repro.rootio import DavixFetcher

    env = Environment()
    net = Network(env)
    net.add_host("client")
    net.add_host("server")
    net.set_route("client", "server", LinkSpec(latency=1e-5, bandwidth=1e10))
    store = ObjectStore()
    arrays = {"a": bytes(500 * 4)}
    blob = write_tree_file("t", arrays, n_entries=500, basket_entries=100)
    store.put("/t.root", blob)
    HttpServer(SimRuntime(net, "server"), StorageApp(store), port=80).start()

    runtime = SimRuntime(net, "client")
    context = Context()

    def op(bandwidth):
        fetcher = DavixFetcher(context, "http://server/t.root")
        reader = TreeFileReader(fetcher)
        yield from reader.open()
        cache = TTreeCache(
            reader,
            entries_per_cluster=100,
            decompress_bandwidth=bandwidth,
        )
        start = runtime.now()
        for entry in range(500):
            yield from cache.read_entry(entry)
        return runtime.now() - start

    slow = runtime.run(op(bandwidth=1e6))
    fast = runtime.run(op(bandwidth=1e12))
    assert slow > fast
    # 5 refills x 400 B uncompressed each at 1 MB/s.
    assert slow - fast == pytest.approx(5 * 400 / 1e6, rel=0.2)


def test_cache_requires_open_reader():
    blob = write_tree_file("t", {"a": bytes(8)}, n_entries=2)
    reader = TreeFileReader(LocalFetcher(blob))
    with pytest.raises(RootIOError):
        TTreeCache(reader)
