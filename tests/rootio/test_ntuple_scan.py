"""Tests for ClusterScan: parallel per-cluster decode lanes.

Correctness (bytes identical to direct page decode, any lane count),
the stats/metrics surface, plan() clamping, decode=False layout runs,
and the timing claim itself: on a latency-dominated link more lanes
mean overlapped refills and a shorter wall clock.
"""

import pytest

from repro.concurrency import SimRuntime, ThreadRuntime
from repro.errors import PageChecksumError, RootIOError
from repro.net import LinkSpec, Network
from repro.obs import MetricsRegistry
from repro.rootio import (
    ClusterScan,
    LocalFetcher,
    NTupleReader,
    write_ntuple_file,
)
from repro.sim import Environment


def run(op):
    return ThreadRuntime().run(op)


def build(n_entries=500, cluster_entries=100, page_bytes=64, compression=1):
    arrays = {
        "a": bytes((i * 3) % 256 for i in range(n_entries * 4)),
        "b": bytes((i * 5) % 256 for i in range(n_entries * 2)),
    }
    blob = write_ntuple_file(
        "t",
        arrays,
        n_entries=n_entries,
        cluster_entries=cluster_entries,
        page_bytes=page_bytes,
        compression=compression,
    )
    fetcher = LocalFetcher(blob)
    reader = NTupleReader(fetcher)
    run(reader.open())
    return reader, fetcher, arrays, blob


def read_all(scan, n_entries, arrays):
    def op():
        for entry in range(n_entries):
            record = yield from scan.read_entry(entry)
            assert record["a"] == arrays["a"][entry * 4 : entry * 4 + 4]
            assert record["b"] == arrays["b"][entry * 2 : entry * 2 + 2]
        return True

    return run(op())


def test_sequential_scan_correct_and_vectored():
    reader, fetcher, arrays, _ = build()
    fetcher.reads = 0
    scan = ClusterScan(reader, lanes=1)
    assert read_all(scan, 500, arrays)
    # 5 clusters, one vectored read each, batched one per refill.
    assert scan.stats["clusters_decoded"] == 5
    assert scan.stats["vector_reads"] == 5
    assert scan.stats["refills"] == 5
    assert fetcher.reads == 5


def test_lane_count_never_changes_bytes():
    reader, _, arrays, _ = build()
    for lanes in (1, 2, 4, 7):
        assert read_all(ClusterScan(reader, lanes=lanes), 500, arrays)


def test_lanes_batch_refills():
    reader, _, arrays, _ = build()
    scan = ClusterScan(reader, lanes=4)
    assert read_all(scan, 500, arrays)
    # 5 clusters / 4 lanes -> 2 refill barriers, all clusters decoded.
    assert scan.stats["refills"] == 2
    assert scan.stats["clusters_decoded"] == 5


def test_column_selection_reads_fewer_bytes():
    reader, _, arrays, _ = build()
    wide = ClusterScan(reader, lanes=2)
    read_all(wide, 500, arrays)
    narrow = ClusterScan(reader, branch_names=["a"], lanes=2)

    def op():
        for entry in range(500):
            record = yield from narrow.read_entry(entry)
            assert list(record) == ["a"]
            assert record["a"] == arrays["a"][entry * 4 : entry * 4 + 4]
        return True

    assert run(op())
    assert narrow.stats["bytes_fetched"] < wide.stats["bytes_fetched"]


def test_plan_clamps_and_orders_spans():
    reader, _, _, _ = build()
    scan = ClusterScan(reader, lanes=2)
    full = scan.plan()
    assert full == sorted(set(full))  # consumption order == disk order here
    clamped = scan.plan(events=150)
    assert set(clamped) <= set(full)
    assert len(clamped) < len(full)
    # Every clamped span serves an entry below 150.
    kept = {
        page.span
        for column in scan.columns
        for page in column.pages_for_entries(0, 150)
    }
    assert set(clamped) == kept
    # The clamp also stops refills: reading past it still works (the
    # window reloads), but the planned spans end at cluster 2.
    assert scan._stop == 150


def test_plan_events_below_one_clamps_to_one():
    reader, _, _, _ = build()
    scan = ClusterScan(reader, lanes=1)
    assert scan.plan(events=0)  # still plans the first cluster
    assert scan._stop == 1


def test_decode_off_returns_none_buffers():
    reader, fetcher, arrays, _ = build()
    scan = ClusterScan(reader, lanes=2, decode=False)

    def op():
        record = yield from scan.read_entry(0)
        return record

    record = run(op())
    assert record == {"a": None, "b": None}
    assert scan.stats["bytes_fetched"] > 0
    assert scan.stats["bytes_decompressed"] > 0  # accounted, not spent


def test_out_of_range_entry_is_typed():
    reader, _, _, _ = build()
    scan = ClusterScan(reader, lanes=1)
    with pytest.raises(RootIOError, match="out of range"):
        run(scan.read_entry(500))


def test_requires_open_reader():
    blob = write_ntuple_file("t", {"a": bytes(8)}, n_entries=2)
    with pytest.raises(RootIOError):
        ClusterScan(NTupleReader(LocalFetcher(blob)))
    reader = NTupleReader(LocalFetcher(blob))
    run(reader.open())
    with pytest.raises(ValueError):
        ClusterScan(reader, lanes=0)


def test_checksum_failure_is_typed_and_counted():
    reader, _, _, blob = build()
    page = reader.meta.column("a").pages[3]
    corrupt = bytearray(blob)
    corrupt[page.offset + page.nbytes // 2] ^= 0x40
    bad = NTupleReader(LocalFetcher(bytes(corrupt)))
    run(bad.open())
    metrics = MetricsRegistry()
    scan = ClusterScan(bad, lanes=2, metrics=metrics)
    with pytest.raises(PageChecksumError):
        read_all(scan, 500, {})
    assert scan.stats["checksum_failures"] == 1
    assert metrics.counter("ntuple.checksum_failures_total").value == 1


def test_metrics_and_phase_histogram():
    reader, _, arrays, _ = build()
    metrics = MetricsRegistry()
    clock = [0.0]

    def tick():
        clock[0] += 1.0
        return clock[0]

    scan = ClusterScan(reader, lanes=2, metrics=metrics, clock=tick)
    read_all(scan, 500, arrays)
    assert metrics.counter("ntuple.clusters_decoded_total").value == 5
    assert metrics.counter("ntuple.bytes_fetched_total").value == scan.stats[
        "bytes_fetched"
    ]
    hist = metrics.histogram("request.phase_seconds", phase="ntuple-decode")
    assert hist.count == scan.stats["refills"]


def test_more_lanes_cut_wall_clock_on_a_slow_link():
    """The perf claim in miniature: refilling 4 clusters concurrently
    over a latency-dominated link beats serial refills."""
    from repro.core import Context
    from repro.rootio import DavixFetcher
    from repro.server import HttpServer, ObjectStore, StorageApp

    arrays = {"a": bytes(1000 * 4)}
    blob = write_ntuple_file(
        "t", arrays, n_entries=1000, cluster_entries=100, page_bytes=256
    )

    def wall(lanes):
        env = Environment()
        net = Network(env)
        net.add_host("client")
        net.add_host("server")
        net.set_route(
            "client", "server", LinkSpec(latency=0.05, bandwidth=1e9)
        )
        store = ObjectStore()
        store.put("/t.ntpl", blob)
        HttpServer(
            SimRuntime(net, "server"), StorageApp(store), port=80
        ).start()
        runtime = SimRuntime(net, "client")
        context = Context()
        context.clock = runtime.now

        def op():
            fetcher = DavixFetcher(context, "http://server/t.ntpl")
            reader = NTupleReader(fetcher)
            yield from reader.open()
            scan = ClusterScan(reader, lanes=lanes)
            start = runtime.now()
            for entry in range(1000):
                yield from scan.read_entry(entry)
            return runtime.now() - start

        return runtime.run(op())

    serial = wall(1)
    fanned = wall(4)
    assert fanned < serial * 0.55  # ~10 RTT-bound refills collapse to ~3


def test_decompress_bandwidth_charges_cpu_time():
    from repro.core import Context
    from repro.rootio import DavixFetcher
    from repro.server import HttpServer, ObjectStore, StorageApp

    arrays = {"a": bytes(200 * 4)}
    blob = write_ntuple_file(
        "t", arrays, n_entries=200, cluster_entries=100, page_bytes=256
    )
    env = Environment()
    net = Network(env)
    net.add_host("client")
    net.add_host("server")
    net.set_route("client", "server", LinkSpec(latency=1e-5, bandwidth=1e10))
    store = ObjectStore()
    store.put("/t.ntpl", blob)
    HttpServer(SimRuntime(net, "server"), StorageApp(store), port=80).start()
    runtime = SimRuntime(net, "client")
    context = Context()
    context.clock = runtime.now

    def op(bandwidth):
        fetcher = DavixFetcher(context, "http://server/t.ntpl")
        reader = NTupleReader(fetcher)
        yield from reader.open()
        scan = ClusterScan(
            reader, lanes=1, decompress_bandwidth=bandwidth
        )
        start = runtime.now()
        for entry in range(200):
            yield from scan.read_entry(entry)
        return runtime.now() - start

    slow = runtime.run(op(1e6))
    fast = runtime.run(op(1e12))
    # 2 serial refills x 400 B uncompressed each at 1 MB/s.
    assert slow - fast == pytest.approx(2 * 400 / 1e6, rel=0.2)
