"""Telemetry pipeline: campaign wide events, determinism and the
HammerCloud-style run report (library, CLI and golden properties)."""

import io

from repro.net.profiles import PROFILES
from repro.obs import SloPolicy, parse_json_lines
from repro.rootio.generator import BranchSpec, DatasetSpec
from repro.workloads import AnalysisConfig, Campaign
from repro.workloads.report import render_report


def tiny_spec(n_entries=200):
    return DatasetSpec(
        name="hep_events",
        n_entries=n_entries,
        branches=(
            BranchSpec("a", event_size=512, compress_ratio=0.5),
            BranchSpec("b", event_size=256, compress_ratio=0.5),
        ),
        basket_entries=100,
        seed=3,
    )


def fast_cfg():
    return AnalysisConfig(per_event_cpu=0.0002, learn_entries=0)


def run_campaign(repetitions=2, protocols=("davix",)):
    campaign = Campaign(
        spec=tiny_spec(),
        config=fast_cfg(),
        repetitions=repetitions,
        base_seed=42,
    )
    profiles = [PROFILES[name] for name in ("lan", "geant", "wan")]
    campaign.run_matrix(profiles, protocols=protocols)
    return campaign


def test_campaign_collects_tagged_wide_events():
    campaign = run_campaign(repetitions=1)
    runs = [e for e in campaign.events if e["kind"] == "run"]
    requests = [e for e in campaign.events if e["kind"] == "request"]
    assert len(runs) == 3  # one per (davix, profile) repetition
    assert requests  # davix repetitions log per-request events
    for event in requests:
        assert event["side"] == "client"
        assert event["protocol"] == "davix"
        assert event["profile"] in ("lan", "geant", "wan")
        assert event["repetition"] == 0
        assert len(event["trace_id"]) == 32
        assert "phase_ttfb" in event


def test_campaign_telemetry_is_deterministic_across_repeats():
    """The acceptance property: two seeded runs of the same 3-profile
    campaign export byte-identical JSONL and render byte-identical
    reports."""
    first = run_campaign()
    second = run_campaign()
    assert first.event_json_lines() == second.event_json_lines()
    assert first.report() == second.report()


def test_report_sections_and_formatting():
    campaign = run_campaign(repetitions=1)
    report = campaign.report()
    lines = report.splitlines()
    assert lines[0] == "HammerCloud run report"
    assert lines[1] == "=" * len(lines[0])
    assert "Executions (wall seconds)" in report
    assert "Phase breakdown (client, mean seconds per request)" in report
    assert "SLO verdicts" in report
    assert "server:80" in report
    assert report.endswith("\n")
    # Every davix cell appears in the executions table.
    for profile in ("lan", "geant", "wan"):
        assert any(
            line.split()[:2] == ["davix", profile] for line in lines
        )


def test_cache_armed_campaign_reports_cache_counters():
    """A campaign whose params arm the page cache emits one ``cache``
    event per davix repetition and the report grows a cache section."""
    from repro.core import RequestParams, TransferConfig

    campaign = Campaign(
        spec=tiny_spec(),
        config=fast_cfg(),
        repetitions=2,
        base_seed=42,
        params=RequestParams(
            transfer=TransferConfig(page_cache_bytes=32 << 20)
        ),
    )
    campaign.run_matrix([PROFILES["wan"]], protocols=("davix",))
    cache_events = [
        e for e in campaign.events if e["kind"] == "cache"
    ]
    assert len(cache_events) == 2  # one per repetition
    for event in cache_events:
        assert event["protocol"] == "davix"
        assert event["profile"] == "wan"
        assert event["hits"] + event["misses"] + event["partial_hits"] > 0
    report = campaign.report()
    assert "Page cache (cache.* counters)" in report
    assert "cache.hit" in report
    assert "cache.origin_bytes_saved" in report
    # Without cache params the section never appears (goldens stable).
    assert "Page cache" not in run_campaign(repetitions=1).report()


def test_tpc_events_grow_a_copy_section():
    """``tpc`` wide events render the per-mode third-party-copy
    rollup; failed transfers count but contribute no bytes."""
    events = [
        {
            "kind": "tpc", "mode": "pull", "ok": True,
            "bytes": 1_000_000, "retries": 1, "throughput": 5e8,
        },
        {
            "kind": "tpc", "mode": "pull", "ok": True,
            "bytes": 1_000_000, "retries": 0, "throughput": 7e8,
        },
        {
            "kind": "tpc", "mode": "push", "ok": False,
            "bytes": 0, "retries": 2, "throughput": 0.0,
        },
    ]
    report = render_report(events)
    assert "Third-party copies (tpc events)" in report
    pull = next(
        line for line in report.splitlines()
        if line.split()[:1] == ["pull"]
    )
    assert pull.split() == [
        "pull", "2", "2", "2000000", "1", "600000000.000000"
    ]
    push = next(
        line for line in report.splitlines()
        if line.split()[:1] == ["push"]
    )
    assert push.split() == ["push", "1", "0", "0", "2", "-"]
    # Without tpc events the section never appears (goldens stable).
    assert "Third-party" not in run_campaign(repetitions=1).report()


def test_report_of_empty_log_is_a_stub():
    assert render_report([]) == (
        "HammerCloud run report\n"
        "======================\n"
        "(no events)\n"
    )


def test_cli_report_matches_library_rendering(tmp_path):
    from repro.cli import build_parser, cmd_report

    campaign = run_campaign(repetitions=1)
    events_path = tmp_path / "events.jsonl"
    events_path.write_text(campaign.event_json_lines() + "\n")

    args = build_parser().parse_args(["report", str(events_path)])
    out = io.StringIO()
    assert cmd_report(args, out=out) == 0
    # The CLI defaults mirror SloPolicy's defaults exactly.
    assert out.getvalue() == campaign.report(policy=SloPolicy())
    assert out.getvalue() == campaign.report()


def test_event_json_lines_roundtrip():
    campaign = run_campaign(repetitions=1)
    parsed = parse_json_lines(campaign.event_json_lines())
    assert len(parsed) == len(campaign.events)
    kinds = {event["kind"] for event in parsed}
    assert kinds == {"run", "request"}


def test_collector_armed_campaign_reports_cluster_telemetry():
    """A campaign wearing a TelemetryCollector grows the cluster
    telemetry section: per-node record counts, trace-assembly health
    and the top critical-path buckets."""
    from repro.obs.collector import TelemetryCollector

    collector = TelemetryCollector()
    campaign = Campaign(
        spec=tiny_spec(),
        config=fast_cfg(),
        repetitions=2,
        base_seed=42,
        collector=collector,
    )
    campaign.run_matrix([PROFILES["lan"]], protocols=("davix",))
    assert len(collector) > 0
    report = campaign.report()
    assert "Cluster telemetry" in report
    assert "orphan_spans=0" in report
    assert "Top critical-path buckets:" in report
    # Client sinks are per (profile, repetition); the server reports
    # under its own node name.
    for node in ("client-lan-r0", "client-lan-r1", "server"):
        assert node in report
    # Without a collector the section never appears (goldens stable).
    assert "Cluster telemetry" not in run_campaign(
        repetitions=1
    ).report()


def test_ntuple_campaign_reports_columnar_scan_counters():
    """A columnar (ntuple-format) campaign with a collector emits one
    ``ntuple`` event per repetition and the report grows the scan
    section; basket-format campaigns never do."""
    from repro.obs.collector import TelemetryCollector
    from repro.workloads import AnalysisConfig

    campaign = Campaign(
        spec=tiny_spec(),
        config=AnalysisConfig(
            per_event_cpu=0.0002, learn_entries=0, format="ntuple"
        ),
        repetitions=2,
        base_seed=42,
        collector=TelemetryCollector(),
    )
    campaign.run_matrix([PROFILES["lan"]], protocols=("davix",))
    scans = [e for e in campaign.events if e["kind"] == "ntuple"]
    assert len(scans) == 2  # one per repetition
    for event in scans:
        assert event["pages_fetched_total"] > 0
        assert event["bytes_fetched_total"] > 0
        assert event["clusters_decoded_total"] > 0
        assert event["decode_seconds"] > 0.0
    report = campaign.report()
    assert "Columnar scan (ntuple.* counters)" in report
    assert "ntuple.pages_fetched" in report
    assert "Columnar scan" not in run_campaign(repetitions=1).report()


def test_collector_campaign_artifact_is_deterministic():
    """Two seeded repeats of a collector-armed campaign export
    byte-identical telemetry JSONL (the CI artifact property)."""
    from repro.obs.collector import TelemetryCollector

    def run():
        campaign = Campaign(
            spec=tiny_spec(),
            config=fast_cfg(),
            repetitions=2,
            base_seed=42,
            collector=TelemetryCollector(),
        )
        campaign.run_matrix([PROFILES["lan"]], protocols=("davix",))
        return campaign

    first, second = run(), run()
    artifact = first.telemetry_json_lines()
    assert artifact
    assert artifact == second.telemetry_json_lines()
    assert first.report() == second.report()
