"""Tests for the analysis job, scenario runner and campaign."""

import pytest

from repro.net.profiles import GEANT, LAN, WAN, NetProfile
from repro.net.link import LinkSpec
from repro.rootio.generator import BranchSpec, DatasetSpec, paper_dataset
from repro.workloads import (
    AnalysisConfig,
    Campaign,
    Scenario,
    run_scenario,
)


def tiny_spec(n_entries=600):
    return DatasetSpec(
        name="hep_events",
        n_entries=n_entries,
        branches=(
            BranchSpec("a", event_size=512, compress_ratio=0.5),
            BranchSpec("b", event_size=256, compress_ratio=0.5),
        ),
        basket_entries=100,
        seed=3,
    )


def fast_cfg(**overrides):
    base = dict(per_event_cpu=0.0002, learn_entries=0)
    base.update(overrides)
    return AnalysisConfig(**base)


def test_config_validation():
    with pytest.raises(ValueError):
        AnalysisConfig(fraction=0.0)
    with pytest.raises(ValueError):
        AnalysisConfig(fraction=1.5)
    with pytest.raises(ValueError):
        AnalysisConfig(per_event_cpu=-1)
    with pytest.raises(ValueError):
        AnalysisConfig(decompress_bandwidth=0)


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(
            profile=LAN,
            protocol="ftp",
            spec=tiny_spec(),
            config=fast_cfg(),
        )


def test_davix_scenario_layout_mode():
    report = run_scenario(
        Scenario(
            profile=LAN,
            protocol="davix",
            spec=tiny_spec(),
            config=fast_cfg(),
        )
    )
    assert report.protocol == "davix"
    assert report.events_read == 600
    assert report.refills == 6  # 600 entries / 100-entry clusters
    assert report.vector_reads == 6
    assert report.wall_seconds > 0
    assert report.bytes_fetched > 0


def test_xrootd_scenario_layout_mode():
    report = run_scenario(
        Scenario(
            profile=LAN,
            protocol="xrootd",
            spec=tiny_spec(),
            config=fast_cfg(),
        )
    )
    assert report.protocol == "xrootd"
    assert report.events_read == 600
    assert report.refills == 6


def test_materialized_run_decodes_real_data():
    report = run_scenario(
        Scenario(
            profile=LAN,
            protocol="davix",
            spec=tiny_spec(),
            config=fast_cfg(decode=True),
            materialize=True,
        )
    )
    assert report.events_read == 600


def test_materialized_and_layout_bytes_are_close():
    layout = run_scenario(
        Scenario(
            profile=LAN, protocol="davix",
            spec=tiny_spec(), config=fast_cfg(),
        )
    )
    real = run_scenario(
        Scenario(
            profile=LAN, protocol="davix",
            spec=tiny_spec(), config=fast_cfg(decode=True),
            materialize=True,
        )
    )
    assert layout.bytes_fetched == pytest.approx(
        real.bytes_fetched, rel=0.35
    )


def test_fraction_limits_events_and_time():
    full = run_scenario(
        Scenario(
            profile=LAN, protocol="davix",
            spec=tiny_spec(), config=fast_cfg(fraction=1.0),
        )
    )
    half = run_scenario(
        Scenario(
            profile=LAN, protocol="davix",
            spec=tiny_spec(), config=fast_cfg(fraction=0.5),
        )
    )
    assert half.events_read == 300
    assert half.wall_seconds < full.wall_seconds
    assert half.refills == 3


def test_learning_phase_counted():
    report = run_scenario(
        Scenario(
            profile=LAN, protocol="davix",
            spec=tiny_spec(), config=fast_cfg(learn_entries=100),
        )
    )
    assert report.single_reads == 2  # 2 branches x 1 basket
    assert report.vector_reads == 5


def test_latency_increases_execution_time():
    times = {}
    for profile in (LAN, WAN):
        report = run_scenario(
            Scenario(
                profile=profile, protocol="davix",
                spec=tiny_spec(), config=fast_cfg(),
            )
        )
        times[profile.name] = report.wall_seconds
    # 6 refills x ~0.28 s RTT difference must show up.
    assert times["wan"] > times["lan"] + 1.0


def test_xrootd_readahead_option_reduces_time_at_high_latency():
    base = fast_cfg(per_event_cpu=0.01)  # compute to overlap with
    with_ra = run_scenario(
        Scenario(
            profile=WAN, protocol="xrootd", spec=tiny_spec(),
            config=base.with_(xrootd_readahead=4 * 1024 * 1024),
        )
    )
    without = run_scenario(
        Scenario(
            profile=WAN, protocol="xrootd", spec=tiny_spec(),
            config=base,
        )
    )
    assert with_ra.wall_seconds < without.wall_seconds


def test_seed_determinism_and_jitter_variation():
    def run(seed):
        return run_scenario(
            Scenario(
                profile=GEANT, protocol="davix",
                spec=tiny_spec(), config=fast_cfg(), seed=seed,
            )
        ).wall_seconds

    assert run(5) == run(5)
    assert run(5) != run(6)  # jitter differs per seed


def test_campaign_matrix_shapes():
    campaign = Campaign(
        spec=tiny_spec(300),
        config=fast_cfg(),
        repetitions=3,
        base_seed=10,
    )
    results = campaign.run_matrix([LAN], protocols=("davix", "xrootd"))
    assert set(results) == {("davix", "lan"), ("xrootd", "lan")}
    cell = results[("davix", "lan")]
    assert len(cell.reports) == 3
    assert cell.minimum <= cell.mean <= cell.maximum
    assert cell.stdev >= 0


def test_campaign_validation():
    with pytest.raises(ValueError):
        Campaign(spec=tiny_spec(), config=fast_cfg(), repetitions=0)


def test_paper_shape_holds():
    """The headline result (on 20 % of the events to keep the test
    quick): parity on LAN, XRootD clearly ahead on the WAN. The
    window-limit mechanism needs full-size clusters, hence scale 1."""
    spec = paper_dataset(scale=1.0)
    cfg = AnalysisConfig(fraction=0.2)
    out = {}
    for profile in (LAN, WAN):
        for protocol in ("davix", "xrootd"):
            report = run_scenario(
                Scenario(
                    profile=profile, protocol=protocol,
                    spec=spec, config=cfg,
                )
            )
            out[(profile.name, protocol)] = report.wall_seconds
    # WAN: xrootd must be clearly faster (window-limited HTTP).
    assert out[("wan", "davix")] > out[("wan", "xrootd")] * 1.05
    # LAN: near parity.
    ratio = out[("lan", "davix")] / out[("lan", "xrootd")]
    assert 0.9 < ratio < 1.1


def test_results_to_csv():
    from repro.workloads import results_to_csv

    campaign = Campaign(
        spec=tiny_spec(200), config=fast_cfg(), repetitions=2
    )
    results = campaign.run_matrix([LAN], protocols=("davix",))
    csv = results_to_csv(results)
    lines = csv.strip().splitlines()
    assert lines[0].startswith("protocol,profile,repetition")
    assert len(lines) == 3  # header + 2 repetitions
    assert lines[1].startswith("davix,lan,0,")
    fields = lines[1].split(",")
    assert float(fields[3]) > 0
    assert int(fields[4]) == 200


def test_if_modified_since_304():
    from repro.http import Headers
    from repro.http.dates import format_http_date
    from tests.helpers import davix_world, get, one_request

    client, app, store, server_rt = davix_world()
    store.put("/x", b"cached")
    mtime = store.get("/x").mtime
    response = client.runtime.run(
        one_request(
            ("server", 80),
            get(
                "/x",
                Headers(
                    [("If-Modified-Since", format_http_date(mtime + 10))]
                ),
            ),
        )
    )
    assert response.status == 304
    fresh = client.runtime.run(
        one_request(
            ("server", 80),
            get(
                "/x",
                Headers(
                    [("If-Modified-Since", format_http_date(mtime - 10))]
                ),
            ),
        )
    )
    assert fresh.status == 200
