"""The redesigned instrumentation-aware public API.

Covers the composition root (Context(params=…, metrics=…, tracer=…)),
the typed PoolStats snapshot plus its deprecation shim, the
RequestParams.replace/per-call-override plumbing, the DavixClient
accessors, and the ``davix-tool stats`` subcommand.
"""

import io

import pytest

from repro.core import Context, DavixClient, PoolStats, RequestParams
from repro.core.pool import SessionPool
from repro.obs import MetricsRegistry, Tracer
from tests.helpers import davix_world


# -- Context composition root -------------------------------------------------


def test_context_owns_registry_and_tracer_by_default():
    context = Context()
    assert isinstance(context.metrics, MetricsRegistry)
    assert isinstance(context.tracer, Tracer)
    # The pool records into the same registry.
    assert context.pool.metrics is context.metrics


def test_context_accepts_injected_registry_and_tracer():
    registry = MetricsRegistry()
    tracer = Tracer()
    context = Context(metrics=registry, tracer=tracer)
    assert context.metrics is registry
    assert context.tracer is tracer
    assert context.pool.metrics is registry


def test_client_rejects_context_plus_metrics():
    from repro.concurrency import ThreadRuntime

    with pytest.raises(ValueError, match="not both"):
        DavixClient(
            ThreadRuntime(), context=Context(), metrics=MetricsRegistry()
        )


def test_client_accessors():
    client, _, store, _ = davix_world()
    assert client.metrics() is client.context.metrics
    assert client.tracer() is client.context.tracer
    assert isinstance(client.pool_stats(), PoolStats)
    store.put("/obj", b"a")
    with client.span("application-step") as span:
        client.get("http://server/obj")
    (request,) = client.tracer().by_name("request")
    assert request.parent_id == span.span_id


def test_tracer_clock_follows_runtime():
    client, _, store, _ = davix_world(latency=0.005)
    store.put("/obj", b"t" * 64)
    client.get("http://server/obj")
    (request,) = client.tracer().by_name("request")
    # Simulated timestamps, not wall-clock zeros.
    assert request.end_time == pytest.approx(
        client.runtime.now(), abs=1.0
    )
    assert request.duration >= 0.005


# -- PoolStats and the deprecation shim ---------------------------------------


def test_pool_stats_callable_returns_frozen_snapshot():
    pool = SessionPool()
    stats = pool.stats()
    assert stats == PoolStats()
    assert stats.acquires == 0
    assert stats.hit_rate == 0.0
    with pytest.raises(AttributeError):
        stats.hits = 5
    pool.acquire(("http", "x", 80))
    assert pool.stats().misses == 1
    assert pool.stats().as_dict()["misses"] == 1


def test_pool_stats_dict_shim_is_gone():
    # The PR-1 deprecation shim was removed after its one-release
    # grace period: ``pool.stats`` is a plain bound method now.
    pool = SessionPool()
    pool.acquire(("http", "x", 80))
    with pytest.raises(TypeError):
        pool.stats["misses"]  # noqa: B018 - asserting the shim is gone
    assert pool.stats().as_dict() == {
        "hits": 0,
        "misses": 1,
        "recycled": 0,
        "discarded": 0,
        "evicted": 0,
    }
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert pool.stats() == pool.stats()


def test_hit_rate_property():
    stats = PoolStats(hits=3, misses=1)
    assert stats.acquires == 4
    assert stats.hit_rate == pytest.approx(0.75)


# -- RequestParams.replace and per-call overrides -----------------------------


def test_request_params_replace():
    params = RequestParams(retries=2, keep_alive=True)
    updated = params.replace(retries=5)
    assert updated.retries == 5
    assert updated.keep_alive is True
    assert params.retries == 2  # original untouched
    # with_ stays as a back-compat alias.
    assert params.with_(retries=5) == updated


def test_request_params_replace_rejects_unknown_field():
    with pytest.raises(TypeError):
        RequestParams().replace(no_such_field=1)


def test_resolve_params_defaults_overrides_and_bundles():
    client, _, _, _ = davix_world(params=RequestParams(retries=3))
    assert client._resolve_params() is client.context.params

    override = client._resolve_params(retries=9)
    assert override.retries == 9
    assert client.context.params.retries == 3

    bundle = RequestParams(retries=1)
    assert client._resolve_params(bundle) is bundle
    assert client._resolve_params(bundle, retries=4).retries == 4


def test_per_call_params_do_not_leak():
    client, app, store, _ = davix_world()
    store.put("/obj", b"p" * 16)
    client.get(
        "http://server/obj", params=RequestParams(keep_alive=False)
    )
    client.get("http://server/obj")
    assert client.context.params.keep_alive is True


# -- davix-tool stats ---------------------------------------------------------


def _run_stats(argv):
    from repro.cli import COMMANDS, build_parser

    args = build_parser().parse_args(argv)
    out = io.StringIO()
    code = COMMANDS[args.command](args, out=out)
    return code, out.getvalue()


def test_cli_stats_sim_demo_renders_registry():
    code, output = _run_stats(["stats"])
    assert code == 0
    assert "simulated demo" in output
    assert "client.requests_total" in output
    assert "pool.acquire_total{outcome=hit}" in output
    assert "session.connect_seconds" in output
    assert "vector.round_trips_total" in output
    assert "hit rate" in output


def test_cli_stats_json_and_trace():
    import json

    code, output = _run_stats(["stats", "--json", "--trace"])
    assert code == 0
    records = [
        json.loads(line) for line in output.splitlines() if line.strip()
    ]
    types = {record["type"] for record in records}
    assert {"counter", "histogram", "span"} <= types
    span_names = {
        record["name"] for record in records if record["type"] == "span"
    }
    assert {"request", "tcp-connect", "send", "recv"} <= span_names


def test_cli_stats_against_live_server():
    from repro.server import ObjectStore, StorageApp, real_server

    store = ObjectStore()
    store.put("/data/x.bin", b"live" * 64)
    with real_server(StorageApp(store)) as server:
        code, output = _run_stats(
            ["stats", f"http://127.0.0.1:{server.port}/data/x.bin"]
        )
    assert code == 0
    assert "256 bytes" in output
    assert "session.connect_total" in output
