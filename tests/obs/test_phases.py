"""PhaseRecorder mark accounting and RequestTimings invariants."""

import pytest

from repro.obs import PHASES, PhaseRecorder, RequestTimings


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_marks_attribute_interval_since_previous_mark():
    clock = FakeClock()
    recorder = PhaseRecorder(clock)
    clock.advance(0.5)
    assert recorder.mark("queue-wait") == 0.5
    clock.advance(0.25)
    recorder.mark("connect")
    timings = recorder.timings()
    assert timings.queue_wait == 0.5
    assert timings.connect == 0.25
    assert timings.tls == 0.0


def test_repeated_marks_accumulate():
    clock = FakeClock()
    recorder = PhaseRecorder(clock)
    clock.advance(1.0)
    recorder.mark("queue-wait")
    clock.advance(2.0)
    recorder.mark("queue-wait")
    assert recorder.timings().queue_wait == 3.0


def test_total_equals_marked_wall_time():
    clock = FakeClock()
    recorder = PhaseRecorder(clock)
    for phase, step in zip(PHASES, (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)):
        clock.advance(step)
        recorder.mark(phase)
    assert recorder.timings().total == pytest.approx(2.8)


def test_add_does_not_move_the_mark():
    clock = FakeClock()
    recorder = PhaseRecorder(clock)
    clock.advance(1.0)
    recorder.add("multipart-decode", 0.05)
    recorder.mark("body-transfer")
    timings = recorder.timings()
    assert timings.multipart_decode == 0.05
    assert timings.body_transfer == 1.0  # the full interval, unshrunk


def test_unknown_phase_rejected():
    recorder = PhaseRecorder(FakeClock())
    with pytest.raises(ValueError):
        recorder.mark("warp-drive")
    with pytest.raises(ValueError):
        recorder.add("warp-drive", 1.0)


def test_elapsed_in_canonical_order():
    clock = FakeClock()
    recorder = PhaseRecorder(clock)
    clock.advance(0.1)
    recorder.mark("ttfb")
    clock.advance(0.1)
    recorder.mark("connect")
    assert [phase for phase, _ in recorder.elapsed()] == [
        "connect",
        "ttfb",
    ]


def test_timings_as_dict_covers_every_phase_in_order():
    timings = RequestTimings(ttfb=1.5)
    assert tuple(timings.as_dict()) == PHASES
    assert timings.as_dict()["ttfb"] == 1.5
    assert "ttfb=1.500000" in repr(timings)
    assert repr(RequestTimings()) == "<RequestTimings empty>"
