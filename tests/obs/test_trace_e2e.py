"""End-to-end acceptance: one vectored read through the sim server
produces client spans, server spans and an access-log record that all
share a single trace ID, with the phase profile summing to the request
span's duration, and a scrapable Prometheus endpoint on the server."""

import pytest

from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    EventLog,
    MetricsRegistry,
    RollingHistogram,
    Tracer,
    format_span_id,
    format_trace_id,
)
from repro.server import AccessLog, ServerConfig
from tests.helpers import davix_world, get, one_request


def observable_world(**kwargs):
    """davix_world with the server side fully instrumented."""
    config = kwargs.pop("config", None) or ServerConfig(
        metrics_path="/metrics"
    )
    client, app, store, server_rt = davix_world(config=config, **kwargs)
    app.metrics = MetricsRegistry()
    app.tracer = Tracer(clock=server_rt.now)
    app.events = EventLog()
    app.access_log = AccessLog(
        metrics=app.metrics,
        window=RollingHistogram(server_rt.now),
    )
    return client, app, store, server_rt


def test_one_trace_id_across_client_server_and_access_log():
    client, app, store, _ = observable_world()
    store.put("/obj", bytes(range(256)) * 1024)
    client.pread_vec("http://server/obj", [(0, 64), (65536, 64)])

    requests = client.tracer().by_name("request")
    assert requests
    trace_hexes = {format_trace_id(span.trace_id) for span in requests}
    assert len(trace_hexes) == 1  # one pread-vec, one trace
    (trace_hex,) = trace_hexes

    server_spans = app.tracer.by_name("server-request")
    assert server_spans
    for span in server_spans:
        assert format_trace_id(span.trace_id) == trace_hex
        assert span.parent_id is not None

    assert app.access_log.entries
    for entry in app.access_log.entries:
        assert entry.trace_id == trace_hex
        assert len(entry.parent_span_id) == 16
        assert "trace=" + trace_hex in entry.common_log_format()


def test_server_span_parents_the_client_exchange_span():
    client, app, store, _ = observable_world()
    store.put("/obj", b"x" * 512)
    client.get("http://server/obj")

    (exchange,) = client.tracer().by_name("exchange")
    (server_span,) = app.tracer.by_name("server-request")
    assert server_span.parent_id == exchange.span_id
    (entry,) = app.access_log.entries
    assert entry.parent_span_id == format_span_id(exchange.span_id)


def test_phases_sum_to_request_span_duration():
    client, _, store, _ = observable_world(latency=0.005)
    store.put("/obj", b"p" * 65536)
    client.get("http://server/obj")

    (request,) = client.tracer().by_name("request")
    timings = request.attrs["timings"]
    assert timings.total == pytest.approx(request.duration, abs=1e-9)
    # A cold request pays real connect and first-byte time.
    assert timings.connect > 0
    assert timings.ttfb > 0
    assert timings.body_transfer > 0


def test_client_wide_event_carries_trace_and_phases():
    client, _, store, _ = observable_world()
    store.put("/obj", b"w" * 128)
    client.get("http://server/obj")

    (event,) = client.events().by_kind("request")
    (request,) = client.tracer().by_name("request")
    assert event["side"] == "client"
    assert event["status"] == 200
    assert event["origin"] == "server:80"
    assert event["trace_id"] == format_trace_id(request.trace_id)
    for phase_field in ("phase_queue_wait", "phase_connect", "phase_ttfb"):
        assert phase_field in event
    assert client.slo().origin("server:80").verdict == "OK"


def test_server_wide_event_joins_the_client_trace():
    client, app, store, _ = observable_world()
    store.put("/obj", b"s" * 128)
    client.get("http://server/obj")

    (event,) = app.events.by_kind("request")
    (request,) = client.tracer().by_name("request")
    assert event["side"] == "server"
    assert event["trace_id"] == format_trace_id(request.trace_id)
    assert event["bytes_sent"] >= 128
    assert event["duration"] >= 0


def test_metrics_endpoint_serves_prometheus_exposition():
    client, app, store, _ = observable_world()
    store.put("/obj", b"m" * 256)
    client.get("http://server/obj")

    response = client.runtime.run(
        one_request(("server", 80), get("/metrics"))
    )
    assert response.status == 200
    assert response.headers.get("Content-Type") == PROMETHEUS_CONTENT_TYPE
    body = response.body.decode("utf-8")
    assert "# TYPE server_access_total counter" in body
    assert 'server_access_total{method="GET",status="200"} 1' in body
    assert "# TYPE server_request_seconds_window histogram" in body
    # The scrape itself is not counted in the series it exposes.
    assert app.access_log.total_requests == 1


def test_propagation_can_be_disabled_per_request():
    from repro.core import RequestParams

    client, app, store, _ = observable_world()
    store.put("/obj", b"n" * 64)
    client.get(
        "http://server/obj", params=RequestParams(trace_propagation=False)
    )
    (entry,) = app.access_log.entries
    assert entry.trace_id == ""
    assert "trace=" not in entry.common_log_format()
    (server_span,) = app.tracer.by_name("server-request")
    assert server_span.parent_id is None
