"""Trace-context formatting, parsing and header injection."""

import pytest

from repro.http import Headers
from repro.obs import (
    NULL_SPAN,
    TRACEPARENT_HEADER,
    Tracer,
    format_traceparent,
    inject_traceparent,
    parse_traceparent,
)
from repro.obs.propagation import format_span_id, format_trace_id


def test_format_ids_fixed_width_hex():
    assert format_trace_id(1) == "0" * 31 + "1"
    assert len(format_trace_id(2**130)) == 32  # masked to 128 bits
    assert format_span_id(0xDEAD) == "000000000000dead"


def test_format_and_parse_roundtrip():
    span = Tracer().start("request")
    value = format_traceparent(span)
    assert value is not None
    assert value.startswith("00-")
    assert value.endswith("-01")
    ctx = parse_traceparent(value)
    assert ctx is not None
    assert ctx.trace_id == span.trace_id
    assert ctx.span_id == span.span_id
    assert ctx.sampled is True
    assert ctx.trace_id_hex == format_trace_id(span.trace_id)
    assert ctx.span_id_hex == format_span_id(span.span_id)


def test_null_span_formats_to_none():
    assert format_traceparent(NULL_SPAN) is None
    assert format_traceparent(None) is None


@pytest.mark.parametrize(
    "value",
    [
        None,
        "",
        "garbage",
        "00-abc-def-01",  # wrong widths
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # zero span id
        "zz-" + "1" * 32 + "-" + "2" * 16 + "-01",  # non-hex version
        "00-" + "x" * 32 + "-" + "2" * 16 + "-01",  # non-hex trace
        "00-" + "1" * 32 + "-" + "2" * 16 + "-0",  # short flags
    ],
)
def test_parse_rejects_malformed(value):
    assert parse_traceparent(value) is None


def test_parse_unsampled_flag():
    ctx = parse_traceparent("00-" + "a" * 32 + "-" + "b" * 16 + "-00")
    assert ctx is not None
    assert ctx.sampled is False


def test_inject_sets_header():
    headers = Headers()
    span = Tracer().start("request")
    assert inject_traceparent(headers, span) is True
    assert headers.get(TRACEPARENT_HEADER) == format_traceparent(span)


def test_inject_respects_existing_header():
    headers = Headers([(TRACEPARENT_HEADER, "application-supplied")])
    assert inject_traceparent(headers, Tracer().start("r")) is True
    assert headers.get(TRACEPARENT_HEADER) == "application-supplied"


def test_inject_noop_for_null_span():
    headers = Headers()
    assert inject_traceparent(headers, NULL_SPAN) is False
    assert headers.get(TRACEPARENT_HEADER) is None
