"""Prometheus text exposition: golden output and edge cases."""

from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    RollingHistogram,
    prometheus_exposition,
    window_to_prometheus,
)

GOLDEN = """\
# TYPE pool_acquire_total counter
pool_acquire_total{outcome="hit"} 3
pool_acquire_total{outcome="miss"} 1
# TYPE pool_idle_sessions gauge
pool_idle_sessions 2
# TYPE session_connect_seconds histogram
session_connect_seconds_bucket{le="0.01"} 1
session_connect_seconds_bucket{le="0.1"} 3
session_connect_seconds_bucket{le="+Inf"} 4
session_connect_seconds_sum 10.08
session_connect_seconds_count 4
"""


def golden_registry():
    registry = MetricsRegistry()
    registry.counter("pool.acquire_total", outcome="hit").inc(3)
    registry.counter("pool.acquire_total", outcome="miss").inc()
    registry.gauge("pool.idle_sessions").set(2)
    hist = registry.histogram(
        "session.connect_seconds", buckets=(0.01, 0.1)
    )
    for value in (0.005, 0.05, 0.025, 10.0):
        hist.observe(value)
    return registry


def test_golden_exposition():
    assert prometheus_exposition(golden_registry()) == GOLDEN


def test_deterministic_across_insert_order():
    reversed_registry = MetricsRegistry()
    hist = reversed_registry.histogram(
        "session.connect_seconds", buckets=(0.01, 0.1)
    )
    for value in (0.005, 0.05, 0.025, 10.0):
        hist.observe(value)
    reversed_registry.gauge("pool.idle_sessions").set(2)
    reversed_registry.counter("pool.acquire_total", outcome="miss").inc()
    reversed_registry.counter("pool.acquire_total", outcome="hit").inc(3)
    assert prometheus_exposition(reversed_registry) == GOLDEN


def test_empty_registry_renders_empty():
    assert prometheus_exposition(MetricsRegistry()) == ""


def test_label_keys_render_in_sorted_order():
    registry = MetricsRegistry()
    registry.counter("c", zeta="1", alpha="2").inc()
    out = prometheus_exposition(registry)
    assert 'c{alpha="2",zeta="1"} 1' in out


def test_unicode_label_values_pass_through():
    registry = MetricsRegistry()
    registry.counter("c", site="zürich-прага").inc()
    assert 'c{site="zürich-прага"} 1' in prometheus_exposition(registry)


def test_label_escaping():
    registry = MetricsRegistry()
    registry.counter("c", path='a"b\\c\nd').inc()
    assert 'c{path="a\\"b\\\\c\\nd"} 1' in prometheus_exposition(registry)


def test_metric_names_are_sanitised():
    registry = MetricsRegistry()
    registry.counter("1weird.name-x").inc()
    out = prometheus_exposition(registry)
    assert out.startswith("# TYPE _1weird_name_x counter\n")


def test_content_type_constant():
    assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


def test_window_exposition():
    hist = RollingHistogram(lambda: 0.0, buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(50.0)
    assert window_to_prometheus("server.window", hist.snapshot()) == (
        "# TYPE server_window histogram\n"
        'server_window_bucket{le="0.1"} 1\n'
        'server_window_bucket{le="1"} 2\n'
        'server_window_bucket{le="+Inf"} 3\n'
        "server_window_sum 50.55\n"
        "server_window_count 3\n"
    )


def test_quote_only_label_value_escapes_each_quote():
    registry = MetricsRegistry()
    registry.counter("c", q='"""').inc()
    assert 'c{q="\\"\\"\\""} 1' in prometheus_exposition(registry)


def test_backslash_only_label_value_doubles_each_backslash():
    registry = MetricsRegistry()
    registry.counter("c", p="\\\\").inc()
    assert 'c{p="\\\\\\\\"} 1' in prometheus_exposition(registry)


def test_trailing_backslash_does_not_swallow_the_closing_quote():
    registry = MetricsRegistry()
    registry.counter("c", p="dir\\").inc()
    line = next(
        ln for ln in prometheus_exposition(registry).splitlines()
        if ln.startswith("c{")
    )
    assert line == 'c{p="dir\\\\"} 1'


def test_newline_label_values_stay_on_one_exposition_line():
    registry = MetricsRegistry()
    registry.counter("c", msg="a\nb\nc").inc()
    registry.counter("d").inc()
    out = prometheus_exposition(registry)
    assert 'c{msg="a\\nb\\nc"} 1' in out
    # The raw newlines never leak: every line is a comment or sample.
    for line in out.strip().splitlines():
        assert line.startswith("# TYPE") or " " in line


def test_empty_registry_scrape_over_http_is_a_valid_empty_page():
    from repro.obs import MetricsRegistry as Registry
    from repro.server import ServerConfig
    from tests.helpers import davix_world, get, one_request

    client, app, _, _ = davix_world(
        config=ServerConfig(metrics_path="/metrics")
    )
    app.metrics = Registry()
    response = client.runtime.run(
        one_request(("server", 80), get("/metrics"))
    )
    assert response.status == 200
    assert response.headers.get("Content-Type") == (
        PROMETHEUS_CONTENT_TYPE
    )
    assert response.body == b""
