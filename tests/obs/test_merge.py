"""MetricsRegistry.merge: the per-shard aggregation primitive."""

import pytest

from repro.obs import MetricsRegistry


def test_counters_add_and_gauges_add():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.counter("req.total").inc(3)
    right.counter("req.total").inc(4)
    left.gauge("pool.idle").set(2)
    right.gauge("pool.idle").set(5)
    assert left.merge(right) is left
    assert left.value("req.total") == 7
    assert left.value("pool.idle") == 7


def test_distinct_label_sets_do_not_collide():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.counter("req.total", outcome="hit").inc(1)
    right.counter("req.total", outcome="miss").inc(2)
    right.counter("req.total", outcome="hit").inc(10)
    left.merge(right)
    assert left.value("req.total", outcome="hit") == 11
    assert left.value("req.total", outcome="miss") == 2


def test_missing_series_created_on_demand():
    left = MetricsRegistry()
    right = MetricsRegistry()
    right.counter("only.there").inc(9)
    right.histogram("h", buckets=(1.0,)).observe(0.5)
    left.merge(right)
    assert left.value("only.there") == 9
    assert left.get("h").count == 1


def test_histogram_merge_is_bucket_exact():
    left = MetricsRegistry()
    right = MetricsRegistry()
    for value in (0.005, 0.05):
        left.histogram("lat", buckets=(0.01, 0.1)).observe(value)
    for value in (0.05, 5.0):
        right.histogram("lat", buckets=(0.01, 0.1)).observe(value)
    left.merge(right)
    merged = left.get("lat")
    assert merged.bucket_counts == [1, 2, 1]
    assert merged.count == 4
    assert merged.sum == pytest.approx(5.105)
    assert merged.min == 0.005
    assert merged.max == 5.0
    assert merged.percentile(1.0) == 5.0


def test_histogram_bucket_mismatch_raises():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.histogram("lat", buckets=(0.01, 0.1)).observe(0.05)
    right.histogram("lat", buckets=(0.5,)).observe(0.05)
    with pytest.raises(ValueError):
        left.merge(right)


def test_kind_mismatch_raises():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.counter("x").inc()
    right.gauge("x").set(1)
    with pytest.raises(ValueError):
        left.merge(right)


def test_merge_is_associative_enough_for_fanin():
    shards = []
    for shard_index in range(3):
        registry = MetricsRegistry()
        registry.counter("n").inc(shard_index + 1)
        registry.histogram("lat", buckets=(0.1,)).observe(0.05)
        shards.append(registry)
    total = MetricsRegistry()
    for shard in shards:
        total.merge(shard)
    assert total.value("n") == 6
    assert total.get("lat").count == 3


def test_same_name_disjoint_label_sets_keep_their_own_buckets():
    # Two shards bucket the same histogram name differently under
    # *disjoint* label sets: no collision, each series keeps its
    # bounds (the bounds check only guards same-labels merges).
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.histogram("lat", buckets=(0.1, 1.0), shard="a").observe(0.05)
    right.histogram("lat", buckets=(0.5,), shard="b").observe(0.25)
    left.merge(right)
    assert left.get("lat", shard="a").buckets == (0.1, 1.0)
    assert left.get("lat", shard="b").buckets == (0.5,)
    assert left.get("lat", shard="a").count == 1
    assert left.get("lat", shard="b").count == 1


def test_disjoint_bucket_histograms_merge_when_labels_differ_twice():
    # Fan-in over three shards, each with its own bounds + labels:
    # merge is label-set-scoped, so all three series survive intact.
    total = MetricsRegistry()
    for shard, bounds in (("a", (0.1,)), ("b", (0.2,)), ("c", (0.4,))):
        registry = MetricsRegistry()
        registry.histogram(
            "io.seconds", buckets=bounds, shard=shard
        ).observe(0.05)
        total.merge(registry)
    for shard, bounds in (("a", (0.1,)), ("b", (0.2,)), ("c", (0.4,))):
        series = total.get("io.seconds", shard=shard)
        assert series.buckets == bounds
        assert series.count == 1
