"""Telemetry collector plumbing: wire format, bounded queues, HTTP
ingest (mounted and standalone) and the in-process flush path."""

import json

import pytest

from repro.concurrency import SimRuntime
from repro.core.context import Context
from repro.net import LinkSpec, Network
from repro.obs import MetricsRegistry, Tracer
from repro.obs.collector import (
    TELEMETRY_CONTENT_TYPE,
    TelemetryCollector,
    TelemetrySink,
    parse_records,
    push_telemetry,
    record_to_json,
    records_to_json_lines,
)
from repro.server import (
    CollectorApp,
    HttpServer,
    ObjectStore,
    ServerConfig,
    StorageApp,
)
from repro.sim import Environment


def make_sink(node="unit", **kwargs):
    return TelemetrySink(node, **kwargs)


# -- wire format --------------------------------------------------------------


def test_span_round_trips_through_jsonl():
    sink = make_sink()
    tracer = Tracer(node="unit")
    tracer.sink = sink.record_span
    span = tracer.start("request", root=True, url="http://x/y")
    child = tracer.start("recv", parent=span)
    child.end(bytes=7)
    span.end()

    lines = records_to_json_lines(sink.drain())
    parsed = parse_records(lines)
    assert [r["name"] for r in parsed] == ["recv", "request"]
    recv, request = parsed
    assert recv["type"] == "span"
    assert recv["node"] == "unit"
    assert recv["trace"] == request["trace"]
    assert recv["parent"] == request["span"]
    assert request["parent"] is None
    assert recv["attrs"]["bytes"] == 7
    assert request["attrs"]["url"] == "http://x/y"


def test_record_json_is_canonical():
    sink = make_sink(clock=lambda: 4.0)
    sink.record_event({"kind": "cache", "hits": 3})
    registry = MetricsRegistry()
    registry.counter("io.bytes_total").inc(12)
    sink.record_metrics(registry)
    event, metrics = sink.drain()
    # Sorted keys, integral floats normalised to ints.
    assert record_to_json(event) == (
        '{"event": {"hits": 3, "kind": "cache"},'
        ' "node": "unit", "type": "event"}'
    )
    parsed = json.loads(record_to_json(metrics))
    assert parsed["ts"] == 4
    assert parsed["series"]["io.bytes_total"] == 12


def test_drain_empties_and_preserves_order():
    sink = make_sink()
    sink.record_event({"kind": "a"})
    sink.record_event({"kind": "b"})
    first = sink.drain()
    assert [r["event"]["kind"] for r in first] == ["a", "b"]
    assert sink.drain() == []
    assert sink.pending == 0


# -- bounded queues -----------------------------------------------------------


def test_sink_drops_beyond_capacity_and_counts():
    sink = make_sink(capacity=2)
    for n in range(5):
        sink.record_event({"kind": "e", "n": n})
    assert sink.pending == 2
    assert sink.dropped == 3
    kept = [r["event"]["n"] for r in sink.drain()]
    assert kept == [0, 1]  # oldest-first, tail dropped


def test_sink_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TelemetrySink("x", capacity=0)


def test_collector_drops_beyond_capacity_and_counts():
    collector = TelemetryCollector(capacity=3)
    accepted = collector.ingest(
        [{"type": "event", "node": "n", "event": {"n": i}}
         for i in range(5)]
    )
    assert accepted == 3
    assert len(collector) == 3
    assert collector.dropped == 2
    assert collector.batches == 1


def test_flush_delivers_to_bound_or_explicit_target():
    bound = TelemetryCollector()
    sink = make_sink(target=bound)
    sink.record_event({"kind": "x"})
    sink.flush()
    assert len(bound) == 1

    override = TelemetryCollector()
    sink.record_event({"kind": "y"})
    sink.flush(target=override)
    assert len(bound) == 1  # unchanged
    assert override.records()[0]["event"]["kind"] == "y"


def test_malformed_jsonl_batch_fails_whole_batch():
    collector = TelemetryCollector()
    with pytest.raises(ValueError):
        collector.ingest_lines('{"type": "event"}\nnot json\n')
    assert len(collector) == 0


# -- HTTP ingest --------------------------------------------------------------


def collector_world(app_factory):
    env = Environment()
    net = Network(env, seed=5)
    net.add_host("client")
    net.add_host("hub")
    net.set_route(
        "client", "hub",
        LinkSpec(latency=0.001, bandwidth=125_000_000),
    )
    HttpServer(SimRuntime(net, "hub"), app_factory(), port=80).start()
    return SimRuntime(net, "client")


def test_push_telemetry_into_mounted_storage_collector():
    collector = TelemetryCollector()

    def app():
        return StorageApp(
            ObjectStore(), config=ServerConfig(collector=collector)
        )

    runtime = collector_world(app)
    sink = TelemetrySink("client")
    context = Context(telemetry=sink)
    context.clock = runtime.now
    context.events.emit("cache", hits=1)
    response = runtime.run(
        push_telemetry(context, "http://hub/v1/telemetry", sink)
    )
    assert response.status == 204
    assert response.headers.get("X-Telemetry-Accepted") == "1"
    assert collector.events()[0]["event"]["kind"] == "cache"
    # The push drains before building the request: its own span is
    # still queued locally, not in the shipped batch.
    assert collector.spans() == []
    assert sink.pending > 0


def test_push_telemetry_with_empty_queue_skips_the_wire():
    runtime = collector_world(
        lambda: CollectorApp(TelemetryCollector())
    )
    sink = TelemetrySink("client")
    context = Context()
    context.clock = runtime.now
    assert (
        runtime.run(
            push_telemetry(context, "http://hub/v1/telemetry", sink)
        )
        is None
    )


def test_collector_app_serves_jsonl_and_stats_back():
    collector = TelemetryCollector()
    runtime = collector_world(lambda: CollectorApp(collector))
    sink = TelemetrySink("client")
    context = Context(telemetry=sink)
    context.clock = runtime.now
    context.events.emit("cache", hits=2)
    runtime.run(
        push_telemetry(context, "http://hub/v1/telemetry", sink)
    )

    from repro.core import DavixClient

    client = DavixClient(runtime, context=context)
    body = client.get("http://hub/v1/telemetry")
    assert parse_records(body.decode("utf-8")) == collector.records()
    stats = client.get("http://hub/v1/telemetry/stats")
    assert stats == b"records=1 batches=1 dropped=0\n"

    from repro.errors import FileNotFound

    with pytest.raises(FileNotFound):
        client.get("http://hub/elsewhere")


def test_bad_batch_answers_400_and_ingests_nothing():
    collector = TelemetryCollector()
    runtime = collector_world(lambda: CollectorApp(collector))

    from repro.core.request import execute_request
    from repro.http import Headers, Request, Url

    context = Context()
    context.clock = runtime.now

    def op():
        response, _ = yield from execute_request(
            context,
            Url.parse("http://hub/v1/telemetry"),
            Request(
                "POST",
                "/v1/telemetry",
                Headers([("Content-Type", TELEMETRY_CONTENT_TYPE)]),
                b"not json\n",
            ),
        )
        return response

    response = runtime.run(op())
    assert response.status == 400
    assert len(collector) == 0
