"""Unit tests for the metric instruments and the registry."""

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.metrics import format_series


def test_counter_increments_and_defaults_to_one():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.value("requests_total") == 5


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_series_identity():
    registry = MetricsRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.counter("c", a="1") is registry.counter("c", a="1")
    assert registry.counter("c", a="1") is not registry.counter("c", a="2")


def test_labels_are_order_insensitive():
    registry = MetricsRegistry()
    one = registry.counter("c", a="1", b="2")
    two = registry.counter("c", b="2", a="1")
    assert one is two


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("idle")
    gauge.set(3)
    gauge.add(-1)
    assert gauge.value == 2
    assert registry.value("idle") == 2


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="is a counter"):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_histogram_buckets_follow_prometheus_convention():
    registry = MetricsRegistry()
    histogram = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.0, 1.5, 10.0):
        histogram.observe(value)
    # <=1.0 gets 0.5 and 1.0; <=2.0 gets 1.5; +Inf gets 10.0.
    assert histogram.bucket_counts == [2, 1, 0, 1]
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(13.0)
    assert histogram.min == 0.5
    assert histogram.max == 10.0
    assert histogram.mean == pytest.approx(3.25)


def test_histogram_percentile_and_validation():
    histogram = MetricsRegistry().histogram("h")
    assert histogram.percentile(0.5) is None
    for value in range(1, 101):
        histogram.observe(value / 100)
    assert histogram.percentile(0.0) == 0.01
    assert histogram.percentile(1.0) == 1.0
    assert histogram.percentile(0.5) == pytest.approx(0.51)
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("bad", buckets=(2.0, 1.0))


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_value_returns_none_for_missing_series():
    registry = MetricsRegistry()
    assert registry.value("absent") is None
    registry.counter("c", a="1")
    assert registry.value("c") is None
    assert registry.value("c", a="1") == 0
    assert registry.get("absent") is None


def test_series_iterates_sorted():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a", x="2")
    registry.counter("a", x="1")
    names = [
        format_series(i.name, i.labels) for i in registry.series()
    ]
    assert names == ["a{x=1}", "a{x=2}", "b"]


def test_snapshot_and_reset_and_len():
    registry = MetricsRegistry()
    registry.counter("c").inc(7)
    registry.histogram("h").observe(0.25)
    assert registry.snapshot() == {"c": 7, "h": (1, 0.25)}
    assert len(registry) == 2
    registry.reset()
    assert len(registry) == 0
    assert registry.snapshot() == {}


def test_format_series():
    assert format_series("plain", ()) == "plain"
    assert (
        format_series("c", (("a", "1"), ("b", "2"))) == "c{a=1,b=2}"
    )
