"""Unit tests for the span tracer."""

import pytest

from repro.obs import NULL_SPAN, Tracer


class FakeClock:
    """A manually advanced clock for deterministic span timings."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_nesting_via_child():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    parent = tracer.start("request")
    clock.now = 1.0
    child = parent.child("send", bytes=42)
    clock.now = 1.5
    child.end()
    clock.now = 2.0
    parent.end()

    assert child.parent_id == parent.span_id
    assert child.trace_id == parent.trace_id
    assert child.attrs == {"bytes": 42}
    assert child.duration == pytest.approx(0.5)
    assert parent.duration == pytest.approx(2.0)
    # Finished in end order: child first.
    assert [s.name for s in tracer.finished()] == ["send", "request"]


def test_implicit_parent_is_stack_top():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        assert tracer.current is outer
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    assert tracer.current is None


def test_root_span_starts_a_new_trace():
    tracer = Tracer()
    outer = tracer.start("outer")
    root = tracer.start("worker", root=True)
    assert root.parent_id is None
    assert root.trace_id != outer.trace_id
    root.end()
    outer.end()


def test_explicit_parent_overrides_stack():
    tracer = Tracer()
    a = tracer.start("a")
    b = tracer.start("b")
    c = tracer.start("c", parent=a)
    assert c.parent_id == a.span_id
    for span in (c, b, a):
        span.end()


def test_end_is_idempotent():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    span = tracer.start("once")
    clock.now = 1.0
    span.end()
    clock.now = 2.0
    span.end()
    assert span.end_time == 1.0
    assert len(tracer) == 1


def test_end_attaches_attrs():
    tracer = Tracer()
    span = tracer.start("s")
    span.end(status=200)
    assert span.attrs["status"] == 200


def test_context_manager_records_error_type():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    (span,) = tracer.finished()
    assert span.attrs["error"] == "RuntimeError"
    assert span.ended


def test_span_ids_are_unique_and_increasing():
    tracer = Tracer()
    spans = [tracer.start(f"s{i}") for i in range(5)]
    ids = [span.span_id for span in spans]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_capacity_bounds_finished_ring():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.start(f"s{i}").end()
    assert [s.name for s in tracer.finished()] == ["s2", "s3", "s4"]
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_disabled_tracer_returns_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.start("anything")
    assert span is NULL_SPAN
    # The null span absorbs the whole API without recording.
    with span.child("x").set(a=1) as child:
        child.end()
    assert len(tracer) == 0


def test_null_span_never_parents_a_real_span():
    tracer = Tracer()
    span = tracer.start("real", parent=NULL_SPAN)
    assert span.parent_id is None
    span.end()


def test_by_name_and_clear():
    tracer = Tracer()
    tracer.start("a").end()
    tracer.start("b").end()
    tracer.start("a").end()
    assert len(tracer.by_name("a")) == 2
    tracer.clear()
    assert len(tracer) == 0
