"""End-to-end instrumentation: real client traffic against the sim
server must land in the metrics registry and the span tree."""

import pytest

from tests.helpers import davix_world


def test_pool_hit_miss_accounting_under_sim():
    client, app, store, _ = davix_world()
    store.put("/obj", b"x" * 1024)
    for _ in range(5):
        client.get("http://server/obj")

    registry = client.metrics()
    assert registry.value("pool.acquire_total", outcome="miss") == 1
    assert registry.value("pool.acquire_total", outcome="hit") == 4
    assert registry.value("pool.release_total", outcome="recycled") == 5
    assert registry.value("session.connect_total") == 1
    # Registry mirrors the typed snapshot exactly.
    stats = client.pool_stats()
    assert stats.hits == 4
    assert stats.misses == 1
    assert stats.hit_rate == pytest.approx(0.8)
    assert stats.idle == 1


def test_connect_histogram_records_simulated_time():
    client, _, store, _ = davix_world(latency=0.010)
    store.put("/obj", b"y")
    client.get("http://server/obj")
    histogram = client.metrics().get("session.connect_seconds")
    assert histogram.count == 1
    # One RTT of simulated time, at least.
    assert histogram.sum >= 0.010


def test_client_byte_counters():
    client, _, store, _ = davix_world()
    store.put("/obj", b"z" * 4096)
    client.get("http://server/obj")
    registry = client.metrics()
    assert registry.value("session.bytes_received_total") >= 4096
    assert registry.value("session.bytes_sent_total") > 0
    assert registry.value("client.requests_total") == 1


def test_vector_metrics_from_pread_vec():
    client, _, store, _ = davix_world()
    store.put("/obj", bytes(range(256)) * 1024)
    reads = [(0, 64), (4096, 64), (4160, 64), (65536, 64)]
    client.pread_vec("http://server/obj", reads)

    registry = client.metrics()
    assert registry.value("vector.fragments_total") == 4
    assert registry.value("vector.requested_bytes_total") == 256
    round_trips = registry.value("vector.round_trips_total")
    ranges = registry.value("vector.ranges_total")
    coalesced = registry.value("vector.fragments_coalesced_total")
    assert round_trips == 1
    # The two adjacent fragments coalesce into one range.
    assert ranges == 3
    assert coalesced == 1


def test_span_hierarchy_for_one_get():
    client, _, store, _ = davix_world()
    store.put("/obj", b"q" * 128)
    client.get("http://server/obj")

    tracer = client.tracer()
    (request,) = tracer.by_name("request")
    assert request.attrs["method"] == "GET"
    assert request.attrs["status"] == 200
    assert request.ended

    by_id = {span.span_id: span for span in tracer.finished()}
    (acquire,) = tracer.by_name("session-acquire")
    (connect,) = tracer.by_name("tcp-connect")
    (exchange,) = tracer.by_name("exchange")
    (send,) = tracer.by_name("send")
    (recv,) = tracer.by_name("recv")
    assert acquire.parent_id == request.span_id
    assert connect.parent_id == acquire.span_id
    assert exchange.parent_id == request.span_id
    assert send.parent_id == exchange.span_id
    assert recv.parent_id == exchange.span_id
    # All one trace, timed on the simulated clock.
    assert {span.trace_id for span in by_id.values()} == {
        request.trace_id
    }
    assert request.duration > 0
    assert recv.attrs["bytes"] >= 128


def test_reused_session_skips_connect_span():
    client, _, store, _ = davix_world()
    store.put("/obj", b"r")
    client.get("http://server/obj")
    client.get("http://server/obj")
    tracer = client.tracer()
    assert len(tracer.by_name("request")) == 2
    # Only the first request paid a TCP connect.
    assert len(tracer.by_name("tcp-connect")) == 1


def test_pread_vec_span_parents_requests():
    client, _, store, _ = davix_world()
    store.put("/obj", b"v" * 131072)
    client.pread_vec("http://server/obj", [(0, 16), (65536, 16)])
    tracer = client.tracer()
    (vec,) = tracer.by_name("pread-vec")
    batches = tracer.by_name("vec-batch")
    assert batches
    assert all(b.parent_id == vec.span_id for b in batches)
    batch_ids = {b.span_id for b in batches}
    requests = tracer.by_name("request")
    assert requests
    assert all(r.parent_id in batch_ids for r in requests)


def test_server_side_metrics_via_accesslog():
    from repro.obs import MetricsRegistry
    from repro.server.accesslog import AccessLog

    client, app, store, _ = davix_world()
    server_registry = MetricsRegistry()
    app.metrics = server_registry
    app.access_log = AccessLog(metrics=server_registry)
    store.put("/obj", b"s" * 512)
    client.get("http://server/obj")
    client.stat("http://server/obj")

    assert server_registry.value("server.requests_total", method="GET") == 1
    assert server_registry.value("server.responses_total", status="200") >= 1
    assert (
        server_registry.value(
            "server.access_total", method="GET", status="200"
        )
        == 1
    )
    assert server_registry.value("server.bytes_sent_total") >= 512
    assert server_registry.get("server.request_seconds").count == 2


def test_failover_metrics_and_span():
    from repro.concurrency import SimRuntime
    from repro.core import DavixClient
    from repro.net import LinkSpec, Network
    from repro.server import HttpServer, ObjectStore, StorageApp
    from repro.sim import Environment

    env = Environment()
    net = Network(env, seed=1)
    net.add_host("client")
    path = "/data/f.root"
    urls = [f"http://site{i}{path}" for i in range(2)]
    for name in ("site0", "site1"):
        net.add_host(name)
        net.set_route(
            "client", name, LinkSpec(latency=0.001, bandwidth=1e8)
        )
        store = ObjectStore()
        store.put(path, b"replicated-content")
        app = StorageApp(store, replicas={path: urls})
        HttpServer(SimRuntime(net, name), app, port=80).start()
    client = DavixClient(SimRuntime(net, "client"))

    net.host("site0").fail()
    data = client.get_with_failover(urls[0], metalink_url=urls[1])
    assert data == b"replicated-content"

    registry = client.metrics()
    assert registry.value("failover.triggered_total") == 1
    assert (
        registry.value("failover.replica_attempts_total", host="site1")
        == 1
    )
    assert registry.value("failover.recovered_total") == 1
    (span,) = client.tracer().by_name("failover")
    assert span.attrs["recovered_via"] == "site1"
    assert span.attrs["cause"] == "RequestError"


def test_disabled_tracer_still_serves_requests():
    from repro.obs import Tracer

    client, _, store, _ = davix_world()
    client.context.tracer = Tracer(enabled=False)
    store.put("/obj", b"d" * 32)
    assert client.get("http://server/obj") == b"d" * 32
    assert len(client.context.tracer) == 0
