"""Wide-event log: emit, bound, canonical JSONL."""

import json

import pytest

from repro.obs import (
    EventLog,
    event_to_json,
    events_to_json_lines,
    parse_json_lines,
)


def test_emit_and_read_back():
    log = EventLog()
    log.emit("request", side="client", status=200)
    log.emit("run", wall_seconds=1.5)
    assert len(log) == 2
    assert log.total_events == 2
    assert log.by_kind("run") == [{"kind": "run", "wall_seconds": 1.5}]
    assert log.last()["kind"] == "run"


def test_capacity_bound_drops_oldest():
    log = EventLog(capacity=2)
    for index in range(5):
        log.emit("e", index=index)
    assert [event["index"] for event in log.records()] == [3, 4]
    assert log.total_events == 5
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_json_is_sorted_and_integral_floats_collapse():
    line = event_to_json({"kind": "x", "b": 2.0, "a": 1.5})
    assert line == '{"a": 1.5, "b": 2, "kind": "x"}'
    # nested containers normalise too
    line = event_to_json({"kind": "x", "v": [1.0, {"w": 3.0}]})
    assert json.loads(line)["v"] == [1, {"w": 3}]


def test_jsonl_roundtrip():
    log = EventLog()
    log.emit("request", duration=0.25, status=206)
    log.emit("run", n=3.0)
    text = log.to_json_lines()
    assert parse_json_lines(text) == [
        {"duration": 0.25, "kind": "request", "status": 206},
        {"kind": "run", "n": 3},
    ]
    assert parse_json_lines("\n\n" + text + "\n") == parse_json_lines(text)


def test_jsonl_deterministic_for_same_events():
    def build():
        log = EventLog()
        log.emit("request", z=1, a=2, m=0.5)
        return log.to_json_lines()

    assert build() == build()


def test_events_to_json_lines_over_plain_dicts():
    text = events_to_json_lines([{"kind": "a"}, {"kind": "b", "x": 1}])
    assert text.splitlines() == ['{"kind": "a"}', '{"kind": "b", "x": 1}']


def test_clear():
    log = EventLog()
    log.emit("x")
    log.clear()
    assert len(log) == 0
    assert log.last() is None
    assert log.to_json_lines() == ""
