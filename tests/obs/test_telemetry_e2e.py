"""Cluster telemetry plane, end to end.

The ISSUE acceptance scenario: an analysis-style read mix runs
client -> caching proxy -> origin while a third-party copy moves the
same object origin -> mirror, with every node shipping spans, wide
events and metric snapshots into one :class:`TelemetryCollector`
(the client's batch arrives over HTTP through the mounted
``POST /v1/telemetry`` endpoint). The assembled artifact must satisfy:

* every trace is a single tree — no orphan spans;
* the critical path partitions each root span *exactly* (Fraction
  arithmetic, ``==`` not ``pytest.approx``);
* the byte-provenance ledger accounts for every delivered byte across
  page-cache / proxy-cache / origin / TPC sources;
* two seeded repeats produce byte-identical JSONL.
"""

from fractions import Fraction

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams, TransferConfig
from repro.core.context import Context
from repro.net import LinkSpec, Network
from repro.obs import EventLog, Tracer
from repro.obs.analyze import (
    assemble_traces,
    byte_provenance,
    critical_path,
)
from repro.obs.collector import (
    TelemetryCollector,
    TelemetrySink,
    push_telemetry,
)
from repro.server import (
    HttpServer,
    ObjectStore,
    ProxyApp,
    ServerConfig,
    StorageApp,
)
from repro.sim import Environment

PAYLOAD = bytes(range(256)) * 512  # 128 KiB, two 64 KiB pages
URL = "http://origin/data/obj.bin"


def instrumented_storage(net, host, store, collector=None):
    """A StorageApp shipping node-namespaced spans + events to a sink."""
    runtime = SimRuntime(net, host)
    sink = TelemetrySink(host, clock=runtime.now)
    config = (
        ServerConfig(collector=collector)
        if collector is not None
        else None
    )
    app = StorageApp(store, config=config)
    app.tracer = Tracer(clock=runtime.now, node=host)
    app.tracer.sink = sink.record_span
    app.events = EventLog()
    app.events.sink = sink.record_event
    HttpServer(runtime, app, port=80).start()
    return app, sink


def run_campaign(seed=12):
    """One full campaign; returns (collector, ledger facts)."""
    env = Environment()
    net = Network(env, seed=seed)
    for name in ("client", "proxy", "origin", "mirror"):
        net.add_host(name)
    lan = LinkSpec(latency=0.001, bandwidth=125_000_000)
    wan = LinkSpec(latency=0.08, bandwidth=12_500_000)
    net.set_route("client", "proxy", lan)
    net.set_route("proxy", "origin", wan)
    net.set_route("client", "origin", wan)
    net.set_route("client", "mirror", wan)
    net.set_route("origin", "mirror", lan)

    collector = TelemetryCollector()

    origin_store = ObjectStore()
    origin_store.put("/data/obj.bin", PAYLOAD)
    # The collector is mounted on the origin: POST /v1/telemetry lands
    # batches directly in it.
    _, origin_sink = instrumented_storage(
        net, "origin", origin_store, collector=collector
    )
    mirror_app, mirror_sink = instrumented_storage(
        net, "mirror", ObjectStore()
    )

    proxy_rt = SimRuntime(net, "proxy")
    proxy_ctx = Context(telemetry=TelemetrySink("proxy"))
    proxy_ctx.clock = proxy_rt.now
    HttpServer(proxy_rt, ProxyApp(context=proxy_ctx), port=3128).start()

    def make_client(node):
        runtime = SimRuntime(net, "client")
        context = Context(
            params=RequestParams(
                proxy="http://proxy:3128",
                retries=0,
                transfer=TransferConfig(page_cache_bytes=1 << 20),
            ),
            telemetry=TelemetrySink(node),
        )
        context.clock = runtime.now
        return DavixClient(runtime, context=context)

    client = make_client("client")
    warm = make_client("client-b")

    delivered = 0
    # Cold read via the proxy: proxy MISS -> origin; charged network.
    delivered += len(client.pread(URL, 0, 65536))
    # Same span again: the client page cache serves it locally.
    delivered += len(client.pread(URL, 0, 65536))
    # A second client (cold page cache) straddles the proxy's cached
    # page and an uncached one: proxy partial hit + gap fetch.
    delivered += len(warm.pread(URL, 32768, 65536))
    # Third-party copy origin -> mirror (control channel only on the
    # client; no proxy on the COPY leg).
    summary = client.third_party_copy(
        URL,
        "http://mirror/data/copy.bin",
        mode="pull",
        params=RequestParams(retries=0),
    )
    assert summary.ok

    # The client's backlog travels over HTTP into the mounted
    # collector endpoint; everything else flushes in-process.
    response = client.runtime.run(
        push_telemetry(
            client.context, "http://origin/v1/telemetry",
            client.context.telemetry,
        )
    )
    assert response.status == 204
    client.context.flush_telemetry(target=collector)
    warm.context.flush_telemetry(target=collector)
    proxy_ctx.flush_telemetry(target=collector)
    origin_sink.flush(target=collector)
    mirror_sink.flush(target=collector)
    return collector, delivered


def test_assembled_traces_are_single_trees_without_orphans():
    collector, _ = run_campaign()
    assert set(collector.nodes()) == {
        "client", "client-b", "proxy", "origin", "mirror"
    }
    # One HTTP push + five in-process flushes.
    assert collector.batches == 6
    assert collector.dropped == 0
    trees = assemble_traces(collector.records())
    assert trees
    for tree in trees:
        assert tree.is_single_tree
        assert not tree.orphans
    # The read path joins client, proxy and origin in one trace.
    joined = {
        frozenset(span.node for span in tree.spans) for tree in trees
    }
    assert frozenset({"client", "proxy", "origin"}) in joined
    # The COPY trace joins the client and the mirror (active party).
    assert any(
        {"client", "mirror"} <= nodes for nodes in joined
    )


def test_critical_path_partitions_each_root_exactly():
    collector, _ = run_campaign()
    trees = assemble_traces(collector.records())
    for tree in trees:
        path = critical_path(tree)
        assert isinstance(path.total, Fraction)
        # Exact identity, not approx: the interval partition
        # telescopes to the root duration.
        assert path.total == path.root_duration
        for _, _, seconds in path.seconds():
            assert seconds >= 0.0


def test_byte_provenance_accounts_for_every_delivered_byte():
    collector, delivered = run_campaign()
    ledger = byte_provenance(collector.records())
    # Client-side identity: each delivered byte charged to exactly
    # one of page-cache / network.
    assert ledger.page_cache + ledger.network == delivered
    # Network refinement + TPC: totals hold exactly.
    assert ledger.proxy_cache + ledger.origin == ledger.network
    assert ledger.tpc == len(PAYLOAD)
    assert ledger.total == delivered + len(PAYLOAD)
    # Every provenance source actually fired in this campaign.
    assert ledger.page_cache == 65536  # the warm re-read
    assert ledger.proxy_cache > 0  # proxy partial hit
    assert ledger.origin > 0  # cold fetch + gap fill
    assert ledger.proxy_served >= ledger.proxy_from_cache > 0


def test_artifact_is_byte_identical_across_seeded_repeats():
    first, _ = run_campaign(seed=12)
    second, _ = run_campaign(seed=12)
    artifact = first.to_json_lines()
    assert artifact
    assert len(artifact.splitlines()) == len(first)
    assert artifact == second.to_json_lines()
