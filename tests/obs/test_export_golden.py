"""Golden-output tests for the exporters.

The JSON-lines format is a contract with downstream tooling: sorted by
series, sorted keys inside each object, integral floats emitted as
ints. These tests pin the exact bytes.
"""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    metrics_to_json_lines,
    render_metrics,
    render_span_tree,
    spans_to_json_lines,
)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("pool.acquire_total", outcome="hit").inc(4)
    registry.counter("pool.acquire_total", outcome="miss").inc()
    registry.gauge("pool.idle_sessions").set(1)
    histogram = registry.histogram(
        "session.connect_seconds", buckets=(0.01, 0.1, 1.0)
    )
    histogram.observe(0.05)
    histogram.observe(0.5)
    return registry


GOLDEN_METRIC_LINES = "\n".join(
    [
        '{"labels": {"outcome": "hit"}, "name": "pool.acquire_total", '
        '"type": "counter", "value": 4}',
        '{"labels": {"outcome": "miss"}, "name": "pool.acquire_total", '
        '"type": "counter", "value": 1}',
        '{"labels": {}, "name": "pool.idle_sessions", "type": "gauge", '
        '"value": 1}',
        '{"buckets": {"0.1": 1, "1": 1}, "count": 2, "labels": {}, '
        '"max": 0.5, "min": 0.05, "name": "session.connect_seconds", '
        '"sum": 0.55, "type": "histogram"}',
    ]
)


def test_metrics_json_lines_golden():
    assert metrics_to_json_lines(_sample_registry()) == GOLDEN_METRIC_LINES


def test_metrics_json_lines_parse_back():
    records = [
        json.loads(line)
        for line in metrics_to_json_lines(_sample_registry()).splitlines()
    ]
    assert len(records) == 4
    assert {r["type"] for r in records} == {"counter", "gauge", "histogram"}
    # Counters export as ints, never 4.0.
    assert all(
        isinstance(r["value"], int) for r in records if "value" in r
    )


def test_render_metrics_table():
    rendered = render_metrics(_sample_registry(), title="demo")
    lines = rendered.splitlines()
    assert lines[0] == "demo:"
    assert "pool.acquire_total{outcome=hit}" in rendered
    assert "count=2" in rendered
    assert render_metrics(MetricsRegistry()) == "metrics: (empty)"


def _sample_tracer() -> Tracer:
    clock = iter([0.0, 1.0, 2.0, 3.0]).__next__
    tracer = Tracer(clock=clock)
    request = tracer.start("request", method="GET")
    send = request.child("send", bytes=10)
    send.end()
    request.end(status=200)
    return tracer


GOLDEN_SPAN_LINES = "\n".join(
    [
        '{"attrs": {"bytes": "10"}, "end": 2, "name": "send", '
        '"parent": 1, "span": 2, "start": 1, "trace": 1, "type": "span"}',
        '{"attrs": {"method": "GET", "status": "200"}, "end": 3, '
        '"name": "request", "parent": null, "span": 1, "start": 0, '
        '"trace": 1, "type": "span"}',
    ]
)


def test_spans_json_lines_golden():
    assert spans_to_json_lines(_sample_tracer()) == GOLDEN_SPAN_LINES


def test_render_span_tree_nests_children():
    rendered = render_span_tree(_sample_tracer())
    lines = rendered.splitlines()
    assert lines[0].startswith("request 3.000000s")
    assert lines[1].startswith("  send 1.000000s")
    assert render_span_tree(Tracer()) == "trace: (empty)"
