"""RollingHistogram sliding-window semantics."""

import pytest

from repro.obs import RollingHistogram


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(window=60.0, slices=6, buckets=(0.01, 0.1, 1.0)):
    clock = FakeClock()
    return clock, RollingHistogram(
        clock, window=window, slices=slices, buckets=buckets
    )


def test_observe_and_snapshot():
    clock, hist = make()
    hist.observe(0.005)
    hist.observe(0.05)
    hist.observe(5.0)  # overflow bucket
    snap = hist.snapshot()
    assert snap.count == 3
    assert snap.sum == pytest.approx(5.055)
    assert snap.bucket_counts == (1, 1, 0, 1)
    assert snap.mean == pytest.approx(5.055 / 3)


def test_old_slices_fall_out_of_the_window():
    clock, hist = make(window=60.0, slices=6)
    hist.observe(0.05)
    clock.now = 30.0
    hist.observe(0.05)
    assert hist.count == 2
    clock.now = 65.0  # first slice (epoch 0) now older than the window
    assert hist.count == 1
    clock.now = 1000.0
    assert hist.count == 0


def test_slot_reuse_zeroes_stale_counts():
    clock, hist = make(window=6.0, slices=6)  # 1s slices
    hist.observe(0.05)
    clock.now = 6.0  # same ring slot as t=0, one full window later
    hist.observe(0.05)
    snap = hist.snapshot()
    assert snap.count == 1


def test_quantile_returns_bucket_bound():
    clock, hist = make(buckets=(0.01, 0.1, 1.0))
    for _ in range(9):
        hist.observe(0.05)
    hist.observe(0.5)
    assert hist.quantile(0.5) == 0.1
    assert hist.quantile(1.0) == 1.0
    hist.observe(100.0)
    assert hist.quantile(1.0) == float("inf")


def test_empty_window_quantile_and_mean():
    _, hist = make()
    snap = hist.snapshot()
    assert snap.count == 0
    assert snap.mean is None
    assert snap.quantile(0.5) is None
    with pytest.raises(ValueError):
        snap.quantile(1.5)


def test_constructor_validation():
    clock = FakeClock()
    with pytest.raises(ValueError):
        RollingHistogram(clock, window=0)
    with pytest.raises(ValueError):
        RollingHistogram(clock, slices=0)
    with pytest.raises(ValueError):
        RollingHistogram(clock, buckets=(2.0, 1.0))
