"""SLO policy, per-origin tallies and error-budget arithmetic."""

import pytest

from repro.obs import SloPolicy, SloTracker


def test_policy_validation():
    with pytest.raises(ValueError):
        SloPolicy(availability=0.0)
    with pytest.raises(ValueError):
        SloPolicy(availability=1.5)
    with pytest.raises(ValueError):
        SloPolicy(latency_threshold=0.0)
    with pytest.raises(ValueError):
        SloPolicy(latency_objective=0.0)


def test_all_good_requests_verdict_ok():
    tracker = SloTracker()
    for _ in range(100):
        tracker.record("server:80", 0.01, ok=True)
    origin = tracker.origin("server:80")
    assert origin.availability == 1.0
    assert origin.latency_attainment == 1.0
    assert origin.budget_remaining() == 1.0
    assert origin.verdict == "OK"


def test_availability_breach_spends_the_budget():
    tracker = SloTracker(policy=SloPolicy(availability=0.99))
    for index in range(100):
        tracker.record("server:80", 0.01, ok=index >= 5)
    origin = tracker.origin("server:80")
    assert origin.availability == pytest.approx(0.95)
    # 5% errors against a 1% budget: 5x overspent.
    assert origin.budget_remaining() == pytest.approx(1.0 - 5.0)
    assert origin.verdict == "BREACH"


def test_latency_breach_without_errors():
    policy = SloPolicy(latency_threshold=0.1, latency_objective=0.9)
    tracker = SloTracker(policy=policy)
    for index in range(10):
        tracker.record("server:80", 1.0 if index < 2 else 0.01, ok=True)
    origin = tracker.origin("server:80")
    assert origin.availability == 1.0
    assert origin.latency_attainment == pytest.approx(0.8)
    assert origin.verdict == "BREACH"
    assert origin.latency_percentile(0.5) == 0.01


def test_zero_budget_policy():
    tracker = SloTracker(policy=SloPolicy(availability=1.0))
    tracker.record("a", 0.01, ok=True)
    assert tracker.origin("a").budget_remaining() == 1.0
    tracker.record("a", 0.01, ok=False)
    assert tracker.origin("a").budget_remaining() == float("-inf")


def test_origins_sorted_and_len():
    tracker = SloTracker()
    tracker.record("b:80", 0.01, ok=True)
    tracker.record("a:80", 0.01, ok=True)
    assert [o.origin for o in tracker.origins()] == ["a:80", "b:80"]
    assert len(tracker) == 2
    assert tracker.origin("missing") is None
