"""Trace assembly and analysis on hand-built collector records:
orphan handling, the exact critical-path partition (straggler rule),
fan-out straggler detection and the byte-provenance ledger clamps."""

from fractions import Fraction

from repro.obs.analyze import (
    assemble_traces,
    byte_provenance,
    critical_path,
    render_critical_path,
    render_provenance,
    render_waterfall,
    stragglers,
)

TRACE = "0" * 24 + "deadbeef"


def span(name, span_id, parent, start, end, node="client", **attrs):
    return {
        "type": "span",
        "node": node,
        "name": name,
        "trace": TRACE,
        "span": span_id,
        "parent": parent,
        "remote": parent is not None and node != "client",
        "start": start,
        "end": end,
        "attrs": attrs,
    }


# -- assembly -----------------------------------------------------------------


def test_cross_node_spans_join_into_one_tree():
    records = [
        span("request", "a1", None, 0.0, 1.0),
        span("exchange", "b2", "a1", 0.1, 0.9),
        span("server-request", "c3", "b2", 0.2, 0.8, node="server"),
    ]
    (tree,) = assemble_traces(records)
    assert tree.is_single_tree
    assert tree.nodes() == ["client", "server"]
    assert [s.name for _, s in tree.walk()] == [
        "request", "exchange", "server-request"
    ]
    assert [d for d, _ in tree.walk()] == [0, 1, 2]


def test_missing_parent_flags_an_orphan():
    records = [
        span("request", "a1", None, 0.0, 1.0),
        span("recv", "b2", "gone", 0.1, 0.9),
    ]
    (tree,) = assemble_traces(records)
    assert not tree.is_single_tree
    assert [s.span for s in tree.orphans] == ["b2"]


def test_two_parentless_spans_are_root_plus_orphan():
    records = [
        span("request", "a1", None, 0.5, 1.0),
        span("request", "b2", None, 0.0, 0.4),
    ]
    (tree,) = assemble_traces(records)
    assert tree.root.span == "b2"  # earliest start wins the root
    assert [s.span for s in tree.orphans] == ["a1"]


def test_rootless_trace_promotes_earliest_orphan():
    records = [
        span("recv", "b2", "gone", 0.3, 0.9),
        span("send", "c3", "gone", 0.1, 0.2),
    ]
    (tree,) = assemble_traces(records)
    assert tree.root.span == "c3"
    assert [s.span for s in tree.orphans] == ["b2"]
    assert not tree.is_single_tree


def test_distinct_trace_ids_assemble_separately():
    records = [
        span("request", "a1", None, 0.0, 1.0),
        dict(span("request", "a1", None, 0.0, 1.0), trace="f" * 32),
    ]
    trees = assemble_traces(records)
    assert [t.trace for t in trees] == [TRACE, "f" * 32]


# -- critical path ------------------------------------------------------------


def test_partition_attributes_self_time_and_child_time():
    records = [
        span("request", "a1", None, 0.0, 1.0),
        span("recv", "b2", "a1", 0.25, 0.75),
    ]
    (tree,) = assemble_traces(records)
    path = critical_path(tree)
    assert path.entries == {
        ("client", "request"): Fraction(1, 2),  # 0-0.25 and 0.75-1
        ("client", "recv"): Fraction(1, 2),
    }
    assert path.total == path.root_duration == Fraction(1)


def test_straggler_rule_gives_overlap_to_the_last_finisher():
    records = [
        span("request", "a1", None, 0.0, 1.0),
        span("stream-0", "b2", "a1", 0.0, 0.6),
        span("stream-1", "c3", "a1", 0.0, 1.0),
    ]
    (tree,) = assemble_traces(records)
    path = critical_path(tree)
    # stream-1 ends last: it owns the whole overlapped interval.
    assert path.entries == {("client", "stream-1"): Fraction(1)}


def test_partition_is_exact_on_awkward_float_times():
    times = [0.1, 0.30000000000000004, 0.7000000000000001]
    records = [
        span("request", "a1", None, times[0], 0.9),
        span("x", "b2", "a1", times[1], times[2]),
        span("y", "c3", "b2", times[1], 0.5),
    ]
    (tree,) = assemble_traces(records)
    path = critical_path(tree)
    assert path.total == path.root_duration  # exact, not approx
    assert path.root_duration == Fraction(0.9) - Fraction(times[0])


def test_child_time_outside_the_root_window_is_clipped():
    records = [
        span("request", "a1", None, 0.2, 0.8),
        span("early", "b2", "a1", 0.0, 0.4),
        span("late", "c3", "a1", 0.6, 1.5),
    ]
    (tree,) = assemble_traces(records)
    path = critical_path(tree)
    assert path.total == path.root_duration
    assert path.root_duration == Fraction(0.8) - Fraction(0.2)
    assert path.entries[("client", "early")] == (
        Fraction(0.4) - Fraction(0.2)
    )
    assert path.entries[("client", "late")] == (
        Fraction(0.8) - Fraction(0.6)
    )


def test_stragglers_flags_the_slow_sibling_only():
    records = [
        span("copy", "a1", None, 0.0, 2.0),
        span("tpc-stream-0", "b2", "a1", 0.0, 1.0),
        span("tpc-stream-1", "c3", "a1", 0.0, 1.05),
        span("tpc-stream-2", "d4", "a1", 0.0, 2.0),
    ]
    (tree,) = assemble_traces(records)
    (flag,) = stragglers(tree, threshold=0.10)
    assert flag["group"] == "tpc-stream"
    assert flag["straggler"] == "tpc-stream-2"
    assert flag["members"] == 3
    assert flag["slack_seconds"] == 2.0 - 1.05
    # A tight fan-out is not flagged.
    assert stragglers(tree, threshold=0.60) == []


# -- byte provenance ----------------------------------------------------------


def metrics_record(node, page_cache, network):
    return {
        "type": "metrics",
        "node": node,
        "ts": 1.0,
        "series": {
            "provenance.bytes_total{source=page-cache}": page_cache,
            "provenance.bytes_total{source=network}": network,
        },
    }


def proxy_event(served, from_cache):
    return {
        "type": "event",
        "node": "proxy",
        "event": {
            "kind": "proxy",
            "served_bytes": served,
            "from_cache_bytes": from_cache,
        },
    }


def test_ledger_splits_network_by_proxy_events():
    ledger = byte_provenance(
        [
            metrics_record("client", 100, 900),
            proxy_event(600, 400),
        ]
    )
    assert ledger.page_cache == 100
    assert ledger.network == 900
    assert ledger.proxy_cache == 400
    assert ledger.origin == 500
    assert ledger.total == 1000


def test_ledger_clamps_proxy_cache_to_delivered_network_bytes():
    # Proxy page-aligned overfetch: it served more from cache than the
    # client delivered; the clamp keeps origin non-negative.
    ledger = byte_provenance(
        [
            metrics_record("client", 0, 300),
            proxy_event(900, 800),
        ]
    )
    assert ledger.proxy_cache == 300
    assert ledger.origin == 0
    assert ledger.proxy_from_cache == 800
    assert ledger.proxy_from_origin == 100


def test_only_the_last_metrics_snapshot_per_node_counts():
    ledger = byte_provenance(
        [
            metrics_record("client", 10, 20),
            metrics_record("client", 30, 40),  # cumulative — wins
            metrics_record("client-b", 1, 2),
        ]
    )
    assert ledger.page_cache == 31
    assert ledger.network == 42


def test_failed_tpc_transfers_do_not_count():
    ledger = byte_provenance(
        [
            {"type": "event", "node": "site",
             "event": {"kind": "tpc", "ok": True, "bytes": 50}},
            {"type": "event", "node": "site",
             "event": {"kind": "tpc", "ok": False, "bytes": 999}},
        ]
    )
    assert ledger.tpc == 50
    assert ledger.total == 50


def test_histogram_valued_series_count_their_sum():
    ledger = byte_provenance(
        [
            {
                "type": "metrics",
                "node": "client",
                "ts": 0.0,
                "series": {
                    "provenance.bytes_total{source=network}": (3, 120)
                },
            }
        ]
    )
    assert ledger.network == 120


# -- rendering ----------------------------------------------------------------


def test_renderers_cover_the_assembled_tree():
    records = [
        span("request", "a1", None, 0.0, 1.0),
        span("recv", "b2", "a1", 0.25, 0.75),
    ]
    (tree,) = assemble_traces(records)
    waterfall = render_waterfall(tree)
    assert "request" in waterfall and "recv" in waterfall
    path_text = render_critical_path(critical_path(tree))
    assert "attributed=" in path_text
    assert "client recv" in path_text or "recv" in path_text
    ledger_text = render_provenance(
        byte_provenance([metrics_record("client", 1, 1)])
    )
    assert "total delivered=2" in ledger_text
