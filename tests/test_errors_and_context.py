"""Tests for the exception hierarchy, RequestParams and Context."""

import pytest

from repro.core import Context, MetalinkMode, RequestParams
from repro.errors import (
    AllReplicasFailed,
    ChecksumMismatch,
    ConnectError,
    DavixError,
    FileNotFound,
    HttpError,
    NetworkError,
    PermissionDenied,
    RedirectLoopError,
    ReproError,
    RequestError,
    XrootdError,
)


def test_hierarchy_roots():
    assert issubclass(DavixError, ReproError)
    assert issubclass(NetworkError, ReproError)
    assert issubclass(HttpError, ReproError)
    assert issubclass(ConnectError, NetworkError)
    assert issubclass(FileNotFound, DavixError)
    assert issubclass(RequestError, DavixError)


def test_davix_error_carries_scope_and_status():
    error = RequestError("boom", status=502)
    assert error.scope == "request"
    assert error.status == 502
    assert "[request]" in str(error)


def test_file_not_found_shape():
    error = FileNotFound("/data/x")
    assert error.status == 404
    assert error.path == "/data/x"


def test_permission_denied_default_status():
    assert PermissionDenied("/x").status == 403
    assert PermissionDenied("/x", 401).status == 401


def test_redirect_loop_error():
    error = RedirectLoopError("http://h/x", 10)
    assert error.limit == 10
    assert "10" in str(error)


def test_all_replicas_failed_lists_attempts():
    error = AllReplicasFailed(
        "/f", [("http://a/f", "down"), ("http://b/f", "404")]
    )
    assert "http://a/f" in str(error)
    assert len(error.attempts) == 2


def test_checksum_mismatch_fields():
    error = ChecksumMismatch("/f", "aaaa", "bbbb")
    assert error.expected == "aaaa"
    assert error.actual == "bbbb"


def test_xrootd_error_code():
    assert XrootdError("nope", code=3011).code == 3011


# -- RequestParams -------------------------------------------------------------


def test_params_defaults_are_daivx_like():
    params = RequestParams()
    assert params.keep_alive is True
    assert params.follow_redirects is True
    assert params.metalink_mode == MetalinkMode.FAILOVER
    assert params.max_vector_ranges == 256


def test_params_with_creates_modified_copy():
    params = RequestParams()
    tuned = params.with_(retries=7, keep_alive=False)
    assert tuned.retries == 7
    assert tuned.keep_alive is False
    assert params.retries == 1  # original untouched


@pytest.mark.parametrize(
    "kwargs",
    [
        {"metalink_mode": "bogus"},
        {"max_redirects": -1},
        {"retries": -1},
        {"max_vector_ranges": 0},
        {"vector_gap": -1},
        {"multistream_chunk": 0},
        {"multistream_max_streams": 0},
    ],
)
def test_params_validation(kwargs):
    with pytest.raises(ValueError):
        RequestParams(**kwargs)


# -- Context ----------------------------------------------------------------------


def test_context_counters_bump():
    context = Context()
    context.bump("requests")
    context.bump("requests", 4)
    context.bump("custom")
    assert context.counters["requests"] == 5
    assert context.counters["custom"] == 1


def test_context_blacklist_roundtrip():
    context = Context()
    now = {"t": 0.0}
    context.clock = lambda: now["t"]
    origin = ("http", "dead", 80)
    assert not context.is_blacklisted(origin)
    context.blacklist(origin, ttl=5.0)
    assert context.is_blacklisted(origin)
    now["t"] = 4.9
    assert context.is_blacklisted(origin)
    now["t"] = 5.0
    assert not context.is_blacklisted(origin)
    # Expired entries are pruned.
    assert origin not in context._blacklist


def test_context_owns_a_pool():
    context = Context(pool_max_per_origin=3)
    assert context.pool.max_idle_per_origin == 3
