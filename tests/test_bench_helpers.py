"""Tests for the benchmark reporting helpers."""

import pytest

from repro.bench import (
    PAPER_FIG4,
    percentile,
    ratio,
    render_table,
    sample_summary,
    summarize,
)


def test_summarize():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["mean"] == 2.5
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert stats["median"] == 2.5
    assert stats["n"] == 4
    assert stats["stdev"] > 0


def test_summarize_single_value():
    stats = summarize([5.0])
    assert stats["stdev"] == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_ratio():
    assert ratio(10, 4) == 2.5
    assert ratio(1, 0) == float("inf")


def test_percentile_interpolation():
    data = [10.0, 20.0, 30.0, 40.0]
    assert percentile(data, 0) == 10.0
    assert percentile(data, 100) == 40.0
    assert percentile(data, 50) == 25.0
    # Linear interpolation between rank 2.85 -> 30 + 0.85 * 10.
    assert percentile(data, 95) == pytest.approx(38.5)
    assert percentile([7.0], 95) == 7.0
    # Order must not matter.
    assert percentile([40.0, 10.0, 30.0, 20.0], 50) == 25.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_sample_summary_schema():
    summary = sample_summary([1, 2, 3, 4])
    assert set(summary) == {"mean", "p50", "p95", "n"}
    assert summary["mean"] == 2.5
    assert summary["p50"] == 2.5
    assert summary["n"] == 4.0
    with pytest.raises(ValueError):
        sample_summary([])


def test_emit_writes_json_artifact(tmp_path, monkeypatch, capsys):
    import importlib.util
    import json
    import pathlib

    spec = importlib.util.spec_from_file_location(
        "bench_util",
        pathlib.Path(__file__).parent.parent / "benchmarks" / "_util.py",
    )
    util = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(util)
    monkeypatch.setattr(util, "RESULTS_DIR", tmp_path)

    util.emit(
        "demo",
        "Demo",
        ["config", "time", "reqs"],
        [["a", 1.5, 10], ["b", 0.5, 2]],
        note="n",
        params={"size": 4096},
        configs={"a": [1.5, 1.7], "b": {"samples": [0.5], "reqs": 2}},
    )
    payload = json.loads((tmp_path / "BENCH_demo.json").read_text())
    assert payload["bench"] == "demo"
    assert payload["params"] == {"size": 4096}
    assert payload["configs"]["a"]["summary"]["mean"] == pytest.approx(1.6)
    assert payload["configs"]["b"]["reqs"] == 2
    assert (tmp_path / "demo.txt").exists()

    # Without explicit configs, a per-row view is derived.
    util.emit("derived", "D", ["cfg", "x"], [["row", 2.0]])
    derived = json.loads((tmp_path / "BENCH_derived.json").read_text())
    assert derived["configs"]["row"]["samples"] == [2.0]
    assert derived["configs"]["row"]["summary"]["p95"] == 2.0


def test_render_table_alignment():
    table = render_table(
        "Demo",
        ["name", "value"],
        [["short", 1.5], ["a-longer-name", 123456.0]],
        note="a note",
    )
    lines = table.splitlines()
    assert lines[0] == "== Demo =="
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "a-longer-name" in table
    assert "123,456" in table  # thousands formatting
    assert "1.50" in table
    assert lines[-1] == "a note"


def test_render_empty_rows():
    table = render_table("Empty", ["a", "b"], [])
    assert "Empty" in table


def test_paper_fig4_reference_values():
    assert PAPER_FIG4[("davix", "wan")] == 203.49
    assert PAPER_FIG4[("xrootd", "wan")] == 173.20
    assert len(PAPER_FIG4) == 6
