"""Tests for the benchmark reporting helpers."""

import pytest

from repro.bench import PAPER_FIG4, ratio, render_table, summarize


def test_summarize():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["mean"] == 2.5
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert stats["median"] == 2.5
    assert stats["n"] == 4
    assert stats["stdev"] > 0


def test_summarize_single_value():
    stats = summarize([5.0])
    assert stats["stdev"] == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_ratio():
    assert ratio(10, 4) == 2.5
    assert ratio(1, 0) == float("inf")


def test_render_table_alignment():
    table = render_table(
        "Demo",
        ["name", "value"],
        [["short", 1.5], ["a-longer-name", 123456.0]],
        note="a note",
    )
    lines = table.splitlines()
    assert lines[0] == "== Demo =="
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "a-longer-name" in table
    assert "123,456" in table  # thousands formatting
    assert "1.50" in table
    assert lines[-1] == "a note"


def test_render_empty_rows():
    table = render_table("Empty", ["a", "b"], [])
    assert "Empty" in table


def test_paper_fig4_reference_values():
    assert PAPER_FIG4[("davix", "wan")] == 203.49
    assert PAPER_FIG4[("xrootd", "wan")] == 173.20
    assert len(PAPER_FIG4) == 6
