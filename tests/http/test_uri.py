"""Tests for URL parsing and manipulation."""

import pytest

from repro.errors import HttpProtocolError
from repro.http import Url


def test_parse_basic():
    url = Url.parse("http://storage.cern.ch/dpm/data/file.root")
    assert url.scheme == "http"
    assert url.host == "storage.cern.ch"
    assert url.port == 80
    assert url.path == "/dpm/data/file.root"
    assert url.origin == ("http", "storage.cern.ch", 80)


def test_parse_explicit_port_and_query():
    url = Url.parse("https://host:8443/path?metalink=true")
    assert url.port == 8443
    assert url.query == "metalink=true"
    assert url.target == "/path?metalink=true"
    assert str(url) == "https://host:8443/path?metalink=true"


def test_default_port_omitted_from_netloc():
    assert Url.parse("http://h/").netloc == "h"
    assert Url.parse("http://h:81/").netloc == "h:81"
    assert Url.parse("https://h/").port == 443


def test_dav_schemes_alias_http():
    assert Url.parse("dav://h/x").port == 80
    assert Url.parse("davs://h/x").port == 443


def test_empty_path_becomes_root():
    assert Url.parse("http://h").path == "/"
    assert Url.parse("http://h").target == "/"


def test_unsupported_scheme_rejected():
    with pytest.raises(HttpProtocolError):
        Url.parse("ftp://h/x")


def test_missing_host_rejected():
    with pytest.raises(HttpProtocolError):
        Url.parse("/relative/only")


def test_resolve_absolute_redirect():
    base = Url.parse("http://a/old")
    target = base.resolve("http://b:8080/new")
    assert target.host == "b"
    assert target.port == 8080
    assert target.path == "/new"


def test_resolve_relative_redirect():
    base = Url.parse("http://a/dir/resource")
    assert base.resolve("/moved").path == "/moved"
    assert base.resolve("other").path == "/dir/other"


def test_with_path_percent_encodes():
    url = Url.parse("http://h/x")
    assert url.with_path("/data/file with space").path == (
        "/data/file%20with%20space"
    )
    assert url.with_path("/data/file with space").decoded_path == (
        "/data/file with space"
    )


def test_sibling():
    url = Url.parse("http://h/dir/a.root")
    assert url.sibling("b.root").path == "/dir/b.root"


def test_url_is_hashable_value_type():
    a = Url.parse("http://h/x")
    b = Url.parse("http://h/x")
    assert a == b
    assert hash(a) == hash(b)
