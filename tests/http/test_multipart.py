"""Tests for multipart/byteranges encode/decode."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HttpParseError
from repro.http import (
    RangePart,
    decode_byteranges,
    encode_byteranges,
    make_boundary,
)
from repro.http.multipart import content_type_boundary


def test_roundtrip_simple():
    parts = [
        RangePart(offset=0, data=b"hello", total=100),
        RangePart(offset=50, data=b"world!", total=100),
    ]
    boundary = make_boundary()
    body = encode_byteranges(parts, boundary)
    assert decode_byteranges(body, boundary) == parts


def test_encoded_body_contains_content_range_lines():
    body = encode_byteranges(
        [RangePart(offset=5, data=b"abc", total=10)], "B"
    )
    assert b"Content-Range: bytes 5-7/10" in body
    assert body.endswith(b"--B--\r\n")


def test_empty_parts_rejected():
    with pytest.raises(ValueError):
        encode_byteranges([], "B")


def test_binary_data_with_crlf_and_boundary_like_content():
    # Data containing CRLF and even the delimiter text must survive,
    # because parts are length-delimited by Content-Range.
    tricky = b"--B\r\nContent-Range: bytes 0-1/2\r\n\r\nxx\r\n"
    parts = [RangePart(offset=3, data=tricky, total=1000)]
    body = encode_byteranges(parts, "B")
    assert decode_byteranges(body, "B") == parts


def test_decode_zero_copy_views():
    """``copy=False`` hands back memoryview slices over the body."""
    parts = [
        RangePart(offset=0, data=b"hello", total=100),
        RangePart(offset=50, data=b"world!", total=100),
    ]
    boundary = make_boundary()
    body = encode_byteranges(parts, boundary)
    decoded = decode_byteranges(body, boundary, copy=False)
    assert [(p.offset, p.total) for p in decoded] == [(0, 100), (50, 100)]
    for original, part in zip(parts, decoded):
        assert isinstance(part.data, memoryview)
        assert bytes(part.data) == original.data
        # Zero-copy: every view aliases the one response buffer.
        assert part.data.obj is body


def test_decode_copy_default_returns_bytes():
    parts = [RangePart(offset=0, data=b"data", total=4)]
    body = encode_byteranges(parts, "B")
    decoded = decode_byteranges(body, "B")
    assert all(isinstance(p.data, bytes) for p in decoded)


def test_preamble_is_ignored():
    parts = [RangePart(offset=0, data=b"data", total=4)]
    body = b"ignore this preamble\r\n" + encode_byteranges(parts, "B")
    assert decode_byteranges(body, "B") == parts


def test_missing_terminator_rejected():
    body = encode_byteranges(
        [RangePart(offset=0, data=b"data", total=4)], "B"
    )
    with pytest.raises(HttpParseError):
        decode_byteranges(body[:-6], "B")


def test_wrong_boundary_rejected():
    body = encode_byteranges(
        [RangePart(offset=0, data=b"data", total=4)], "B"
    )
    with pytest.raises(HttpParseError):
        decode_byteranges(body, "WRONG")


def test_truncated_part_rejected():
    body = (
        b"--B\r\nContent-Range: bytes 0-9/10\r\n\r\nshort\r\n--B--\r\n"
    )
    with pytest.raises(HttpParseError):
        decode_byteranges(body, "B")


def test_part_without_content_range_rejected():
    body = b"--B\r\nContent-Type: text/plain\r\n\r\nxx\r\n--B--\r\n"
    with pytest.raises(HttpParseError):
        decode_byteranges(body, "B")


def test_content_type_boundary_extraction():
    assert (
        content_type_boundary("multipart/byteranges; boundary=abc123")
        == "abc123"
    )
    assert (
        content_type_boundary('multipart/byteranges; boundary="q q"')
        == "q q"
    )


@pytest.mark.parametrize(
    "value",
    [
        "application/octet-stream",
        "multipart/byteranges",
        "multipart/byteranges; charset=utf-8",
        "multipart/byteranges; boundary=",
    ],
)
def test_content_type_boundary_failures(value):
    with pytest.raises(HttpParseError):
        content_type_boundary(value)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**6),
            st.binary(min_size=1, max_size=2048),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_roundtrip_property(raw_parts):
    total = 10**7
    parts = [
        RangePart(offset=offset, data=data, total=total)
        for offset, data in raw_parts
    ]
    boundary = make_boundary()
    assert decode_byteranges(encode_byteranges(parts, boundary), boundary) == (
        parts
    )
