"""Tests (incl. property-based) for the byte-range grammar."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HttpProtocolError
from repro.http import (
    RangeSpec,
    format_content_range,
    format_range_header,
    parse_content_range,
    parse_range_header,
    resolve_ranges,
)


def test_parse_simple_range():
    specs = parse_range_header("bytes=0-99")
    assert specs == [RangeSpec(0, 99)]


def test_parse_multi_range_with_spaces():
    specs = parse_range_header("bytes=0-9, 20-29 ,40-")
    assert specs == [RangeSpec(0, 9), RangeSpec(20, 29), RangeSpec(40, None)]


def test_parse_suffix_range():
    assert parse_range_header("bytes=-500") == [RangeSpec(None, 500)]


@pytest.mark.parametrize(
    "value",
    [
        "items=0-1",
        "bytes=",
        "bytes=5",
        "bytes=a-b",
        "bytes=9-5",
        "bytes=0-1,,2-3",
    ],
)
def test_parse_malformed_rejected(value):
    with pytest.raises(HttpProtocolError):
        parse_range_header(value)


def test_spec_without_bounds_rejected():
    with pytest.raises(HttpProtocolError):
        RangeSpec(None, None)


def test_resolve_clamps_to_size():
    assert RangeSpec(0, 999).resolve(100) == (0, 100)
    assert RangeSpec(50, None).resolve(100) == (50, 50)
    assert RangeSpec(None, 30).resolve(100) == (70, 30)
    assert RangeSpec(None, 500).resolve(100) == (0, 100)


def test_resolve_unsatisfiable():
    assert RangeSpec(100, 200).resolve(100) is None
    assert RangeSpec(None, 0).resolve(100) is None
    assert resolve_ranges([RangeSpec(100, None)], 100) == []


def test_resolve_ranges_drops_only_bad_members():
    specs = [RangeSpec(0, 9), RangeSpec(500, 600), RangeSpec(90, 99)]
    assert resolve_ranges(specs, 100) == [(0, 10), (90, 10)]


def test_format_range_header():
    header = format_range_header(
        [RangeSpec(0, 9), RangeSpec(None, 5), RangeSpec(7, None)]
    )
    assert header == "bytes=0-9,-5,7-"


def test_format_empty_rejected():
    with pytest.raises(ValueError):
        format_range_header([])


def test_from_offset_length():
    assert RangeSpec.from_offset_length(10, 5) == RangeSpec(10, 14)
    with pytest.raises(ValueError):
        RangeSpec.from_offset_length(10, 0)


def test_content_range_roundtrip():
    value = format_content_range(10, 20, 100)
    assert value == "bytes 10-29/100"
    assert parse_content_range(value) == (10, 20, 100)


def test_content_range_star_total():
    assert parse_content_range("bytes 0-0/*") == (0, 1, None)


@pytest.mark.parametrize(
    "value", ["items 0-1/2", "bytes 0-1", "bytes x-y/2", "bytes 5-1/10"]
)
def test_content_range_malformed(value):
    with pytest.raises(HttpProtocolError):
        parse_content_range(value)


# -- property-based ----------------------------------------------------------

offset_lengths = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=10**6),
    ),
    min_size=1,
    max_size=50,
)


@given(offset_lengths)
def test_range_header_roundtrip(pairs):
    specs = [RangeSpec.from_offset_length(o, n) for o, n in pairs]
    assert parse_range_header(format_range_header(specs)) == specs


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=10**6),
    st.integers(min_value=1, max_value=10**7),
)
def test_resolve_is_within_bounds(first, length, size):
    resolved = RangeSpec.from_offset_length(first, length).resolve(size)
    if resolved is None:
        assert first >= size
    else:
        offset, got = resolved
        assert 0 <= offset < size
        assert got >= 1
        assert offset + got <= size


@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=1, max_value=10**9),
    st.integers(min_value=1, max_value=10**12),
)
def test_content_range_property_roundtrip(offset, length, extra):
    total = offset + length + extra
    parsed = parse_content_range(format_content_range(offset, length, total))
    assert parsed == (offset, length, total)
