"""Tests for the case-insensitive header multimap."""

from repro.http import Headers


def test_add_and_case_insensitive_get():
    headers = Headers()
    headers.add("Content-Type", "text/plain")
    assert headers.get("content-type") == "text/plain"
    assert headers.get("CONTENT-TYPE") == "text/plain"
    assert "content-TYPE" in headers


def test_get_default():
    assert Headers().get("X-Missing", "fallback") == "fallback"
    assert Headers().get("X-Missing") is None


def test_duplicates_preserved_in_order():
    headers = Headers()
    headers.add("Via", "a")
    headers.add("via", "b")
    assert headers.get("Via") == "a"
    assert headers.get_all("VIA") == ["a", "b"]
    assert len(headers) == 2


def test_set_replaces_all_values():
    headers = Headers([("X", "1"), ("x", "2")])
    headers.set("X", "3")
    assert headers.get_all("x") == ["3"]


def test_setdefault_only_when_absent():
    headers = Headers()
    headers.setdefault("Host", "a")
    headers.setdefault("host", "b")
    assert headers.get("Host") == "a"


def test_remove_is_silent_when_absent():
    headers = Headers([("A", "1")])
    headers.remove("nothing")
    headers.remove("a")
    assert len(headers) == 0


def test_init_from_dict_and_pairs_and_headers():
    from_dict = Headers({"A": "1"})
    from_pairs = Headers([("A", "1")])
    from_headers = Headers(from_dict)
    assert from_dict == from_pairs == from_headers


def test_values_coerced_to_str():
    headers = Headers()
    headers.add("Content-Length", 42)
    assert headers.get("content-length") == "42"
    assert headers.get_int("Content-Length") == 42


def test_get_int_invalid_returns_none():
    headers = Headers([("Content-Length", "abc")])
    assert headers.get_int("Content-Length") is None


def test_contains_token_splits_comma_lists():
    headers = Headers([("Connection", "keep-alive, Upgrade")])
    assert headers.contains_token("connection", "KEEP-ALIVE")
    assert headers.contains_token("connection", "upgrade")
    assert not headers.contains_token("connection", "close")


def test_copy_is_independent():
    original = Headers([("A", "1")])
    clone = original.copy()
    clone.add("B", "2")
    assert "B" not in original


def test_equality_ignores_name_case_not_order():
    assert Headers([("a", "1"), ("b", "2")]) == Headers(
        [("A", "1"), ("B", "2")]
    )
    assert Headers([("a", "1"), ("b", "2")]) != Headers(
        [("b", "2"), ("a", "1")]
    )
