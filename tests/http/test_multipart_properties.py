"""Property-based tests for multipart/byteranges round-tripping.

Seeded stdlib ``random`` only. The adversarial cases embed
boundary-shaped byte strings *inside* part payloads — because the
decoder walks parts by their declared Content-Range lengths, payload
bytes that look like delimiters must never confuse it.
"""

import random

import pytest

from repro.errors import HttpParseError
from repro.http.multipart import (
    RangePart,
    content_type_boundary,
    decode_byteranges,
    encode_byteranges,
    make_boundary,
)

N_CASES = 150


def random_parts(rng, extra=b""):
    total = rng.randrange(1, 200_000)
    parts = []
    for _ in range(rng.randrange(1, 8)):
        # An HTTP byterange is at least one byte (first <= last).
        payload = bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 400))
        )
        if extra and rng.random() < 0.7:
            cut = rng.randrange(len(payload) + 1)
            payload = payload[:cut] + extra + payload[cut:]
        parts.append(
            RangePart(
                offset=rng.randrange(0, total),
                data=payload,
                total=total,
            )
        )
    return parts


def test_encode_decode_round_trip():
    rng = random.Random(10)
    for _ in range(N_CASES):
        parts = random_parts(rng)
        boundary = f"b{rng.randrange(1 << 48):012x}"
        assert decode_byteranges(
            encode_byteranges(parts, boundary), boundary
        ) == parts


def test_round_trip_with_boundary_lookalikes_in_payload():
    rng = random.Random(11)
    boundary = "byterange_deadbeefcafef00d"
    lookalikes = [
        f"--{boundary}".encode(),
        f"\r\n--{boundary}\r\n".encode(),
        f"--{boundary}--\r\n".encode(),
        b"\r\nContent-Range: bytes 0-0/1\r\n\r\n",
    ]
    for _ in range(N_CASES):
        parts = random_parts(rng, extra=rng.choice(lookalikes))
        assert decode_byteranges(
            encode_byteranges(parts, boundary), boundary
        ) == parts


def test_truncated_bodies_always_raise():
    """Any strict prefix of a valid body is a parse error, never a
    silent partial result with the last part corrupted."""
    rng = random.Random(12)
    boundary = make_boundary()
    for _ in range(40):
        parts = random_parts(rng)
        body = encode_byteranges(parts, boundary)
        cut = rng.randrange(len(body))
        try:
            decoded = decode_byteranges(body[:cut], boundary)
        except HttpParseError:
            continue
        # A prefix may still parse cleanly if the cut landed after a
        # complete part but before the rest -- but every part returned
        # must be intact and in order.
        assert decoded == parts[: len(decoded)]


def test_garbage_bodies_raise_not_crash():
    rng = random.Random(13)
    boundary = make_boundary()
    for _ in range(N_CASES):
        blob = bytes(
            rng.randrange(256) for _ in range(rng.randrange(0, 300))
        )
        with pytest.raises(HttpParseError):
            decode_byteranges(blob, boundary)


def test_content_type_boundary_round_trip():
    rng = random.Random(14)
    for _ in range(50):
        boundary = make_boundary() if rng.random() < 0.5 else (
            f"tok{rng.randrange(1 << 32):08x}"
        )
        quoted = rng.random() < 0.5
        value = f'"{boundary}"' if quoted else boundary
        ct = f"multipart/byteranges; boundary={value}"
        assert content_type_boundary(ct) == boundary
