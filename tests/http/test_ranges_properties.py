"""Property-based tests for range grammar and vector coalescing.

Seeded stdlib ``random`` only (no extra dependencies): each test drives
a few hundred generated cases and asserts the structural invariants the
multi-range machinery relies on.
"""

import random

import pytest

from repro.core.vectored import plan_vector, scatter_parts
from repro.http.ranges import (
    RangeSpec,
    format_range_header,
    parse_range_header,
    resolve_ranges,
)

N_CASES = 200


def random_spec(rng):
    shape = rng.randrange(3)
    if shape == 0:  # bounded
        first = rng.randrange(0, 10_000)
        return RangeSpec(first=first, last=first + rng.randrange(0, 5000))
    if shape == 1:  # open tail
        return RangeSpec(first=rng.randrange(0, 10_000), last=None)
    return RangeSpec(first=None, last=rng.randrange(0, 5000))  # suffix


def test_format_parse_round_trip():
    rng = random.Random(1)
    for _ in range(N_CASES):
        specs = [random_spec(rng) for _ in range(rng.randrange(1, 10))]
        assert parse_range_header(format_range_header(specs)) == specs


def test_resolve_ranges_invariants():
    rng = random.Random(2)
    for _ in range(N_CASES):
        size = rng.randrange(0, 20_000)
        specs = [random_spec(rng) for _ in range(rng.randrange(1, 8))]
        for offset, length in resolve_ranges(specs, size):
            assert 0 <= offset < size
            assert length >= 1
            assert offset + length <= size


def random_reads(rng, max_offset=100_000):
    return [
        (rng.randrange(0, max_offset), rng.randrange(1, 4000))
        for _ in range(rng.randrange(1, 40))
    ]


def test_plan_vector_invariants():
    rng = random.Random(3)
    for _ in range(N_CASES):
        reads = random_reads(rng)
        max_ranges = rng.randrange(1, 8)
        gap = rng.choice((0, 1, 64, 512, 10_000))
        plan = plan_vector(reads, max_ranges=max_ranges, gap=gap)

        # Every fragment is covered by exactly one coalesced range.
        owners = {}
        for batch in plan.batches:
            for rng_ in batch:
                for fragment in rng_.fragments:
                    assert rng_.covers(fragment)
                    assert fragment.index not in owners
                    owners[fragment.index] = rng_
        assert sorted(owners) == list(range(len(reads)))

        # Batches respect the server's range-count guard.
        assert all(
            1 <= len(batch) <= max_ranges for batch in plan.batches
        )

        # Coalesced ranges are disjoint, sorted, and farther apart
        # than the gap threshold (else they would have merged).
        merged = [rng_ for batch in plan.batches for rng_ in batch]
        for left, right in zip(merged, merged[1:]):
            assert left.end <= right.offset
            assert right.offset - left.end > gap


def test_scatter_reconstructs_exact_bytes():
    rng = random.Random(4)
    blob = bytes(rng.randrange(256) for _ in range(120_000))
    for _ in range(50):
        reads = random_reads(rng, max_offset=100_000)
        plan = plan_vector(reads, max_ranges=5, gap=256)
        out = {}
        for batch in plan.batches:
            parts = {
                rng_.offset: blob[rng_.offset : rng_.end]
                for rng_ in batch
            }
            out.update(scatter_parts(batch, parts))
        assert [out[i] for i in range(len(reads))] == [
            blob[o : o + n] for o, n in reads
        ]


def test_plan_preserves_duplicate_and_overlapping_reads():
    reads = [(0, 100), (0, 100), (50, 100), (10, 10)]
    plan = plan_vector(reads, gap=0)
    assert len(plan.fragments) == 4
    (batch,) = plan.batches
    (merged,) = batch
    assert merged.offset == 0
    assert merged.length == 150
    blob = bytes(i % 256 for i in range(150))
    out = scatter_parts(batch, {0: blob})
    assert [out[i] for i in range(4)] == [
        blob[o : o + n] for o, n in reads
    ]


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_vector([(0, 10)], max_ranges=0)
    with pytest.raises(ValueError):
        plan_vector([(0, 10)], gap=-1)
    with pytest.raises(ValueError):
        plan_vector([(0, 0)])
