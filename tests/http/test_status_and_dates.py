"""Tests for status classification and HTTP-date handling."""

from repro.http.dates import format_http_date, parse_http_date
from repro.http.status import (
    allows_body,
    is_error,
    is_redirect,
    is_retriable,
    is_success,
    reason_phrase,
)


def test_reason_phrases():
    assert reason_phrase(200) == "OK"
    assert reason_phrase(206) == "Partial Content"
    assert reason_phrase(207) == "Multi-Status"
    assert reason_phrase(599) == "Unknown"


def test_classification():
    assert is_success(204)
    assert not is_success(301)
    assert is_redirect(307)
    assert not is_redirect(304)  # not a "follow me" redirect
    assert is_error(404)
    assert is_error(503)


def test_retriable_statuses_are_server_side_transient():
    assert is_retriable(503)
    assert is_retriable(502)
    assert not is_retriable(404)
    assert not is_retriable(501)


def test_allows_body():
    assert allows_body(200)
    assert not allows_body(204)
    assert not allows_body(304)
    assert not allows_body(100)


def test_http_date_roundtrip():
    stamp = 1_400_000_000.0
    text = format_http_date(stamp)
    assert text.endswith("GMT")
    assert parse_http_date(text) == stamp


def test_http_date_parse_failure():
    assert parse_http_date("not a date") is None
