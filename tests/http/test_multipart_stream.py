"""Incremental multipart/byteranges decoding (:class:`MultipartStream`).

The transfer engine feeds response chunks into the streaming decoder as
they arrive, so decode overlaps with the transfer. The contract: for
*any* chunking of a valid body the streamed parts equal the buffered
``decode_byteranges`` result, truncations raise the same
``HttpParseError`` family, and delimiter text split across chunk
boundaries never confuses the state machine.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HttpParseError
from repro.http import (
    RangePart,
    decode_byteranges,
    encode_byteranges,
    make_boundary,
)
from repro.http.multipart import MultipartStream

PARTS = [
    RangePart(offset=0, data=b"hello", total=100),
    RangePart(offset=50, data=b"world!" * 40, total=100),
    RangePart(offset=90, data=b"\r\n--X\r\ntricky", total=100),
]


def stream_decode(body, boundary, chunk_size):
    decoder = MultipartStream(boundary)
    for start in range(0, len(body), chunk_size):
        decoder.feed(body[start : start + chunk_size])
    return decoder.close()


@pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, 10_000])
def test_streamed_equals_buffered(chunk_size):
    boundary = make_boundary()
    body = encode_byteranges(PARTS, boundary)
    assert stream_decode(body, boundary, chunk_size) == decode_byteranges(
        body, boundary
    )


def test_done_after_terminator_and_epilogue_ignored():
    body = encode_byteranges(PARTS[:1], "B")
    decoder = MultipartStream("B")
    decoder.feed(body)
    assert decoder.done
    decoder.feed(b"trailing epilogue noise")  # ignored per RFC 2046
    assert decoder.close() == PARTS[:1]


def test_boundary_split_across_chunks():
    """The closing delimiter arriving one byte at a time must still
    terminate the stream."""
    body = encode_byteranges(PARTS, "SPLIT-ME")
    head, tail = body[:-15], body[-15:]
    decoder = MultipartStream("SPLIT-ME")
    decoder.feed(head)
    assert not decoder.done
    for index in range(len(tail)):
        decoder.feed(tail[index : index + 1])
    assert decoder.done
    assert decoder.close() == PARTS


def test_truncated_part_body_raises():
    body = encode_byteranges(PARTS, "B")
    decoder = MultipartStream("B")
    decoder.feed(body[: len(body) // 2])
    with pytest.raises(HttpParseError, match="body ended early"):
        decoder.close()


def test_missing_terminator_raises():
    parts = [RangePart(offset=0, data=b"xy", total=10)]
    body = encode_byteranges(parts, "B")
    assert body.endswith(b"--B--\r\n")
    decoder = MultipartStream("B")
    decoder.feed(body[: -len(b"--B--\r\n")])
    with pytest.raises(HttpParseError, match="without terminator"):
        decoder.close()


def test_unterminated_headers_raise():
    decoder = MultipartStream("B")
    decoder.feed(b"--B\r\nContent-Range: bytes 0-1/2")
    with pytest.raises(HttpParseError, match="headers not terminated"):
        decoder.close()


def test_part_without_content_range_rejected():
    decoder = MultipartStream("B")
    with pytest.raises(HttpParseError):
        decoder.feed(b"--B\r\nContent-Type: text/plain\r\n\r\nxx\r\n--B--\r\n")
        decoder.close()


@given(
    parts=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.binary(min_size=1, max_size=200),
        ),
        min_size=1,
        max_size=6,
    ),
    chunk_size=st.integers(min_value=1, max_value=300),
)
def test_property_any_chunking_matches_buffered(parts, chunk_size):
    range_parts = [
        RangePart(offset=offset, data=data, total=20_000)
        for offset, data in parts
    ]
    boundary = make_boundary()
    body = encode_byteranges(range_parts, boundary)
    assert stream_decode(
        body, boundary, chunk_size
    ) == decode_byteranges(body, boundary)
