"""Tests for the sans-io HTTP codec (incremental parsing, framing)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HttpParseError
from repro.http import (
    CONNECTION_CLOSED,
    NEED_DATA,
    Data,
    EndOfMessage,
    Headers,
    HttpParser,
    Request,
    Response,
    serialize_request,
    serialize_response,
)
from repro.http.codec import (
    encode_chunk,
    encode_last_chunk,
    serialize_response_head,
)


def drain(parser):
    """Collect events until NEED_DATA / CONNECTION_CLOSED."""
    events = []
    while True:
        event = parser.next_event()
        if event in (NEED_DATA, CONNECTION_CLOSED):
            return events, event
        events.append(event)


def collect_message(events):
    """(head, body_bytes, saw_end) from an event list."""
    head = events[0]
    body = b"".join(e.data for e in events[1:] if isinstance(e, Data))
    saw_end = any(isinstance(e, EndOfMessage) for e in events)
    return head, body, saw_end


# -- request parsing ----------------------------------------------------------


def test_parse_get_request():
    parser = HttpParser("server")
    parser.receive_data(
        b"GET /data/file?x=1 HTTP/1.1\r\nHost: h\r\nAccept: */*\r\n\r\n"
    )
    events, tail = drain(parser)
    head, body, done = collect_message(events)
    assert head.method == "GET"
    assert head.target == "/data/file?x=1"
    assert head.path == "/data/file"
    assert head.query == "x=1"
    assert head.headers.get("host") == "h"
    assert body == b""
    assert done
    assert tail == NEED_DATA


def test_parse_put_with_body():
    parser = HttpParser("server")
    parser.receive_data(
        b"PUT /up HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello"
    )
    events, _ = drain(parser)
    head, body, done = collect_message(events)
    assert head.method == "PUT"
    assert body == b"hello"
    assert done


def test_parse_request_byte_by_byte():
    wire = b"PUT /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
    parser = HttpParser("server")
    events = []
    for i in range(len(wire)):
        parser.receive_data(wire[i : i + 1])
        got, _ = drain(parser)
        events.extend(got)
    head, body, done = collect_message(events)
    assert head.method == "PUT"
    assert body == b"abc"
    assert done


def test_parse_pipelined_requests():
    parser = HttpParser("server")
    parser.receive_data(
        b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
    )
    events, _ = drain(parser)
    requests = [e for e in events if isinstance(e, Request)]
    ends = [e for e in events if isinstance(e, EndOfMessage)]
    assert [r.target for r in requests] == ["/a", "/b"]
    assert len(ends) == 2


def test_clean_eof_between_messages():
    parser = HttpParser("server")
    parser.receive_data(b"")
    assert parser.next_event() == CONNECTION_CLOSED
    assert parser.next_event() == CONNECTION_CLOSED  # stable


def test_eof_inside_head_is_error():
    parser = HttpParser("server")
    parser.receive_data(b"GET / HT")
    parser.receive_data(b"")
    with pytest.raises(HttpParseError):
        parser.next_event()


def test_eof_inside_body_is_error():
    parser = HttpParser("server")
    parser.receive_data(
        b"PUT /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
    )
    events, _ = drain(parser)
    parser.receive_data(b"")
    with pytest.raises(HttpParseError):
        drain(parser)


@pytest.mark.parametrize(
    "wire",
    [
        b"GET /\r\n\r\n",  # missing version
        b"GET / HTTP/2.0\r\n\r\n",  # unsupported version
        b"GET / HTTP/1.1\r\nBad Header\r\n\r\n",  # no colon
        b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",  # obs-fold
    ],
)
def test_malformed_requests_rejected(wire):
    parser = HttpParser("server")
    parser.receive_data(wire)
    with pytest.raises(HttpParseError):
        drain(parser)


def test_oversized_head_rejected():
    parser = HttpParser("server")
    parser.receive_data(b"GET / HTTP/1.1\r\nX: " + b"a" * 70000)
    with pytest.raises(HttpParseError):
        parser.next_event()


# -- response parsing --------------------------------------------------------


def test_parse_response_with_length():
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    parser.receive_data(
        b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody"
    )
    events, _ = drain(parser)
    head, body, done = collect_message(events)
    assert head.status == 200
    assert head.reason == "OK"
    assert body == b"body"
    assert done


def test_head_response_has_no_body():
    parser = HttpParser("client")
    parser.expect_response_to("HEAD")
    parser.receive_data(
        b"HTTP/1.1 200 OK\r\nContent-Length: 999\r\n\r\n"
    )
    events, tail = drain(parser)
    head, body, done = collect_message(events)
    assert head.status == 200
    assert body == b""
    assert done
    assert tail == NEED_DATA


def test_204_and_304_have_no_body():
    for status in (204, 304):
        parser = HttpParser("client")
        parser.expect_response_to("GET")
        parser.receive_data(
            f"HTTP/1.1 {status} X\r\n\r\n".encode()
        )
        events, _ = drain(parser)
        _, body, done = collect_message(events)
        assert body == b""
        assert done


def test_response_read_until_eof():
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    parser.receive_data(b"HTTP/1.0 200 OK\r\n\r\npart1")
    events, tail = drain(parser)
    assert tail == NEED_DATA
    parser.receive_data(b"part2")
    parser.receive_data(b"")
    more, tail = drain(parser)
    events.extend(more)
    _, body, done = collect_message(events)
    assert body == b"part1part2"
    assert done
    assert tail == CONNECTION_CLOSED


def test_pipelined_responses_use_method_queue():
    parser = HttpParser("client")
    parser.expect_response_to("HEAD")
    parser.expect_response_to("GET")
    parser.receive_data(
        b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\n"
        b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc"
    )
    events, _ = drain(parser)
    heads = [e for e in events if isinstance(e, Response)]
    bodies = b"".join(e.data for e in events if isinstance(e, Data))
    assert len(heads) == 2
    assert bodies == b"abc"  # only the GET's body


def test_chunked_response_body():
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    parser.receive_data(
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        b"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"
    )
    events, _ = drain(parser)
    _, body, done = collect_message(events)
    assert body == b"Wikipedia"
    assert done


def test_chunked_with_extensions_and_trailers():
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    parser.receive_data(
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        b"3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n"
    )
    events, _ = drain(parser)
    _, body, done = collect_message(events)
    assert body == b"abc"
    assert done


def test_chunked_incremental_delivery():
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    wire = (
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        b"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"
    )
    events = []
    for i in range(0, len(wire), 7):
        parser.receive_data(wire[i : i + 7])
        got, _ = drain(parser)
        events.extend(got)
    _, body, done = collect_message(events)
    assert body == b"Wikipedia"
    assert done


def test_bad_chunk_size_rejected():
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    parser.receive_data(
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"
    )
    with pytest.raises(HttpParseError):
        drain(parser)


def test_bad_role_rejected():
    with pytest.raises(ValueError):
        HttpParser("proxy")


# -- serialisation -----------------------------------------------------------


def test_serialize_request_adds_content_length():
    wire = serialize_request(
        Request("PUT", "/x", Headers([("Host", "h")]), body=b"abcd")
    )
    assert wire.startswith(b"PUT /x HTTP/1.1\r\n")
    assert b"Content-Length: 4\r\n" in wire
    assert wire.endswith(b"\r\n\r\nabcd")


def test_serialize_get_has_no_content_length():
    wire = serialize_request(Request("GET", "/x"))
    assert b"Content-Length" not in wire


def test_serialize_post_without_body_gets_zero_length():
    wire = serialize_request(Request("POST", "/x"))
    assert b"Content-Length: 0\r\n" in wire


def test_serialize_response_roundtrip():
    wire = serialize_response(
        Response(200, Headers([("Content-Type", "text/plain")]), b"hi")
    )
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    parser.receive_data(wire)
    events, _ = drain(parser)
    head, body, done = collect_message(events)
    assert head.status == 200
    assert head.content_type == "text/plain"
    assert body == b"hi"
    assert done


def test_serialize_response_head_with_streamed_length():
    head = serialize_response_head(Response(200), content_length=10)
    assert b"Content-Length: 10\r\n" in head


def test_serialize_204_has_no_content_length():
    wire = serialize_response(Response(204))
    assert b"Content-Length" not in wire


def test_chunk_encoding_helpers():
    assert encode_chunk(b"abc") == b"3\r\nabc\r\n"
    assert encode_last_chunk() == b"0\r\n\r\n"
    with pytest.raises(ValueError):
        encode_chunk(b"")


# -- property-based ----------------------------------------------------------


@given(st.binary(min_size=0, max_size=5000), st.integers(1, 97))
def test_request_roundtrip_any_split(body, step):
    request = Request(
        "PUT", "/path", Headers([("Host", "h"), ("X-N", "1")]), body=body
    )
    wire = serialize_request(request)
    parser = HttpParser("server")
    events = []
    for i in range(0, len(wire), step):
        parser.receive_data(wire[i : i + step])
        while True:
            event = parser.next_event()
            if event == NEED_DATA:
                break
            events.append(event)
    head, parsed_body, done = collect_message(events)
    assert head.method == "PUT"
    assert parsed_body == body
    assert done


@given(
    st.lists(st.binary(min_size=1, max_size=500), min_size=0, max_size=8),
    st.integers(1, 53),
)
def test_chunked_roundtrip_any_split(chunks, step):
    wire = bytearray(
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
    )
    for chunk in chunks:
        wire += encode_chunk(chunk)
    wire += encode_last_chunk()
    parser = HttpParser("client")
    parser.expect_response_to("GET")
    events = []
    for i in range(0, len(wire), step):
        parser.receive_data(bytes(wire[i : i + step]))
        while True:
            event = parser.next_event()
            if event == NEED_DATA:
                break
            events.append(event)
    _, body, done = collect_message(events)
    assert body == b"".join(chunks)
    assert done
