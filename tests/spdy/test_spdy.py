"""Tests for the SPDY-like multiplexed comparator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.concurrency import Await, Join, SimRuntime, Spawn
from repro.errors import ConnectionClosed, HttpProtocolError
from repro.http import Headers, Request
from repro.server import ObjectStore, StorageApp
from repro.spdy import SpdyClient, SpdyServer, serve_spdy
from repro.spdy import protocol as sp

from tests.helpers import sim_world


# -- protocol codecs ----------------------------------------------------------


def test_frame_roundtrip():
    wire = sp.encode_frame(7, sp.TYPE_DATA, b"abc", flags=sp.FLAG_FIN)
    reader = sp.FrameReader()
    reader.feed(wire)
    frame = reader.next_frame()
    assert frame == sp.Frame(7, sp.TYPE_DATA, sp.FLAG_FIN, b"abc")
    assert frame.fin
    assert reader.next_frame() is None


def test_frame_incremental():
    wire = sp.encode_frame(1, sp.TYPE_HEADERS, b"x" * 100)
    reader = sp.FrameReader()
    for i in range(0, len(wire), 7):
        reader.feed(wire[i : i + 7])
    assert reader.next_frame().payload == b"x" * 100


def test_oversized_frame_rejected():
    with pytest.raises(HttpProtocolError):
        sp.encode_frame(1, sp.TYPE_DATA, b"x" * (sp.MAX_FRAME_PAYLOAD + 1))


def test_request_head_roundtrip():
    headers = Headers([("Host", "h"), ("Range", "bytes=0-1")])
    blob = sp.encode_request_head("GET", "/data?x=1", headers)
    method, target, parsed = sp.decode_request_head(blob)
    assert method == "GET"
    assert target == "/data?x=1"
    assert parsed == headers


def test_response_head_roundtrip():
    headers = Headers([("Content-Type", "text/plain")])
    blob = sp.encode_response_head(206, headers)
    status, parsed = sp.decode_response_head(blob)
    assert status == 206
    assert parsed == headers


def test_header_block_is_compressed():
    headers = Headers([("X-Pad", "v" * 2000)])
    blob = sp.encode_request_head("GET", "/", headers)
    assert len(blob) < 500  # zlib'd


@given(
    st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N"),
                    whitelist_characters="-",
                ),
                min_size=1,
                max_size=20,
            ),
            st.text(max_size=100),
        ),
        max_size=10,
    )
)
def test_head_roundtrip_property(pairs):
    headers = Headers(pairs)
    blob = sp.encode_request_head("PUT", "/p", headers)
    method, target, parsed = sp.decode_request_head(blob)
    assert parsed == headers


# -- end to end ----------------------------------------------------------------


def spdy_world(latency=0.005, bandwidth=1e8):
    client_rt, server_rt = sim_world(latency=latency, bandwidth=bandwidth)
    store = ObjectStore()
    server = SpdyServer(StorageApp(store))
    serve_spdy(server_rt, server, port=443)
    return client_rt, store, server


def test_single_exchange():
    client_rt, store, server = spdy_world()
    store.put("/x", b"spdy-payload")

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        response = yield from client.request(Request("GET", "/x"))
        yield from client.disconnect()
        return response

    response = client_rt.run(op())
    assert response.status == 200
    assert response.body == b"spdy-payload"


def test_put_with_body():
    client_rt, store, server = spdy_world()

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        response = yield from client.request(
            Request("PUT", "/new", body=b"uploaded")
        )
        return response.status

    assert client_rt.run(op()) == 201
    assert store.read("/new") == b"uploaded"


def test_many_streams_one_connection():
    client_rt, store, server = spdy_world()
    for i in range(10):
        store.put(f"/f{i}", f"value-{i}".encode())

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        promises = []
        for i in range(10):
            promise = yield from client.request_nowait(
                Request("GET", f"/f{i}")
            )
            promises.append(promise)
        bodies = []
        for promise in promises:
            response = yield Await(promise)
            bodies.append(response.body)
        return bodies

    bodies = client_rt.run(op())
    assert bodies == [f"value-{i}".encode() for i in range(10)]
    assert client_rt.network.host("server").counters[
        "connections_accepted"
    ] == 1


def test_multiplexing_avoids_hol():
    client_rt, store, server = spdy_world(latency=0.01, bandwidth=2e6)
    store.put("/big", b"B" * 2_000_000)
    store.put("/small", b"s")

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        big_promise = yield from client.request_nowait(
            Request("GET", "/big")
        )
        small_promise = yield from client.request_nowait(
            Request("GET", "/small")
        )
        yield Await(small_promise)
        small_done = client_rt.now()
        yield Await(big_promise)
        big_done = client_rt.now()
        return small_done, big_done

    small_done, big_done = client_rt.run(op())
    assert small_done < big_done * 0.5  # DATA frames interleaved


def test_range_request_over_spdy():
    client_rt, store, server = spdy_world()
    store.put("/x", b"0123456789")

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        response = yield from client.request(
            Request("GET", "/x", Headers([("Range", "bytes=2-5")]))
        )
        return response

    response = client_rt.run(op())
    assert response.status == 206
    assert response.body == b"2345"


def test_server_death_rejects_pending_streams():
    client_rt, store, server = spdy_world()
    store.put("/x", b"data")

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        promise = yield from client.request_nowait(Request("GET", "/x"))
        client_rt.network.host("server").fail()
        try:
            yield Await(promise)
        except ConnectionClosed:
            return "lost"

    assert client_rt.run(op()) == "lost"


def test_tls_is_mandatory():
    # A SPDY client against a missing TLS peer (nothing listening that
    # speaks the handshake) must fail, not hang: point it at a plain
    # HTTP storage server.
    from repro.server import HttpServer

    client_rt, server_rt = sim_world()
    HttpServer(server_rt, StorageApp(ObjectStore()), port=80).start()

    def op():
        try:
            yield from SpdyClient.connect(("server", 80))
        except (HttpProtocolError, ConnectionClosed):
            return "refused"

    assert client_rt.run(op()) == "refused"


def test_large_upload_chunks_body_frames():
    client_rt, store, server = spdy_world()
    payload = bytes(range(256)) * 4096  # 1 MiB > frame cap

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        response = yield from client.request(
            Request("PUT", "/big", body=payload)
        )
        return response.status

    assert client_rt.run(op()) == 201
    assert store.read("/big") == payload


def test_large_download_chunks_response_frames():
    client_rt, store, server = spdy_world()
    payload = b"D" * 1_000_000
    store.put("/big", payload)

    def op():
        client = yield from SpdyClient.connect(("server", 443))
        response = yield from client.request(Request("GET", "/big"))
        return response.body

    assert client_rt.run(op()) == payload
