"""docs/API.md must stay in sync with the public surface, and every
public symbol must be documented."""

import importlib
import inspect
import pathlib
import pkgutil
import sys

import repro

TOOLS = pathlib.Path(__file__).parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import gen_api_docs  # noqa: E402


def test_api_docs_in_sync():
    assert gen_api_docs.OUTPUT.exists(), "run tools/gen_api_docs.py"
    assert gen_api_docs.OUTPUT.read_text() == gen_api_docs.render()


def test_every_public_symbol_has_a_docstring():
    undocumented = []
    for module_name in gen_api_docs.iter_modules():
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []) or []:
            member = getattr(module, name, None)
            if member is None or not (
                inspect.isclass(member) or inspect.isfunction(member)
            ):
                continue
            if member.__module__ and not member.__module__.startswith(
                "repro"
            ):
                continue  # re-exported stdlib helpers
            if not inspect.getdoc(member):
                undocumented.append(f"{module_name}.{name}")
    assert not undocumented, f"undocumented: {undocumented}"


def test_every_module_has_a_docstring():
    missing = []
    for module_name in gen_api_docs.iter_modules():
        module = importlib.import_module(module_name)
        if not module.__doc__:
            missing.append(module_name)
    assert not missing, f"modules without docstrings: {missing}"
