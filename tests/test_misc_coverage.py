"""Edge-coverage tests across subsystems."""

import pytest

from repro.http import Headers, Request, Response
from repro.net import LAN
from repro.rootio.generator import BranchSpec, DatasetSpec
from repro.workloads import AnalysisConfig, Scenario, run_scenario


# -- http message validation ------------------------------------------------------


def test_get_with_body_rejected():
    with pytest.raises(ValueError):
        Request("GET", "/x", body=b"nope")


def test_204_with_body_rejected():
    with pytest.raises(ValueError):
        Response(204, body=b"nope")


def test_http10_keepalive_semantics():
    # HTTP/1.0 defaults to close; opt-in via Connection: keep-alive.
    old = Request("GET", "/", version="HTTP/1.0")
    assert old.wants_keep_alive() is False
    opted = Request(
        "GET",
        "/",
        Headers([("Connection", "keep-alive")]),
        version="HTTP/1.0",
    )
    assert opted.wants_keep_alive() is True
    # HTTP/1.1 defaults to keep-alive.
    assert Request("GET", "/").wants_keep_alive() is True
    response10 = Response(200, version="HTTP/1.0")
    assert response10.keep_alive() is False


def test_request_path_and_query_split():
    request = Request("GET", "/a/b?x=1&y=2")
    assert request.path == "/a/b"
    assert request.query == "x=1&y=2"
    assert Request("GET", "/plain").query == ""


def test_method_upcased_and_repr():
    request = Request("get", "/x")
    assert request.method == "GET"
    assert "GET /x" in repr(request)
    assert "200" in repr(Response(200))


def test_response_ok_and_default_reason():
    assert Response(204).ok
    assert not Response(404).ok
    assert Response(207).reason == "Multi-Status"


# -- net odds and ends ---------------------------------------------------------------


def test_listener_backlog_counts_unaccepted():
    from repro.net import LinkSpec, Network
    from repro.sim import Environment

    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.set_route("a", "b", LinkSpec(latency=0.001, bandwidth=1e9))
    listener = net.listen("b", 1)

    def client():
        yield net.connect("a", ("b", 1))
        yield net.connect("a", ("b", 1))

    env.run(env.process(client()))
    assert listener.backlog == 2


def test_wire_queue_length_under_contention():
    from repro.net.link import Wire
    from repro.sim import Environment

    env = Environment()
    wire = Wire(env, bandwidth=1000.0)

    def sender():
        yield env.process(wire.transmit(1000, 1e9))

    env.process(sender())
    env.process(sender())
    env.process(sender())
    env.run(until=0.5)
    assert wire.queue_length == 2  # one transmitting, two queued


# -- runner: xrootd with materialised data ------------------------------------------


def test_runner_xrootd_materialized_decodes():
    spec = DatasetSpec(
        name="hep_events",
        n_entries=300,
        branches=(BranchSpec("a", event_size=128),),
        basket_entries=100,
        seed=8,
    )
    report = run_scenario(
        Scenario(
            profile=LAN,
            protocol="xrootd",
            spec=spec,
            config=AnalysisConfig(
                per_event_cpu=0.0001, learn_entries=0, decode=True
            ),
            materialize=True,
        )
    )
    assert report.events_read == 300
    assert report.protocol == "xrootd"


# -- sim kernel edges -----------------------------------------------------------------


def test_allof_fails_fast_on_member_failure():
    from repro.sim import AllOf, Environment

    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("member died")

    def good():
        yield env.timeout(100)

    def waiter():
        try:
            yield AllOf(env, [env.process(bad()), env.process(good())])
        except RuntimeError:
            return env.now

    task = env.process(waiter())
    assert env.run(task) == 1  # did not wait for the slow member


def test_empty_condition_fires_immediately():
    from repro.sim import AllOf, AnyOf, Environment

    env = Environment()

    def waiter():
        yield AllOf(env, [])
        yield AnyOf(env, [])
        return env.now

    assert env.run(env.process(waiter())) == 0


def test_store_items_snapshot():
    from repro.sim import Environment, Store

    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert store.items == ("a", "b")


# -- synthetic content checksum helpers ----------------------------------------------


def test_content_md5_and_iter_chunks():
    import hashlib

    from repro.server import BytesContent

    data = bytes(range(256)) * 100
    content = BytesContent(data)
    assert content.md5() == hashlib.md5(data).hexdigest()
    assert b"".join(content.iter_chunks(1000)) == data
