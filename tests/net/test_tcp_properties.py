"""Property-based tests of the TCP model's core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LinkSpec, Network, TcpOptions
from repro.sim import Environment


def transfer(payloads, latency, bandwidth, chunk_cap, max_window, seed):
    """Send `payloads` over a fresh sim connection; return what arrives
    and the completion time."""
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("a")
    net.add_host("b")
    net.set_route("a", "b", LinkSpec(latency=latency, bandwidth=bandwidth))
    listener = net.listen("b", 1)
    options = TcpOptions(chunk_cap=chunk_cap, max_window=max_window)
    received = bytearray()

    def server():
        side = yield listener.accept()
        while True:
            data = yield side.recv()
            if not data:
                return
            received.extend(data)

    def client():
        side = yield net.connect("a", ("b", 1), options)
        for payload in payloads:
            yield side.send(payload)
        side.close()

    server_task = env.process(server())
    env.process(client())
    env.run(server_task)
    return bytes(received), env.now


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(min_size=0, max_size=50_000), max_size=8),
    st.sampled_from([1e-5, 0.001, 0.05]),
    st.sampled_from([1e5, 1e7, 1e9]),
    st.sampled_from([1460, 8192, 65536]),
    st.integers(min_value=0, max_value=5),
)
def test_bytes_conserved_and_ordered(
    payloads, latency, bandwidth, chunk_cap, seed
):
    """Whatever the write pattern and link, the receiver gets exactly
    the concatenation of the writes."""
    data, _ = transfer(
        payloads, latency, bandwidth, chunk_cap, 4 << 20, seed
    )
    assert data == b"".join(payloads)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=500_000),
    st.sampled_from([0.001, 0.02]),
    st.sampled_from([1e6, 1e8]),
)
def test_completion_time_bounded_below_by_physics(size, latency, bandwidth):
    """No transfer can beat handshake + serialisation + propagation."""
    data, finished = transfer(
        [b"x" * size], latency, bandwidth, 65536, 4 << 20, seed=1
    )
    assert len(data) == size
    physical_floor = 2 * latency + size / bandwidth + latency
    assert finished >= physical_floor * 0.999


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1000, max_value=300_000),
    st.integers(min_value=2920, max_value=65536),
)
def test_window_cap_never_exceeded(size, max_window):
    """In-flight bytes never exceed the window cap (plus one burst)."""
    env = Environment()
    net = Network(env, seed=2)
    net.add_host("a")
    net.add_host("b")
    net.set_route("a", "b", LinkSpec(latency=0.01, bandwidth=1e9))
    listener = net.listen("b", 1)
    options = TcpOptions(max_window=max_window, chunk_cap=8192)
    peak = {"inflight": 0}

    def server():
        side = yield listener.accept()
        while True:
            data = yield side.recv()
            if not data:
                return

    def client():
        side = yield net.connect("a", ("b", 1), options)
        half = side._out
        original = half._on_ack

        def spy(n, lost):
            peak["inflight"] = max(peak["inflight"], half.inflight)
            original(n, lost)

        half._on_ack = spy
        yield side.send(b"x" * size)
        side.close()

    server_task = env.process(server())
    env.process(client())
    env.run(server_task)
    assert peak["inflight"] <= max_window + options.chunk_cap
