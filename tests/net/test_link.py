"""Unit tests for LinkSpec and Wire."""

import pytest

from repro.net import LinkSpec, Wire
from repro.sim import Environment


def test_linkspec_derived_quantities():
    spec = LinkSpec(latency=0.05, bandwidth=1e6)
    assert spec.rtt == 0.1
    assert spec.bdp() == pytest.approx(1e5)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"latency": -1, "bandwidth": 1e6},
        {"latency": 0.1, "bandwidth": 0},
        {"latency": 0.1, "bandwidth": 1e6, "jitter": -0.1},
        {"latency": 0.1, "bandwidth": 1e6, "loss_rate": 1.0},
    ],
)
def test_linkspec_validation(kwargs):
    with pytest.raises(ValueError):
        LinkSpec(**kwargs)


def test_wire_serialises_transmissions():
    env = Environment()
    wire = Wire(env, bandwidth=1000.0)
    done = []

    def sender(tag, size):
        yield env.process(wire.transmit(size, rate_cap=1e9))
        done.append((tag, env.now))

    env.process(sender("a", 500))
    env.process(sender("b", 500))
    env.run()
    # 500 bytes at 1000 B/s = 0.5 s each, serialised.
    assert done == [("a", 0.5), ("b", 1.0)]
    assert wire.bytes_carried == 1000
    assert wire.utilisation(1.0) == pytest.approx(1.0)


def test_wire_rate_cap_applies():
    env = Environment()
    wire = Wire(env, bandwidth=1e9)
    done = []

    def sender():
        yield env.process(wire.transmit(1000, rate_cap=1000.0))
        done.append(env.now)

    env.process(sender())
    env.run()
    assert done == [pytest.approx(1.0)]


def test_wire_rejects_bad_bandwidth():
    env = Environment()
    with pytest.raises(ValueError):
        Wire(env, bandwidth=0)
