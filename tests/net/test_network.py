"""Tests for topology management and connection failure semantics."""

import pytest

from repro.errors import ConnectError, ConnectionClosed, NetworkError
from repro.net import LAN, LinkSpec, Network, TcpOptions, build_network
from repro.net.profiles import GEANT, PROFILES, WAN
from repro.sim import Environment


def star(seed=0):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("client")
    net.add_host("server")
    net.set_route("client", "server", LinkSpec(latency=0.01, bandwidth=1e9))
    return env, net


def test_duplicate_host_rejected():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    with pytest.raises(ValueError):
        net.add_host("a")


def test_unknown_host_and_route_errors():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    with pytest.raises(NetworkError):
        net.host("nope")
    with pytest.raises(NetworkError):
        net.route("a", "a")


def test_connect_refused_without_listener():
    env, net = star()

    def client():
        try:
            yield net.connect("client", ("server", 81))
        except ConnectError as exc:
            return ("refused" in str(exc), env.now)

    refused, when = env.run(env.process(client()))
    assert refused
    assert when == pytest.approx(0.02)  # one RTT


def test_connect_to_down_host_times_out():
    env, net = star()
    net.listen("server", 80)
    net.host("server").fail()

    def client():
        try:
            yield net.connect(
                "client", ("server", 80), TcpOptions(connect_timeout=1.5)
            )
        except ConnectError as exc:
            return ("timed out" in str(exc), env.now)

    timed_out, when = env.run(env.process(client()))
    assert timed_out
    assert when == pytest.approx(1.5)


def test_host_fail_aborts_established_connections():
    env, net = star()
    listener = net.listen("server", 80)

    def server():
        side = yield listener.accept()
        yield env.timeout(10)
        return side

    def client():
        side = yield net.connect("client", ("server", 80))
        try:
            yield side.recv()
        except ConnectionClosed:
            return env.now

    def killer():
        yield env.timeout(1.0)
        net.host("server").fail()

    env.process(server())
    task = env.process(client())
    env.process(killer())
    assert env.run(task) == pytest.approx(1.0)


def test_host_recover_allows_new_connections():
    env, net = star()
    net.listen("server", 80)
    server = net.host("server")
    server.fail()
    server.recover()

    def client():
        side = yield net.connect("client", ("server", 80))
        return side is not None

    assert env.run(env.process(client())) is True


def test_listener_close_refuses_and_fails_accept():
    env, net = star()
    listener = net.listen("server", 80)

    def acceptor():
        try:
            yield listener.accept()
        except NetworkError:
            return "accept-failed"

    def closer():
        yield env.timeout(0.1)
        listener.close()

    task = env.process(acceptor())
    env.process(closer())
    assert env.run(task) == "accept-failed"

    def client():
        try:
            yield net.connect("client", ("server", 80))
        except ConnectError:
            return "refused"

    assert env.run(env.process(client())) == "refused"


def test_double_listen_rejected_until_closed():
    env, net = star()
    listener = net.listen("server", 80)
    with pytest.raises(NetworkError):
        net.listen("server", 80)
    listener.close()
    net.listen("server", 80)  # re-listen allowed after close


def test_counters_track_connections():
    env, net = star()
    listener = net.listen("server", 80)

    def server():
        while True:
            yield listener.accept()

    def client():
        for _ in range(3):
            side = yield net.connect("client", ("server", 80))
            side.close()

    env.process(server())
    env.process(client())
    env.run(until=5)
    assert net.host("server").counters["connections_accepted"] == 3
    assert net.host("client").counters["connections_initiated"] == 3


def test_default_route_fallback():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    net.default_route = LinkSpec(latency=0.001, bandwidth=1e9)
    assert net.route("a", "b").latency == 0.001


def test_build_network_profiles():
    env = Environment()
    net = build_network(GEANT, env, clients=2, servers=2)
    assert set(net.hosts) == {"client0", "client1", "server0", "server1"}
    assert net.route("client1", "server0") is GEANT.spec


def test_profile_latencies_match_paper_bounds():
    assert LAN.rtt < 0.005
    assert GEANT.rtt < 0.050
    assert WAN.rtt < 0.300
    assert set(PROFILES) == {"lan", "geant", "wan", "100g"}


def test_hundred_gig_profile_shape():
    from repro.net import HUNDRED_GIG

    assert HUNDRED_GIG.spec.bandwidth == 100 * 125_000_000
    assert HUNDRED_GIG.server_bandwidth == HUNDRED_GIG.client_bandwidth
    assert HUNDRED_GIG.rtt == 0.01
