"""Behavioural tests of the flow-level TCP model."""

import pytest

from repro.errors import ConnectionClosed
from repro.net import LinkSpec, Network, TcpOptions
from repro.sim import Environment


def make_pair(
    latency=0.01,
    bandwidth=1e9,
    jitter=0.0,
    loss_rate=0.0,
    access=1e12,
    seed=1,
):
    env = Environment()
    net = Network(env, seed=seed)
    net.add_host("client", access_bandwidth=access)
    net.add_host("server", access_bandwidth=access)
    net.set_route(
        "client",
        "server",
        LinkSpec(
            latency=latency,
            bandwidth=bandwidth,
            jitter=jitter,
            loss_rate=loss_rate,
        ),
    )
    return env, net


def echo_server(env, net, port=80, chunk=65536):
    """Accept one connection and echo everything until EOF."""

    listener = net.listen("server", port)

    def run():
        side = yield listener.accept()
        while True:
            data = yield side.recv(chunk)
            if not data:
                break
            yield side.send(data)
        side.close()

    return env.process(run())


def recv_all(side):
    """Process helper: read until EOF, return the bytes."""
    buf = bytearray()
    while True:
        data = yield side.recv()
        if not data:
            return bytes(buf)
        buf.extend(data)


def test_handshake_takes_one_rtt():
    env, net = make_pair(latency=0.05)
    net.listen("server", 80)

    def client():
        yield net.connect("client", ("server", 80))
        return env.now

    assert env.run(env.process(client())) == pytest.approx(0.1)


def test_payload_roundtrip_byte_exact():
    env, net = make_pair()
    echo_server(env, net)
    payload = bytes(range(256)) * 1000  # 256 000 bytes

    def client():
        side = yield net.connect("client", ("server", 80))
        yield side.send(payload)
        side.close()
        data = yield from recv_all(side)
        return data

    assert env.run(env.process(client())) == payload


def test_transfer_time_matches_bandwidth_when_window_open():
    # 1 MB at 1 MB/s with negligible latency: ~1 s.
    env, net = make_pair(latency=1e-6, bandwidth=1e6)
    listener = net.listen("server", 80)
    size = 1_000_000

    def server():
        side = yield listener.accept()
        yield side.send(b"x" * size)
        side.close()

    def client():
        side = yield net.connect("client", ("server", 80))
        yield from recv_all(side)
        return env.now

    env.process(server())
    elapsed = env.run(env.process(client()))
    assert 0.9 < elapsed < 1.3


def test_slow_start_doubles_window_each_rtt():
    # High latency, high bandwidth: time is dominated by RTT rounds and
    # the number of rounds grows logarithmically with transfer size.
    opts = TcpOptions(idle_reset=False)
    iw = opts.initial_window

    def transfer_time(size):
        env, net = make_pair(latency=0.1, bandwidth=1e9)
        listener = net.listen("server", 80)

        def server():
            side = yield listener.accept()
            yield side.send(b"x" * size)
            side.close()

        def client():
            side = yield net.connect("client", ("server", 80), opts)
            yield from recv_all(side)
            return env.now

        env.process(server())
        return env.run(env.process(client()))

    t1 = transfer_time(iw)  # fits in the initial window
    t8 = transfer_time(8 * iw)  # needs ~3 extra doubling rounds
    extra_rounds = round((t8 - t1) / 0.2)
    assert extra_rounds == 3


def test_warm_connection_skips_slow_start():
    # Request/response pairs on one connection: later exchanges are
    # faster because cwnd has grown (the keep-alive benefit).
    env, net = make_pair(latency=0.05, bandwidth=1e9)
    listener = net.listen("server", 80)
    size = 16 * 14600

    def server():
        side = yield listener.accept()
        for _ in range(2):
            request = yield side.recv()
            assert request
            yield side.send(b"y" * size)
        side.close()

    def client():
        opts = TcpOptions(idle_reset=False)
        side = yield net.connect("client", ("server", 80), opts)
        times = []
        for _ in range(2):
            start = env.now
            yield side.send(b"GET")
            received = 0
            while received < size:
                data = yield side.recv()
                received += len(data)
            times.append(env.now - start)
        return times

    env.process(server())
    first, second = env.run(env.process(client()))
    assert second < first * 0.55  # warm window cuts rounds


def test_idle_reset_restores_initial_window():
    env, net = make_pair(latency=0.05, bandwidth=1e9)
    listener = net.listen("server", 80)
    size = 16 * 14600

    def server():
        side = yield listener.accept()
        for _ in range(2):
            request = yield side.recv()
            assert request
            yield side.send(b"y" * size)
        side.close()

    def client():
        opts = TcpOptions(idle_reset=True, idle_timeout=0.5)
        side = yield net.connect("client", ("server", 80), opts)
        times = []
        for i in range(2):
            if i:
                yield env.timeout(2.0)  # idle gap > idle_timeout
            start = env.now
            yield side.send(b"GET")
            received = 0
            while received < size:
                data = yield side.recv()
                received += len(data)
            times.append(env.now - start)
        return times

    env.process(server())
    first, second = env.run(env.process(client()))
    # The server's cwnd was reset during the idle gap: the second
    # exchange pays slow start again.
    assert second == pytest.approx(first, rel=0.25)


def test_window_cap_limits_throughput_on_fat_pipe():
    # BDP (2 MB) above max_window (64 KB): throughput ~ window/RTT.
    size = 2_000_000
    env, net = make_pair(latency=0.1, bandwidth=1e8)
    listener = net.listen("server", 80)
    opts = TcpOptions(max_window=65536, idle_reset=False)

    def server():
        side = yield listener.accept()
        yield side.send(b"x" * size)
        side.close()

    def client():
        side = yield net.connect("client", ("server", 80), opts)
        yield from recv_all(side)
        return env.now

    env.process(server())
    elapsed = env.run(env.process(client()))
    expected = size / (65536 / 0.2)  # ~6.1 s
    assert elapsed == pytest.approx(expected, rel=0.25)


def test_nagle_delays_small_write_until_ack():
    def run(nagle):
        env, net = make_pair(latency=0.05, bandwidth=1e9)
        listener = net.listen("server", 80)

        def server():
            side = yield listener.accept()
            total = 0
            while total < 2000 + 10:
                data = yield side.recv()
                total += len(data)
            return env.now

        def client():
            opts = TcpOptions(nagle=nagle, idle_reset=False)
            side = yield net.connect("client", ("server", 80), opts)
            yield side.send(b"a" * 2000)
            yield side.send(b"b" * 10)  # sub-MSS while data in flight

        server_task = env.process(server())
        env.process(client())
        return env.run(server_task)

    assert run(nagle=True) > run(nagle=False) + 0.05


def test_loss_episode_slows_transfer_and_is_counted():
    def run(loss):
        env, net = make_pair(
            latency=0.02, bandwidth=1e7, loss_rate=loss, seed=7
        )
        listener = net.listen("server", 80)
        holder = {}

        def server():
            side = yield listener.accept()
            holder["side"] = side
            yield side.send(b"x" * 1_000_000)
            side.close()

        def client():
            side = yield net.connect("client", ("server", 80))
            yield from recv_all(side)
            return env.now

        env.process(server())
        elapsed = env.run(env.process(client()))
        episodes = holder["side"]._out.loss_episodes
        return elapsed, episodes

    clean_time, clean_episodes = run(0.0)
    lossy_time, lossy_episodes = run(0.3)
    assert clean_episodes == 0
    assert lossy_episodes > 0
    assert lossy_time > clean_time


def test_clean_close_yields_empty_read():
    env, net = make_pair()
    listener = net.listen("server", 80)

    def server():
        side = yield listener.accept()
        yield side.send(b"bye")
        side.close()

    def client():
        side = yield net.connect("client", ("server", 80))
        first = yield side.recv()
        second = yield side.recv()
        third = yield side.recv()
        return first, second, third

    env.process(server())
    first, second, third = env.run(env.process(client()))
    assert first == b"bye"
    assert second == b""
    assert third == b""


def test_abort_fails_pending_recv():
    env, net = make_pair(latency=0.01)
    listener = net.listen("server", 80)

    def server():
        side = yield listener.accept()
        yield env.timeout(0.5)
        side.abort()

    def client():
        side = yield net.connect("client", ("server", 80))
        try:
            yield side.recv()
        except ConnectionClosed:
            return "reset"

    env.process(server())
    assert env.run(env.process(client())) == "reset"


def test_send_after_close_fails():
    env, net = make_pair()
    net.listen("server", 80)

    def client():
        side = yield net.connect("client", ("server", 80))
        side.close()
        try:
            yield side.send(b"late")
        except ConnectionClosed:
            return "rejected"

    assert env.run(env.process(client())) == "rejected"


def test_recv_max_bytes_partial_delivery():
    env, net = make_pair()
    listener = net.listen("server", 80)

    def server():
        side = yield listener.accept()
        yield side.send(b"abcdefgh")
        side.close()

    def client():
        side = yield net.connect("client", ("server", 80))
        a = yield side.recv(3)
        b = yield side.recv(3)
        c = yield side.recv(10)
        return a, b, c

    env.process(server())
    assert env.run(env.process(client())) == (b"abc", b"def", b"gh")


def test_bandwidth_shared_between_connections():
    # Two simultaneous 1 MB downloads through one 1 MB/s server uplink
    # finish in ~2 s (vs ~1 s for a single download).
    env, net = make_pair(latency=1e-6, bandwidth=1e9, access=1e6)
    listener = net.listen("server", 80)
    size = 1_000_000

    def server():
        while True:
            side = yield listener.accept()
            env.process(serve_one(side))

    def serve_one(side):
        yield side.send(b"x" * size)
        side.close()

    def client(results):
        side = yield net.connect("client", ("server", 80))
        data = yield from recv_all(side)
        results.append((env.now, len(data)))

    results = []
    env.process(server())
    env.process(client(results))
    env.process(client(results))
    env.run(until=60)
    assert len(results) == 2
    for finished_at, nbytes in results:
        assert nbytes == size
        assert 1.8 < finished_at < 2.6


def test_jitter_is_deterministic_per_seed():
    def run(seed):
        env, net = make_pair(latency=0.01, jitter=0.005, seed=seed)
        listener = net.listen("server", 80)

        def server():
            side = yield listener.accept()
            yield side.send(b"x")
            side.close()

        def client():
            side = yield net.connect("client", ("server", 80))
            yield side.recv()
            return env.now

        env.process(server())
        return env.run(env.process(client()))

    assert run(3) == run(3)
    assert run(3) != run(4)
