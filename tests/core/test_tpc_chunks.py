"""Multistream chunk-boundary properties for third-party copy.

Pure :func:`plan_chunks` invariants plus full-simulation byte-identity:
for any object size and chunk size — including sizes not divisible by
the chunk, a single-byte final chunk, and the zero-length source — a
multi-stream TPC commits bytes identical to a single-stream one, and
both identical to the payload.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.core.tpc import TpcConfig, plan_chunks
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, ServerConfig, StorageApp
from repro.sim import Environment


@given(
    size=st.integers(min_value=0, max_value=1 << 16),
    chunk=st.integers(min_value=1, max_value=1 << 10),
    scale=st.sampled_from([1, 1 << 20]),
)
def test_plan_chunks_partitions_exactly(size, chunk, scale):
    # `scale` exercises multi-terabyte objects without materialising
    # billions of chunks: the chunk count stays bounded by size/chunk.
    size, chunk = size * scale, chunk * scale
    chunks = plan_chunks(size, chunk)
    # Chunks tile [0, size) in order with no gaps or overlap.
    position = 0
    for offset, length in chunks:
        assert offset == position
        assert 0 < length <= chunk
        position += length
    assert position == size
    # Every chunk but the last is full-size; the last may be any
    # remainder down to a single byte.
    for offset, length in chunks[:-1]:
        assert length == chunk
    if size == 0:
        assert chunks == []


@given(chunk=st.integers(min_value=2, max_value=1 << 20))
def test_plan_chunks_single_byte_final_chunk(chunk):
    # size ≡ 1 (mod chunk): the remainder chunk is exactly one byte.
    size = chunk * 3 + 1
    chunks = plan_chunks(size, chunk)
    assert chunks[-1] == (chunk * 3, 1)


def tpc_world(chunk_size, streams):
    env = Environment()
    net = Network(env, seed=7)
    for name in ("client", "site-a", "site-b"):
        net.add_host(name)
    net.set_route(
        "site-a", "site-b", LinkSpec(latency=0.002, bandwidth=125_000_000)
    )
    default = LinkSpec(latency=0.01, bandwidth=12_500_000)
    net.set_route("client", "site-a", default)
    net.set_route("client", "site-b", default)
    apps = {}
    for name in ("site-a", "site-b"):
        app = StorageApp(
            ObjectStore(),
            config=ServerConfig(tpc_chunk=chunk_size, tpc_streams=streams),
        )
        HttpServer(SimRuntime(net, name), app, port=80).start()
        apps[name] = app
    client = DavixClient(
        SimRuntime(net, "client"), params=RequestParams(retries=0)
    )
    return client, apps


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    size=st.one_of(
        st.integers(min_value=0, max_value=4096),
        # Sizes straddling chunk multiples (single-byte tails etc.).
        st.builds(
            lambda k, d: max(0, k * 1024 + d),
            st.integers(0, 4),
            st.integers(-2, 2),
        ),
    ),
    mode=st.sampled_from(["pull", "push"]),
)
def test_multistream_tpc_byte_identical_to_single_stream(size, mode):
    payload = bytes((i * 131 + 17) % 256 for i in range(size))

    committed = {}
    for streams in (1, 4):
        client, apps = tpc_world(chunk_size=1024, streams=streams)
        apps["site-a"].store.put("/src", payload)
        summary = client.third_party_copy(
            "http://site-a/src",
            "http://site-b/dst",
            mode=mode,
            streams=streams,
        )
        assert summary.ok
        committed[streams] = apps["site-b"].store.read("/dst")

    assert committed[1] == committed[4] == payload


def test_tpc_config_validation():
    import pytest

    with pytest.raises(ValueError):
        TpcConfig(streams=0)
    with pytest.raises(ValueError):
        TpcConfig(chunk_size=0)
    with pytest.raises(ValueError):
        TpcConfig(digest="crc32")
    with pytest.raises(ValueError):
        plan_chunks(-1, 8)
    with pytest.raises(ValueError):
        plan_chunks(8, 0)
