"""Property tests: the client page cache never changes read results
and never exceeds its configured byte budget.

Two layers: the :class:`PageCache` alone against a reference byte
string (arbitrary insert/read interleavings, ETag churn included), and
the full ``DavFile`` path over the simulated network (cache-backed
reads byte-identical to direct slicing, warm repeats included).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RequestParams, TransferConfig
from repro.core.pagecache import PageCache

from tests.helpers import davix_world

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=100, deadline=None)
@given(
    data=st.data(),
    page_size=st.integers(min_value=1, max_value=300),
    budget=st.integers(min_value=0, max_value=4000),
    size=st.integers(min_value=0, max_value=3000),
)
def test_pagecache_unit_matches_reference(data, page_size, budget, size):
    """Any interleaving of inserts and reads (across two object
    versions) returns exactly the reference bytes of the *current*
    version, and the byte budget holds after every operation."""
    contents = {
        "v0": bytes(i % 251 for i in range(size)),
        "v1": bytes((i * 7 + 13) % 256 for i in range(size)),
    }
    cache = PageCache(budget_bytes=budget, page_size=page_size)
    current = None
    for _ in range(data.draw(st.integers(0, 40), label="ops")):
        op = data.draw(
            st.sampled_from(["insert", "read", "missing"]), label="op"
        )
        offset = data.draw(st.integers(0, size + 50), label="offset")
        length = data.draw(st.integers(0, size + 50), label="length")
        if op == "insert":
            etag = data.draw(st.sampled_from(["v0", "v1"]), label="etag")
            if offset <= size:
                end = min(size, offset + length)
                cache.insert(
                    "k",
                    etag,
                    offset,
                    contents[etag][offset:end],
                    total=size,
                )
                current = etag
        elif op == "read":
            got = cache.read("k", offset, length)
            if got is not None and current is not None:
                assert got == contents[current][offset : offset + length]
        else:
            spans = cache.missing_spans("k", offset, length)
            # Spans are sorted, disjoint, non-empty and page-aligned.
            for (a, n1), (b, _n2) in zip(spans, spans[1:]):
                assert a + n1 <= b
            for a, n in spans:
                assert n > 0
                assert a % page_size == 0
        assert cache.used_bytes <= budget
    assert cache.used_bytes <= max(0, budget)


@SLOW
@given(
    reads=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1500),
            st.integers(min_value=0, max_value=500),
        ),
        min_size=1,
        max_size=10,
    ),
    page_size=st.integers(min_value=1, max_value=257),
    budget=st.integers(min_value=0, max_value=1 << 16),
    use_vec=st.booleans(),
)
def test_cached_reads_match_direct(reads, page_size, budget, use_vec):
    """Cache-backed ``pread``/``pread_vec`` over the simulated network
    is byte-identical to direct slicing — for any page size and byte
    budget (including budgets too small to hold a single read)."""
    content = bytes((i * 7 + 3) % 256 for i in range(1200))
    params = RequestParams(
        transfer=TransferConfig(
            page_cache_bytes=budget, page_size=page_size
        )
    )
    client, app, store, _ = davix_world(params=params)
    store.put("/x", content)
    expected = [content[o : o + n] for o, n in reads]
    vec_reads = [
        (o, n) for o, n in reads if n == 0 or o < len(content)
    ]
    for _round in range(2):  # cold, then warm
        if use_vec and vec_reads:
            got = client.pread_vec("http://server/x", vec_reads)
            assert got == [content[o : o + n] for o, n in vec_reads]
        else:
            for (o, n), want in zip(reads, expected):
                assert client.pread("http://server/x", o, n) == want
    cache = client.context.page_cache
    if budget > 0:
        assert cache is not None
        assert cache.used_bytes <= budget
    else:
        assert cache is None
