"""Tests (incl. property-based) for vectored-I/O planning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import plan_vector, scatter_parts
from repro.core.vectored import Fragment
from repro.errors import RequestError


def test_empty_plan():
    plan = plan_vector([])
    assert plan.batches == []
    assert plan.total_ranges == 0


def test_single_fragment():
    plan = plan_vector([(100, 50)])
    assert plan.total_ranges == 1
    assert plan.batches[0][0].offset == 100
    assert plan.batches[0][0].length == 50


def test_adjacent_fragments_coalesce():
    plan = plan_vector([(0, 10), (10, 10), (20, 10)], gap=0)
    assert plan.total_ranges == 1
    rng = plan.batches[0][0]
    assert (rng.offset, rng.length) == (0, 30)
    assert len(rng.fragments) == 3


def test_gap_threshold_controls_merging():
    reads = [(0, 10), (100, 10)]
    assert plan_vector(reads, gap=0).total_ranges == 2
    assert plan_vector(reads, gap=89).total_ranges == 2
    assert plan_vector(reads, gap=90).total_ranges == 1


def test_overlapping_and_duplicate_fragments():
    plan = plan_vector([(0, 20), (10, 20), (0, 20)], gap=0)
    assert plan.total_ranges == 1
    assert plan.batches[0][0].length == 30


def test_unsorted_input_is_sorted():
    plan = plan_vector([(100, 10), (0, 10)], gap=0)
    offsets = [r.offset for r in plan.batches[0]]
    assert offsets == [0, 100]


def test_batching_respects_max_ranges():
    reads = [(i * 1000, 10) for i in range(10)]
    plan = plan_vector(reads, max_ranges=3, gap=0)
    assert [len(b) for b in plan.batches] == [3, 3, 3, 1]


def test_byte_accounting():
    plan = plan_vector([(0, 10), (15, 10)], gap=5)
    assert plan.requested_bytes == 20
    assert plan.total_request_bytes == 25  # includes the 5-byte gap


def test_validation():
    with pytest.raises(ValueError):
        plan_vector([(0, 10)], max_ranges=0)
    with pytest.raises(ValueError):
        plan_vector([(0, 10)], gap=-1)
    with pytest.raises(ValueError):
        plan_vector([(-1, 10)])
    with pytest.raises(ValueError):
        plan_vector([(0, 0)])


def test_scatter_exact_parts():
    plan = plan_vector([(0, 5), (20, 5)], gap=0)
    parts = {0: b"AAAAA", 20: b"BBBBB"}
    result = scatter_parts(plan.batches[0], parts)
    assert result == {0: b"AAAAA", 1: b"BBBBB"}


def test_scatter_from_coalesced_part():
    plan = plan_vector([(0, 5), (8, 5)], gap=10)
    assert plan.total_ranges == 1
    parts = {0: b"0123456789ABC"}
    result = scatter_parts(plan.batches[0], parts)
    assert result == {0: b"01234", 1: b"89ABC"}


def test_scatter_from_larger_enclosing_part():
    plan = plan_vector([(10, 5)], gap=0)
    parts = {0: b"0123456789ABCDEFGH"}  # server sent the whole object
    result = scatter_parts(plan.batches[0], parts)
    assert result == {0: b"ABCDE"}


def test_scatter_missing_coverage_raises():
    plan = plan_vector([(100, 5)], gap=0)
    with pytest.raises(RequestError):
        scatter_parts(plan.batches[0], {0: b"short"})


# -- PartTable: the bisect-indexed zero-copy part lookup ---------------------


def test_part_table_bisect_find():
    from repro.core import PartTable

    table = PartTable.from_parts(
        [(100, b"A" * 10), (0, b"B" * 10), (50, b"C" * 10)]
    )
    assert len(table) == 3
    # Exact hits, interior slices, and boundary spans.
    assert bytes(table.find(0, 10)) == b"B" * 10
    assert bytes(table.find(52, 3)) == b"CCC"
    assert bytes(table.find(105, 5)) == b"AAAAA"


def test_part_table_find_returns_memoryview_zero_copy():
    from repro.core import PartTable

    buffer = bytes(range(256))
    table = PartTable.from_parts([(1000, buffer)])
    view = table.find(1010, 4)
    assert isinstance(view, memoryview)
    assert view == buffer[10:14]
    # Zero-copy: the view aliases the original buffer.
    assert view.obj is buffer


def test_part_table_uncovered_lookup_raises():
    from repro.core import PartTable

    table = PartTable.from_parts([(0, b"x" * 10), (100, b"y" * 10)])
    for offset, length in ((5, 10), (50, 5), (95, 10), (200, 1)):
        with pytest.raises(RequestError):
            table.find(offset, length)
        assert not table.covers(offset, length)
    assert table.covers(0, 10)
    assert table.covers(102, 8)


def test_part_table_overlapping_parts_scan_left():
    from repro.core import PartTable

    # A long early part covers a span the nearest (short) part cannot.
    table = PartTable.from_parts([(0, b"L" * 100), (40, b"S" * 5)])
    assert bytes(table.find(40, 30)) == b"L" * 30


def test_part_table_same_offset_keeps_longest():
    from repro.core import PartTable

    table = PartTable.from_parts([(10, b"long-part")])
    table.add(10, b"x")  # shorter: ignored
    assert bytes(table.find(10, 9)) == b"long-part"
    table.add(10, b"even-longer-part")
    assert bytes(table.find(10, 16)) == b"even-longer-part"
    assert len(table) == 1


def test_part_table_merge_refetch_path():
    from repro.core import PartTable

    table = PartTable.from_parts([(0, b"a" * 8)])
    more = PartTable.from_parts([(100, b"b" * 8), (0, b"a" * 16)])
    table.merge(more)
    assert bytes(table.find(0, 16)) == b"a" * 16
    assert bytes(table.find(100, 8)) == b"b" * 8


def test_part_table_from_mapping_and_legacy_scatter():
    from repro.core import PartTable

    plan = plan_vector([(0, 5), (20, 5)], gap=0)
    table = PartTable.from_mapping({0: b"AAAAA", 20: b"BBBBB"})
    assert scatter_parts(plan.batches[0], table) == {
        0: b"AAAAA",
        1: b"BBBBB",
    }


def test_missing_ranges_with_table():
    from repro.core import PartTable, missing_ranges

    plan = plan_vector([(0, 10), (100, 10)], gap=0)
    table = PartTable.from_parts([(0, b"z" * 10)])
    missing = missing_ranges(plan.batches[0], table)
    assert [rng.offset for rng in missing] == [100]
    table.add(100, b"z" * 10)
    assert missing_ranges(plan.batches[0], table) == []


def test_find_part_compat_wrapper():
    from repro.core.vectored import _find_part

    assert _find_part({0: b"0123456789"}, 2, 4) == b"2345"
    with pytest.raises(RequestError):
        _find_part({0: b"0123"}, 2, 4)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5000),
            st.integers(min_value=1, max_value=64),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_part_table_find_matches_linear_scan(spans):
    """The bisect lookup agrees with a brute-force linear scan."""
    from repro.core import PartTable

    content = bytes(i % 251 for i in range(6000))
    parts = [(o, content[o : o + n]) for o, n in spans]
    table = PartTable.from_parts(parts)
    probes = [(o, n) for o, n in spans] + [
        (o + 1, n) for o, n in spans
    ]
    for offset, length in probes:
        linear = next(
            (
                data[offset - part_offset :][:length]
                for part_offset, data in parts
                if part_offset <= offset
                and offset + length <= part_offset + len(data)
            ),
            None,
        )
        if linear is None:
            assert not table.covers(offset, length)
        else:
            assert bytes(table.find(offset, length)) == linear


reads_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=5000),
    ),
    min_size=1,
    max_size=60,
)


@given(
    reads_strategy,
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=10_000),
)
def test_plan_covers_every_fragment(reads, max_ranges, gap):
    plan = plan_vector(reads, max_ranges=max_ranges, gap=gap)
    ranges = [rng for batch in plan.batches for rng in batch]
    # 1. every fragment is covered by exactly one coalesced range
    seen = set()
    for rng in ranges:
        for fragment in rng.fragments:
            assert rng.covers(fragment)
            assert fragment.index not in seen
            seen.add(fragment.index)
    assert seen == set(range(len(reads)))
    # 2. ranges are disjoint and sorted
    for before, after in zip(ranges, ranges[1:]):
        assert before.end + gap < after.offset or before.end <= after.offset
    # 3. batch size limit holds
    assert all(len(batch) <= max_ranges for batch in plan.batches)
    # 4. no range is wider than the span of its fragments
    for rng in ranges:
        low = min(f.offset for f in rng.fragments)
        high = max(f.end for f in rng.fragments)
        assert rng.offset == low
        assert rng.end == high


@given(reads_strategy, st.integers(min_value=0, max_value=2048))
def test_scatter_recovers_fragment_bytes(reads, gap):
    # Simulate a server: build content, answer each range exactly.
    content = bytes(i % 251 for i in range(1_010_000))
    plan = plan_vector(reads, max_ranges=64, gap=gap)
    out = {}
    for batch in plan.batches:
        parts = {
            rng.offset: content[rng.offset : rng.end] for rng in batch
        }
        out.update(scatter_parts(batch, parts))
    for index, (offset, length) in enumerate(reads):
        assert out[index] == content[offset : offset + length]
