"""Origin-driven freshness for the client page cache.

The server's ``Cache-Control`` header now governs what the client
page cache may keep: ``no-store``/``no-cache``/``max-age=0`` responses
are never cached, ``max-age=N`` bounds the pages' freshness on the
client clock, and absent directives keep the old cache-forever
behaviour. Covers the :class:`PageCache` TTL mechanics directly and
the header-to-TTL wiring end-to-end through ``DavFile``.
"""

import pytest

from repro.concurrency import Sleep
from repro.core import RequestParams, TransferConfig
from repro.core.file import _cache_ttl
from repro.core.pagecache import PageCache
from repro.http import Headers, Response
from repro.server import ServerConfig

from tests.helpers import davix_world

PAGE = 1024
BLOB = bytes((i * 37 + 11) % 256 for i in range(16 * PAGE))


# -- PageCache unit mechanics ----------------------------------------------


def make_cache(clock):
    return PageCache(64 * PAGE, page_size=PAGE, clock=clock)


def test_ttl_zero_is_never_stored():
    cache = make_cache(lambda: 0.0)
    cache.insert("k", None, 0, BLOB[:PAGE], total=len(BLOB), ttl=0)
    assert cache.read("k", 0, PAGE) is None
    assert cache.used_bytes == 0


def test_positive_ttl_expires_on_the_clock():
    now = [0.0]
    cache = make_cache(lambda: now[0])
    cache.insert("k", "v1", 0, BLOB[:PAGE], total=len(BLOB), ttl=30.0)
    assert cache.read("k", 0, PAGE) == BLOB[:PAGE]

    now[0] = 29.9
    assert cache.read("k", 0, PAGE) == BLOB[:PAGE]

    now[0] = 30.0
    assert cache.read("k", 0, PAGE) is None
    assert cache.used_bytes == 0
    assert cache.stats["ttl_expirations"] == 1
    # The expired entry is gone entirely — size and etag included.
    assert cache.etag("k") is None
    assert cache.known_size("k") is None


def test_expired_entry_accepts_fresh_inserts():
    now = [0.0]
    cache = make_cache(lambda: now[0])
    cache.insert("k", "v1", 0, BLOB[:PAGE], total=len(BLOB), ttl=10.0)
    now[0] = 100.0
    cache.insert("k", "v1", 0, BLOB[:PAGE], total=len(BLOB), ttl=10.0)
    assert cache.read("k", 0, PAGE) == BLOB[:PAGE]
    now[0] = 109.0
    assert cache.read("k", 0, PAGE) == BLOB[:PAGE]


def test_no_directive_means_no_expiry():
    now = [0.0]
    cache = make_cache(lambda: now[0])
    cache.insert("k", None, 0, BLOB[:PAGE], total=len(BLOB))
    now[0] = 1e9
    assert cache.read("k", 0, PAGE) == BLOB[:PAGE]


def test_directive_free_insert_does_not_extend_ttl():
    """A later response without Cache-Control must not refresh an
    existing freshness bound."""
    now = [0.0]
    cache = make_cache(lambda: now[0])
    cache.insert("k", None, 0, BLOB[:PAGE], total=len(BLOB), ttl=10.0)
    now[0] = 5.0
    cache.insert("k", None, PAGE, BLOB[PAGE : 2 * PAGE], total=len(BLOB))
    now[0] = 10.0
    assert cache.read("k", 0, PAGE) is None
    assert cache.read("k", PAGE, PAGE) is None


def test_missing_spans_sees_expiry():
    now = [0.0]
    cache = make_cache(lambda: now[0])
    cache.insert("k", None, 0, BLOB[: 2 * PAGE], total=len(BLOB), ttl=5.0)
    assert cache.missing_spans("k", 0, 2 * PAGE) == []
    now[0] = 6.0
    assert cache.missing_spans("k", 0, 2 * PAGE) == [(0, 2 * PAGE)]


# -- header parsing ---------------------------------------------------------


def response_with(cache_control):
    headers = Headers()
    if cache_control is not None:
        headers.set("Cache-Control", cache_control)
    return Response(200, headers)


@pytest.mark.parametrize(
    "value,expected",
    [
        (None, None),
        ("no-store", 0.0),
        ("no-cache", 0.0),
        ("max-age=0", 0.0),
        ("max-age=60", 60.0),
        ("public, max-age=300", 300.0),
        ("private", None),
        ("max-age=banana", None),
    ],
)
def test_cache_ttl_parsing(value, expected):
    assert _cache_ttl(response_with(value)) == expected


# -- end-to-end through DavFile --------------------------------------------


def cached_world(cache_control):
    params = RequestParams(
        transfer=TransferConfig(page_cache_bytes=1 << 20, page_size=PAGE)
    )
    client, app, store, _ = davix_world(
        params=params, config=ServerConfig(cache_control=cache_control)
    )
    store.put("/blob", BLOB)
    return client, app


def test_no_store_origin_never_caches():
    client, app = cached_world("no-store")
    for _ in range(3):
        assert client.pread("http://server/blob", 0, PAGE) == BLOB[:PAGE]
    # The first read pays one wasted gap-fill before the no-store
    # verdict is learned; after that every read is a single demanded
    # range request, nothing is ever cached.
    assert app.requests_handled == 4
    assert client.context.page_cache.stats["hits"] == 0
    assert client.context.page_cache.used_bytes == 0
    assert client.context.page_cache.suppressed("http://server/blob")


def test_max_age_serves_from_cache_until_stale():
    client, app = cached_world("max-age=60")
    url = "http://server/blob"
    assert client.pread(url, 0, PAGE) == BLOB[:PAGE]
    assert client.pread(url, 0, PAGE) == BLOB[:PAGE]
    assert app.requests_handled == 1  # second read was a cache hit

    def nap():
        yield Sleep(61.0)

    client.runtime.run(nap())
    assert client.pread(url, 0, PAGE) == BLOB[:PAGE]
    assert app.requests_handled == 2  # stale -> back to the origin
    assert client.context.page_cache.stats["ttl_expirations"] == 1


def test_unbounded_origin_caches_forever():
    client, app = cached_world(None)
    url = "http://server/blob"
    for _ in range(3):
        assert client.pread(url, 0, PAGE) == BLOB[:PAGE]
    assert app.requests_handled == 1
