"""Plan abandonment: cancelling in-flight speculative batches.

When the consumption plan an engine speculates for is abandoned
(``DavFile.close()``, or a replacing ``prefetch()``), the in-flight
batches must be cancelled — window slots freed immediately, counted in
``engine.cancelled_batches_total`` — instead of draining uselessly.
"""

from repro.core import RequestParams, TransferConfig
from repro.core.file import DavFile

from tests.helpers import davix_world

BLOB = bytes((i * 37 + 11) % 256 for i in range(800_000))


def engine_world(latency=0.02):
    params = RequestParams(
        max_vector_ranges=4,
        vector_gap=0,
        transfer=TransferConfig(max_inflight=4, read_ahead=True),
    )
    client, app, store, _ = davix_world(latency=latency, params=params)
    store.put("/blob", BLOB)
    return client


def segments_spread(count, length=1024, stride=8192, base=0):
    return [(base + i * stride, length) for i in range(count)]


def test_close_cancels_inflight_batches():
    client = engine_world()
    file = DavFile(
        client.context,
        "http://server/blob",
        client.context.params,
        read_ahead=True,
    )

    def op():
        file.prefetch(segments_spread(32))
        # One read pumps the window: several batches launch.
        first = yield from file.pread(0, 1024)
        yield from file.close()
        return first

    first = client.runtime.run(op())
    assert first == BLOB[0:1024]
    engine = file.engine
    assert engine.stats["launched"] >= 2
    assert engine.stats["cancelled"] >= 1
    cancelled = client.metrics().counter("engine.cancelled_batches_total")
    assert cancelled.value == engine.stats["cancelled"]
    # Everything spawned was joined: nothing left in flight.
    assert not engine._inflight and not engine._discarded


def test_replacing_prefetch_abandons_old_plan():
    client = engine_world()
    file = DavFile(
        client.context,
        "http://server/blob",
        client.context.params,
        read_ahead=True,
    )

    def op():
        file.prefetch(segments_spread(24))
        yield from file.pread(0, 1024)  # launches toward old plan
        # The application seeks: a fresh plan replaces the old one.
        file.prefetch(
            segments_spread(8, base=400_000), replace=True
        )
        data = yield from file.pread(400_000, 1024)
        yield from file.drain()
        return data

    data = client.runtime.run(op())
    assert data == BLOB[400_000 : 400_000 + 1024]
    engine = file.engine
    assert engine.stats["cancelled"] >= 1
    # The old plan is gone: only the new plan's segments remain known.
    assert engine.plan_depth <= 8


def test_abandon_frees_window_slots_immediately():
    client = engine_world()
    file = DavFile(
        client.context,
        "http://server/blob",
        client.context.params,
        read_ahead=True,
    )

    def op():
        file.prefetch(segments_spread(32))
        yield from file.pread(0, 1024)
        engine = file.engine
        assert engine._inflight  # something is on the wire
        engine.abandon()
        # Slots settled synchronously: a new plan can launch at once.
        assert engine._window.has_room()
        file.prefetch(segments_spread(4, base=600_000))
        data = yield from file.pread(600_000, 1024)
        yield from file.drain()
        return data

    data = client.runtime.run(op())
    assert data == BLOB[600_000 : 600_000 + 1024]


def test_close_without_engine_is_noop():
    client = engine_world()
    file = DavFile(
        client.context,
        "http://server/blob",
        client.context.params,
        read_ahead=False,
    )

    def op():
        data = yield from file.pread(0, 16)
        yield from file.close()
        return data

    assert client.runtime.run(op()) == BLOB[:16]
