"""Direct unit tests of Session behaviour over the simulator."""

import pytest

from repro.concurrency import SimRuntime
from repro.core import Session, StaleSession, open_session
from repro.errors import ConnectionClosed
from repro.http import Request
from repro.server import HttpServer, ObjectStore, ServerConfig, StorageApp

from tests.helpers import sim_world


def session_world(config=None):
    client_rt, server_rt = sim_world()
    store = ObjectStore()
    store.put("/x", b"session-test")
    HttpServer(
        server_rt, StorageApp(store, config=config), port=80
    ).start()
    return client_rt, store


def open_to_server(client_rt):
    def op():
        session = yield from open_session(
            ("http", "server", 80), ("server", 80), now=client_rt.now()
        )
        return session

    return client_rt.run(op())


def test_fresh_session_state():
    client_rt, _ = session_world()
    session = open_to_server(client_rt)
    assert session.reusable
    assert session.requests_sent == 0
    assert session.host == "server"
    assert session.origin == ("http", "server", 80)


def test_request_updates_counters_and_stays_reusable():
    client_rt, _ = session_world()
    session = open_to_server(client_rt)

    def op():
        response = yield from session.request(
            Request("GET", "/x", {"Host": "server"})
        )
        return response

    response = client_rt.run(op())
    assert response.status == 200
    assert response.body == b"session-test"
    assert session.requests_sent == 1
    assert session.bytes_sent > 0
    assert session.bytes_received > 0
    assert session.reusable


def test_connection_close_response_dirties_session():
    client_rt, _ = session_world(config=ServerConfig(keepalive=False))
    session = open_to_server(client_rt)

    def op():
        response = yield from session.request(
            Request("GET", "/x", {"Host": "server"})
        )
        return response

    response = client_rt.run(op())
    assert response.status == 200
    assert not session.reusable  # Connection: close seen


def test_discard_is_idempotent():
    client_rt, _ = session_world()
    session = open_to_server(client_rt)
    session.discard()
    session.discard()
    assert not session.reusable


def test_first_use_eof_raises_connection_closed_not_stale():
    # A *fresh* session hitting a dead peer is a hard error (no silent
    # retry: the request may not be idempotent).
    client_rt, _ = session_world()
    session = open_to_server(client_rt)
    client_rt.network.host("server").fail()

    def op():
        try:
            yield from session.request(
                Request("GET", "/x", {"Host": "server"})
            )
        except StaleSession:
            return "stale"
        except ConnectionClosed:
            return "closed"

    assert client_rt.run(op()) == "closed"


def test_reused_session_eof_raises_stale():
    client_rt, _ = session_world()
    session = open_to_server(client_rt)

    def one(label):
        def op():
            try:
                response = yield from session.request(
                    Request("GET", "/x", {"Host": "server"})
                )
                return response.status
            except StaleSession:
                return "stale"

        return client_rt.run(op())

    assert one("first") == 200
    client_rt.network.host("server").fail()
    assert one("second") == "stale"
    assert not session.reusable


def test_sink_receives_streamed_body():
    client_rt, store = session_world()
    store.put("/big", bytes(range(256)) * 1024)
    session = open_to_server(client_rt)
    pieces = []

    def op():
        response = yield from session.request(
            Request("GET", "/big", {"Host": "server"}),
            sink=pieces.append,
        )
        return response

    response = client_rt.run(op())
    assert response.body == b""  # streamed away
    assert b"".join(pieces) == bytes(range(256)) * 1024


def test_sink_factory_skips_error_bodies():
    client_rt, _ = session_world()
    session = open_to_server(client_rt)
    pieces = []

    def op():
        response = yield from session.request(
            Request("GET", "/missing", {"Host": "server"}),
            sink_factory=lambda head: (
                pieces.append if head.ok else None
            ),
        )
        return response

    response = client_rt.run(op())
    assert response.status == 404
    assert pieces == []  # the 404 body was buffered, not streamed
    assert response.body != b""
