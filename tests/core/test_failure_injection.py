"""Client behaviour under injected server failures."""

import pytest

from repro.core import RequestParams
from repro.errors import RequestError, TransferTimeout
from repro.http import Response
from repro.server import FaultPolicy, ServedResponse, ServerConfig

from tests.helpers import davix_world


def test_truncated_body_detected_and_retried():
    # The server lies about Content-Length and resets midway; with a
    # retry budget the client recovers on a second attempt.
    client, app, store, _ = davix_world(
        params=RequestParams(retries=2)
    )
    store.put("/x", b"D" * 50_000)
    original = app.handle
    failures = {"left": 1}

    def flaky(request):
        served = original(request)
        if failures["left"] > 0 and request.method == "GET":
            failures["left"] -= 1
            served.reset_midway = True
        return served

    app.handle = flaky
    assert client.get("http://server/x") == b"D" * 50_000
    assert client.context.counters["retries"] == 1


def test_truncated_body_without_retries_raises():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(reset_rate=1.0, seed=1),
        params=RequestParams(retries=0),
    )
    store.put("/x", b"D" * 50_000)
    with pytest.raises(RequestError):
        client.get("http://server/x")


def test_operation_timeout_on_slow_server():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(slow_rate=1.0, slow_delay=10.0, seed=0),
        params=RequestParams(retries=0, operation_timeout=1.0),
    )
    store.put("/x", b"abc")
    with pytest.raises(RequestError) as info:
        client.get("http://server/x")
    assert "timed out" in str(info.value)


def test_slow_server_within_timeout_succeeds():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(slow_rate=1.0, slow_delay=0.5, seed=0),
        params=RequestParams(operation_timeout=5.0),
    )
    store.put("/x", b"abc")
    assert client.get("http://server/x") == b"abc"


def test_error_storm_exhausts_retries():
    client, app, store, _ = davix_world(
        faults=FaultPolicy(error_rate=1.0, seed=0),
        params=RequestParams(retries=3),
    )
    store.put("/x", b"abc")
    with pytest.raises(RequestError) as info:
        client.get("http://server/x")
    assert info.value.status == 503
    assert client.context.counters["retries"] == 3


def test_vectored_read_on_flaky_server_recovers():
    client, app, store, _ = davix_world(
        params=RequestParams(retries=5)
    )
    content = bytes(i % 251 for i in range(100_000))
    store.put("/x", content)
    original = app.handle
    state = {"count": 0}

    def flaky(request):
        state["count"] += 1
        if state["count"] % 2 == 1 and request.method == "GET":
            return ServedResponse(Response(503))
        return original(request)

    app.handle = flaky
    reads = [(0, 100), (50_000, 100), (99_900, 100)]
    chunks = client.pread_vec("http://server/x", reads)
    assert chunks == [content[o : o + n] for o, n in reads]


def test_garbage_response_is_transport_error():
    client, app, store, _ = davix_world(
        params=RequestParams(retries=0)
    )
    store.put("/x", b"abc")

    def garbage(request):
        served = ServedResponse(Response(200, body=b"abc"))
        # Sabotage: swap the serialised body for garbage by patching
        # the response version (invalid on the wire).
        served.response.version = "HTTP/9.9"
        return served

    app.handle = garbage
    with pytest.raises(RequestError):
        client.get("http://server/x")


def test_retry_delay_is_observed():
    client, app, store, _ = davix_world(
        params=RequestParams(retries=2, retry_delay=1.5)
    )
    store.put("/x", b"abc")
    original = app.handle
    failures = {"left": 2}

    def flaky(request):
        if failures["left"] > 0:
            failures["left"] -= 1
            return ServedResponse(Response(503))
        return original(request)

    app.handle = flaky
    start = client.runtime.now()
    assert client.get("http://server/x") == b"abc"
    assert client.runtime.now() - start >= 3.0  # two retry delays
