"""End-to-end DavixClient tests over the simulated network."""

import pytest

from repro.core import RequestParams
from repro.errors import FileNotFound, RequestError
from repro.net import TcpOptions
from repro.server import ServerConfig

from tests.helpers import davix_world


def test_put_get_roundtrip():
    client, app, store, _ = davix_world()
    url = "http://server/data/x.bin"
    assert client.put(url, b"payload") == 201
    assert client.get(url) == b"payload"
    assert store.read("/data/x.bin") == b"payload"


def test_get_missing_raises_file_not_found():
    client, app, store, _ = davix_world()
    with pytest.raises(FileNotFound):
        client.get("http://server/missing")


def test_stat():
    client, app, store, _ = davix_world()
    store.put("/f.root", b"x" * 12345)
    stat = client.stat("http://server/f.root")
    assert stat.size == 12345
    assert not stat.is_directory
    assert stat.etag


def test_exists():
    client, app, store, _ = davix_world()
    store.put("/x", b"1")
    assert client.exists("http://server/x") is True
    assert client.exists("http://server/y") is False


def test_delete():
    client, app, store, _ = davix_world()
    store.put("/x", b"1")
    client.delete("http://server/x")
    assert not store.exists("/x")
    with pytest.raises(FileNotFound):
        client.delete("http://server/x")


def test_mkdir_and_listdir():
    client, app, store, _ = davix_world()
    client.mkdir("http://server/newdir")
    store.put("/newdir/a.root", b"aa")
    store.put("/newdir/b.root", b"bbbb")
    listing = dict(client.listdir("http://server/newdir"))
    assert set(listing) == {"a.root", "b.root"}
    assert listing["a.root"].size == 2
    assert listing["b.root"].size == 4


def test_pread():
    client, app, store, _ = davix_world()
    store.put("/x", b"0123456789")
    assert client.pread("http://server/x", 2, 4) == b"2345"
    assert client.pread("http://server/x", 8, 10) == b"89"
    assert client.pread("http://server/x", 100, 5) == b""  # past EOF
    assert client.pread("http://server/x", 0, 0) == b""


def test_pread_vec_roundtrip():
    client, app, store, _ = davix_world()
    content = bytes(i % 251 for i in range(100_000))
    store.put("/x", content)
    reads = [(0, 10), (50_000, 100), (99_990, 10), (10, 10)]
    chunks = client.pread_vec("http://server/x", reads)
    assert chunks == [
        content[offset : offset + length] for offset, length in reads
    ]


def test_pread_vec_coalesces_into_one_request():
    params = RequestParams(vector_gap=1024)
    client, app, store, _ = davix_world(params=params)
    content = bytes(i % 251 for i in range(10_000))
    store.put("/x", content)
    before = app.requests_handled
    reads = [(i * 200, 100) for i in range(40)]  # gaps of 100 bytes
    chunks = client.pread_vec("http://server/x", reads)
    assert app.requests_handled - before == 1  # one coalesced GET
    assert chunks == [content[o : o + n] for o, n in reads]
    assert client.context.counters["vector_requests"] == 1
    assert client.context.counters["vector_fragments"] == 40


def test_pread_vec_batches_when_over_max_ranges():
    params = RequestParams(max_vector_ranges=8, vector_gap=0)
    client, app, store, _ = davix_world(params=params)
    content = bytes(i % 251 for i in range(200_000))
    store.put("/x", content)
    before = app.requests_handled
    reads = [(i * 10_000, 16) for i in range(20)]
    chunks = client.pread_vec("http://server/x", reads)
    assert app.requests_handled - before == 3  # ceil(20/8)
    assert chunks == [content[o : o + n] for o, n in reads]


def test_pread_vec_against_server_without_multirange():
    config = ServerConfig(multirange=False)
    client, app, store, _ = davix_world(config=config)
    content = bytes(i % 251 for i in range(50_000))
    store.put("/x", content)
    reads = [(100, 10), (40_000, 20)]
    chunks = client.pread_vec("http://server/x", reads)
    # Server replied 200 with the whole object; client sliced locally.
    assert chunks == [content[o : o + n] for o, n in reads]


def test_get_to_sink_streams():
    client, app, store, _ = davix_world()
    payload = bytes(range(256)) * 2000
    store.put("/big", payload)
    pieces = []
    total = client.get_to_sink("http://server/big", pieces.append)
    assert total == len(payload)
    assert b"".join(pieces) == payload


def test_sessions_are_recycled_across_operations():
    client, app, store, _ = davix_world()
    store.put("/x", b"abc")
    for _ in range(5):
        client.get("http://server/x")
    pool = client.context.pool
    assert pool.stats().hits == 4
    assert pool.stats().misses == 1
    # Only one TCP connection was ever made.
    assert app.requests_handled == 5


def test_keep_alive_disabled_opens_new_connections():
    params = RequestParams(keep_alive=False)
    client, app, store, server_rt = davix_world(params=params)
    store.put("/x", b"abc")
    for _ in range(3):
        client.get("http://server/x")
    server = server_rt.network.host("server")
    assert server.counters["connections_accepted"] == 3


def test_redirect_followed_transparently():
    # DPM head-node mode: the server redirects to itself with ?direct=1.
    config = ServerConfig(redirect_base="http://server")
    client, app, store, _ = davix_world(config=config)
    store.put("/data/x", b"redirected-content")
    assert client.get("http://server/data/x") == b"redirected-content"
    assert client.context.counters["redirects_followed"] == 1


def test_redirect_loop_detected():
    from repro.errors import RedirectLoopError
    from repro.server import FederationApp, HttpServer
    from tests.helpers import sim_world

    client_rt, server_rt = sim_world()
    fed = FederationApp()
    fed.register("/loop", ["http://server/loop"])  # points to itself
    HttpServer(server_rt, fed, port=80).start()
    from repro.core import DavixClient

    client = DavixClient(client_rt)
    with pytest.raises(RedirectLoopError):
        client.get("http://server/loop")


def test_retry_on_503_then_success():
    # Deterministically fail the first attempt with 503, then serve.
    params = RequestParams(retries=2)
    client, app, store, _ = davix_world(params=params)
    store.put("/x", b"eventually")
    original = app.handle
    failures = {"left": 1}

    def flaky(request):
        if failures["left"] > 0:
            failures["left"] -= 1
            from repro.http import Response
            from repro.server import ServedResponse

            return ServedResponse(Response(503))
        return original(request)

    app.handle = flaky
    assert client.get("http://server/x") == b"eventually"
    assert client.context.counters["retries"] == 1


def test_error_status_maps_to_request_error():
    from repro.server import FaultPolicy

    faults = FaultPolicy()
    faults.break_path("/x")
    params = RequestParams(retries=0)
    client, app, store, _ = davix_world(faults=faults, params=params)
    store.put("/x", b"data")
    with pytest.raises(RequestError) as info:
        client.get("http://server/x")
    assert info.value.status == 503


def test_stale_session_is_retried_transparently():
    # The server drops idle keep-alive connections after 1 s; the second
    # GET (after a 5 s pause) finds a dead pooled session, gets EOF
    # instead of a status line, and must retry on a fresh connection.
    config = ServerConfig(keepalive_idle=1.0)
    client, app, store, _ = davix_world(config=config)
    store.put("/x", b"abc")
    assert client.get("http://server/x") == b"abc"
    env = client.runtime.env
    env.run(until=env.now + 5.0)  # let the server's idle timer fire
    assert client.get("http://server/x") == b"abc"
    assert client.context.counters["retries"] == 1
    assert client.context.pool.stats().hits == 1  # reuse was attempted


def test_server_connection_close_header_prevents_bad_recycling():
    # max_requests_per_connection makes the server announce the close;
    # the client must not recycle that session (no stale retry needed).
    config = ServerConfig(max_requests_per_connection=2)
    client, app, store, _ = davix_world(config=config)
    store.put("/x", b"abc")
    for _ in range(6):
        assert client.get("http://server/x") == b"abc"
    assert client.context.counters["retries"] == 0


def test_custom_tcp_options_passed_to_transport():
    params = RequestParams(
        tcp_options=TcpOptions(initial_window_segments=2, idle_reset=False)
    )
    client, app, store, _ = davix_world(params=params)
    store.put("/x", b"abc")
    assert client.get("http://server/x") == b"abc"


def test_user_agent_and_extra_headers_sent():
    client, app, store, _ = davix_world(
        params=RequestParams(
            user_agent="custom-agent/2",
            extra_headers=(("X-Trace", "abc123"),),
        )
    )
    seen = {}
    original = app.handle

    def spy(request):
        seen["ua"] = request.headers.get("User-Agent")
        seen["trace"] = request.headers.get("X-Trace")
        return original(request)

    app.handle = spy
    store.put("/x", b"abc")
    client.get("http://server/x")
    assert seen == {"ua": "custom-agent/2", "trace": "abc123"}
