"""Tests for ObjectStoreClient: davix against a flat-object endpoint.

The portability claim end-to-end: the unchanged davix stack (ranged
GETs, vectored reads, page cache) against :class:`FlatObjectApp`, plus
the adapter's own surface — key addressing, the JSON listing endpoint,
and the fetcher bridge into the v2 columnar reader.
"""

import pytest

from repro.core import Context, DavixClient, RequestParams, TransferConfig
from repro.core.objectclient import ObjectStoreClient
from repro.errors import FileNotFound, HttpParseError
from repro.http import Url
from repro.rootio import NTupleReader, write_ntuple_file
from repro.server import FlatObjectApp, HttpServer, ObjectStore

from tests.helpers import sim_world

BODY = bytes((i * 17 + 3) % 256 for i in range(50_000))


def object_world(latency=0.001, params=None):
    """(runtime, ObjectStoreClient, app, store) over a FlatObjectApp."""
    client_rt, server_rt = sim_world(latency=latency)
    store = ObjectStore(clock=server_rt.now)
    app = FlatObjectApp(store)
    HttpServer(server_rt, app, port=80).start()
    context = Context(params=params)
    context.clock = client_rt.now
    client = ObjectStoreClient(context, "http://server/")
    return client_rt, client, app, store


def test_url_for_joins_prefix_and_key():
    context = Context()
    client = ObjectStoreClient(context, "http://server/bucket")
    assert str(client.url_for("a/b.root")) == "http://server/bucket/a/b.root"
    assert str(client.url_for("/lead/slash")) == (
        "http://server/bucket/lead/slash"
    )
    bare = ObjectStoreClient(context, Url.parse("http://server/"))
    assert str(bare.url_for("k")) == "http://server/k"


def test_put_head_get_delete_cycle():
    runtime, client, app, store = object_world()
    assert runtime.run(client.put_object("data/x", BODY)) == 201
    stat = runtime.run(client.head("data/x"))
    assert stat.size == len(BODY)
    assert runtime.run(client.get_object("data/x")) == BODY
    assert runtime.run(client.exists("data/x"))
    runtime.run(client.delete_object("data/x"))
    assert not runtime.run(client.exists("data/x"))


def test_read_range_and_vectored():
    runtime, client, app, store = object_world()
    store.put("/blob", BODY)
    assert runtime.run(client.read_range("blob", 100, 50)) == BODY[100:150]
    reads = [(0, 10), (1000, 20), (40_000, 30)]
    chunks = runtime.run(client.read_vec("blob", reads))
    assert chunks == [BODY[o : o + n] for o, n in reads]
    # The vector went out as one multi-range request.
    assert app.requests_handled == 2


def test_list_keys_with_and_without_prefix():
    runtime, client, app, store = object_world()
    store.put("/data/a", b"1")
    store.put("/data/b", b"2")
    store.put("/logs/c", b"3")
    assert runtime.run(client.list_keys()) == [
        "/data/a", "/data/b", "/logs/c",
    ]
    assert runtime.run(client.list_keys(prefix="/data")) == [
        "/data/a", "/data/b",
    ]


def test_list_keys_malformed_response_is_typed():
    runtime, client, app, store = object_world()
    store.put("/", b"not json")  # shadows the listing endpoint? no --
    # the listing route matches first, so break it differently: a
    # client pointed at a WebDAV-less path that returns non-JSON.
    bad = ObjectStoreClient(client.context, "http://server/")

    def fake_listing():
        # Drive list_keys against an endpooint that answers with a
        # plain object body instead of the {"keys": ...} document.
        data = yield from bad.file("data").read_all()
        return data

    store.put("/data", b"\xff\xfe not a listing")
    # list_keys itself: patch the query off by calling the underlying
    # URL directly -- simplest is to point base at a store where "/"
    # with ?list=1 is intercepted; instead assert the parse guard.
    import repro.core.objectclient as oc

    class RawClient(oc.ObjectStoreClient):
        def url_for(self, key):  # pragma: no cover - trivial
            return super().url_for(key)

    raw = RawClient(client.context, "http://server/")
    original = oc.DavFile

    with pytest.raises(HttpParseError):
        def op():
            keys = yield from raw.list_keys()
            return keys

        # Make the listing endpoint return garbage by removing every
        # key, then shadowing the root: an empty store still returns
        # valid JSON, so corrupt the parse input via a monkeypatched
        # reader below.
        class GarbageFile(original):
            def read_all(self, sink=None):
                return b"\xff\xfe not a listing"
                yield  # pragma: no cover

        oc.DavFile = GarbageFile
        try:
            runtime.run(op())
        finally:
            oc.DavFile = original


def test_missing_key_raises_file_not_found():
    runtime, client, app, store = object_world()
    with pytest.raises(FileNotFound):
        runtime.run(client.get_object("absent"))


def test_page_cache_composes_with_object_backend():
    params = RequestParams(
        transfer=TransferConfig(page_cache_bytes=1 << 20, page_size=4096)
    )
    runtime, client, app, store = object_world(params=params)
    store.put("/blob", BODY)
    first = runtime.run(client.read_range("blob", 0, 8192))
    second = runtime.run(client.read_range("blob", 0, 8192))
    assert first == second == BODY[:8192]
    assert client.context.page_cache.stats["hits"] >= 1
    # Second read never touched the origin.
    assert app.requests_handled == 1


def test_fetcher_bridges_into_the_columnar_reader():
    runtime, client, app, store = object_world()
    arrays = {"a": bytes((i * 3) % 256 for i in range(400 * 4))}
    blob = write_ntuple_file(
        "t", arrays, n_entries=400, cluster_entries=100, page_bytes=256
    )
    store.put("/events.ntpl", blob)
    reader = NTupleReader(client.fetcher("events.ntpl"))

    def op():
        yield from reader.open()
        data = yield from reader.read_entries(0, 400, lanes=2)
        return data

    assert runtime.run(op()) == arrays


def test_davix_client_facade_works_against_object_store():
    """The plain DavixClient (no adapter) also speaks the dialect:
    stat via HEAD, read via ranged GET."""
    client_rt, server_rt = sim_world()
    store = ObjectStore(clock=server_rt.now)
    HttpServer(server_rt, FlatObjectApp(store), port=80).start()
    store.put("/x", BODY)
    client = DavixClient(client_rt)
    assert client.stat("http://server/x").size == len(BODY)
    assert client.pread("http://server/x", 10, 20) == BODY[10:30]
    assert client.get("http://server/x") == BODY
