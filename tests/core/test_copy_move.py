"""Tests for WebDAV COPY/MOVE through the client and server."""

import pytest

from repro.errors import FileNotFound, RequestError

from tests.helpers import davix_world


def test_rename_moves_object():
    client, app, store, _ = davix_world()
    store.put("/old.bin", b"content")
    client.rename("http://server/old.bin", "http://server/new.bin")
    assert not store.exists("/old.bin")
    assert store.read("/new.bin") == b"content"


def test_copy_duplicates_without_client_traffic():
    client, app, store, _ = davix_world()
    store.put("/src.bin", b"payload" * 1000)
    before = client.context.pool.stats().misses
    client.copy("http://server/src.bin", "http://server/dup.bin")
    assert store.read("/src.bin") == store.read("/dup.bin")
    # One COPY request; the 7 kB never crossed the wire as a body.
    assert app.requests_by_method["COPY"] == 1


def test_move_missing_source_404():
    client, app, store, _ = davix_world()
    with pytest.raises(FileNotFound):
        client.rename("http://server/nope", "http://server/other")


def test_overwrite_false_respects_existing_destination():
    client, app, store, _ = davix_world()
    store.put("/a", b"A")
    store.put("/b", b"B")
    with pytest.raises(RequestError) as info:
        client.copy("http://server/a", "http://server/b", overwrite=False)
    assert info.value.status == 412
    assert store.read("/b") == b"B"
    client.copy("http://server/a", "http://server/b", overwrite=True)
    assert store.read("/b") == b"A"


def test_copy_status_codes():
    client, app, store, _ = davix_world()
    store.put("/a", b"A")
    # 201 when the destination is created, 204 when replaced — verified
    # indirectly: both succeed, repeated copy also succeeds.
    client.copy("http://server/a", "http://server/c")
    client.copy("http://server/a", "http://server/c")
    assert store.read("/c") == b"A"


def test_move_without_destination_header_rejected():
    from repro.http import Request
    from tests.helpers import one_request

    client, app, store, _ = davix_world()
    store.put("/a", b"A")
    response = client.runtime.run(
        one_request(("server", 80), Request("MOVE", "/a"))
    )
    assert response.status == 400


def test_etag_changes_after_move_target_rewrite():
    client, app, store, _ = davix_world()
    store.put("/a", b"A")
    old_etag = store.get("/a").etag
    client.rename("http://server/a", "http://server/b")
    assert store.get("/b").etag != old_etag
