"""The pipelined read-ahead transfer engine.

Pins the tentpole contract: speculative vector batches overlap with
consumption (a real wall-clock win on a high-latency link), plan hits
serve byte-identical data without extra round trips, the adaptive
window grows on sequential hits and shrinks on off-plan access, the
``transfer-engine`` / ``speculative-fetch`` span hierarchy separates
speculation from demand, and the ``engine.*`` metric series plus the
``readahead-wait`` phase export the window state.
"""

import pytest

from repro.core import RequestParams, TransferConfig
from repro.core.file import DavFile

from tests.helpers import davix_world

BLOB = bytes((i * 37 + 11) % 256 for i in range(800_000))


def segments_spread(count, length=1024, stride=8192, base=0):
    return [(base + i * stride, length) for i in range(count)]


def engine_world(transfer=None, latency=0.001, params=None, **world_kw):
    params = params or RequestParams(
        max_vector_ranges=8,
        vector_gap=0,
        transfer=transfer
        or TransferConfig(max_inflight=4, read_ahead=True),
    )
    client, app, store, _ = davix_world(
        latency=latency, params=params, **world_kw
    )
    store.put("/blob", BLOB)
    return client, app


def run_file_op(client, build_op, read_ahead=True):
    """Run an effect op against a fresh DavFile; returns (result, file)."""
    file = DavFile(
        client.context,
        "http://server/blob",
        client.context.params,
        read_ahead=read_ahead,
    )

    def op():
        result = yield from build_op(file)
        yield from file.drain()
        return result

    return client.runtime.run(op()), file


# -- correctness ---------------------------------------------------------------


def test_read_vec_byte_identical_to_demand_path():
    reads = segments_spread(32)
    expected = [BLOB[o : o + n] for o, n in reads]

    plain_client, _ = engine_world(
        transfer=TransferConfig(max_inflight=1)
    )
    engine_client, _ = engine_world()
    assert plain_client.pread_vec("http://server/blob", reads) == expected
    assert engine_client.pread_vec("http://server/blob", reads) == expected
    registry = engine_client.metrics()
    assert registry.value("engine.hits_total") == len(reads)
    assert not registry.value("engine.misses_total")


def test_prefetch_serves_single_reads_with_fewer_round_trips():
    plan = segments_spread(16)
    client, app = engine_world()

    def op(file):
        file.prefetch(plan)
        out = []
        for offset, length in plan:
            data = yield from file.pread(offset, length)
            out.append(data)
        return out

    result, file = run_file_op(client, op)
    assert result == [BLOB[o : o + n] for o, n in plan]
    assert file.engine.stats["hits"] == len(plan)
    assert file.engine.stats["misses"] == 0
    # 16 segments at <= 8 ranges/batch: at most 2 round trips, not 16.
    assert app.requests_handled <= 2


def test_zero_length_and_empty_reads():
    client, _ = engine_world()
    assert client.pread_vec("http://server/blob", []) == []
    assert client.pread("http://server/blob", 100, 0) == b""


def test_speculation_overlaps_round_trips_on_high_latency_link():
    """The point of the engine: with 40 ms RTT the pipelined window
    must beat sequential batch-by-batch demand dispatch."""
    reads = segments_spread(32)

    def timed(transfer):
        client, _ = engine_world(transfer=transfer, latency=0.020)
        start = client.runtime.now()
        result = client.pread_vec("http://server/blob", reads)
        return client.runtime.now() - start, result

    seq_time, seq_result = timed(TransferConfig(max_inflight=1))
    eng_time, eng_result = timed(
        TransferConfig(max_inflight=1, read_ahead=True)
    )
    assert eng_result == seq_result
    assert eng_time < seq_time


# -- the adaptive window -------------------------------------------------------


def test_window_grows_on_sequential_hits():
    client, _ = engine_world(
        transfer=TransferConfig(
            read_ahead=True, window_batches=2, max_window_batches=16
        )
    )

    def op(file):
        file.prefetch(segments_spread(64))
        out = []
        for chunk_start in range(0, 64, 8):
            chunk = segments_spread(8, base=chunk_start * 8192)
            piece = yield from file.pread_vec(chunk)
            out.extend(piece)
        return out

    result, file = run_file_op(client, op)
    assert result == [
        BLOB[o : o + n] for o, n in segments_spread(64)
    ]
    assert file.engine.stats["grown"] > 0
    assert file.engine.window_batches > 2
    assert client.metrics().value("engine.window_grow_total") > 0


def test_off_plan_read_shrinks_window():
    client, _ = engine_world(
        transfer=TransferConfig(
            read_ahead=True, window_batches=4, min_window_batches=1
        )
    )
    plan = segments_spread(16)
    off_plan = (700_000, 64)  # nowhere near the plan

    def op(file):
        file.prefetch(plan)
        first = yield from file.pread_vec(plan[:4])
        stray = yield from file.pread(*off_plan)
        return first, stray

    (first, stray), file = run_file_op(client, op)
    assert first == [BLOB[o : o + n] for o, n in plan[:4]]
    assert stray == BLOB[700_000 : 700_000 + 64]
    assert file.engine.stats["shrunk"] > 0
    assert file.engine.window_batches < 4
    assert client.metrics().value("engine.window_shrink_total") > 0
    assert client.metrics().value("engine.misses_total") >= 1


def test_plan_tail_demanded_before_launch_is_skipped():
    """A planned segment read before its speculative launch is served
    by the demand path once and never fetched twice."""
    client, app = engine_world(
        transfer=TransferConfig(
            read_ahead=True,
            window_batches=1,
            max_window_batches=1,
            window_bytes=8192,
        )
    )
    plan = segments_spread(32)

    def op(file):
        file.prefetch(plan)
        # Consume the *tail* first: deep in the plan, beyond a
        # one-batch window.
        tail = yield from file.pread_vec(plan[-4:])
        head = yield from file.pread_vec(plan[:4])
        return tail, head

    (tail, head), file = run_file_op(client, op)
    assert tail == [BLOB[o : o + n] for o, n in plan[-4:]]
    assert head == [BLOB[o : o + n] for o, n in plan[:4]]
    served = sum(len(part) for part in tail + head)
    # No double-fetch of the demanded tail segments.
    assert (
        client.metrics().value("engine.speculative_bytes_total") or 0
    ) + served <= sum(n for _, n in plan) + served


# -- observability -------------------------------------------------------------


def test_engine_span_hierarchy_and_attrs():
    reads = segments_spread(16)
    client, _ = engine_world()
    client.pread_vec("http://server/blob", reads)
    tracer = client.tracer()
    (engine_span,) = tracer.by_name("transfer-engine")
    fetches = tracer.by_name("speculative-fetch")
    assert fetches
    assert all(s.parent_id == engine_span.span_id for s in fetches)
    assert all(s.attrs.get("ok") for s in fetches)
    assert engine_span.attrs["hits"] == len(reads)
    assert engine_span.attrs["misses"] == 0
    assert engine_span.attrs["launched"] == len(fetches)
    # Demanded requests parent under the speculative-fetch spans.
    fetch_ids = {s.span_id for s in fetches}
    assert all(
        r.parent_id in fetch_ids for r in tracer.by_name("request")
    )


def test_engine_metrics_and_readahead_wait_phase():
    reads = segments_spread(16)
    client, _ = engine_world()
    client.pread_vec("http://server/blob", reads)
    registry = client.metrics()
    assert registry.value("engine.speculative_batches_total") >= 1
    assert registry.value("engine.speculative_ranges_total") >= 1
    assert registry.value("engine.speculative_bytes_total") == sum(
        n for _, n in reads
    )
    assert registry.value("engine.hits_total") == len(reads)
    assert registry.value("engine.window") >= 1
    waits = registry.histogram(
        "request.phase_seconds", phase="readahead-wait"
    )
    assert waits.count >= 1
    assert waits.sum >= 0.0


def test_drain_counts_unused_speculation():
    client, _ = engine_world()

    def op(file):
        file.prefetch(segments_spread(8))
        data = yield from file.pread_vec(segments_spread(2))
        return data

    result, file = run_file_op(client, op)
    assert result == [BLOB[o : o + n] for o, n in segments_spread(2)]
    # Everything launched but not consumed surfaced at drain time.
    assert client.metrics().value("engine.unused_segments_total") == 6
    # Drain closed the engine span (it shows up as finished).
    (engine_span,) = client.tracer().by_name("transfer-engine")
    assert engine_span.attrs["unused_segments"] == 6


def test_config_validation():
    with pytest.raises(ValueError):
        TransferConfig(window_batches=0)
    with pytest.raises(ValueError):
        TransferConfig(window_batches=8, max_window_batches=4)
    with pytest.raises(ValueError):
        TransferConfig(min_window_batches=0)
    with pytest.raises(ValueError):
        TransferConfig(window_bytes=0)


# -- thread runtime ------------------------------------------------------------


def test_engine_on_thread_runtime_against_live_server():
    from repro.concurrency import ThreadRuntime
    from repro.core import DavixClient
    from repro.server import ObjectStore, StorageApp, real_server

    store = ObjectStore()
    store.put("/blob", BLOB)
    reads = segments_spread(24)
    with real_server(StorageApp(store)) as server:
        client = DavixClient(
            ThreadRuntime(),
            params=RequestParams(
                max_vector_ranges=8,
                vector_gap=0,
                transfer=TransferConfig(
                    max_inflight=2, read_ahead=True
                ),
            ),
        )
        result = client.pread_vec(
            f"http://127.0.0.1:{server.port}/blob", reads
        )
    assert result == [BLOB[o : o + n] for o, n in reads]
    assert client.metrics().value("engine.hits_total") == len(reads)
