"""Tests for the pool-based parallel dispatcher (paper Figure 2)."""

import pytest

from repro.core import RequestParams, run_parallel
from repro.core.file import DavFile
from repro.errors import FileNotFound

from tests.helpers import davix_world


def test_get_many_returns_in_order():
    client, app, store, _ = davix_world()
    for i in range(10):
        store.put(f"/f{i}", f"content-{i}".encode())
    urls = [f"http://server/f{i}" for i in range(10)]
    results = client.get_many(urls, concurrency=4)
    assert results == [f"content-{i}".encode() for i in range(10)]


def test_concurrency_bounds_parallel_connections():
    client, app, store, server_rt = davix_world()
    for i in range(12):
        store.put(f"/f{i}", b"x" * 10_000)
    urls = [f"http://server/f{i}" for i in range(12)]
    client.get_many(urls, concurrency=3)
    server = server_rt.network.host("server")
    # The pool never needs more connections than the dispatch width.
    assert server.counters["connections_accepted"] <= 3


def test_pool_recycles_across_dispatched_jobs():
    client, app, store, _ = davix_world()
    for i in range(9):
        store.put(f"/f{i}", b"data")
    urls = [f"http://server/f{i}" for i in range(9)]
    client.get_many(urls, concurrency=3)
    stats = client.context.pool.stats()
    assert stats.misses <= 3
    assert stats.hits >= 6


def test_parallel_is_faster_than_serial_on_latency_bound_jobs():
    client, app, store, _ = davix_world(latency=0.05)
    for i in range(8):
        store.put(f"/f{i}", b"tiny")
    urls = [f"http://server/f{i}" for i in range(8)]

    start = client.runtime.now()
    for url in urls:
        client.get(url)
    serial = client.runtime.now() - start

    client2, app2, store2, _ = davix_world(latency=0.05)
    for i in range(8):
        store2.put(f"/f{i}", b"tiny")
    start = client2.runtime.now()
    client2.get_many(urls, concurrency=8)
    parallel = client2.runtime.now() - start
    assert parallel < serial / 3


def test_job_errors_captured_per_job():
    client, app, store, _ = davix_world()
    store.put("/good", b"ok")

    def job(path):
        def thunk():
            data = yield from DavFile(
                client.context, f"http://server{path}"
            ).read_all()
            return data

        return thunk

    results = client.runtime.run(
        run_parallel([job("/good"), job("/bad"), job("/good")], 2)
    )
    assert results[0].ok and results[0].value == b"ok"
    assert not results[1].ok
    assert isinstance(results[1].error, FileNotFound)
    assert results[2].ok
    with pytest.raises(FileNotFound):
        results[1].unwrap()


def test_raise_first_propagates():
    client, app, store, _ = davix_world()

    def job():
        def thunk():
            data = yield from DavFile(
                client.context, "http://server/missing"
            ).read_all()
            return data

        return thunk

    with pytest.raises(FileNotFound):
        client.runtime.run(run_parallel([job()], 1, raise_first=True))


def test_zero_jobs():
    client, app, store, _ = davix_world()
    assert client.runtime.run(run_parallel([], 4)) == []


def test_bad_concurrency_rejected():
    with pytest.raises(ValueError):
        next(iter(run_parallel([], 0)))
