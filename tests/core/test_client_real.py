"""DavixClient against a real localhost server (socket runtime)."""

import pytest

from repro.concurrency import ThreadRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import FileNotFound
from repro.server import ObjectStore, StorageApp, real_server


@pytest.fixture()
def live():
    store = ObjectStore()
    app = StorageApp(store)
    with real_server(app) as server:
        client = DavixClient(ThreadRuntime())
        yield client, f"http://127.0.0.1:{server.port}", store, app


def test_real_put_get_stat_delete(live):
    client, base, store, app = live
    url = f"{base}/data/x.bin"
    assert client.put(url, b"real-socket-bytes") == 201
    assert client.get(url) == b"real-socket-bytes"
    assert client.stat(url).size == 17
    client.delete(url)
    with pytest.raises(FileNotFound):
        client.get(url)


def test_real_pread_and_vectored(live):
    client, base, store, app = live
    content = bytes(i % 251 for i in range(60_000))
    store.put("/x", content)
    url = f"{base}/x"
    assert client.pread(url, 1000, 50) == content[1000:1050]
    reads = [(0, 16), (30_000, 64), (59_990, 10)]
    assert client.pread_vec(url, reads) == [
        content[o : o + n] for o, n in reads
    ]


def test_real_listdir(live):
    client, base, store, app = live
    store.put("/dir/a", b"1")
    store.put("/dir/b", b"22")
    names = sorted(name for name, _ in client.listdir(f"{base}/dir"))
    assert names == ["a", "b"]


def test_real_parallel_get_many(live):
    client, base, store, app = live
    for i in range(8):
        store.put(f"/f{i}", f"v{i}".encode())
    urls = [f"{base}/f{i}" for i in range(8)]
    assert client.get_many(urls, concurrency=4) == [
        f"v{i}".encode() for i in range(8)
    ]


def test_real_session_reuse(live):
    client, base, store, app = live
    store.put("/x", b"abc")
    for _ in range(4):
        client.get(f"{base}/x")
    assert client.context.pool.stats().hits == 3


def test_real_metalink_and_failover():
    store = ObjectStore()
    store.put("/f", b"replica-content")
    with real_server(StorageApp(store)) as backend:
        backend_url = f"http://127.0.0.1:{backend.port}/f"
        # A front server that lost the file but serves a metalink
        # pointing at the live backend.
        front_store = ObjectStore()
        front_app = StorageApp(front_store)
        with real_server(front_app) as front:
            front_url = f"http://127.0.0.1:{front.port}/f"
            front_app.replicas["/f"] = [front_url, backend_url]
            client = DavixClient(
                ThreadRuntime(), params=RequestParams(retries=0)
            )
            data = client.get_with_failover(front_url)
            assert data == b"replica-content"
            assert client.context.counters["failovers"] == 1
