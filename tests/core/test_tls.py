"""Tests for the TLS cost model (handshake + record-layer CPU)."""

import pytest

from repro.concurrency import SimRuntime
from repro.concurrency.tlsmodel import TlsPolicy
from repro.core import DavixClient, RequestParams
from repro.errors import RequestError
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, ServerConfig, StorageApp
from repro.sim import Environment


def tls_world(tls_server=True, latency=0.01, policy=None):
    env = Environment()
    net = Network(env, seed=8)
    net.add_host("client")
    net.add_host("server")
    net.set_route(
        "client", "server", LinkSpec(latency=latency, bandwidth=1e8)
    )
    store = ObjectStore()
    config = ServerConfig(
        tls=(policy or TlsPolicy()) if tls_server else None
    )
    HttpServer(
        SimRuntime(net, "server"), StorageApp(store, config=config),
        port=443 if tls_server else 80,
    ).start()
    client = DavixClient(
        SimRuntime(net, "client"),
        params=RequestParams(retries=0, tls=policy),
    )
    return client, store


def test_https_roundtrip_works():
    client, store = tls_world()
    store.put("/x", b"encrypted-ish payload")
    assert client.get("https://server/x") == b"encrypted-ish payload"
    assert client.put("https://server/y", b"up") == 201
    assert store.read("/y") == b"up"


def test_handshake_costs_two_extra_rtts():
    def first_get_time(scheme, tls_server, port_latency=0.05):
        client, store = tls_world(
            tls_server=tls_server, latency=port_latency
        )
        store.put("/x", b"tiny")
        start = client.runtime.now()
        client.get(f"{scheme}://server/x")
        return client.runtime.now() - start

    plain = first_get_time("http", tls_server=False)
    tls = first_get_time("https", tls_server=True)
    # Two extra round trips at 100 ms RTT, plus ~4 ms handshake CPU.
    assert tls - plain == pytest.approx(0.204, rel=0.15)


def test_keepalive_amortises_the_handshake():
    client, store = tls_world(latency=0.05)
    store.put("/x", b"tiny")
    start = client.runtime.now()
    client.get("https://server/x")
    first = client.runtime.now() - start
    start = client.runtime.now()
    client.get("https://server/x")
    second = client.runtime.now() - start
    assert second < first / 2  # no second handshake
    assert client.context.pool.stats().hits == 1


def test_record_layer_slows_bulk_transfer():
    policy = TlsPolicy(crypto_bandwidth=20e6)  # deliberately slow crypto
    size = 10_000_000

    def transfer_time(scheme, tls_server, tls_policy):
        client, store = tls_world(
            tls_server=tls_server, latency=0.001, policy=tls_policy
        )
        store.put("/big", b"x" * size)
        start = client.runtime.now()
        client.get(f"{scheme}://server/big")
        return client.runtime.now() - start

    plain = transfer_time("http", False, None)
    tls = transfer_time("https", True, policy)
    # Crypto at 20 MB/s on each side adds ~2 x 0.5 s for 10 MB.
    assert tls > plain + 0.8


def test_https_against_plain_port_fails_cleanly():
    client, store = tls_world(tls_server=False)  # plain server on :80
    store.put("/x", b"data")
    with pytest.raises(RequestError):
        client.get("https://server:80/x")


def test_policy_record_cost():
    policy = TlsPolicy(crypto_bandwidth=100e6)
    assert policy.record_cost(100_000_000) == pytest.approx(1.0)
    assert policy.record_cost(0) == 0.0
