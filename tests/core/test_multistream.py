"""Tests for multi-stream (multi-source) downloads."""

import zlib

import pytest

from repro.concurrency import SimRuntime
from repro.core import DavixClient, RequestParams
from repro.errors import AllReplicasFailed, ChecksumMismatch, RequestError
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.sim import Environment


def multistream_world(
    n_replicas=3, size=1_000_000, params=None, corrupt_site=None
):
    env = Environment()
    net = Network(env, seed=3)
    net.add_host("client", access_bandwidth=1.25e8)
    names = [f"site{i}" for i in range(n_replicas)]
    spec = LinkSpec(latency=0.005, bandwidth=2e7)  # per-path bottleneck
    for name in names:
        net.add_host(name, access_bandwidth=2e7)
        net.set_route("client", name, spec)

    path = "/data/big.bin"
    content = bytes(i % 251 for i in range(size))
    urls = [f"http://{name}{path}" for name in names]
    apps = []
    for index, name in enumerate(names):
        runtime = SimRuntime(net, name)
        store = ObjectStore()
        payload = content
        if corrupt_site == index:
            payload = b"X" + content[1:]
        store.put(path, payload)
        app = StorageApp(store, replicas={path: urls})
        HttpServer(runtime, app, port=80).start()
        apps.append(app)

    client = DavixClient(
        SimRuntime(net, "client"), params=params
    )
    return client, net, apps, urls, content


def test_multistream_assembles_correct_content():
    params = RequestParams(multistream_chunk=100_000)
    client, net, apps, urls, content = multistream_world(params=params)
    result = client.get_multistream(urls[0])
    assert result.data == content
    assert result.size == len(content)


def test_multistream_uses_all_replicas():
    params = RequestParams(multistream_chunk=50_000)
    client, net, apps, urls, content = multistream_world(params=params)
    result = client.get_multistream(urls[0])
    by_host = result.bytes_by_host()
    assert len(by_host) == 3
    assert all(count > 0 for count in by_host.values())
    assert sum(by_host.values()) == len(content)


def test_multistream_faster_than_single_stream_when_path_limited():
    # Three 20 MB/s paths vs one: wall-clock (simulated) speedup.
    # Chunks must be large enough that transfer, not per-chunk RTT,
    # dominates.
    params = RequestParams(multistream_chunk=1_000_000)
    client, net, apps, urls, content = multistream_world(
        size=12_000_000, params=params
    )
    start = client.runtime.now()
    client.get_multistream(urls[0])
    multi = client.runtime.now() - start

    client2, net2, apps2, urls2, content2 = multistream_world(
        size=12_000_000, params=params
    )
    start = client2.runtime.now()
    client2.get(urls2[0])
    single = client2.runtime.now() - start
    assert multi < single * 0.6


def test_multistream_survives_replica_death_midway():
    params = RequestParams(multistream_chunk=50_000, retries=0)
    client, net, apps, urls, content = multistream_world(params=params)

    # Take down one site while the download runs.
    def killer():
        yield client.runtime.env.timeout(0.05)
        net.host("site2").fail()

    client.runtime.env.process(killer())
    result = client.get_multistream(urls[0])
    assert result.data == content
    failed = [s for s in result.streams if s.failed]
    assert len(failed) <= 1  # at most the killed stream


def test_multistream_all_dead_raises():
    params = RequestParams(
        multistream_chunk=50_000, retries=0, connect_timeout=0.2
    )
    client, net, apps, urls, content = multistream_world(params=params)
    metalink = client.get_metalink(urls[0])
    for i in range(3):
        net.host(f"site{i}").fail()

    from repro.core.multistream import multistream_download

    with pytest.raises(AllReplicasFailed):
        client.runtime.run(
            multistream_download(
                client.context, urls[0], params, metalink=metalink
            )
        )


def test_checksum_mismatch_detected():
    # All chunks come from a corrupted mirror when it is the only one.
    params = RequestParams(
        multistream_chunk=100_000, multistream_max_streams=1,
        verify_checksum=True,
    )
    client, net, apps, urls, content = multistream_world(
        n_replicas=2, params=params, corrupt_site=0
    )
    # The metalink checksum is computed by site1 (clean copy): fetch it
    # there, then force all traffic to the corrupted site0.
    metalink = client.get_metalink(urls[1])
    # Rewrite replica order so the corrupt site is the only stream.
    entry = metalink.single()
    entry.urls = [u for u in entry.urls if "site0" in u.url]

    from repro.core.multistream import multistream_download

    with pytest.raises(ChecksumMismatch):
        client.runtime.run(
            multistream_download(
                client.context, urls[0], params, metalink=metalink
            )
        )


def test_metalink_without_size_rejected():
    client, net, apps, urls, content = multistream_world()
    metalink = client.get_metalink(urls[0])
    metalink.single().size = None

    from repro.core.multistream import multistream_download

    with pytest.raises(RequestError):
        client.runtime.run(
            multistream_download(
                client.context, urls[0], client.context.params,
                metalink=metalink,
            )
        )


def test_max_streams_respected():
    params = RequestParams(
        multistream_chunk=50_000, multistream_max_streams=2
    )
    client, net, apps, urls, content = multistream_world(params=params)
    result = client.get_multistream(urls[0])
    assert len(result.streams) == 2
    assert result.data == content


def test_empty_file_multistream():
    env = Environment()
    net = Network(env, seed=0)
    net.add_host("client")
    net.add_host("site0")
    net.set_route("client", "site0", LinkSpec(latency=0.001, bandwidth=1e8))
    store = ObjectStore()
    store.put("/empty", b"")
    app = StorageApp(store, replicas={"/empty": ["http://site0/empty"]})
    HttpServer(SimRuntime(net, "site0"), app, port=80).start()
    client = DavixClient(SimRuntime(net, "client"))
    result = client.get_multistream("http://site0/empty")
    assert result.data == b""
