"""Tests for the DavPosix API layer."""

import os

import pytest

from repro.core import DavPosix
from repro.errors import DavixError, FileNotFound

from tests.helpers import davix_world


def make_posix():
    client, app, store, _ = davix_world()
    store.put("/data/f.bin", b"0123456789ABCDEF")
    posix = DavPosix(client.context)
    return client.runtime, posix, store


def test_open_read_close():
    runtime, posix, store = make_posix()

    def op():
        fd = yield from posix.open("http://server/data/f.bin")
        assert fd.size == 16
        first = yield from posix.read(fd, 4)
        second = yield from posix.read(fd, 4)
        posix.close(fd)
        return first, second

    assert runtime.run(op()) == (b"0123", b"4567")


def test_read_at_eof_returns_empty():
    runtime, posix, store = make_posix()

    def op():
        fd = yield from posix.open("http://server/data/f.bin")
        posix.lseek(fd, 0, os.SEEK_END)
        data = yield from posix.read(fd, 10)
        return data

    assert runtime.run(op()) == b""


def test_lseek_whences():
    runtime, posix, store = make_posix()

    def op():
        fd = yield from posix.open("http://server/data/f.bin")
        assert posix.lseek(fd, 10) == 10
        assert posix.lseek(fd, -3, os.SEEK_CUR) == 7
        assert posix.lseek(fd, -1, os.SEEK_END) == 15
        data = yield from posix.read(fd, 10)
        return data

    assert runtime.run(op()) == b"F"


def test_lseek_validation():
    runtime, posix, store = make_posix()

    def op():
        fd = yield from posix.open("http://server/data/f.bin")
        try:
            posix.lseek(fd, -5, os.SEEK_SET)
        except DavixError:
            pass
        else:
            raise AssertionError("negative seek accepted")
        try:
            posix.lseek(fd, 0, 99)
        except ValueError:
            return "ok"

    assert runtime.run(op()) == "ok"


def test_pread_does_not_move_cursor():
    runtime, posix, store = make_posix()

    def op():
        fd = yield from posix.open("http://server/data/f.bin")
        at = yield from posix.pread(fd, 10, 3)
        sequential = yield from posix.read(fd, 3)
        return at, sequential

    assert runtime.run(op()) == (b"ABC", b"012")


def test_pread_vec_through_descriptor():
    runtime, posix, store = make_posix()

    def op():
        fd = yield from posix.open("http://server/data/f.bin")
        chunks = yield from posix.pread_vec(fd, [(0, 2), (14, 2)])
        return chunks

    assert runtime.run(op()) == [b"01", b"EF"]


def test_closed_descriptor_rejected():
    runtime, posix, store = make_posix()

    def op():
        fd = yield from posix.open("http://server/data/f.bin")
        posix.close(fd)
        try:
            yield from posix.read(fd, 1)
        except DavixError:
            return "rejected"

    assert runtime.run(op()) == "rejected"


def test_open_missing_raises():
    runtime, posix, store = make_posix()

    def op():
        yield from posix.open("http://server/nope")

    with pytest.raises(FileNotFound):
        runtime.run(op())


def test_open_directory_rejected():
    runtime, posix, store = make_posix()
    store.mkcol("/adir")

    def op():
        yield from posix.open("http://server/adir")

    # HEAD on a collection 404s in our server, PROPFIND fallback is for
    # 405; either way the open must fail.
    with pytest.raises((DavixError, FileNotFound)):
        runtime.run(op())


def test_stat_unlink_mkdir_listdir():
    runtime, posix, store = make_posix()

    def op():
        yield from posix.mkdir("http://server/newcol")
        stat = yield from posix.stat("http://server/data/f.bin")
        listing = yield from posix.listdir("http://server/data")
        yield from posix.unlink("http://server/data/f.bin")
        return stat, listing

    stat, listing = runtime.run(op())
    assert stat.size == 16
    assert [name for name, _ in listing] == ["f.bin"]
    assert not store.exists("/data/f.bin")
    assert store.is_collection("/newcol")
