"""Tests for Metalink replica fail-over (paper Section 2.4)."""

import pytest

from repro.concurrency import SimRuntime
from repro.core import Context, DavixClient, MetalinkMode, RequestParams
from repro.errors import AllReplicasFailed, FileNotFound
from repro.net import LinkSpec, Network
from repro.server import HttpServer, ObjectStore, StorageApp
from repro.sim import Environment


def replica_world(n_replicas=3, latency=0.001):
    """A client plus n storage sites each holding the same file; every
    site serves the Metalink listing all replicas."""
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("client")
    names = [f"site{i}" for i in range(n_replicas)]
    spec = LinkSpec(latency=latency, bandwidth=1e8)
    for name in names:
        net.add_host(name)
        net.set_route("client", name, spec)

    path = "/data/f.root"
    urls = [f"http://{name}{path}" for name in names]
    apps = []
    for name in names:
        runtime = SimRuntime(net, name)
        store = ObjectStore()
        store.put(path, b"replicated-content")
        app = StorageApp(store, replicas={path: urls})
        HttpServer(runtime, app, port=80).start()
        apps.append(app)

    client = DavixClient(SimRuntime(net, "client"))
    return client, net, apps, urls


def test_primary_success_needs_no_failover():
    client, net, apps, urls = replica_world()
    data = client.get_with_failover(urls[0])
    assert data == b"replicated-content"
    assert client.context.counters["failovers"] == 0
    assert apps[1].requests_handled == 0


def test_failover_to_second_replica_when_primary_down():
    client, net, apps, urls = replica_world()
    net.host("site0").fail()
    # The metalink must come from a live site (the federation case).
    data = client.get_with_failover(urls[0], metalink_url=urls[1])
    assert data == b"replicated-content"
    assert client.context.counters["failovers"] == 1


def test_failover_skips_dead_replicas_until_one_works():
    client, net, apps, urls = replica_world(n_replicas=4)
    net.host("site0").fail()
    net.host("site1").fail()
    net.host("site2").fail()
    data = client.get_with_failover(urls[0], metalink_url=urls[3])
    assert data == b"replicated-content"
    assert apps[3].requests_handled >= 1


def test_all_replicas_dead_raises_all_failed():
    client, net, apps, urls = replica_world(n_replicas=2)
    # Fetch the metalink first (all alive), then take everything down.
    metalink = client.get_metalink(urls[0])
    net.host("site0").fail()
    net.host("site1").fail()

    from repro.core.failover import with_failover
    from repro.core.file import DavFile

    params = client.context.params.with_(
        retries=0, connect_timeout=0.5,
        tcp_options=None,
    )

    def attempt(target):
        data = yield from DavFile(
            client.context, target, params
        ).read_all()
        return data

    # Inject the metalink via a stub DavFile.get_metalink through the
    # federation URL of a dead host -> primary error must surface as
    # AllReplicasFailed is unreachable; instead test the inner loop by
    # resolving replicas manually.
    from repro.core.failover import resolve_replicas
    from repro.http import Url

    replicas = resolve_replicas(metalink, Url.parse(urls[0]))
    assert len(replicas) == 2

    def op():
        result = yield from with_failover(
            client.context, urls[0], attempt, params,
            metalink_url=urls[1],
        )
        return result

    from repro.errors import DavixError, RequestError

    with pytest.raises((RequestError, DavixError)):
        client.runtime.run(op())


def test_404_on_primary_triggers_failover():
    # Primary lost its copy (404) but still serves the metalink; the
    # replica has the data.
    client, net, apps, urls = replica_world(n_replicas=2)
    apps[0].store.delete("/data/f.root")
    data = client.get_with_failover(urls[0])
    assert data == b"replicated-content"
    assert client.context.counters["failovers"] == 1


def test_metalink_mode_disabled_raises_primary_error():
    client, net, apps, urls = replica_world(n_replicas=2)
    apps[0].store.delete("/data/f.root")
    params = client.context.params.with_(
        metalink_mode=MetalinkMode.DISABLED
    )
    with pytest.raises(FileNotFound):
        client.get_with_failover(urls[0], params=params)


def test_blacklisted_replica_is_skipped():
    client, net, apps, urls = replica_world(n_replicas=3)
    apps[0].store.delete("/data/f.root")
    # Blacklist site1 manually: failover should go straight to site2.
    from repro.http import Url

    client.context.blacklist(Url.parse(urls[1]).origin)
    data = client.get_with_failover(urls[0])
    assert data == b"replicated-content"
    assert apps[1].requests_by_method.get("GET", 0) == 0
    assert apps[2].requests_by_method.get("GET", 0) >= 1


def test_blacklist_expires_with_ttl():
    context = Context(params=RequestParams(blacklist_ttl=10.0))
    now = {"t": 0.0}
    context.clock = lambda: now["t"]
    origin = ("http", "site1", 80)
    context.blacklist(origin)
    assert context.is_blacklisted(origin)
    now["t"] = 10.5
    assert not context.is_blacklisted(origin)


def test_failover_counts_attempts_in_error():
    client, net, apps, urls = replica_world(n_replicas=3)
    for app in apps:
        app.store.delete("/data/f.root")
    params = client.context.params.with_(retries=0)
    with pytest.raises(AllReplicasFailed) as info:
        client.get_with_failover(urls[0], params=params)
    # primary + 2 distinct replicas were tried
    assert len(info.value.attempts) == 3
