"""Tests for the pipelining baseline and its head-of-line blocking."""

import pytest

from repro.core import pipeline_requests
from repro.core.file import DavFile
from repro.errors import ConnectionClosed
from repro.http import Request
from repro.server import HttpServer, ObjectStore, ServerConfig, StorageApp

from tests.helpers import davix_world, get, sim_world


def pipelined_world(latency=0.02, bandwidth=1e7):
    client_rt, server_rt = sim_world(latency=latency, bandwidth=bandwidth)
    store = ObjectStore()
    app = StorageApp(store)
    HttpServer(server_rt, app, port=80).start()
    return client_rt, store, app


def test_pipelined_responses_arrive_in_order():
    client_rt, store, app = pipelined_world()
    for i in range(5):
        store.put(f"/f{i}", f"resp-{i}".encode())
    requests = [get(f"/f{i}") for i in range(5)]
    responses, completions = client_rt.run(
        pipeline_requests(("server", 80), requests)
    )
    assert [r.body for r in responses] == [
        f"resp-{i}".encode() for i in range(5)
    ]
    assert completions == sorted(completions)
    assert app.requests_handled == 5


def test_pipelining_uses_single_connection():
    client_rt, store, app = pipelined_world()
    store.put("/x", b"data")
    client_rt.run(
        pipeline_requests(("server", 80), [get("/x") for _ in range(10)])
    )
    server = client_rt.network.host("server")
    assert server.counters["connections_accepted"] == 1


def test_head_of_line_blocking_delays_small_responses():
    """A large response queued first delays every small one behind it —
    the paper's Section 2.2 argument against pipelining."""
    client_rt, store, app = pipelined_world(latency=0.01, bandwidth=2e6)
    store.put("/big", b"B" * 2_000_000)  # ~1 s of transfer
    store.put("/small", b"s")

    requests = [get("/big")] + [get("/small") for _ in range(4)]
    responses, completions = client_rt.run(
        pipeline_requests(("server", 80), requests)
    )
    big_done = completions[0]
    # Every small response finished *after* the big one.
    assert all(t >= big_done for t in completions[1:])
    assert big_done > 0.9  # the big body really took ~1 s

    # Reference: on a fresh run, a small GET alone is milliseconds.
    client_rt2, store2, app2 = pipelined_world(latency=0.01, bandwidth=2e6)
    store2.put("/small", b"s")
    _, lone = client_rt2.run(
        pipeline_requests(("server", 80), [get("/small")])
    )
    assert lone[0] < 0.1


def test_pool_dispatch_avoids_hol_blocking():
    """The same mixed workload through davix's pool dispatch: small
    requests do not wait for the large one."""
    from repro.core import DavixClient, run_parallel

    client_rt, store, app = pipelined_world(latency=0.01, bandwidth=2e6)
    store.put("/big", b"B" * 2_000_000)
    store.put("/small", b"s")
    client = DavixClient(client_rt)

    times = {}

    def job(path):
        def thunk():
            data = yield from DavFile(
                client.context, f"http://server{path}"
            ).read_all()
            times.setdefault(path, client_rt.now())
            return data

        return thunk

    jobs = [job("/big")] + [job("/small")] * 4
    client_rt.run(run_parallel(jobs, concurrency=5))
    assert times["/small"] < 0.2  # finished long before the big one
    assert times["/big"] > 0.9


def test_pipeline_against_closing_server_raises():
    config = ServerConfig(max_requests_per_connection=2)
    client_rt, server_rt = sim_world()
    store = ObjectStore()
    store.put("/x", b"d")
    HttpServer(server_rt, StorageApp(store, config=config), port=80).start()
    with pytest.raises(ConnectionClosed):
        client_rt.run(
            pipeline_requests(
                ("server", 80), [get("/x") for _ in range(5)]
            )
        )
