"""Failover edge cases: dead federations, degenerate metalinks, and
faulty replicas interacting with retries and circuit breakers."""

import pytest

from repro.concurrency import SimRuntime
from repro.core import (
    BreakerConfig,
    Context,
    DavixClient,
    RequestParams,
    RetryPolicy,
)
from repro.core.failover import with_failover
from repro.core.file import DavFile
from repro.errors import AllReplicasFailed
from repro.net import LinkSpec, Network
from repro.server import FaultPolicy, HttpServer, ObjectStore, StorageApp
from repro.sim import Environment

PATH = "/data/f.root"
CONTENT = bytes(i % 249 for i in range(80_000))


def federation_world(n_replicas=3, site_faults=None, breaker=None):
    """n storage sites plus a separate federation endpoint serving the
    Metalink; ``site_faults`` maps site index -> FaultPolicy."""
    env = Environment()
    net = Network(env, seed=1)
    net.add_host("client")
    names = [f"site{i}" for i in range(n_replicas)] + ["fed"]
    spec = LinkSpec(latency=0.001, bandwidth=1e8)
    for name in names:
        net.add_host(name)
        net.set_route("client", name, spec)

    urls = [f"http://site{i}{PATH}" for i in range(n_replicas)]
    apps = []
    for index, name in enumerate(names):
        runtime = SimRuntime(net, name)
        store = ObjectStore()
        store.put(PATH, CONTENT)
        faults = (site_faults or {}).get(index)
        app = StorageApp(store, replicas={PATH: urls}, faults=faults)
        HttpServer(runtime, app, port=80).start()
        apps.append(app)

    context = Context(breaker=breaker)
    client = DavixClient(SimRuntime(net, "client"), context=context)
    return client, net, apps, urls


FAST = RequestParams(
    retries=0, connect_timeout=0.5,
    retry_policy=RetryPolicy(max_attempts=1),
)


def test_all_replicas_down_lists_every_attempt():
    client, net, apps, urls = federation_world(n_replicas=3)
    for i in range(3):
        net.host(f"site{i}").fail()
    with pytest.raises(AllReplicasFailed) as info:
        client.get_with_failover(
            urls[0], params=FAST, metalink_url=f"http://fed{PATH}"
        )
    # Primary plus both other replicas were tried and recorded.
    tried = [url for url, _ in info.value.attempts]
    assert tried == urls
    assert (
        client.metrics().counter("failover.exhausted_total").value == 1
    )
    assert client.context.counters.get("failovers", 0) == 0


def test_metalink_with_only_the_primary_replica():
    """A degenerate Metalink that lists just the origin that already
    failed gives up immediately instead of retrying the same origin."""
    client, net, apps, urls = federation_world(n_replicas=1)
    apps[0].store.delete(PATH)
    with pytest.raises(AllReplicasFailed) as info:
        client.get_with_failover(urls[0], params=FAST)
    assert [url for url, _ in info.value.attempts] == [urls[0]]
    # One data GET plus one metalink GET -- but no second data attempt.
    assert apps[0].requests_by_method["GET"] == 2


def test_reset_storm_mid_vectored_read_fails_over():
    """The primary resets every response mid-body; once local retries
    are exhausted the vectored read completes from a clean replica."""
    client, net, apps, urls = federation_world(
        n_replicas=2,
        site_faults={0: FaultPolicy(reset_rate=1.0, seed=0)},
    )
    params = RequestParams(
        retry_policy=RetryPolicy(
            max_attempts=2, base_delay=0.01, jitter="none"
        )
    )
    reads = [(0, 500), (30_000, 500), (79_000, 500)]

    def attempt(target):
        chunks = yield from DavFile(
            client.context, target, params
        ).pread_vec(reads)
        return chunks

    # The metalink must come from the federation: the primary resets
    # that fetch too.
    chunks = client.runtime.run(
        with_failover(
            client.context, urls[0], attempt, params,
            metalink_url=f"http://fed{PATH}",
        )
    )
    assert chunks == [CONTENT[o : o + n] for o, n in reads]
    assert client.context.counters["failovers"] == 1
    assert client.context.counters["retries"] >= 1
    assert apps[1].requests_by_method["GET"] >= 1


def test_open_breaker_skips_replica_without_touching_it():
    client, net, apps, urls = federation_world(
        n_replicas=3, breaker=BreakerConfig(threshold=1, cooldown=60.0)
    )
    apps[0].store.delete(PATH)
    apps[2].store.delete(PATH)
    # site1's circuit is already open from earlier failures.
    origin = ("http", "site1", 80)
    client.context.breakers.record(origin, ok=False)
    assert client.context.breakers.state(origin) == "open"

    with pytest.raises(AllReplicasFailed) as info:
        client.get_with_failover(urls[0], params=FAST)

    assert info.value.attempts[1] == (urls[1], "circuit open")
    assert apps[1].requests_handled == 0
    assert (
        client.metrics().counter("failover.breaker_skips_total").value
        == 1
    )


def test_breaker_disabled_still_attempts_open_replica():
    client, net, apps, urls = federation_world(
        n_replicas=2, breaker=BreakerConfig(threshold=1, cooldown=60.0)
    )
    apps[0].store.delete(PATH)
    origin = ("http", "site1", 80)
    client.context.breakers.record(origin, ok=False)

    params = FAST.with_(breaker_enabled=False)
    assert client.get_with_failover(urls[0], params=params) == CONTENT
    assert apps[1].requests_handled >= 1
