"""Parallel dispatch of vectored-read batches (``TransferConfig``).

The plan's multi-range batches execute concurrently on pooled sessions;
these tests pin the contract: byte-identical results to sequential
dispatch, unchanged round-trip accounting, the zero-copy ``copy_bytes``
invariant (exactly one materialising copy per fragment), the
``vector.inflight`` gauge lifecycle, a real wall-clock win on a
high-latency link, and that the pre-unification legacy knobs
(``vector_max_inflight`` / ``pread_vec(max_inflight=)``) are gone
from the API surface.
"""

import pytest

from repro.core import RequestParams, TransferConfig
from repro.errors import RequestError

from tests.helpers import davix_world
from tests.resilience.conftest import ScriptedFaults, errors

BLOB = bytes((i * 131 + 7) % 256 for i in range(400_000))


def reads_spread(count, length=512, stride=16_384):
    return [(i * stride, length) for i in range(count)]


def world(max_inflight, latency=0.001, faults=None, retries=None):
    params = RequestParams(
        max_vector_ranges=4,
        vector_gap=0,
        transfer=TransferConfig(max_inflight=max_inflight),
        **({"retries": retries} if retries is not None else {}),
    )
    client, app, store, _ = davix_world(
        latency=latency, params=params, faults=faults
    )
    store.put("/blob", BLOB)
    return client, app


def test_parallel_results_byte_identical_to_sequential():
    reads = reads_spread(16)  # 16 ranges -> 4 batches of 4
    sequential_client, _ = world(max_inflight=1)
    parallel_client, _ = world(max_inflight=4)
    expected = [BLOB[o : o + n] for o, n in reads]
    sequential = sequential_client.pread_vec("http://server/blob", reads)
    parallel = parallel_client.pread_vec("http://server/blob", reads)
    assert sequential == expected
    assert parallel == expected


def test_parallel_round_trip_and_copy_accounting():
    reads = reads_spread(16)
    client, app = world(max_inflight=4)
    client.pread_vec("http://server/blob", reads)
    registry = client.metrics()
    assert app.requests_handled == 4
    assert registry.value("vector.round_trips_total") == 4
    assert registry.value("vector.parallel_dispatch_total") == 1
    # Zero-copy invariant: one materialising copy per fragment and
    # nothing else — copy bytes equal requested bytes exactly.
    requested = sum(n for _, n in reads)
    assert registry.value("vector.requested_bytes_total") == requested
    assert registry.value("vector.copy_bytes_total") == requested


def test_sequential_copy_accounting_matches():
    reads = reads_spread(8)
    client, _ = world(max_inflight=1)
    client.pread_vec("http://server/blob", reads)
    registry = client.metrics()
    assert registry.value("vector.parallel_dispatch_total") is None
    assert registry.value("vector.copy_bytes_total") == sum(
        n for _, n in reads
    )


def test_inflight_gauge_returns_to_zero():
    reads = reads_spread(16)
    client, _ = world(max_inflight=3)
    client.pread_vec("http://server/blob", reads)
    registry = client.metrics()
    assert registry.value("vector.inflight") == 0


def test_transfer_override_per_call():
    reads = reads_spread(16)
    client, app = world(max_inflight=1)
    client.pread_vec(
        "http://server/blob",
        reads,
        transfer=TransferConfig(max_inflight=4),
    )
    assert (
        client.metrics().value("vector.parallel_dispatch_total") == 1
    )
    assert app.requests_handled == 4


def test_inflight_validation():
    with pytest.raises(ValueError):
        TransferConfig(max_inflight=0)


def test_legacy_knobs_are_gone():
    """The one-release deprecation aliases were removed: the scattered
    knobs now fail fast instead of warning."""
    with pytest.raises(TypeError):
        RequestParams(vector_max_inflight=4)
    client, _ = world(max_inflight=1)
    with pytest.raises(TypeError):
        client.pread_vec(
            "http://server/blob", reads_spread(4), max_inflight=4
        )


def test_parallel_beats_sequential_on_high_latency_link():
    """4 batches over a 40 ms RTT: concurrent dispatch must win."""
    reads = reads_spread(16)

    def timed(max_inflight):
        client, _ = world(max_inflight=max_inflight, latency=0.020)
        start = client.runtime.now()
        result = client.pread_vec("http://server/blob", reads)
        return client.runtime.now() - start, result

    seq_time, seq_result = timed(1)
    par_time, par_result = timed(4)
    assert par_result == seq_result
    assert par_time < seq_time


def test_parallel_batch_spans_parent_correctly():
    reads = reads_spread(16)
    client, _ = world(max_inflight=4)
    client.pread_vec("http://server/blob", reads)
    tracer = client.tracer()
    (vec,) = tracer.by_name("pread-vec")
    assert vec.attrs["inflight"] == 4
    batches = tracer.by_name("vec-batch")
    assert len(batches) == 4
    assert {b.attrs["batch"] for b in batches} == {0, 1, 2, 3}
    assert all(b.parent_id == vec.span_id for b in batches)
    batch_ids = {b.span_id for b in batches}
    assert all(
        r.parent_id in batch_ids for r in tracer.by_name("request")
    )


def test_parallel_retries_faults_per_batch():
    """Scripted 5xx faults hit some batches; each batch retries inside
    its own envelope and the scattered bytes still come back exact."""
    reads = reads_spread(16)
    faults = ScriptedFaults(errors(3))
    client, app = world(max_inflight=4, faults=faults, retries=3)
    result = client.pread_vec("http://server/blob", reads)
    assert result == [BLOB[o : o + n] for o, n in reads]
    assert faults.injected["error"] == 3
    # 4 clean round trips plus one extra request per injected error.
    assert app.requests_handled == 7
    assert (
        client.metrics().value("vector.round_trips_total") == 4
    )


def test_parallel_failure_surfaces_after_retry_budget():
    reads = reads_spread(16)
    faults = ScriptedFaults(errors(20))
    client, _ = world(max_inflight=4, faults=faults, retries=0)
    with pytest.raises(RequestError):
        client.pread_vec("http://server/blob", reads)
