"""Tests for the session pool and its recycling invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SessionPool


class FakeSession:
    """Pool-facing stand-in for a Session."""

    def __init__(self, origin=("http", "h", 80), created_at=0.0):
        self.origin = origin
        self.created_at = created_at
        self.last_released = created_at
        self.requests_sent = 0
        self.reusable = True
        self.discarded = False

    def discard(self):
        self.discarded = True
        self.reusable = False


ORIGIN = ("http", "h", 80)


def test_acquire_from_empty_pool_is_miss():
    pool = SessionPool()
    assert pool.acquire(ORIGIN) is None
    assert pool.stats().misses == 1


def test_release_then_acquire_is_hit():
    pool = SessionPool()
    session = FakeSession()
    pool.release(session)
    assert pool.acquire(ORIGIN) is session
    stats = pool.stats()
    assert stats.as_dict() == {
        "hits": 1,
        "misses": 0,
        "recycled": 1,
        "discarded": 0,
        "evicted": 0,
    }


def test_lifo_prefers_warmest_session():
    pool = SessionPool()
    old, warm = FakeSession(), FakeSession()
    pool.release(old)
    pool.release(warm)
    assert pool.acquire(ORIGIN) is warm


def test_origins_are_isolated():
    pool = SessionPool()
    session = FakeSession(origin=("http", "a", 80))
    pool.release(session)
    assert pool.acquire(("http", "b", 80)) is None
    assert pool.acquire(("http", "a", 80)) is session


def test_dirty_sessions_are_never_recycled():
    pool = SessionPool()
    session = FakeSession()
    session.reusable = False
    pool.release(session)
    assert session.discarded
    assert pool.acquire(ORIGIN) is None
    assert pool.stats().discarded == 1


def test_session_dirtied_while_idle_is_skipped():
    pool = SessionPool()
    session = FakeSession()
    pool.release(session)
    session.reusable = False  # e.g. the server dropped it
    assert pool.acquire(ORIGIN) is None
    assert session.discarded


def test_max_idle_per_origin_discards_overflow():
    pool = SessionPool(max_idle_per_origin=2)
    sessions = [FakeSession() for _ in range(3)]
    for session in sessions:
        pool.release(session)
    assert pool.idle_count(ORIGIN) == 2
    assert sessions[2].discarded


def test_max_uses_evicts():
    pool = SessionPool(max_session_uses=5)
    session = FakeSession()
    session.requests_sent = 5
    pool.release(session)
    assert session.discarded


def test_max_age_evicts_on_acquire():
    now = {"t": 0.0}
    pool = SessionPool(max_session_age=10.0, clock=lambda: now["t"])
    session = FakeSession(created_at=0.0)
    pool.release(session)
    now["t"] = 11.0
    assert pool.acquire(ORIGIN) is None
    assert session.discarded
    assert pool.stats().evicted == 1


def test_clear_discards_everything():
    pool = SessionPool()
    sessions = [FakeSession() for _ in range(4)]
    for session in sessions:
        pool.release(session)
    assert pool.clear() == 4
    assert all(s.discarded for s in sessions)
    assert pool.idle_count() == 0


def test_validation():
    with pytest.raises(ValueError):
        SessionPool(max_idle_per_origin=-1)


@given(
    st.lists(
        st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60
    )
)
def test_pool_invariant_acquired_sessions_are_clean(events):
    """Whatever the release/acquire interleaving, an acquired session is
    always reusable and never double-issued."""
    pool = SessionPool(max_idle_per_origin=8)
    live = []
    for do_release, dirty in events:
        if do_release:
            session = FakeSession()
            session.reusable = not dirty
            pool.release(session)
        else:
            session = pool.acquire(ORIGIN)
            if session is not None:
                assert session.reusable
                assert not session.discarded
                assert session not in live
                live.append(session)


# -- sharding, idle TTL and the reaper ----------------------------------------


def test_shard_count_and_validation():
    assert SessionPool().shard_count == 8
    assert SessionPool(shards=3).shard_count == 3
    with pytest.raises(ValueError):
        SessionPool(shards=0)
    with pytest.raises(ValueError):
        SessionPool(idle_ttl=0)


def test_shard_assignment_is_stable_and_spread():
    pool = SessionPool(shards=4)
    origins = [("http", f"host-{i}", 80) for i in range(64)]
    first = [pool._shard_index(o) for o in origins]
    assert first == [pool._shard_index(o) for o in origins]
    # CRC32 spreads 64 distinct origins over more than one shard.
    assert len(set(first)) > 1


def test_stats_aggregate_across_shards():
    pool = SessionPool(shards=4)
    origins = [("http", f"host-{i}", 80) for i in range(8)]
    for origin in origins:
        pool.release(FakeSession(origin=origin))
        assert pool.acquire(origin) is not None
        assert pool.acquire(origin) is None
    stats = pool.stats()
    assert stats.recycled == 8
    assert stats.hits == 8
    assert stats.misses == 8
    assert stats.idle == 0


def test_idle_count_totals_span_shards():
    pool = SessionPool(shards=4)
    origins = [("http", f"host-{i}", 80) for i in range(6)]
    for origin in origins:
        pool.release(FakeSession(origin=origin))
    assert pool.idle_count() == 6
    assert pool.idle_count(origins[0]) == 1
    assert pool.clear() == 6
    assert pool.idle_count() == 0


def test_idle_ttl_evicts_on_acquire():
    clock = {"now": 0.0}
    pool = SessionPool(idle_ttl=10.0, clock=lambda: clock["now"])
    pool.release(FakeSession())
    clock["now"] = 11.0
    assert pool.acquire(ORIGIN) is None
    assert pool.stats().evicted == 1


def test_idle_ttl_does_not_apply_at_release():
    """A session busy for longer than the TTL is still recyclable."""
    clock = {"now": 100.0}
    pool = SessionPool(idle_ttl=10.0, clock=lambda: clock["now"])
    session = FakeSession(created_at=0.0)  # last_released = 0.0
    pool.release(session)
    assert pool.acquire(ORIGIN) is session


def test_reap_drops_only_expired_lru_first():
    clock = {"now": 0.0}
    pool = SessionPool(idle_ttl=10.0, clock=lambda: clock["now"])
    stale = FakeSession()
    pool.release(stale)
    clock["now"] = 8.0
    fresh = FakeSession(created_at=8.0)
    pool.release(fresh)
    clock["now"] = 12.0  # stale parked 12s, fresh parked 4s
    assert pool.reap() == 1
    assert stale.discarded and not fresh.discarded
    assert pool.idle_count() == 1
    assert pool.reap() == 0


def test_reap_metrics_and_shard_gauges():
    from repro.obs import MetricsRegistry

    clock = {"now": 0.0}
    registry = MetricsRegistry()
    pool = SessionPool(
        idle_ttl=5.0,
        clock=lambda: clock["now"],
        metrics=registry,
        shards=2,
    )
    origin = ("http", "gauged", 80)
    shard = str(pool._shard_index(origin))
    pool.release(FakeSession(origin=origin))
    assert registry.value("pool.shard.idle", shard=shard) == 1
    clock["now"] = 6.0
    assert pool.reap() == 1
    assert registry.value("pool.reaped_total") == 1
    assert registry.value("pool.evicted_total") == 1
    assert registry.value("pool.shard.idle", shard=shard) == 0
    assert registry.value("pool.idle_sessions") == 0


def test_shard_contention_counter():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    pool = SessionPool(metrics=registry, shards=2)
    origin = ("http", "busy", 80)
    index, shard = pool._shard_for(origin)
    shard.lock.acquire()
    try:
        import threading

        worker = threading.Thread(
            target=pool.release, args=(FakeSession(origin=origin),)
        )
        worker.start()
        # Give the worker time to hit the held lock.
        import time

        time.sleep(0.05)
    finally:
        shard.lock.release()
    worker.join()
    assert (
        registry.value("pool.shard.contended_total", shard=str(index))
        == 1
    )
    assert pool.stats().recycled == 1
