"""Tests for the session pool and its recycling invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SessionPool


class FakeSession:
    """Pool-facing stand-in for a Session."""

    def __init__(self, origin=("http", "h", 80), created_at=0.0):
        self.origin = origin
        self.created_at = created_at
        self.last_released = created_at
        self.requests_sent = 0
        self.reusable = True
        self.discarded = False

    def discard(self):
        self.discarded = True
        self.reusable = False


ORIGIN = ("http", "h", 80)


def test_acquire_from_empty_pool_is_miss():
    pool = SessionPool()
    assert pool.acquire(ORIGIN) is None
    assert pool.stats["misses"] == 1


def test_release_then_acquire_is_hit():
    pool = SessionPool()
    session = FakeSession()
    pool.release(session)
    assert pool.acquire(ORIGIN) is session
    assert pool.stats == {
        "hits": 1,
        "misses": 0,
        "recycled": 1,
        "discarded": 0,
        "evicted": 0,
    }


def test_lifo_prefers_warmest_session():
    pool = SessionPool()
    old, warm = FakeSession(), FakeSession()
    pool.release(old)
    pool.release(warm)
    assert pool.acquire(ORIGIN) is warm


def test_origins_are_isolated():
    pool = SessionPool()
    session = FakeSession(origin=("http", "a", 80))
    pool.release(session)
    assert pool.acquire(("http", "b", 80)) is None
    assert pool.acquire(("http", "a", 80)) is session


def test_dirty_sessions_are_never_recycled():
    pool = SessionPool()
    session = FakeSession()
    session.reusable = False
    pool.release(session)
    assert session.discarded
    assert pool.acquire(ORIGIN) is None
    assert pool.stats["discarded"] == 1


def test_session_dirtied_while_idle_is_skipped():
    pool = SessionPool()
    session = FakeSession()
    pool.release(session)
    session.reusable = False  # e.g. the server dropped it
    assert pool.acquire(ORIGIN) is None
    assert session.discarded


def test_max_idle_per_origin_discards_overflow():
    pool = SessionPool(max_idle_per_origin=2)
    sessions = [FakeSession() for _ in range(3)]
    for session in sessions:
        pool.release(session)
    assert pool.idle_count(ORIGIN) == 2
    assert sessions[2].discarded


def test_max_uses_evicts():
    pool = SessionPool(max_session_uses=5)
    session = FakeSession()
    session.requests_sent = 5
    pool.release(session)
    assert session.discarded


def test_max_age_evicts_on_acquire():
    now = {"t": 0.0}
    pool = SessionPool(max_session_age=10.0, clock=lambda: now["t"])
    session = FakeSession(created_at=0.0)
    pool.release(session)
    now["t"] = 11.0
    assert pool.acquire(ORIGIN) is None
    assert session.discarded
    assert pool.stats["evicted"] == 1


def test_clear_discards_everything():
    pool = SessionPool()
    sessions = [FakeSession() for _ in range(4)]
    for session in sessions:
        pool.release(session)
    assert pool.clear() == 4
    assert all(s.discarded for s in sessions)
    assert pool.idle_count() == 0


def test_validation():
    with pytest.raises(ValueError):
        SessionPool(max_idle_per_origin=-1)


@given(
    st.lists(
        st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60
    )
)
def test_pool_invariant_acquired_sessions_are_clean(events):
    """Whatever the release/acquire interleaving, an acquired session is
    always reusable and never double-issued."""
    pool = SessionPool(max_idle_per_origin=8)
    live = []
    for do_release, dirty in events:
        if do_release:
            session = FakeSession()
            session.reusable = not dirty
            pool.release(session)
        else:
            session = pool.acquire(ORIGIN)
            if session is not None:
                assert session.reusable
                assert not session.discarded
                assert session not in live
                live.append(session)
