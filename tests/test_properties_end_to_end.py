"""Cross-stack property tests: random datasets and range patterns must
survive the full client/server/transport round trip."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency import SimRuntime, ThreadRuntime
from repro.core import Context
from repro.http import Headers, Request
from repro.rootio import (
    BranchSpec,
    DatasetSpec,
    DavixFetcher,
    LocalFetcher,
    TreeFileReader,
    generate_tree_bytes,
)
from repro.server import HttpServer, ObjectStore, StorageApp

from tests.helpers import one_request, sim_world

# Hypothesis drives whole simulations here: generous deadlines.
SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW
@given(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=1, max_value=97),
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=64),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        min_size=1,
        max_size=4,
    ),
    st.lists(
        st.tuples(st.integers(0, 399), st.integers(0, 399)),
        min_size=1,
        max_size=6,
    ),
)
def test_tree_entries_survive_http_roundtrip(
    n_entries, basket_entries, branch_shapes, windows
):
    """Arbitrary tree shapes and read windows: the bytes read over the
    simulated HTTP path equal a local read."""
    spec = DatasetSpec(
        name="prop",
        n_entries=n_entries,
        branches=tuple(
            BranchSpec(f"b{i}", event_size=size, compress_ratio=ratio)
            for i, (size, ratio) in enumerate(branch_shapes)
        ),
        basket_entries=basket_entries,
        seed=5,
    )
    blob = generate_tree_bytes(spec)

    local = TreeFileReader(LocalFetcher(blob))
    ThreadRuntime().run(local.open())

    client_rt, server_rt = sim_world()
    store = ObjectStore()
    store.put("/t", blob)
    HttpServer(server_rt, StorageApp(store), port=80).start()
    remote = TreeFileReader(DavixFetcher(Context(), "http://server/t"))
    client_rt.run(remote.open())

    for start_raw, stop_raw in windows:
        start = start_raw % n_entries
        stop = min(n_entries, start + 1 + (stop_raw % 50))
        expected = ThreadRuntime().run(local.read_entries(start, stop))
        got = client_rt.run(remote.read_entries(start, stop))
        assert got == expected


@SLOW
@given(
    st.binary(min_size=1, max_size=5000),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6000),
            st.integers(min_value=1, max_value=2000),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_server_range_semantics_property(content, raw_ranges):
    """Any Range header against any object: the served bytes must match
    RFC 7233 semantics computed locally."""
    from repro.http import RangeSpec, decode_byteranges, format_range_header
    from repro.http.multipart import content_type_boundary
    from repro.http.ranges import resolve_ranges

    client_rt, server_rt = sim_world()
    store = ObjectStore()
    store.put("/x", content)
    HttpServer(server_rt, StorageApp(store), port=80).start()

    specs = [
        RangeSpec.from_offset_length(offset, length)
        for offset, length in raw_ranges
    ]
    header = format_range_header(specs)
    response = client_rt.run(
        one_request(
            ("server", 80),
            Request("GET", "/x", Headers([("Range", header)])),
        )
    )
    resolved = resolve_ranges(specs, len(content))
    if not resolved:
        assert response.status == 416
        return
    assert response.status == 206
    if len(resolved) == 1:
        offset, length = resolved[0]
        assert response.body == content[offset : offset + length]
    else:
        boundary = content_type_boundary(response.content_type)
        parts = decode_byteranges(response.body, boundary)
        assert [(p.offset, len(p.data)) for p in parts] == resolved
        for part in parts:
            assert part.data == content[
                part.offset : part.offset + len(part.data)
            ]
            assert part.total == len(content)
