"""Tests for the GridFTP-like comparator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.concurrency import SimRuntime
from repro.errors import HttpProtocolError, RequestError
from repro.gridftp import (
    BlockReader,
    GridFtpClient,
    GridFtpServer,
    serve_gridftp,
)
from repro.gridftp import protocol as gp
from repro.net import LinkSpec, Network, TcpOptions
from repro.server import ObjectStore, SyntheticContent
from repro.sim import Environment

from tests.helpers import sim_world


# -- protocol ------------------------------------------------------------------


def test_block_roundtrip():
    wire = gp.encode_block(1000, b"payload")
    reader = BlockReader()
    reader.feed(wire)
    block = reader.next_block()
    assert block.offset == 1000
    assert block.payload == b"payload"
    assert not block.eof


def test_eof_block():
    reader = BlockReader()
    reader.feed(gp.encode_eof())
    assert reader.next_block().eof


def test_block_incremental():
    wire = gp.encode_block(5, b"x" * 100)
    reader = BlockReader()
    for i in range(0, len(wire), 9):
        reader.feed(wire[i : i + 9])
    assert reader.next_block().payload == b"x" * 100


def test_oversized_block_rejected():
    with pytest.raises(HttpProtocolError):
        gp.encode_block(0, b"x" * (gp.MAX_BLOCK + 1))


def test_control_line_roundtrip():
    verb, args = gp.parse_command(b"RETR /data/f.root 4\r\n")
    assert verb == "RETR"
    assert args == ["/data/f.root", "4"]
    code, message = gp.parse_reply(gp.format_reply(213, "12345").strip())
    assert (code, message) == (213, "12345")


@given(
    st.integers(min_value=0, max_value=10**12),
    st.binary(max_size=4096),
)
def test_block_roundtrip_property(offset, payload):
    reader = BlockReader()
    reader.feed(gp.encode_block(offset, payload))
    block = reader.next_block()
    assert (block.offset, block.payload) == (offset, payload)


# -- end to end -------------------------------------------------------------------


def gridftp_world(latency=0.005, bandwidth=1e8, content=None):
    client_rt, server_rt = sim_world(latency=latency, bandwidth=bandwidth)
    store = ObjectStore()
    store.put("/data/f.bin", content or bytes(range(256)) * 1000)
    server = GridFtpServer(store, server_rt)
    serve_gridftp(server_rt, server, port=2811)
    return client_rt, store, server


def test_size_and_quit():
    client_rt, store, server = gridftp_world()

    def op():
        client = yield from GridFtpClient.connect(("server", 2811))
        size = yield from client.size("/data/f.bin")
        yield from client.quit()
        return size

    assert client_rt.run(op()) == 256_000


def test_retrieve_single_stream_byte_exact():
    content = bytes(range(256)) * 2048
    client_rt, store, server = gridftp_world(content=content)

    def op():
        client = yield from GridFtpClient.connect(("server", 2811))
        data = yield from client.retrieve("/data/f.bin", streams=1)
        return data

    assert client_rt.run(op()) == content


def test_retrieve_striped_byte_exact():
    content = SyntheticContent(3_000_000, seed=5).read_all()
    client_rt, store, server = gridftp_world(content=content)

    def op():
        client = yield from GridFtpClient.connect(("server", 2811))
        data = yield from client.retrieve("/data/f.bin", streams=4)
        return data

    assert client_rt.run(op()) == content
    assert server.transfers == 1


def test_missing_file_errors():
    client_rt, store, server = gridftp_world()

    def op():
        client = yield from GridFtpClient.connect(("server", 2811))
        try:
            yield from client.size("/nope")
        except RequestError as exc:
            return str(exc)

    assert "550" in client_rt.run(op())


def test_retr_without_pasv_rejected_server_side():
    client_rt, store, server = gridftp_world()
    from repro.concurrency import Recv, Send, Connect

    def op():
        channel = yield Connect(("server", 2811))
        data = yield Recv(channel)  # greeting
        yield Send(channel, b"RETR /data/f.bin\r\n")
        data = yield Recv(channel)
        return data

    assert b"425" in client_rt.run(op())


def test_parallel_streams_beat_window_limited_single_stream():
    """The GridFTP raison d'etre: on a long fat pipe with a capped TCP
    window, N streams deliver ~N x the throughput."""
    # Big enough that steady-state throughput dominates the slow-start
    # ramp and the control-channel round trips.
    content_size = 60_000_000
    options = TcpOptions(max_window=1 << 20, idle_reset=False)

    def run(streams):
        env = Environment()
        net = Network(env, seed=3)
        net.add_host("client")
        net.add_host("server")
        net.set_route(
            "client", "server",
            LinkSpec(latency=0.08, bandwidth=62_500_000),
        )
        store = ObjectStore()
        store.put("/big", SyntheticContent(content_size, seed=1))
        server_rt = SimRuntime(net, "server")
        serve_gridftp(
            server_rt, GridFtpServer(store, server_rt), port=2811
        )
        client_rt = SimRuntime(net, "client")

        def op():
            client = yield from GridFtpClient.connect(
                ("server", 2811), options
            )
            start = client_rt.now()
            data = yield from client.retrieve(
                "/big", streams=streams, tcp_options=options
            )
            elapsed = client_rt.now() - start
            assert len(data) == content_size
            return elapsed

        return client_rt.run(op())

    single = run(1)
    quad = run(4)
    # window 1 MB, RTT 160 ms -> ~6.25 MB/s per stream; 4 streams ~4x.
    assert quad < single / 2.5


def test_unknown_command_500():
    client_rt, store, server = gridftp_world()
    from repro.concurrency import Connect, Recv, Send

    def op():
        channel = yield Connect(("server", 2811))
        yield Recv(channel)
        yield Send(channel, b"FEAT\r\n")
        data = yield Recv(channel)
        return data

    assert b"500" in client_rt.run(op())
