"""Every shipped example must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=180):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "byte-exact" in out
    assert "gone: True" in out


def test_hep_analysis_small_scale():
    out = run_example(
        "hep_analysis.py", "--scale", "0.05", "--fraction", "0.5"
    )
    assert "Execution time of the ROOT analysis job" in out
    assert "CERN <-> CERN" in out
    assert "USA(BNL) <-> CERN" in out


def test_resilient_failover():
    out = run_example("resilient_failover.py")
    assert "3 site(s) down -> fail-over GET ok" in out
    assert "all sites down -> " in out
    assert "multi-stream" in out


def test_dynafed_federation():
    out = run_example("dynafed_federation.py")
    assert "redirects followed: 3" in out
    assert "checksum verified" in out
    assert "fail-over via federation metalink: ok" in out


def test_cloud_storage_s3():
    out = run_example("cloud_storage_s3.py")
    assert "signed GET / range / vectored reads ok" in out
    assert "anonymous GET rejected" in out
    assert "https" in out
