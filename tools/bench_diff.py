#!/usr/bin/env python3
"""Compare two benchmark artifacts and fail on p50 regressions.

Usage::

    python tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 0.15]

Both files are ``BENCH_<name>.json`` artifacts as written by
``benchmarks/_util.emit``: a ``configs`` mapping of config label ->
``{"samples": [...], "summary": {"mean", "n", "p50", "p95"}}``. For
every config present in both files the p50s are compared; a config
whose current p50 exceeds the baseline by more than ``--threshold``
(fractional, default 15 %) is a regression and the exit code is 1.
Configs missing on either side are reported but never fail the run
(benchmarks gain and lose configs across PRs), and zero/absent
baseline p50s are skipped (no meaningful ratio exists).

CI runs this after the perf-smoke benchmarks against the committed
baselines, so a PR that slows the hot paths fails loudly instead of
silently shifting the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional


def load_p50s(path: str) -> Dict[str, Optional[float]]:
    """config label -> summary p50 (None when absent) for one artifact."""
    with open(path) as handle:
        data = json.load(handle)
    configs = data.get("configs", {})
    out: Dict[str, Optional[float]] = {}
    for label, config in configs.items():
        summary = config.get("summary") or {}
        p50 = summary.get("p50")
        out[label] = float(p50) if p50 is not None else None
    return out


def diff(
    baseline: Dict[str, Optional[float]],
    current: Dict[str, Optional[float]],
    threshold: float,
    out=sys.stdout,
) -> int:
    """Print the comparison table; return the number of regressions."""
    regressions = 0
    for label in sorted(set(baseline) | set(current)):
        base = baseline.get(label)
        cur = current.get(label)
        if label not in baseline or label not in current:
            side = "current" if label not in baseline else "baseline"
            print(f"  {label}: only in {side} (skipped)", file=out)
            continue
        if base is None or cur is None or base <= 0:
            print(f"  {label}: no comparable p50 (skipped)", file=out)
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            regressions += 1
        print(
            f"  {label}: p50 {base:.6g} -> {cur:.6g} "
            f"({(ratio - 1.0) * 100:+.1f}%) {verdict}",
            file=out,
        )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_<name>.json artifacts by p50."
    )
    parser.add_argument("baseline", help="baseline artifact (committed)")
    parser.add_argument("current", help="current artifact (fresh run)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="allowed fractional p50 increase (default: 0.15)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    print(f"bench_diff {args.baseline} vs {args.current}:")
    regressions = diff(
        load_p50s(args.baseline),
        load_p50s(args.current),
        args.threshold,
    )
    if regressions:
        print(
            f"{regressions} config(s) regressed beyond "
            f"{args.threshold * 100:.0f}% p50 threshold"
        )
        return 1
    print("no p50 regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
