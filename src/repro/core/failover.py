"""Metalink-driven replica fail-over (paper Section 2.4, default mode).

When an operation against the primary URL fails, davix fetches the
resource's Metalink (from a federation endpoint or the primary's own
server), filters blacklisted/duplicate replicas, and retries the
operation against each remaining replica in priority order. A read
succeeds as long as *one* replica is reachable.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.context import Context, MetalinkMode, RequestParams
from repro.core.file import DavFile
from repro.errors import (
    AllReplicasFailed,
    ConnectError,
    ConnectionClosed,
    DavixError,
    DeadlineExceeded,
    FileNotFound,
    MetalinkError,
    RequestError,
    TransferTimeout,
)
from repro.http import Url
from repro.metalink import Metalink

__all__ = ["FAILOVER_ERRORS", "resolve_replicas", "with_failover"]

#: Failures that trigger replica fail-over: the resource (or its
#: server) is unavailable *here*, but may exist elsewhere.
FAILOVER_ERRORS = (
    ConnectError,
    ConnectionClosed,
    TransferTimeout,
    RequestError,
    FileNotFound,
)


def resolve_replicas(metalink: Metalink, base: Url) -> List[Url]:
    """Ordered replica URLs from a metalink (invalid entries skipped)."""
    replicas = []
    for entry_url in metalink.single().ordered_urls():
        try:
            replicas.append(base.resolve(entry_url.url))
        except Exception:  # noqa: BLE001 - skip unparsable replicas
            continue
    return replicas


def with_failover(
    context: Context,
    url,
    operation: Callable,
    params: Optional[RequestParams] = None,
    metalink_url=None,
):
    """Effect op: run ``operation(url)`` with Metalink fail-over.

    ``operation`` maps a :class:`Url` to an effect sub-op. The Metalink
    is fetched from ``metalink_url`` (a federation endpoint) when given,
    otherwise from the primary URL itself. With
    ``params.metalink_mode == "disabled"`` the primary failure is
    re-raised untouched.
    """
    params = params or context.params
    primary = url if isinstance(url, Url) else Url.parse(url)
    metrics = context.metrics

    try:
        result = yield from operation(primary)
        return result
    except DeadlineExceeded:
        # A blown time budget is final: trying more replicas can only
        # blow it further.
        raise
    except FAILOVER_ERRORS as exc:
        primary_error = exc

    if params.metalink_mode == MetalinkMode.DISABLED:
        raise primary_error
    context.blacklist(primary.origin)
    metrics.counter("failover.triggered_total").inc()
    span = context.tracer.start(
        "failover", url=str(primary), cause=type(primary_error).__name__
    )
    attempts: List[Tuple[str, BaseException]] = [
        (str(primary), primary_error)
    ]

    try:
        source = metalink_url or primary
        if not isinstance(source, Url):
            source = Url.parse(source)
        try:
            metalink = yield from DavFile(
                context, source, params
            ).get_metalink()
        except (DavixError, MetalinkError, *FAILOVER_ERRORS):
            # No metalink available: nothing to fail over to.
            raise primary_error from None

        for replica in resolve_replicas(metalink, primary):
            if replica.origin == primary.origin:
                continue  # already failed there
            if context.is_blacklisted(replica.origin):
                metrics.counter("failover.blacklist_skips_total").inc()
                continue
            if (
                params.breaker_enabled
                and context.breakers.is_blocked(replica.origin)
            ):
                # Known-dead endpoint: skip it without paying the
                # connect + retry/backoff cost an attempt would incur.
                metrics.counter("failover.breaker_skips_total").inc()
                attempts.append((str(replica), "circuit open"))
                continue
            metrics.counter(
                "failover.replica_attempts_total", host=replica.host
            ).inc()
            try:
                result = yield from operation(replica)
                context.bump("failovers")
                metrics.counter("failover.recovered_total").inc()
                span.set(recovered_via=replica.host)
                return result
            except DeadlineExceeded:
                raise
            except FAILOVER_ERRORS as exc:
                context.blacklist(replica.origin)
                attempts.append((str(replica), exc))

        metrics.counter("failover.exhausted_total").inc()
        raise AllReplicasFailed(primary.path, attempts)
    finally:
        span.end(attempts=len(attempts))
