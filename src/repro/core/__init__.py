"""davix core: the paper's contribution (pool, vectored I/O, failover).

Public surface:

* :class:`Context` / :class:`RequestParams` / :class:`TransferConfig`
  — configuration;
* :class:`DavixClient` — synchronous facade over any runtime;
* :class:`DavFile` / :class:`DavPosix` — effect-level file APIs;
* :class:`TransferEngine` — the pipelined read-ahead window behind
  ``DavFile.prefetch`` / ``TransferConfig(read_ahead=True)``;
* :func:`with_failover` / :func:`multistream_download` — Metalink
  strategies;
* :func:`run_parallel` — pool-based parallel dispatch;
* :func:`pipeline_requests` — the HTTP-pipelining baseline.
"""

from repro.core.client import DavixClient
from repro.core.context import Context, MetalinkMode, RequestParams
from repro.core.dispatch import JobResult, run_parallel
from repro.core.engine import TransferEngine
from repro.core.transfer import TransferConfig
from repro.core.failover import with_failover
from repro.core.file import DavFile, FileStat
from repro.core.objectclient import ObjectStoreClient
from repro.core.multistream import (
    MultistreamResult,
    StreamStats,
    multistream_download,
)
from repro.core.pipelining import pipeline_requests
from repro.core.pool import PoolStats, SessionPool
from repro.core.posix import DavFd, DavPosix
from repro.core.session import Session, StaleSession, open_session
from repro.core.tpc import (
    PerfMarker,
    TpcConfig,
    TpcSummary,
    parse_marker_stream,
    plan_chunks,
)
from repro.core.vectored import (
    CoalescedRange,
    Fragment,
    PartTable,
    VectorPlan,
    missing_ranges,
    plan_vector,
    scatter_parts,
)
from repro.resilience import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    RetrySchedule,
)

__all__ = [
    "DavixClient",
    "Context",
    "MetalinkMode",
    "RequestParams",
    "TransferConfig",
    "TransferEngine",
    "JobResult",
    "run_parallel",
    "with_failover",
    "DavFile",
    "ObjectStoreClient",
    "FileStat",
    "MultistreamResult",
    "StreamStats",
    "multistream_download",
    "pipeline_requests",
    "PoolStats",
    "SessionPool",
    "DavFd",
    "DavPosix",
    "Session",
    "StaleSession",
    "open_session",
    "PerfMarker",
    "TpcConfig",
    "TpcSummary",
    "parse_marker_stream",
    "plan_chunks",
    "CoalescedRange",
    "Fragment",
    "PartTable",
    "VectorPlan",
    "plan_vector",
    "scatter_parts",
    "missing_ranges",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "RetrySchedule",
]
