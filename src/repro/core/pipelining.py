"""Classic HTTP/1.1 pipelining client — the baseline davix rejects.

Sends all requests back-to-back on **one** connection and reads the
responses strictly in order, exactly as RFC 7230 §6.3.2 allows. Used by
the FIG1-HOL experiment to demonstrate the head-of-line blocking the
paper's Section 2.2 describes: one slow (large) response delays every
response queued behind it, however small.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.concurrency import Close, Connect, Now, Recv, Send
from repro.errors import ConnectionClosed
from repro.http import (
    CONNECTION_CLOSED,
    NEED_DATA,
    Data,
    EndOfMessage,
    HttpParser,
    Request,
    Response,
    serialize_request,
)

__all__ = ["pipeline_requests"]


def pipeline_requests(
    endpoint: Tuple[str, int],
    requests: Sequence[Request],
    tcp_options=None,
):
    """Effect op: pipeline ``requests`` on one connection.

    Returns ``(responses, completion_times)`` where
    ``completion_times[i]`` is the time the *i*-th response finished
    arriving — the per-request latency distribution is the HOL
    evidence.
    """
    channel = yield Connect(endpoint, tcp_options)
    parser = HttpParser("client")

    wire = bytearray()
    for request in requests:
        request.headers.setdefault("Host", endpoint[0])
        parser.expect_response_to(request.method)
        wire += serialize_request(request)
    # The pipeline: every request leaves before any response returns.
    yield Send(channel, bytes(wire))

    responses: List[Response] = []
    completions: List[float] = []
    head: Optional[Response] = None
    body = bytearray()
    while len(responses) < len(requests):
        event = parser.next_event()
        if event == NEED_DATA:
            data = yield Recv(channel)
            parser.receive_data(data)
            continue
        if event == CONNECTION_CLOSED:
            raise ConnectionClosed(
                f"server closed after {len(responses)} of "
                f"{len(requests)} pipelined responses"
            )
        if isinstance(event, Response):
            head = event
            body = bytearray()
        elif isinstance(event, Data):
            body.extend(event.data)
        elif isinstance(event, EndOfMessage):
            head.body = bytes(body)
            responses.append(head)
            completions.append((yield Now()))
    yield Close(channel)
    return responses, completions
