"""Client-side block/page cache for remote-file reads.

The paper's case for HTTP (Section 2.2) is that it inherits the web's
caching infrastructure — but an analysis job re-reading the same
baskets still paid a round trip per read. This module is the missing
client tier: a byte-budget LRU of fixed-size **pages** per remote
object, consulted by :class:`~repro.core.file.DavFile` before any
request leaves the process. Reads that only touch cached pages are
served locally; partially cached reads fetch *only the missing
page-aligned spans* (coalesced into one multi-range request by the
caller); every insertion is validated against the object's ETag, so a
store update invalidates the stale pages instead of mixing versions.

One :class:`PageCache` is shared by every file of a
:class:`~repro.core.context.Context` (arm it with
``TransferConfig(page_cache_bytes=...)``); the range-aware caching
proxy (:mod:`repro.server.proxy`) reuses the same store server-side.

Pages are fixed-size (``page_size``); the only shorter page ever
stored is the object's tail, and only once the total size is known
(from a ``Content-Range`` total or a full-body response), so a cached
page always means "these bytes are the whole truth for this span".

The cache honours origin freshness: ``insert(..., ttl=...)`` carries
the response's ``Cache-Control`` verdict (``no-store``/``max-age=0``
-> never stored; ``max-age=N`` -> the object's pages expire N seconds
later on the cache's ``clock``). A response without a freshness
directive neither arms nor extends an expiry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = ["PageCache", "DEFAULT_PAGE_SIZE"]

#: Default page size: two 32 KiB ROOT baskets per page.
DEFAULT_PAGE_SIZE = 64 * 1024

#: One ``(offset, length)`` byte span.
Span = Tuple[int, int]


class _Entry:
    """Cached state of one remote object (one ETag version)."""

    __slots__ = ("etag", "size", "pages", "expires_at")

    def __init__(self, etag: Optional[str] = None):
        self.etag = etag
        #: Total object size, once learned (Content-Range total or a
        #: full-body response). Gates tail-page storage and EOF clamping.
        self.size: Optional[int] = None
        #: page index -> page bytes (full ``page_size`` except the tail).
        self.pages: Dict[int, bytes] = {}
        #: Clock reading after which the pages are stale (origin
        #: ``max-age``); ``None`` = no freshness bound.
        self.expires_at: Optional[float] = None


class PageCache:
    """Byte-budget LRU of fixed-size pages, keyed by (url, page index).

    All methods are thread-safe (one coarse lock): on the thread
    runtime parallel vectored batches insert concurrently.

    ``lookup`` is the accounting entry point — it classifies each
    logical read as a hit, partial hit, or miss and feeds the
    ``cache.*`` metrics; ``read`` is the same probe without accounting
    (used when re-assembling after a gap fill).
    """

    def __init__(
        self,
        budget_bytes: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        metrics=None,
        clock=None,
    ):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.budget_bytes = budget_bytes
        self.page_size = page_size
        self.metrics = metrics
        #: Freshness clock (seconds); TTLs are measured against it. The
        #: default never advances, so without a clock nothing expires.
        self.clock = clock or (lambda: 0.0)
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        #: Objects whose origin said no-store/max-age=0. Remembered so
        #: the read path can skip the probe/gap-fill dance entirely;
        #: cleared the moment a response allows caching again.
        self._no_store: set = set()
        #: (key, page index) -> page byte count, in LRU order.
        self._lru: "OrderedDict[Tuple[str, int], int]" = OrderedDict()
        self._used = 0
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "partial_hits": 0,
            "insertions": 0,
            "evictions": 0,
            "evicted_bytes": 0,
            "invalidations": 0,
            "origin_bytes_saved": 0,
            "ttl_expirations": 0,
        }

    # -- metric plumbing ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(f"cache.{name}").inc(amount)

    def _mirror_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("cache.used_bytes").set(self._used)
            self.metrics.gauge("cache.pages").set(len(self._lru))

    # -- introspection --------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently held (always <= ``budget_bytes``)."""
        return self._used

    @property
    def object_count(self) -> int:
        """Distinct objects with at least one cached page."""
        with self._lock:
            return sum(1 for e in self._entries.values() if e.pages)

    def suppressed(self, key: str) -> bool:
        """Did the origin forbid caching ``key`` (no-store/max-age=0)?"""
        with self._lock:
            return key in self._no_store

    def etag(self, key: str) -> Optional[str]:
        """The ETag the cached pages of ``key`` belong to."""
        with self._lock:
            self._expire_locked(key)
            entry = self._entries.get(key)
            return entry.etag if entry is not None else None

    def known_size(self, key: str) -> Optional[int]:
        """The object's total size, if a response has revealed it."""
        with self._lock:
            self._expire_locked(key)
            entry = self._entries.get(key)
            return entry.size if entry is not None else None

    # -- version control ------------------------------------------------------

    def observe(self, key: str, etag: Optional[str]) -> bool:
        """Validate ``etag`` against the cached version of ``key``.

        A changed ETag drops every cached page of the object (stale
        pages must never be served) and rebases the entry on the new
        version. Returns ``False`` exactly when that invalidation
        happened. ``etag=None`` (server sent none) never invalidates.
        """
        with self._lock:
            return self._observe_locked(key, etag)

    def _observe_locked(self, key: str, etag: Optional[str]) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _Entry(etag)
            return True
        if etag is None or entry.etag is None:
            if entry.etag is None:
                entry.etag = etag
            return True
        if entry.etag == etag:
            return True
        self._drop_locked(key, entry)
        self._entries[key] = _Entry(etag)
        self.stats["invalidations"] += 1
        self._count("invalidations")
        self._mirror_gauges()
        return False

    def invalidate(self, key: str) -> None:
        """Drop every cached page (and the size/etag) of ``key``."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._drop_locked(key, entry)
                self.stats["invalidations"] += 1
                self._count("invalidations")
                self._mirror_gauges()

    def _drop_locked(self, key: str, entry: _Entry) -> None:
        for index, page in entry.pages.items():
            self._lru.pop((key, index), None)
            self._used -= len(page)
        entry.pages.clear()

    def _expire_locked(self, key: str) -> None:
        """Drop ``key`` entirely once its origin TTL has passed."""
        entry = self._entries.get(key)
        if entry is None or entry.expires_at is None:
            return
        if self.clock() < entry.expires_at:
            return
        self._drop_locked(key, entry)
        del self._entries[key]
        self.stats["ttl_expirations"] += 1
        self._count("ttl_expirations")
        self._mirror_gauges()

    # -- read side ------------------------------------------------------------

    def _clamp(self, entry: _Entry, offset: int, length: int) -> Span:
        """The byte span actually backed by the object: ``(offset,
        end)`` with ``end <= size`` when the size is known."""
        end = offset + length
        if entry.size is not None:
            end = min(end, entry.size)
        return offset, end

    def _page_len(self, entry: _Entry, index: int) -> int:
        """The full length a cached page at ``index`` must have."""
        if entry.size is not None:
            return min(self.page_size, entry.size - index * self.page_size)
        return self.page_size

    def read(self, key: str, offset: int, length: int) -> Optional[bytes]:
        """The bytes of ``[offset, offset+length)`` if fully cached.

        Returns ``None`` on any gap. When the object's size is known
        the read clamps at EOF (POSIX short read), so a fully cached
        tail answers over-long reads too. No hit/miss accounting.
        """
        with self._lock:
            self._expire_locked(key)
            return self._read_locked(key, offset, length)

    def _read_locked(
        self, key: str, offset: int, length: int
    ) -> Optional[bytes]:
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        entry = self._entries.get(key)
        if entry is None:
            return None
        if length == 0:
            return b""
        if entry.size is not None and offset >= entry.size:
            return b""
        start, end = self._clamp(entry, offset, length)
        if start >= end:
            return b""
        first = start // self.page_size
        last = (end - 1) // self.page_size
        pieces: List[bytes] = []
        for index in range(first, last + 1):
            page = entry.pages.get(index)
            if page is None or len(page) < self._page_len(entry, index):
                return None
            self._lru.move_to_end((key, index))
            pieces.append(page)
        blob = b"".join(pieces)
        base = first * self.page_size
        return blob[start - base : end - base]

    def missing_spans(
        self, key: str, offset: int, length: int
    ) -> List[Span]:
        """Page-aligned spans of ``[offset, offset+length)`` not cached.

        Adjacent missing pages merge into one span (the caller packs
        the spans into a single coalesced multi-range request). Spans
        clamp to the object size when known; an empty list means the
        read is fully cached (or past EOF).
        """
        with self._lock:
            if offset < 0 or length < 0:
                raise ValueError("negative offset/length")
            if length == 0:
                return []
            self._expire_locked(key)
            entry = self._entries.get(key)
            size = entry.size if entry is not None else None
            end = offset + length
            if size is not None:
                if offset >= size:
                    return []
                end = min(end, size)
            first = offset // self.page_size
            last = (end - 1) // self.page_size
            spans: List[Span] = []
            for index in range(first, last + 1):
                if entry is not None:
                    page = entry.pages.get(index)
                    if page is not None and len(page) >= self._page_len(
                        entry, index
                    ):
                        continue
                page_start = index * self.page_size
                page_len = self.page_size
                if size is not None:
                    page_len = min(page_len, size - page_start)
                if spans and spans[-1][0] + spans[-1][1] == page_start:
                    spans[-1] = (spans[-1][0], spans[-1][1] + page_len)
                else:
                    spans.append((page_start, page_len))
            return spans

    def lookup(
        self, key: str, offset: int, length: int
    ) -> Tuple[Optional[bytes], List[Span]]:
        """Accounting probe: ``(data, missing_spans)`` for one read.

        Classifies the read — full hit (data, no spans), partial hit
        (no data, spans smaller than the read's aligned span), miss —
        and feeds ``cache.{hit,miss,partial_hit,origin_bytes_saved}``.
        """
        data = self.read(key, offset, length)
        if data is not None:
            self.stats["hits"] += 1
            self.stats["origin_bytes_saved"] += length
            self._count("hit")
            self._count("origin_bytes_saved", length)
            return data, []
        missing = self.missing_spans(key, offset, length)
        requested = self._overlap(missing, offset, length)
        if requested < length:
            self.stats["partial_hits"] += 1
            saved = length - requested
            self.stats["origin_bytes_saved"] += saved
            self._count("partial_hit")
            self._count("origin_bytes_saved", saved)
        else:
            self.stats["misses"] += 1
            self._count("miss")
        return None, missing

    @staticmethod
    def _overlap(spans: List[Span], offset: int, length: int) -> int:
        """Bytes of ``[offset, offset+length)`` covered by ``spans``."""
        end = offset + length
        covered = 0
        for span_offset, span_length in spans:
            lo = max(offset, span_offset)
            hi = min(end, span_offset + span_length)
            if hi > lo:
                covered += hi - lo
        return covered

    # -- write side -----------------------------------------------------------

    def insert(
        self,
        key: str,
        etag: Optional[str],
        offset: int,
        data,
        total: Optional[int] = None,
        ttl: Optional[float] = None,
    ) -> None:
        """Cache the pages fully covered by ``data`` at ``offset``.

        ``data`` may be ``bytes`` or a ``memoryview`` (only the stored
        page slices are materialised). ``total`` is the object's full
        size when the response revealed it (Content-Range total / full
        body) — required before the tail page can be stored. A
        mismatching ``etag`` first invalidates the stale pages
        (:meth:`observe`), then stores under the new version.

        ``ttl`` is the origin's freshness verdict for this response:
        ``None`` = no directive (cache, no expiry change); ``<= 0`` =
        never store (``no-store``/``max-age=0``); ``> 0`` = store and
        expire that many clock-seconds from now.
        """
        with self._lock:
            if self.budget_bytes <= 0:
                return
            if ttl is not None and ttl <= 0:
                # The origin forbids caching this object: drop what we
                # hold and remember the verdict for the read path.
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._drop_locked(key, entry)
                    self._mirror_gauges()
                self._no_store.add(key)
                return
            self._no_store.discard(key)
            self._expire_locked(key)
            self._observe_locked(key, etag)
            entry = self._entries[key]
            if total is not None:
                if entry.size is not None and entry.size != int(total):
                    # Same-etag size change: treat as a new version.
                    self._drop_locked(key, entry)
                entry.size = int(total)
            n = len(data)
            if n == 0:
                return
            end = offset + n
            first = -(-offset // self.page_size)  # first aligned page
            page_size = self.page_size
            for index in range(first, (end // page_size) + 1):
                page_start = index * page_size
                want = self._page_len(entry, index)
                if want <= 0 or page_start + want > end:
                    break
                if index in entry.pages:
                    self._lru.move_to_end((key, index))
                    continue
                if want > self.budget_bytes:
                    continue
                piece = bytes(data[page_start - offset : page_start - offset + want])
                entry.pages[index] = piece
                self._lru[(key, index)] = want
                self._used += want
                self.stats["insertions"] += 1
            if ttl is not None:
                entry.expires_at = self.clock() + ttl
            self._evict_locked()
            self._mirror_gauges()

    def _evict_locked(self) -> None:
        while self._used > self.budget_bytes and self._lru:
            (key, index), nbytes = self._lru.popitem(last=False)
            entry = self._entries.get(key)
            if entry is not None:
                entry.pages.pop(index, None)
            self._used -= nbytes
            self.stats["evictions"] += 1
            self.stats["evicted_bytes"] += nbytes
            self._count("evicted_bytes", nbytes)

    def __repr__(self) -> str:
        return (
            f"<PageCache {self._used}/{self.budget_bytes}B "
            f"pages={len(self._lru)} objects={len(self._entries)}>"
        )
