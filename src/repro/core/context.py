"""davix context and request parameters.

Mirrors the public surface of the original libdavix: a
:class:`Context` owns shared state (the session pool, counters) and a
:class:`RequestParams` bundles per-operation behaviour — redirect
policy, retries, keep-alive, vectored-I/O limits and the Metalink
strategy from Section 2.4 of the paper.

The Context is also the observability composition root:
``Context(params=…, metrics=…, tracer=…)`` wires one
:class:`~repro.obs.MetricsRegistry` and one
:class:`~repro.obs.Tracer` through the whole request path (pool,
sessions, vectored I/O, failover) — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.pagecache import PageCache
from repro.core.pool import SessionPool
from repro.core.transfer import TransferConfig
from repro.net.tcp import TcpOptions
from repro.obs import EventLog, MetricsRegistry, SloTracker, Tracer
from repro.resilience import BreakerBoard, BreakerConfig, RetryPolicy

__all__ = ["MetalinkMode", "RequestParams", "TransferConfig", "Context"]


class MetalinkMode:
    """Replica-recovery strategies (paper Section 2.4)."""

    DISABLED = "disabled"
    #: Try replicas one by one after a failure (davix default).
    FAILOVER = "failover"
    #: Parallel multi-source download of chunks from every replica.
    MULTISTREAM = "multistream"

    ALL = (DISABLED, FAILOVER, MULTISTREAM)


@dataclass(frozen=True)
class RequestParams:
    """Per-operation behaviour knobs (davix ``RequestParams``)."""

    # -- connection / timing ------------------------------------------------
    connect_timeout: float = 5.0
    operation_timeout: Optional[float] = 120.0
    keep_alive: bool = True
    #: TCP options forwarded to the simulated transport (ignored on
    #: real sockets).
    tcp_options: Optional[TcpOptions] = None

    # -- redirects / retries --------------------------------------------------
    follow_redirects: bool = True
    max_redirects: int = 10
    #: Extra attempts on transient failures (5xx, stale connections).
    retries: int = 1
    retry_delay: float = 0.0

    # -- resilience (retry/backoff, deadline, breaker) ------------------------
    #: Full backoff policy; when set it supersedes the legacy
    #: ``retries``/``retry_delay`` pair.
    retry_policy: Optional[RetryPolicy] = None
    #: Total wall-time budget for one logical operation (seconds),
    #: covering every retry, redirect and byte read. None = unbounded.
    deadline: Optional[float] = None
    #: Consult the context's per-endpoint circuit breakers.
    breaker_enabled: bool = True
    #: Retry a request whose method is non-idempotent even when it may
    #: already have reached the server (default: never).
    retry_non_idempotent: bool = False

    # -- observability --------------------------------------------------------
    #: Send a W3C-style ``Traceparent`` header on every request so
    #: server-side spans and access-log records join the client trace.
    trace_propagation: bool = True

    # -- vectored I/O (Section 2.3) -------------------------------------------
    #: Maximum range-specs packed into one multi-range request.
    max_vector_ranges: int = 256
    #: Merge fragments whose gap is below this many bytes.
    vector_gap: int = 512

    # -- transfer engine ------------------------------------------------------
    #: The unified I/O-engine bundle (parallelism + read-ahead).
    #: ``None`` means the defaults (serial, no read-ahead).
    transfer: Optional[TransferConfig] = None

    # -- Metalink (Section 2.4) --------------------------------------------------
    metalink_mode: str = MetalinkMode.FAILOVER
    #: Seconds a failed replica stays blacklisted.
    blacklist_ttl: float = 30.0
    #: Verify the Metalink adler32 checksum after multi-stream GETs.
    verify_checksum: bool = True
    #: Chunk size for multi-stream downloads.
    multistream_chunk: int = 4 * 1024 * 1024
    #: Maximum parallel streams (one per distinct replica).
    multistream_max_streams: int = 4

    # -- headers / auth ---------------------------------------------------------------
    user_agent: str = "repro-davix/1.0"
    extra_headers: Tuple[Tuple[str, str], ...] = ()
    #: Bearer token attached as ``Authorization: Bearer <token>``
    #: (stands in for the grid's X.509 delegation).
    auth_token: Optional[str] = None
    #: S3 access/secret pair; when set every request is signed
    #: (see :mod:`repro.server.s3`).
    s3_credentials: Optional[object] = None
    #: TLS cost model for https/davs URLs (None -> model defaults).
    tls: Optional[object] = None
    #: Forward-proxy URL; all plain-http traffic goes through it
    #: (absolute-URI requests, one pooled connection to the proxy).
    proxy: Optional[str] = None

    def __post_init__(self):
        if self.metalink_mode not in MetalinkMode.ALL:
            raise ValueError(
                f"bad metalink_mode {self.metalink_mode!r}"
            )
        if self.max_redirects < 0 or self.retries < 0:
            raise ValueError("max_redirects/retries must be >= 0")
        if self.max_vector_ranges < 1:
            raise ValueError("max_vector_ranges must be >= 1")
        if self.vector_gap < 0:
            raise ValueError("vector_gap must be >= 0")
        if self.multistream_chunk < 1 or self.multistream_max_streams < 1:
            raise ValueError("multistream settings must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0 seconds")

    def effective_retry_policy(self) -> RetryPolicy:
        """The operative :class:`~repro.resilience.RetryPolicy`.

        ``retry_policy`` when set; otherwise the legacy
        ``retries``/``retry_delay`` pair expressed as a fixed-delay,
        jitter-free policy — so old configurations behave bit-for-bit
        as before.
        """
        if self.retry_policy is not None:
            return self.retry_policy
        return RetryPolicy(
            max_attempts=self.retries + 1,
            base_delay=self.retry_delay,
            max_delay=max(self.retry_delay, 1.0),
            multiplier=1.0,
            jitter="none",
        )

    def effective_transfer(self) -> TransferConfig:
        """The operative :class:`~repro.core.transfer.TransferConfig`:
        ``transfer`` when set, otherwise the defaults (serial, no
        read-ahead)."""
        if self.transfer is not None:
            return self.transfer
        return TransferConfig()

    def replace(self, **changes) -> "RequestParams":
        """A copy with the given fields replaced (the uniform override
        primitive every client method routes through)."""
        return replace(self, **changes)

    def with_(self, **changes) -> "RequestParams":
        """Alias of :meth:`replace` (the historical spelling)."""
        return self.replace(**changes)


class Context:
    """Shared davix state: pool, blacklist, breakers, metrics, tracer.

    One Context per client host; cheap to create, intended to be
    long-lived so the pool's recycled sessions accumulate (the paper's
    "session recycling" benefit). It is the single composition root:
    the session pool mirrors into ``metrics``, and every request
    carries spans produced by ``tracer``.
    """

    def __init__(
        self,
        params: Optional[RequestParams] = None,
        pool_max_per_origin: int = 16,
        clock=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        breaker: Optional[BreakerConfig] = None,
        pool_shards: int = 8,
        pool_idle_ttl: Optional[float] = None,
        events: Optional[EventLog] = None,
        slo: Optional[SloTracker] = None,
        transfer: Optional[TransferConfig] = None,
        telemetry: Optional["TelemetrySink"] = None,
    ):
        self.params = params or RequestParams()
        if transfer is not None:
            # Convenience spelling: Context(transfer=...) folds the
            # engine config into the context-wide default params.
            self.params = self.params.with_(transfer=transfer)
        #: Injected time source (simulated or monotonic); settable so
        #: blacklist TTLs follow the right clock.
        self.clock = clock or (lambda: 0.0)
        #: The metric registry every layer on this context records into.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Cluster-telemetry sink: when set, every finished span and
        #: every wide event stream into it (cheap reference enqueues),
        #: and :meth:`close` flushes the backlog deterministically.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.clock = self._now
        #: The span producer; follows ``self.clock`` even when that is
        #: reassigned later (DavixClient points it at the runtime).
        self.tracer = tracer if tracer is not None else Tracer(
            clock=self._now,
            node=telemetry.node if telemetry is not None else None,
        )
        #: The wide-event log: one structured record per finished
        #: request (and whatever workloads append), exported as JSONL.
        self.events = events if events is not None else EventLog()
        if telemetry is not None:
            self.tracer.sink = telemetry.record_span
            self.events.sink = telemetry.record_event
        #: Per-origin SLO / error-budget bookkeeping, fed by every
        #: terminal response on this context.
        self.slo = slo if slo is not None else SloTracker()
        self.pool = SessionPool(
            max_idle_per_origin=pool_max_per_origin,
            clock=self._now,
            metrics=self.metrics,
            shards=pool_shards,
            idle_ttl=pool_idle_ttl,
        )
        #: Per-endpoint circuit breakers; opening one drops the
        #: endpoint's idle pooled sessions along with it.
        self.breakers = BreakerBoard(
            config=breaker,
            clock=self._now,
            metrics=self.metrics,
            on_open=self.pool.purge_origin,
        )
        #: The shared client page cache, created lazily by the first
        #: file whose :class:`TransferConfig` arms it
        #: (``page_cache_bytes > 0``); one per context so every
        #: :class:`~repro.core.file.DavFile` of the same URL shares
        #: pages.
        self.page_cache: Optional[PageCache] = None
        #: policy seed -> shared RNG stream for backoff jitter, so
        #: repeated runs on a deterministic clock replay identical
        #: delay sequences across all requests.
        self._retry_rngs: Dict[int, random.Random] = {}
        #: origin -> expiry time of the blacklist entry.
        self._blacklist: Dict[Tuple, float] = {}
        self._closed = False
        self.counters: Dict[str, int] = {
            "requests": 0,
            "redirects_followed": 0,
            "retries": 0,
            "failovers": 0,
            "vector_requests": 0,
            "vector_fragments": 0,
        }

    def _now(self) -> float:
        return self.clock()

    def page_cache_for(
        self, transfer: TransferConfig
    ) -> Optional[PageCache]:
        """The shared :class:`PageCache` when ``transfer`` arms one.

        Created on first demand (the first arming config fixes budget
        and page size — it is one shared tier, not a per-file cache);
        returns ``None`` while ``page_cache_bytes`` is 0.
        """
        if transfer.page_cache_bytes <= 0:
            return None
        if self.page_cache is None:
            self.page_cache = PageCache(
                budget_bytes=transfer.page_cache_bytes,
                page_size=transfer.page_size,
                metrics=self.metrics,
                clock=self._now,
            )
        return self.page_cache

    def retry_rng(self, policy: RetryPolicy) -> random.Random:
        """The shared jitter RNG for ``policy`` (one stream per seed)."""
        rng = self._retry_rngs.get(policy.seed)
        if rng is None:
            rng = random.Random(policy.seed)
            self._retry_rngs[policy.seed] = rng
        return rng

    # -- blacklist (failed replicas) ----------------------------------------

    def blacklist(self, origin: Tuple, ttl: Optional[float] = None) -> None:
        """Mark an origin as recently failed."""
        ttl = self.params.blacklist_ttl if ttl is None else ttl
        self._blacklist[origin] = self._now() + ttl

    def is_blacklisted(self, origin: Tuple) -> bool:
        expiry = self._blacklist.get(origin)
        if expiry is None:
            return False
        if self._now() >= expiry:
            del self._blacklist[origin]
            return False
        return True

    # -- telemetry flush ------------------------------------------------------

    def flush_telemetry(self, target=None, final: bool = True):
        """Drain the telemetry sink (if one is wired) to its collector.

        ``final=True`` (the close-time default) first snapshots the
        metric registry into the batch, so the collector's last
        snapshot for this node carries the context's complete
        counters. Flushing is deterministic — records encode in emit
        order with canonical JSON — which is what keeps seeded chaos
        runs byte-identical. Returns the encoded records (empty when
        no sink is wired).
        """
        if self.telemetry is None:
            return []
        if final:
            self.telemetry.record_metrics(self.metrics)
        return self.telemetry.flush(target=target)

    def close(self) -> None:
        """Release held resources and flush telemetry (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.flush_telemetry()

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a legacy counter and its registry mirror.

        The dict form (``context.counters``) predates the registry and
        is kept for existing call sites; the same event lands in
        ``metrics`` as the counter ``client.<name>_total``.
        """
        self.counters[counter] = self.counters.get(counter, 0) + amount
        self.metrics.counter(f"client.{counter}_total").inc(amount)
