"""ObjectStoreClient: davix over a flat-object (S3-like) endpoint.

The paper's portability argument, made concrete: the whole davix read
stack — ranged GETs, vectored multi-range reads, the transfer engine,
the page cache, retries — needs nothing WebDAV from the server, so it
runs unmodified against a bare object store
(:class:`~repro.server.flatobject.FlatObjectApp`). This adapter only
changes the *addressing model*: keys instead of collection paths, a
JSON listing endpoint instead of PROPFIND, and no rename/copy/mkdir
surface at all.

Every method here is an effect sub-op (run it on a runtime), mirroring
:class:`~repro.core.file.DavFile`; :meth:`ObjectStoreClient.fetcher`
bridges straight into the columnar readers, which is how a v2 ntuple
is scanned off an object store.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence, Tuple
from urllib.parse import quote

from repro.core.context import Context, RequestParams
from repro.core.file import DavFile
from repro.errors import HttpParseError
from repro.http import Url

__all__ = ["ObjectStoreClient"]


class ObjectStoreClient:
    """Key-addressed client over one flat-object endpoint.

    ``base_url`` names the endpoint (and optional key prefix); every
    method takes a key relative to it. Keys may contain slashes — they
    are opaque to the store.
    """

    def __init__(
        self,
        context: Context,
        base_url,
        params: Optional[RequestParams] = None,
    ):
        self.context = context
        self.base_url = (
            base_url if isinstance(base_url, Url) else Url.parse(base_url)
        )
        self.params = params or context.params

    # -- addressing ---------------------------------------------------------

    def url_for(self, key: str) -> Url:
        """The absolute URL of ``key`` under this endpoint."""
        prefix = self.base_url.path.rstrip("/")
        return self.base_url.with_path(f"{prefix}/{key.lstrip('/')}")

    def file(
        self,
        key: str,
        params: Optional[RequestParams] = None,
        read_ahead: Optional[bool] = None,
    ) -> DavFile:
        """A :class:`DavFile` bound to ``key`` (full read surface)."""
        return DavFile(
            self.context,
            self.url_for(key),
            params or self.params,
            read_ahead=read_ahead,
        )

    def fetcher(
        self, key: str, params: Optional[RequestParams] = None
    ):
        """A rootio fetcher for ``key`` — plug into
        :class:`~repro.rootio.ntuple.NTupleReader` or
        :class:`~repro.rootio.treefile.TreeFileReader` directly."""
        # Imported lazily: repro.rootio imports repro.core, so the
        # module-level direction must stay core <- rootio.
        from repro.rootio.fetchers import DavixFetcher

        return DavixFetcher(
            self.context, self.url_for(key), params or self.params
        )

    # -- object operations (effect sub-ops) ---------------------------------

    def get_object(self, key: str):
        """Effect sub-op: download the full object."""
        data = yield from self.file(key).read_all()
        return data

    def put_object(
        self,
        key: str,
        data: bytes,
        content_type: str = "binary/octet-stream",
    ):
        """Effect sub-op: upload (create or replace) -> HTTP status."""
        status = yield from self.file(key).write_all(data, content_type)
        return status

    def delete_object(self, key: str):
        """Effect sub-op: delete the object."""
        yield from self.file(key).delete()

    def head(self, key: str):
        """Effect sub-op: size/etag metadata via HEAD -> FileStat."""
        stat = yield from self.file(key).stat()
        return stat

    def read_range(self, key: str, offset: int, length: int):
        """Effect sub-op: one ranged read of the object."""
        data = yield from self.file(key).pread(offset, length)
        return data

    def read_vec(self, key: str, reads: Sequence[Tuple[int, int]]):
        """Effect sub-op: vectored read (multi-range underneath)."""
        file = self.file(key)
        results = yield from file.pread_vec(reads)
        yield from file.drain()
        return results

    def list_keys(self, prefix: str = ""):
        """Effect sub-op: enumerate keys via the JSON listing endpoint."""
        query = "list=1"
        if prefix:
            query += f"&prefix={quote(prefix, safe='/')}"
        url = self.base_url.with_path("/")
        url = Url(
            scheme=url.scheme,
            host=url.host,
            port=url.port,
            path=url.path,
            query=query,
        )
        body = yield from DavFile(self.context, url, self.params).read_all()
        try:
            keys = json.loads(body.decode("utf-8"))["keys"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise HttpParseError(f"malformed listing response: {exc}")
        return list(keys)

    def exists(self, key: str):
        """Effect sub-op: does the key exist?"""
        found = yield from self.file(key).exists()
        return found
