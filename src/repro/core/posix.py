"""DavPosix: the POSIX-like veneer davix exposes to applications.

Maps ``open/read/pread/lseek/close`` and ``opendir/readdir`` onto the
HTTP operations of :class:`~repro.core.file.DavFile` — the same shape
the real libdavix offers so frameworks like ROOT can treat a URL as a
file descriptor.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.core.context import Context, RequestParams
from repro.core.file import DavFile, FileStat
from repro.core.request import execute_request
from repro.errors import DavixError
from repro.http import Headers, Request, Url
from repro.server.webdav import parse_multistatus

__all__ = ["DavFd", "DavPosix"]


class DavFd:
    """An open remote file: a DavFile plus a position cursor."""

    def __init__(self, file: DavFile, size: int):
        self.file = file
        self.size = size
        self.position = 0
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise DavixError("posix", "operation on closed descriptor")


class DavPosix:
    """POSIX-flavoured operations bound to a davix context."""

    def __init__(
        self, context: Context, params: Optional[RequestParams] = None
    ):
        self.context = context
        self.params = params or context.params

    # -- descriptors -------------------------------------------------------

    def open(self, url):
        """Effect sub-op: open a remote file (stat validates existence)."""
        handle = DavFile(self.context, url, self.params)
        stat = yield from handle.stat()
        if stat.is_directory:
            raise DavixError(
                "posix", f"{handle.url.path} is a directory"
            )
        return DavFd(handle, stat.size)

    def read(self, fd: DavFd, count: int):
        """Effect sub-op: sequential read advancing the cursor."""
        fd._check_open()
        if fd.position >= fd.size:
            return b""
        data = yield from fd.file.pread(fd.position, count)
        fd.position += len(data)
        return data

    def pread(self, fd: DavFd, offset: int, count: int):
        """Effect sub-op: positional read (cursor untouched)."""
        fd._check_open()
        data = yield from fd.file.pread(offset, count)
        return data

    def pread_vec(self, fd: DavFd, reads: Sequence[Tuple[int, int]]):
        """Effect sub-op: vectored positional read (davix_preadvec)."""
        fd._check_open()
        chunks = yield from fd.file.pread_vec(reads)
        return chunks

    def lseek(self, fd: DavFd, offset: int, whence: int = os.SEEK_SET) -> int:
        """Move the cursor; returns the new position."""
        fd._check_open()
        if whence == os.SEEK_SET:
            target = offset
        elif whence == os.SEEK_CUR:
            target = fd.position + offset
        elif whence == os.SEEK_END:
            target = fd.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if target < 0:
            raise DavixError("posix", f"seek before start: {target}")
        fd.position = target
        return target

    def close(self, fd: DavFd) -> None:
        """Release the descriptor (sessions stay pooled for reuse)."""
        fd.closed = True

    # -- metadata ------------------------------------------------------------

    def stat(self, url):
        """Effect sub-op: metadata of a remote path."""
        stat = yield from DavFile(self.context, url, self.params).stat()
        return stat

    def unlink(self, url):
        """Effect sub-op: delete a remote file."""
        yield from DavFile(self.context, url, self.params).delete()

    def mkdir(self, url):
        """Effect sub-op: create a remote collection (MKCOL)."""
        parsed = url if isinstance(url, Url) else Url.parse(url)
        response, _ = yield from execute_request(
            self.context,
            parsed,
            Request("MKCOL", parsed.target),
            self.params,
        )
        from repro.core.file import raise_for_status

        raise_for_status(response, parsed.path)

    def rename(self, source_url, destination_url, overwrite: bool = True):
        """Effect sub-op: WebDAV MOVE (atomic server-side rename)."""
        yield from self._copy_or_move(
            "MOVE", source_url, destination_url, overwrite
        )

    def copy(self, source_url, destination_url, overwrite: bool = True):
        """Effect sub-op: WebDAV COPY (server-side duplication —
        no bytes cross the client's link)."""
        yield from self._copy_or_move(
            "COPY", source_url, destination_url, overwrite
        )

    def third_party_copy(
        self,
        source_url,
        destination_url,
        mode: str = "pull",
        streams: Optional[int] = None,
        overwrite: bool = True,
    ):
        """Effect sub-op: WebDAV third-party COPY.

        In ``pull`` mode the COPY goes to the *destination* server with
        a ``Source`` header; in ``push`` mode it goes to the *source*
        server with an absolute ``Destination``. Either way the storage
        nodes move the object directly over their own link — the only
        bytes crossing this client are the COPY request and the
        ``Perf Marker`` progress stream on the 202 response.
        """
        from repro.core.tpc import parse_marker_stream

        if mode not in ("pull", "push"):
            raise DavixError("tpc", f"unknown TPC mode {mode!r}")
        source = (
            source_url
            if isinstance(source_url, Url)
            else Url.parse(source_url)
        )
        destination = (
            destination_url
            if isinstance(destination_url, Url)
            else Url.parse(destination_url)
        )
        if mode == "pull":
            active, target = destination, destination.target
            headers = Headers([("Source", str(source))])
        else:
            active, target = source, source.target
            headers = Headers([("Destination", str(destination))])
        headers.set("Overwrite", "T" if overwrite else "F")
        if streams is not None:
            if streams < 1:
                raise DavixError("tpc", "streams must be >= 1")
            headers.set("X-Number-Of-Streams", str(streams))
        request = Request("COPY", target, headers)
        response, _ = yield from execute_request(
            self.context, active, request, self.params
        )
        from repro.core.file import raise_for_status

        if response.status != 202:
            raise_for_status(response, active.path)
            raise DavixError(
                "tpc",
                f"unexpected TPC response {response.status}",
                response.status,
            )
        summary = parse_marker_stream(response.body.decode("utf-8"))
        if not summary.ok:
            raise DavixError(
                "tpc",
                f"third-party copy failed: {summary.message}",
                502,
            )
        return summary

    def _copy_or_move(self, method, source_url, destination_url, overwrite):
        source = (
            source_url
            if isinstance(source_url, Url)
            else Url.parse(source_url)
        )
        destination = (
            destination_url
            if isinstance(destination_url, Url)
            else Url.parse(destination_url)
        )
        headers = Headers(
            [
                ("Destination", str(destination)),
                ("Overwrite", "T" if overwrite else "F"),
            ]
        )
        request = Request(method, source.target, headers)
        response, _ = yield from execute_request(
            self.context, source, request, self.params
        )
        from repro.core.file import raise_for_status

        raise_for_status(response, source.path)

    def listdir(self, url):
        """Effect sub-op: names inside a remote collection.

        Uses PROPFIND Depth 1, like ``davix-ls``.
        """
        parsed = url if isinstance(url, Url) else Url.parse(url)
        request = Request(
            "PROPFIND", parsed.target, Headers([("Depth", "1")])
        )
        response, final_url = yield from execute_request(
            self.context, parsed, request, self.params
        )
        from repro.core.file import raise_for_status

        raise_for_status(response, parsed.path)
        base = final_url.path.rstrip("/")
        entries: List[FileStat] = []
        names: List[str] = []
        for res in parse_multistatus(response.body):
            href = res.href.rstrip("/")
            if href == base or not href:
                continue  # the collection itself
            names.append(res.name)
            entries.append(
                FileStat(
                    size=res.size,
                    mtime=res.mtime,
                    is_directory=res.is_collection,
                    etag=res.etag,
                )
            )
        return list(zip(names, entries))
