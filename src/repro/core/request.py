"""High-level request execution: pool checkout, redirects, retries.

:func:`execute_request` is the davix engine every file operation goes
through. It acquires a session from the pool (creating one on miss),
follows redirects (a DPM head node redirecting to a disk node is the
normal case in the paper's deployment), transparently retries stale
keep-alive connections, and retries transient failures up to
``params.retries`` times.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.concurrency import Sleep
from repro.core.context import Context, RequestParams
from repro.core.session import Session, StaleSession, open_session
from repro.errors import (
    ConnectError,
    ConnectionClosed,
    HttpParseError,
    HttpProtocolError,
    RedirectLoopError,
    RequestError,
    TransferTimeout,
)
from repro.http import Request, Response, Url
from repro.http.status import is_redirect, is_retriable
from repro.net.tcp import TcpOptions

__all__ = ["execute_request", "checkout_session"]

#: Errors that mean "this attempt failed, the endpoint may still work".
TRANSIENT_ERRORS = (
    ConnectError,
    ConnectionClosed,
    TransferTimeout,
    HttpParseError,
)


def checkout_session(
    context: Context,
    url: Url,
    params: RequestParams,
    parent_span=None,
):
    """Effect sub-op: a session for ``url`` (pooled or freshly opened).

    With ``params.proxy`` set, the session targets the proxy instead:
    one pooled connection carries traffic for every origin behind it.
    Fresh connects are timed into ``session.connect_seconds`` and
    counted in ``session.connect_total``; pool hits/misses are recorded
    by the pool itself.
    """
    if params.proxy is not None and url.scheme in ("http", "dav"):
        url = Url.parse(params.proxy)
        origin = ("proxy",) + url.origin
    else:
        origin = url.origin
    session = context.pool.acquire(origin)
    if session is not None:
        session.metrics = context.metrics
        return session
    tcp_options = params.tcp_options
    if tcp_options is None:
        tcp_options = TcpOptions(connect_timeout=params.connect_timeout)
    tls = None
    if url.scheme in ("https", "davs"):
        from repro.concurrency.tlsmodel import TlsPolicy

        tls = params.tls if params.tls is not None else TlsPolicy()
    started = context.clock()
    session = yield from open_session(
        origin,
        (url.host, url.port),
        now=started,
        tcp_options=tcp_options,
        tls=tls,
        tracer=context.tracer,
        parent=parent_span,
        metrics=context.metrics,
    )
    context.metrics.counter("session.connect_total").inc()
    context.metrics.histogram("session.connect_seconds").observe(
        context.clock() - started
    )
    return session


def _prepare(
    request: Request,
    url: Url,
    params: RequestParams,
    context: Context,
) -> Request:
    headers = request.headers.copy()
    headers.set("Host", url.netloc)
    headers.setdefault("User-Agent", params.user_agent)
    target = url.target
    if params.proxy is not None and url.scheme in ("http", "dav"):
        target = str(url)  # absolute request-URI towards the proxy
    for name, value in params.extra_headers:
        headers.setdefault(name, value)
    if params.auth_token:
        headers.setdefault(
            "Authorization", f"Bearer {params.auth_token}"
        )
    if not params.keep_alive:
        headers.set("Connection", "close")
    prepared = Request(
        method=request.method,
        target=target,
        headers=headers,
        body=request.body,
        version=request.version,
    )
    if params.s3_credentials is not None:
        from repro.server.s3 import sign_request

        sign_request(
            prepared,
            params.s3_credentials,
            date=f"{context.clock():.6f}",
        )
    return prepared


def execute_request(
    context: Context,
    url: Url,
    request: Request,
    params: Optional[RequestParams] = None,
    sink_factory: Optional[Callable[[Response], Optional[Callable]]] = None,
):
    """Effect op: run ``request`` against ``url`` -> (response, final_url).

    ``sink_factory`` is consulted once the response head arrives; if it
    returns a callable, body chunks stream into it instead of being
    buffered (and ``response.body`` stays empty). Error statuses are
    *returned*, not raised — callers map them to their own exceptions.
    """
    params = params or context.params
    current = url
    redirects = 0
    retries_left = params.retries
    span = context.tracer.start(
        "request", method=request.method, url=str(url)
    )

    try:
        while True:
            context.bump("requests")
            acquire_span = span.child("session-acquire")
            try:
                session = yield from checkout_session(
                    context, current, params, parent_span=acquire_span
                )
            except (
                ConnectError,
                ConnectionClosed,
                HttpProtocolError,
            ) as exc:
                if retries_left > 0:
                    retries_left -= 1
                    context.bump("retries")
                    if params.retry_delay > 0:
                        yield Sleep(params.retry_delay)
                    continue
                raise RequestError(f"connect failed: {exc}") from exc
            finally:
                acquire_span.end()

            outgoing = _prepare(request, current, params, context)
            exchange_span = span.child("exchange", host=current.host)
            try:
                response = yield from _session_exchange(
                    session, outgoing, params, sink_factory, exchange_span
                )
            except StaleSession:
                # The request never reached the application: always retry.
                context.bump("retries")
                context.metrics.counter("session.stale_total").inc()
                session.discard()
                continue
            except TRANSIENT_ERRORS as exc:
                session.discard()
                if retries_left > 0:
                    retries_left -= 1
                    context.bump("retries")
                    if params.retry_delay > 0:
                        yield Sleep(params.retry_delay)
                    continue
                raise RequestError(str(exc)) from exc
            finally:
                exchange_span.end()

            if (
                params.follow_redirects
                and is_redirect(response.status)
                and response.headers.get("Location")
            ):
                context.pool.release(session)
                redirects += 1
                context.bump("redirects_followed")
                if redirects > params.max_redirects:
                    raise RedirectLoopError(str(url), params.max_redirects)
                current = current.resolve(response.headers.get("Location"))
                continue

            if is_retriable(response.status) and retries_left > 0:
                context.pool.release(session)
                retries_left -= 1
                context.bump("retries")
                if params.retry_delay > 0:
                    yield Sleep(params.retry_delay)
                continue

            context.pool.release(session)
            span.set(status=response.status)
            return response, current
    finally:
        span.end()


def _session_exchange(
    session: Session,
    request: Request,
    params: RequestParams,
    sink_factory,
    span=None,
):
    """One exchange on one session, with late sink selection."""
    if sink_factory is None:
        response = yield from session.request(
            request, timeout=params.operation_timeout, span=span
        )
        return response
    response = yield from session.request(
        request,
        sink_factory=sink_factory,
        timeout=params.operation_timeout,
        span=span,
    )
    return response
