"""High-level request execution: pool checkout, redirects, retries.

:func:`execute_request` is the davix engine every file operation goes
through. It acquires a session from the pool (creating one on miss),
follows redirects (a DPM head node redirecting to a disk node is the
normal case in the paper's deployment), transparently retries stale
keep-alive connections, and retries transient failures under the
operative :class:`~repro.resilience.RetryPolicy`.

Three resilience policies meet here:

* **retry/backoff** — one :class:`~repro.resilience.RetrySchedule` per
  logical operation covers connect failures, mid-exchange transport
  errors and retriable (5xx) statuses; backoff delays come from the
  context's seeded jitter RNG, so runs are deterministic;
* **deadline** — ``params.deadline`` becomes a
  :class:`~repro.resilience.Deadline` spanning every attempt, redirect
  and byte read; expiry raises
  :class:`~repro.errors.DeadlineExceeded` and is never retried;
* **circuit breaking** — every attempt consults the context's
  :class:`~repro.resilience.BreakerBoard`; an open breaker
  short-circuits with :class:`~repro.errors.CircuitOpenError` before
  any connection cost, and every outcome feeds the endpoint's breaker.

Mid-exchange failures (the request may have reached the application)
are retried only for idempotent methods — a vectored multi-range GET is
retry-safe, a MOVE is not — unless ``params.retry_non_idempotent``
opts in. Connect failures and stale keep-alive races are always safe.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.concurrency import Sleep
from repro.core.context import Context, RequestParams
from repro.core.session import Session, StaleSession, open_session
from repro.errors import (
    CircuitOpenError,
    ConnectError,
    ConnectionClosed,
    DeadlineExceeded,
    HttpParseError,
    HttpProtocolError,
    RedirectLoopError,
    RequestError,
    TransferTimeout,
)
from repro.http import Request, Response, Url
from repro.http.status import is_redirect, is_retriable
from repro.net.tcp import TcpOptions
from repro.obs.phases import PhaseRecorder
from repro.obs.propagation import format_span_id, format_trace_id
from repro.resilience import Deadline, is_idempotent

__all__ = ["execute_request", "checkout_session"]

#: Errors that mean "this attempt failed, the endpoint may still work".
TRANSIENT_ERRORS = (
    ConnectError,
    ConnectionClosed,
    TransferTimeout,
    HttpParseError,
)


def _target_origin(url: Url, params: RequestParams) -> Tuple:
    """The origin an exchange for ``url`` actually connects to."""
    if params.proxy is not None and url.scheme in ("http", "dav"):
        return ("proxy",) + Url.parse(params.proxy).origin
    return url.origin


def checkout_session(
    context: Context,
    url: Url,
    params: RequestParams,
    parent_span=None,
    deadline: Optional[Deadline] = None,
    breakers=None,
    recorder=None,
):
    """Effect sub-op: a session for ``url`` (pooled or freshly opened).

    With ``params.proxy`` set, the session targets the proxy instead:
    one pooled connection carries traffic for every origin behind it.
    With ``breakers`` given, an open circuit for the origin raises
    :class:`~repro.errors.CircuitOpenError` before any pool or connect
    work; ``deadline`` bounds the connect timeout. Fresh connects are
    timed into ``session.connect_seconds`` and counted in
    ``session.connect_total``; pool hits/misses are recorded by the
    pool itself.
    """
    if params.proxy is not None and url.scheme in ("http", "dav"):
        url = Url.parse(params.proxy)
        origin = ("proxy",) + url.origin
    else:
        origin = url.origin
    if breakers is not None and not breakers.allow(origin):
        raise CircuitOpenError(origin)
    if deadline is not None:
        deadline.check()
    session = context.pool.acquire(origin)
    if session is not None:
        if recorder is not None:
            recorder.mark("queue-wait")
        session.metrics = context.metrics
        return session
    tcp_options = params.tcp_options
    if tcp_options is None:
        connect_timeout = params.connect_timeout
        if deadline is not None:
            connect_timeout = deadline.clamp(connect_timeout)
        tcp_options = TcpOptions(connect_timeout=connect_timeout)
    tls = None
    if url.scheme in ("https", "davs"):
        from repro.concurrency.tlsmodel import TlsPolicy

        tls = params.tls if params.tls is not None else TlsPolicy()
    started = context.clock()
    if recorder is not None:
        recorder.mark("queue-wait")
    session = yield from open_session(
        origin,
        (url.host, url.port),
        now=started,
        tcp_options=tcp_options,
        tls=tls,
        tracer=context.tracer,
        parent=parent_span,
        metrics=context.metrics,
        recorder=recorder,
    )
    context.metrics.counter("session.connect_total").inc()
    context.metrics.histogram("session.connect_seconds").observe(
        context.clock() - started
    )
    return session


def _prepare(
    request: Request,
    url: Url,
    params: RequestParams,
    context: Context,
) -> Request:
    headers = request.headers.copy()
    headers.set("Host", url.netloc)
    headers.setdefault("User-Agent", params.user_agent)
    target = url.target
    if params.proxy is not None and url.scheme in ("http", "dav"):
        target = str(url)  # absolute request-URI towards the proxy
    for name, value in params.extra_headers:
        headers.setdefault(name, value)
    if params.auth_token:
        headers.setdefault(
            "Authorization", f"Bearer {params.auth_token}"
        )
    if not params.keep_alive:
        headers.set("Connection", "close")
    prepared = Request(
        method=request.method,
        target=target,
        headers=headers,
        body=request.body,
        version=request.version,
    )
    if params.s3_credentials is not None:
        from repro.server.s3 import sign_request

        sign_request(
            prepared,
            params.s3_credentials,
            date=f"{context.clock():.6f}",
        )
    return prepared


def _retry_pause(context, schedule, deadline, span, cause):
    """Effect sub-op: claim one retry slot and sleep its backoff.

    Returns True when the caller should retry; False when the attempt
    budget is spent. A backoff that cannot fit in the remaining
    deadline raises :class:`DeadlineExceeded` instead of sleeping.
    """
    delay = schedule.next_delay()
    if delay is None:
        context.metrics.counter("retry.exhausted_total").inc()
        return False
    if deadline is not None and deadline.remaining() <= delay:
        context.metrics.counter("deadline.exceeded_total").inc()
        raise DeadlineExceeded(deadline.budget) from cause
    context.bump("retries")
    context.metrics.counter("retry.attempts_total").inc()
    context.metrics.counter("retry.backoff_seconds_total").inc(delay)
    if delay > 0:
        wait_span = span.child(
            "retry-wait",
            attempt=schedule.retries,
            delay=delay,
            cause=type(cause).__name__,
        )
        try:
            yield Sleep(delay)
        finally:
            wait_span.end()
    return True


def execute_request(
    context: Context,
    url: Url,
    request: Request,
    params: Optional[RequestParams] = None,
    sink_factory: Optional[Callable[[Response], Optional[Callable]]] = None,
    idempotent: Optional[bool] = None,
    parent_span=None,
):
    """Effect op: run ``request`` against ``url`` -> (response, final_url).

    ``sink_factory`` is consulted once the response head arrives; if it
    returns a callable, body chunks stream into it instead of being
    buffered (and ``response.body`` stays empty). Error statuses are
    *returned*, not raised — callers map them to their own exceptions.
    ``idempotent`` overrides the method-based retry-safety inference
    (vectored reads pass True explicitly). ``parent_span`` pins the
    ``request`` span's parent explicitly — required by concurrently
    interleaved callers (parallel vectored dispatch), where the
    tracer's implicit stack would cross-nest spans from sibling tasks.
    """
    params = params or context.params
    if idempotent is None:
        idempotent = is_idempotent(request.method)
    policy = params.effective_retry_policy()
    schedule = policy.schedule(rng=context.retry_rng(policy))
    deadline = (
        Deadline.after(context.clock, params.deadline)
        if params.deadline is not None
        else None
    )
    breakers = context.breakers if params.breaker_enabled else None
    current = url
    redirects = 0
    started = context.clock()
    span = context.tracer.start(
        "request", parent=parent_span, method=request.method, url=str(url)
    )
    # Created at the same instant as the span, so the phase deltas sum
    # to the span's duration (the last mark lands just before the
    # success return, which is also when the span ends on the sim
    # clock). Marks accumulate across retries and redirects: a backoff
    # sleep is charged to the following attempt's queue-wait.
    recorder = PhaseRecorder(context.clock)

    def finish(response: Response) -> None:
        """Record the per-request telemetry at a terminal response."""
        timings = recorder.timings()
        span.set(status=response.status, timings=timings)
        phases = timings.as_dict()
        for phase, seconds in phases.items():
            context.metrics.histogram(
                "request.phase_seconds", phase=phase
            ).observe(seconds)
        duration = context.clock() - started
        origin_name = f"{current.host}:{current.port}"
        context.slo.record(
            origin_name, duration, ok=response.status < 500
        )
        context.events.emit(
            "request",
            side="client",
            ts=started,
            method=request.method,
            url=str(url),
            host=current.host,
            origin=origin_name,
            status=response.status,
            duration=duration,
            retries=schedule.retries,
            redirects=redirects,
            trace_id=format_trace_id(span.trace_id),
            span_id=format_span_id(span.span_id),
            **{
                "phase_" + phase.replace("-", "_"): seconds
                for phase, seconds in phases.items()
            },
        )

    try:
        while True:
            context.bump("requests")
            acquire_span = span.child("session-acquire")
            try:
                session = yield from checkout_session(
                    context,
                    current,
                    params,
                    parent_span=acquire_span,
                    deadline=deadline,
                    breakers=breakers,
                    recorder=recorder,
                )
            except (CircuitOpenError, DeadlineExceeded):
                # Final: an open breaker fails fast (the fail-over
                # driver moves on without burning the backoff window),
                # a spent budget cannot fund another attempt.
                raise
            except (
                ConnectError,
                ConnectionClosed,
                HttpProtocolError,
            ) as exc:
                # The request never left: always safe to retry.
                if breakers is not None:
                    breakers.record(
                        _target_origin(current, params), ok=False
                    )
                retry = yield from _retry_pause(
                    context, schedule, deadline, span, exc
                )
                if retry:
                    continue
                raise RequestError(f"connect failed: {exc}") from exc
            finally:
                acquire_span.end()

            origin = session.origin
            outgoing = _prepare(request, current, params, context)
            exchange_span = span.child("exchange", host=current.host)
            try:
                response = yield from _session_exchange(
                    session,
                    outgoing,
                    params,
                    sink_factory,
                    exchange_span,
                    deadline,
                    recorder=recorder,
                )
            except StaleSession:
                # The request never reached the application: always
                # retry, without consuming the attempt budget (the
                # classic keep-alive race is the pool's fault, not the
                # endpoint's).
                context.bump("retries")
                context.metrics.counter("session.stale_total").inc()
                session.discard()
                continue
            except DeadlineExceeded:
                session.discard()
                context.metrics.counter("deadline.exceeded_total").inc()
                raise
            except TRANSIENT_ERRORS as exc:
                session.discard()
                if breakers is not None:
                    breakers.record(origin, ok=False)
                if not (idempotent or params.retry_non_idempotent):
                    # The exchange died mid-flight: the server may have
                    # executed a non-idempotent operation already.
                    context.metrics.counter(
                        "retry.unsafe_skipped_total"
                    ).inc()
                    raise RequestError(str(exc)) from exc
                retry = yield from _retry_pause(
                    context, schedule, deadline, span, exc
                )
                if retry:
                    continue
                raise RequestError(str(exc)) from exc
            finally:
                exchange_span.end()

            if (
                params.follow_redirects
                and is_redirect(response.status)
                and response.headers.get("Location")
            ):
                if breakers is not None:
                    breakers.record(origin, ok=True)
                context.pool.release(session)
                redirects += 1
                context.bump("redirects_followed")
                if redirects > params.max_redirects:
                    raise RedirectLoopError(str(url), params.max_redirects)
                current = current.resolve(response.headers.get("Location"))
                continue

            if is_retriable(response.status):
                if breakers is not None:
                    breakers.record(origin, ok=False)
                context.pool.release(session)
                cause = RequestError(
                    f"HTTP {response.status}", status=response.status
                )
                retry = yield from _retry_pause(
                    context, schedule, deadline, span, cause
                )
                if retry:
                    continue
                # Budget spent: hand the error response to the caller
                # (it maps statuses to its own exceptions).
                finish(response)
                return response, current

            if breakers is not None:
                breakers.record(origin, ok=True)
            context.pool.release(session)
            finish(response)
            return response, current
    finally:
        span.end()


def _session_exchange(
    session: Session,
    request: Request,
    params: RequestParams,
    sink_factory,
    span=None,
    deadline: Optional[Deadline] = None,
    recorder=None,
):
    """One exchange on one session, with late sink selection."""
    if sink_factory is None:
        response = yield from session.request(
            request,
            timeout=params.operation_timeout,
            span=span,
            deadline=deadline,
            recorder=recorder,
            propagate=params.trace_propagation,
        )
        return response
    response = yield from session.request(
        request,
        sink_factory=sink_factory,
        timeout=params.operation_timeout,
        span=span,
        deadline=deadline,
        recorder=recorder,
        propagate=params.trace_propagation,
    )
    return response
