"""Thread-safe query dispatch over the connection pool (paper Fig. 2).

The paper's answer to HTTP's missing multiplexing: instead of pipelining
requests on one connection (head-of-line blocking) or one connection
per request (slow start every time), concurrent logical requests are
dispatched over a *dynamic pool* of kept-alive connections whose size
tracks the concurrency level.

:func:`run_parallel` is that dispatcher: N worker streams drain a shared
job queue; each worker acquires a pooled session per job (via the
normal ``execute_request`` path) so connections are recycled across
jobs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence

from repro.concurrency import Join, Spawn

__all__ = ["JobResult", "run_parallel"]


class JobResult:
    """Outcome of one dispatched job: a value or an exception."""

    __slots__ = ("index", "value", "error")

    def __init__(self, index: int, value=None, error=None):
        self.index = index
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The value, re-raising the job's exception if it failed."""
        if self.error is not None:
            raise self.error
        return self.value


def run_parallel(
    jobs: Sequence[Callable[[], object]],
    concurrency: int = 8,
    raise_first: bool = False,
):
    """Effect op: run job thunks through a worker pool.

    Each job is a zero-argument callable returning an effect sub-op
    (generator). Returns a list of :class:`JobResult` in job order.
    With ``raise_first`` the first failure is re-raised after all
    workers drain.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    results: List[Optional[JobResult]] = [None] * len(jobs)
    queue = deque(enumerate(jobs))

    def worker():
        while True:
            try:
                index, job = queue.popleft()
            except IndexError:
                return
            try:
                value = yield from job()
            except Exception as exc:  # captured per job
                results[index] = JobResult(index, error=exc)
            else:
                results[index] = JobResult(index, value=value)

    width = min(concurrency, len(jobs))
    tasks = []
    for lane in range(width):
        task = yield Spawn(worker(), name=f"dispatch-{lane}")
        tasks.append(task)
    for task in tasks:
        yield Join(task)

    if raise_first:
        for result in results:
            if result is not None and not result.ok:
                raise result.error
    return results
