"""Thread-safe query dispatch over the connection pool (paper Fig. 2).

The paper's answer to HTTP's missing multiplexing: instead of pipelining
requests on one connection (head-of-line blocking) or one connection
per request (slow start every time), concurrent logical requests are
dispatched over a *dynamic pool* of kept-alive connections whose size
tracks the concurrency level.

:func:`run_parallel` is that dispatcher: N worker streams drain a shared
job queue (via :func:`repro.concurrency.bounded_gather`); each worker
acquires a pooled session per job (through the normal
``execute_request`` path) so connections are recycled across jobs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.concurrency import bounded_gather

__all__ = ["JobResult", "run_parallel"]


class JobResult:
    """Outcome of one dispatched job: a value or an exception."""

    __slots__ = ("index", "value", "error")

    def __init__(self, index: int, value=None, error=None):
        self.index = index
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The value, re-raising the job's exception if it failed."""
        if self.error is not None:
            raise self.error
        return self.value


def run_parallel(
    jobs: Sequence[Callable[[], object]],
    concurrency: int = 8,
    raise_first: bool = False,
):
    """Effect op: run job thunks through a worker pool.

    Each job is a zero-argument callable returning an effect sub-op
    (generator). Returns a list of :class:`JobResult` in job order.
    With ``raise_first`` the first failure is re-raised after all
    workers drain.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    outcomes = yield from bounded_gather(
        jobs, limit=concurrency, name="dispatch"
    )
    results = [
        JobResult(o.index, value=o.value, error=o.error) for o in outcomes
    ]
    if raise_first:
        for result in results:
            if not result.ok:
                raise result.error
    return results
