"""Vectored-I/O planning (paper Section 2.3, Figure 3).

Turns a list of scattered fragment reads (what ROOT's TTreeCache emits)
into few HTTP multi-range requests:

1. **coalesce** — sort fragments and merge those whose gap is below a
   threshold (reading a small gap is cheaper than another range-spec);
2. **batch** — split the coalesced ranges into requests of at most
   ``max_ranges`` range-specs each (server DoS guards reject huge
   Range headers);
3. **scatter** — slice each original fragment back out of the returned
   parts, whatever the coalescing did.

The scatter side runs on a :class:`PartTable`: a bisect-indexed table
of ``memoryview`` slices over the response buffer, so the decode →
scatter path performs no byte copies until the user-facing boundary
(``scatter_parts`` materialises exactly one ``bytes`` per fragment).

All pure functions; the planning invariants are property-tested.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import RequestError

__all__ = [
    "Fragment",
    "CoalescedRange",
    "VectorPlan",
    "PartTable",
    "plan_vector",
    "scatter_parts",
    "missing_ranges",
]


@dataclass(frozen=True)
class Fragment:
    """One requested read: ``length`` bytes at ``offset``.

    ``index`` is the caller's position for result ordering.
    """

    offset: int
    length: int
    index: int

    def __post_init__(self):
        if self.offset < 0:
            raise ValueError("fragment offset must be >= 0")
        if self.length <= 0:
            raise ValueError("fragment length must be > 0")

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class CoalescedRange:
    """A merged contiguous read covering one or more fragments."""

    offset: int
    length: int
    fragments: List[Fragment] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.offset + self.length

    def covers(self, fragment: Fragment) -> bool:
        return (
            self.offset <= fragment.offset
            and fragment.end <= self.end
        )


@dataclass
class VectorPlan:
    """The full plan: batches of coalesced ranges."""

    batches: List[List[CoalescedRange]]
    fragments: List[Fragment]

    @property
    def total_ranges(self) -> int:
        return sum(len(batch) for batch in self.batches)

    @property
    def total_request_bytes(self) -> int:
        """Bytes the server will send (including coalescing overhead)."""
        return sum(
            rng.length for batch in self.batches for rng in batch
        )

    @property
    def requested_bytes(self) -> int:
        """Bytes the caller actually asked for."""
        return sum(fragment.length for fragment in self.fragments)


def plan_vector(
    reads: Sequence[Tuple[int, int]],
    max_ranges: int = 256,
    gap: int = 512,
) -> VectorPlan:
    """Build a :class:`VectorPlan` for ``(offset, length)`` reads.

    Overlapping and duplicate reads are legal; order of the input is
    preserved in the scattered results.
    """
    if max_ranges < 1:
        raise ValueError("max_ranges must be >= 1")
    if gap < 0:
        raise ValueError("gap must be >= 0")
    fragments = [
        Fragment(offset=offset, length=length, index=index)
        for index, (offset, length) in enumerate(reads)
    ]
    if not fragments:
        return VectorPlan(batches=[], fragments=[])

    ordered = sorted(fragments, key=lambda f: (f.offset, f.end))
    merged: List[CoalescedRange] = []
    current = CoalescedRange(
        offset=ordered[0].offset,
        length=ordered[0].length,
        fragments=[ordered[0]],
    )
    for fragment in ordered[1:]:
        if fragment.offset <= current.end + gap:
            current.length = max(current.end, fragment.end) - current.offset
            current.fragments.append(fragment)
        else:
            merged.append(current)
            current = CoalescedRange(
                offset=fragment.offset,
                length=fragment.length,
                fragments=[fragment],
            )
    merged.append(current)

    batches = [
        merged[i : i + max_ranges]
        for i in range(0, len(merged), max_ranges)
    ]
    return VectorPlan(batches=batches, fragments=fragments)


class PartTable:
    """Bisect-indexed table of the parts of one multi-range response.

    Each entry is ``(offset, view)`` where ``view`` is a ``memoryview``
    over the response buffer — adding parts never copies bytes, and
    :meth:`find` returns zero-copy slices. Entries are kept sorted by
    offset so a lookup is O(log n) instead of the linear scan a plain
    ``{offset: bytes}`` dict forces (O(n²) over a whole batch).

    A later part at an already-present offset replaces the entry only
    when it is at least as long (a refetch can only add coverage).

    ``total`` (when the response advertised the object size via
    ``Content-Range``) clips lookups at EOF: a range straddling the end
    of the object resolves to the available prefix — POSIX short-read
    semantics — instead of raising.
    """

    __slots__ = ("_offsets", "_views", "total")

    def __init__(self, total: Optional[int] = None):
        self._offsets: List[int] = []
        self._views: List[memoryview] = []
        self.total = total

    @classmethod
    def from_parts(
        cls,
        parts: Iterable[Tuple[int, bytes]],
        total: Optional[int] = None,
    ) -> "PartTable":
        """Build a table from ``(offset, buffer)`` pairs."""
        table = cls(total=total)
        for offset, data in parts:
            table.add(offset, data)
        return table

    @classmethod
    def from_mapping(cls, parts: Dict[int, bytes]) -> "PartTable":
        """Build a table from a legacy ``{offset: bytes}`` mapping."""
        return cls.from_parts(parts.items())

    def add(self, offset: int, data) -> None:
        """Insert one part (``bytes`` or ``memoryview``) at ``offset``."""
        view = data if isinstance(data, memoryview) else memoryview(data)
        index = bisect_right(self._offsets, offset)
        if index > 0 and self._offsets[index - 1] == offset:
            if len(view) >= len(self._views[index - 1]):
                self._views[index - 1] = view
            return
        self._offsets.insert(index, offset)
        self._views.insert(index, view)

    def merge(self, other: "PartTable") -> None:
        """Fold another table's parts into this one (refetch path)."""
        if other.total is not None:
            self.total = other.total
        for offset, view in zip(other._offsets, other._views):
            self.add(offset, view)

    def __len__(self) -> int:
        return len(self._offsets)

    def find(self, offset: int, length: int) -> memoryview:
        """Zero-copy view of ``[offset, offset+length)``.

        Bisects to the right-most part starting at or before ``offset``
        (the covering part of any disjoint multi-range response); falls
        back to a leftward scan only when parts overlap. A known
        ``total`` clips the span at EOF (short read); otherwise raises
        :class:`~repro.errors.RequestError` when nothing covers the
        span.
        """
        end = offset + length
        if self.total is not None and end > self.total:
            end = max(self.total, offset)
            length = end - offset
        if length <= 0:
            return memoryview(b"")
        index = bisect_right(self._offsets, offset) - 1
        while index >= 0:
            part_offset = self._offsets[index]
            view = self._views[index]
            if part_offset + len(view) >= end:
                start = offset - part_offset
                return view[start : start + length]
            index -= 1
        raise RequestError(
            f"server response does not cover range [{offset}, {end})"
        )

    def covers(self, offset: int, length: int) -> bool:
        """Does some part fully cover ``[offset, offset+length)``?"""
        try:
            self.find(offset, length)
        except RequestError:
            return False
        return True

    def __repr__(self) -> str:
        spans = ", ".join(
            f"[{o}, {o + len(v)})"
            for o, v in zip(self._offsets, self._views)
        )
        return f"<PartTable {spans}>"


#: What the scatter side accepts: a table or the legacy mapping.
Parts = Union[PartTable, Dict[int, bytes]]


def _as_table(parts: Parts) -> PartTable:
    if isinstance(parts, PartTable):
        return parts
    return PartTable.from_mapping(parts)


def scatter_parts(
    plan_batch: List[CoalescedRange],
    parts: Parts,
) -> Dict[int, bytes]:
    """Slice fragments out of returned parts for one batch.

    ``parts`` is a :class:`PartTable` (or a legacy ``{offset: bytes}``
    mapping) over a multipart/byteranges body (or synthesised from a
    200/206 response). Returns fragment ``index -> bytes`` — the
    ``bytes(...)`` here is the *only* materialising copy on the decode →
    scatter path. Raises :class:`~repro.errors.RequestError` if the
    server's parts do not cover a planned range.
    """
    table = _as_table(parts)
    out: Dict[int, bytes] = {}
    for rng in plan_batch:
        data = table.find(rng.offset, rng.length)
        for fragment in rng.fragments:
            start = fragment.offset - rng.offset
            piece = data[start : start + fragment.length]
            wanted = fragment.length
            if table.total is not None:
                # EOF clips the fragment: a POSIX-style short read.
                wanted = max(
                    0, min(fragment.end, table.total) - fragment.offset
                )
            if len(piece) != wanted:
                raise RequestError(
                    f"server returned {len(piece)} bytes for fragment "
                    f"at {fragment.offset} (wanted {wanted})"
                )
            out[fragment.index] = bytes(piece)
    return out


def missing_ranges(
    plan_batch: List[CoalescedRange],
    parts: Parts,
) -> List[CoalescedRange]:
    """The planned ranges ``parts`` does not fully cover.

    Used by the retry path of a vectored read: when a server reset cut
    a multipart response short (or a weak server only answered some
    ranges), the remaining ranges are re-requested as a smaller batch
    instead of re-reading everything — multi-range GETs are idempotent,
    so the refetch is always safe.
    """
    table = _as_table(parts)
    return [
        rng
        for rng in plan_batch
        if not table.covers(rng.offset, rng.length)
    ]


def _find_part(parts: Parts, offset: int, length: int) -> bytes:
    """The bytes of [offset, offset+length) from the returned parts.

    Compatibility wrapper over :meth:`PartTable.find`; prefer building
    one table per batch so lookups share the sorted index.
    """
    return bytes(_as_table(parts).find(offset, length))
