"""Vectored-I/O planning (paper Section 2.3, Figure 3).

Turns a list of scattered fragment reads (what ROOT's TTreeCache emits)
into few HTTP multi-range requests:

1. **coalesce** — sort fragments and merge those whose gap is below a
   threshold (reading a small gap is cheaper than another range-spec);
2. **batch** — split the coalesced ranges into requests of at most
   ``max_ranges`` range-specs each (server DoS guards reject huge
   Range headers);
3. **scatter** — slice each original fragment back out of the returned
   parts, whatever the coalescing did.

All pure functions; the planning invariants are property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import RequestError

__all__ = [
    "Fragment",
    "CoalescedRange",
    "VectorPlan",
    "plan_vector",
    "scatter_parts",
    "missing_ranges",
]


@dataclass(frozen=True)
class Fragment:
    """One requested read: ``length`` bytes at ``offset``.

    ``index`` is the caller's position for result ordering.
    """

    offset: int
    length: int
    index: int

    def __post_init__(self):
        if self.offset < 0:
            raise ValueError("fragment offset must be >= 0")
        if self.length <= 0:
            raise ValueError("fragment length must be > 0")

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class CoalescedRange:
    """A merged contiguous read covering one or more fragments."""

    offset: int
    length: int
    fragments: List[Fragment] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.offset + self.length

    def covers(self, fragment: Fragment) -> bool:
        return (
            self.offset <= fragment.offset
            and fragment.end <= self.end
        )


@dataclass
class VectorPlan:
    """The full plan: batches of coalesced ranges."""

    batches: List[List[CoalescedRange]]
    fragments: List[Fragment]

    @property
    def total_ranges(self) -> int:
        return sum(len(batch) for batch in self.batches)

    @property
    def total_request_bytes(self) -> int:
        """Bytes the server will send (including coalescing overhead)."""
        return sum(
            rng.length for batch in self.batches for rng in batch
        )

    @property
    def requested_bytes(self) -> int:
        """Bytes the caller actually asked for."""
        return sum(fragment.length for fragment in self.fragments)


def plan_vector(
    reads: Sequence[Tuple[int, int]],
    max_ranges: int = 256,
    gap: int = 512,
) -> VectorPlan:
    """Build a :class:`VectorPlan` for ``(offset, length)`` reads.

    Overlapping and duplicate reads are legal; order of the input is
    preserved in the scattered results.
    """
    if max_ranges < 1:
        raise ValueError("max_ranges must be >= 1")
    if gap < 0:
        raise ValueError("gap must be >= 0")
    fragments = [
        Fragment(offset=offset, length=length, index=index)
        for index, (offset, length) in enumerate(reads)
    ]
    if not fragments:
        return VectorPlan(batches=[], fragments=[])

    ordered = sorted(fragments, key=lambda f: (f.offset, f.end))
    merged: List[CoalescedRange] = []
    current = CoalescedRange(
        offset=ordered[0].offset,
        length=ordered[0].length,
        fragments=[ordered[0]],
    )
    for fragment in ordered[1:]:
        if fragment.offset <= current.end + gap:
            current.length = max(current.end, fragment.end) - current.offset
            current.fragments.append(fragment)
        else:
            merged.append(current)
            current = CoalescedRange(
                offset=fragment.offset,
                length=fragment.length,
                fragments=[fragment],
            )
    merged.append(current)

    batches = [
        merged[i : i + max_ranges]
        for i in range(0, len(merged), max_ranges)
    ]
    return VectorPlan(batches=batches, fragments=fragments)


def scatter_parts(
    plan_batch: List[CoalescedRange],
    parts: Dict[int, bytes],
) -> Dict[int, bytes]:
    """Slice fragments out of returned parts for one batch.

    ``parts`` maps part offset -> part bytes, as decoded from a
    multipart/byteranges body (or synthesised from a 200/206 response).
    Returns fragment ``index -> bytes``. Raises
    :class:`~repro.errors.RequestError` if the server's parts do not
    cover a planned range.
    """
    out: Dict[int, bytes] = {}
    for rng in plan_batch:
        data = _find_part(parts, rng.offset, rng.length)
        for fragment in rng.fragments:
            start = fragment.offset - rng.offset
            piece = data[start : start + fragment.length]
            if len(piece) != fragment.length:
                raise RequestError(
                    f"server returned {len(piece)} bytes for fragment "
                    f"at {fragment.offset} (wanted {fragment.length})"
                )
            out[fragment.index] = piece
    return out


def missing_ranges(
    plan_batch: List[CoalescedRange],
    parts: Dict[int, bytes],
) -> List[CoalescedRange]:
    """The planned ranges ``parts`` does not fully cover.

    Used by the retry path of a vectored read: when a server reset cut
    a multipart response short (or a weak server only answered some
    ranges), the remaining ranges are re-requested as a smaller batch
    instead of re-reading everything — multi-range GETs are idempotent,
    so the refetch is always safe.
    """
    missing: List[CoalescedRange] = []
    for rng in plan_batch:
        try:
            _find_part(parts, rng.offset, rng.length)
        except RequestError:
            missing.append(rng)
    return missing


def _find_part(parts: Dict[int, bytes], offset: int, length: int) -> bytes:
    """The bytes of [offset, offset+length) from the returned parts."""
    exact = parts.get(offset)
    if exact is not None and len(exact) >= length:
        return exact[:length]
    for part_offset, data in parts.items():
        if (
            part_offset <= offset
            and offset + length <= part_offset + len(data)
        ):
            start = offset - part_offset
            return data[start : start + length]
    raise RequestError(
        f"server response does not cover range "
        f"[{offset}, {offset + length})"
    )
