"""The pipelined read-ahead transfer engine.

The paper attributes XRootD's WAN edge (Section 3) to read-ahead that
hides round trips which davix's *synchronous* vectored refills pay on
every batch: issue a multi-range request, wait a full RTT, decode,
compute, repeat. This engine closes that gap on the HTTP side. It
keeps a sliding window of **speculative** vector batches in flight —
spawned onto the runtime (sim or threads) via the same effect
vocabulary as everything else — so while the application consumes
cluster *N*, clusters *N+1..N+w* are already on the wire, and the
multipart bodies decode incrementally as their chunks arrive
(:class:`~repro.http.multipart.MultipartStream`).

The window adapts to the access pattern, mirroring
``repro.xrootd.readahead.ReadAheadWindow``:

* sequential plan hits **grow** it (additive, toward
  ``max_window_batches``);
* off-plan access and failed speculative fetches **shrink** it
  (multiplicative, toward ``min_window_batches``);
* ``window_bytes`` caps speculative bytes outstanding regardless of
  the batch count.

Speculative fetches trap their own failures and surface them at join
time — a failed prefetch silently falls back to the demanded path, it
never crashes the caller (or the simulation). Every launch carries a
``speculative-fetch`` span parented under one ``transfer-engine``
span, so traces distinguish speculation from demand; window state and
hit rates export through ``engine.*`` metrics and the demanded-read
stall time lands in the ``readahead-wait`` request phase.

Arm it through :class:`~repro.core.transfer.TransferConfig`
(``read_ahead=True``) or explicitly via ``DavFile.prefetch(segments)``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.concurrency import Join, Spawn, TaskWindow
from repro.core.transfer import TransferConfig
from repro.core.vectored import plan_vector

__all__ = ["TransferEngine"]

#: One planned read: ``(offset, length)``.
Segment = Tuple[int, int]


class _SpecBatch:
    """One speculative multi-range request, in flight or resolved."""

    __slots__ = (
        "index",
        "ranges",
        "segments",
        "nbytes",
        "span",
        "task",
        "parts",
        "error",
        "resolved",
        "cancelled",
    )

    def __init__(self, index, ranges, segments, nbytes, span):
        self.index = index
        self.ranges = ranges
        #: Segments not yet served to the application.
        self.segments: Set[Segment] = segments
        self.nbytes = nbytes
        self.span = span
        self.task = None
        self.parts = None
        self.error: Optional[Exception] = None
        self.resolved = False
        self.cancelled = False


class TransferEngine:
    """Sliding-window speculative prefetcher for one :class:`DavFile`.

    Feed it a consumption-ordered plan with :meth:`prefetch`; demanded
    reads route through :meth:`read_vec` / :meth:`read_single`, which
    serve plan hits from (or while awaiting) in-flight speculative
    batches and fall back to the file's demand path on misses. Call
    :meth:`drain` when done so stragglers are joined and the engine
    span closes.
    """

    def __init__(self, file, config: TransferConfig):
        self.file = file
        self.config = config
        self.context = file.context
        self._plan: Deque[Segment] = deque()
        self._planned: Set[Segment] = set()
        #: Planned segments served by the demand path before their
        #: speculative launch; skipped when the plan drains.
        self._dropped: Set[Segment] = set()
        self._by_segment: Dict[Segment, _SpecBatch] = {}
        self._inflight: List[_SpecBatch] = []
        #: Cancelled batches whose spawned tasks still need a Join
        #: (there is no kill primitive; cancellation is bookkeeping).
        self._discarded: List[_SpecBatch] = []
        self._window = TaskWindow(
            limit=config.window_batches,
            floor=config.min_window_batches,
            ceiling=config.max_window_batches,
            max_bytes=config.window_bytes,
        )
        self._span = None
        self._launched = 0
        self.stats: Dict[str, int] = {
            "launched": 0,
            "hits": 0,
            "misses": 0,
            "errors": 0,
            "grown": 0,
            "shrunk": 0,
            "cancelled": 0,
        }
        #: Every coalesced ``(offset, length)`` launched speculatively
        #: (test hook: speculation must stay inside the prefetch plan).
        self.launched_ranges: List[Segment] = []

    # -- plan feeding (pure) ------------------------------------------------

    def prefetch(self, segments: Sequence[Segment]) -> None:
        """Extend the read-ahead plan, in consumption order.

        Pure bookkeeping: launches happen lazily as reads pump the
        window, so feeding a plan costs nothing until I/O starts.
        """
        for offset, length in segments:
            segment = (int(offset), int(length))
            if segment in self._planned:
                continue
            self._planned.add(segment)
            self._plan.append(segment)

    @property
    def window_batches(self) -> int:
        """Current adaptive window size (speculative batches)."""
        return self._window.limit

    @property
    def plan_depth(self) -> int:
        """Planned segments not yet launched."""
        return len(self._plan)

    # -- window management --------------------------------------------------

    def _segment_cached(self, segment: Segment) -> bool:
        """Is this planned segment already served by the page cache?"""
        cache = getattr(self.file, "_pagecache", None)
        if cache is None:
            return False
        return cache.read(self.file._cache_key, *segment) is not None

    def _engine_span(self):
        if self._span is None:
            self._span = self.context.tracer.start(
                "transfer-engine",
                url=str(self.file.url),
                window=self._window.limit,
            )
        return self._span

    def _top_up(self):
        """Effect sub-op: launch speculative batches while the window
        has room and the plan has segments."""
        params = self.file.params
        # Size batches so a full window fits the byte budget.
        batch_bytes_cap = max(
            1, self.config.window_bytes // max(1, self._window.limit)
        )
        while self._plan and self._window.has_room():
            segments: List[Segment] = []
            nbytes = 0
            while self._plan and len(segments) < params.max_vector_ranges:
                segment = self._plan.popleft()
                if segment in self._dropped:
                    self._dropped.discard(segment)
                    continue
                if self._segment_cached(segment):
                    # Already in the page cache: never spend wire on it.
                    self._planned.discard(segment)
                    self.context.metrics.counter(
                        "engine.cache_skipped_segments_total"
                    ).inc()
                    continue
                segments.append(segment)
                nbytes += segment[1]
                if nbytes >= batch_bytes_cap:
                    break
            if not segments:
                continue
            # <= max_vector_ranges segments always plan to one batch.
            plan = plan_vector(
                segments,
                max_ranges=params.max_vector_ranges,
                gap=params.vector_gap,
            )
            ranges = plan.batches[0]
            index = self._launched
            self._launched += 1
            span = self._engine_span().child(
                "speculative-fetch",
                batch=index,
                ranges=len(ranges),
                nbytes=nbytes,
            )
            batch = _SpecBatch(
                index=index,
                ranges=ranges,
                segments=set(segments),
                nbytes=nbytes,
                span=span,
            )
            task = yield Spawn(
                self._speculative(batch), name=f"speculative-{index}"
            )
            batch.task = task
            for segment in segments:
                self._by_segment[segment] = batch
            self._inflight.append(batch)
            self._window.launched(nbytes)
            self.stats["launched"] += 1
            self.launched_ranges.extend(
                (rng.offset, rng.length) for rng in ranges
            )
            metrics = self.context.metrics
            metrics.counter("engine.speculative_batches_total").inc()
            metrics.counter("engine.speculative_ranges_total").inc(
                len(ranges)
            )
            metrics.counter("engine.speculative_bytes_total").inc(nbytes)
            metrics.gauge("engine.window").set(self._window.limit)

    def _speculative(self, batch: _SpecBatch):
        """The spawned fetch op. Never raises: a failure is returned as
        a value and re-surfaced at join time — an unjoined failing task
        would otherwise crash the whole simulation."""
        try:
            parts = yield from self.file._fetch_batch_covered(
                batch.ranges,
                batch.span,
                stream=self.config.stream_decode,
            )
        except Exception as exc:  # trapped: surfaces via _resolve
            batch.span.end(error=repr(exc))
            return ("error", exc)
        batch.span.end(ok=True)
        return ("ok", parts)

    def _resolve(self, batch: _SpecBatch):
        """Effect sub-op: join one speculative batch (idempotent).

        The time a demanded read spends blocked here is the part of
        the prefetch the application failed to overlap — recorded as
        the ``readahead-wait`` phase.
        """
        if batch.resolved:
            return
        started = self.context.clock()
        outcome, value = yield Join(batch.task)
        waited = self.context.clock() - started
        batch.resolved = True
        self._window.settled(batch.nbytes)
        self.context.metrics.histogram(
            "request.phase_seconds", phase="readahead-wait"
        ).observe(waited)
        if outcome == "error":
            batch.error = value
            self.stats["errors"] += 1
            self.context.metrics.counter(
                "engine.speculative_errors_total"
            ).inc()
            self._shrink()
        else:
            batch.parts = value

    def _grow(self) -> None:
        if self._window.grow():
            self.stats["grown"] += 1
            self.context.metrics.counter("engine.window_grow_total").inc()
            self.context.metrics.gauge("engine.window").set(
                self._window.limit
            )

    def _shrink(self) -> None:
        if self._window.shrink():
            self.stats["shrunk"] += 1
            self.context.metrics.counter("engine.window_shrink_total").inc()
            self.context.metrics.gauge("engine.window").set(
                self._window.limit
            )

    def _consume(self, segment: Segment, batch: _SpecBatch) -> None:
        batch.segments.discard(segment)
        self._by_segment.pop(segment, None)
        self._planned.discard(segment)
        if batch.resolved and not batch.segments and batch in self._inflight:
            self._inflight.remove(batch)

    # -- demanded reads ------------------------------------------------------

    def read_vec(self, reads: Sequence[Segment]):
        """Effect sub-op: vectored read through the engine.

        Plan hits are served from speculative batches (awaiting any
        still in flight); misses fall back to the file's demanded
        vectored path in one batch. With no plan armed the call's own
        reads become the plan — the pipelined-window dispatch mode.
        """
        reads = [(int(offset), int(length)) for offset, length in reads]
        if not reads:
            return []
        if not self._plan and not self._by_segment:
            self.prefetch(reads)
        yield from self._top_up()

        metrics = self.context.metrics
        results: List[Optional[bytes]] = [None] * len(reads)
        demanded: List[Tuple[int, Segment]] = []
        offplan = False
        for index, segment in enumerate(reads):
            batch = self._by_segment.get(segment)
            if batch is None and segment in self._planned:
                # Planned but not yet launched: pump the window (the
                # resolve loop above may have freed slots).
                yield from self._top_up()
                batch = self._by_segment.get(segment)
            if batch is None:
                demanded.append((index, segment))
                if segment in self._planned:
                    # Deep in the plan, beyond the window: demand it
                    # now and skip its speculative launch later.
                    self._planned.discard(segment)
                    self._dropped.add(segment)
                else:
                    offplan = True
                continue
            yield from self._resolve(batch)
            offset, length = segment
            if batch.error is None and batch.parts.covers(offset, length):
                results[index] = bytes(batch.parts.find(offset, length))
                self.stats["hits"] += 1
                metrics.counter("engine.hits_total").inc()
            else:
                demanded.append((index, segment))
            self._consume(segment, batch)
            yield from self._top_up()

        if demanded:
            self.stats["misses"] += len(demanded)
            metrics.counter("engine.misses_total").inc(len(demanded))
            if offplan:
                self._shrink()
            pieces = yield from self.file._pread_vec_demand(
                [segment for _, segment in demanded],
                self.config.max_inflight,
            )
            for (index, _), piece in zip(demanded, pieces):
                results[index] = piece
        else:
            self._grow()
        yield from self._top_up()
        return results

    def read_single(self, offset: int, length: int):
        """Effect sub-op: serve one positional read from the window.

        Returns the bytes on a plan hit, ``None`` on a miss (the
        caller demand-fetches). An off-plan read is the random-access
        signal: the window shrinks.
        """
        segment = (int(offset), int(length))
        yield from self._top_up()
        batch = self._by_segment.get(segment)
        if batch is None and segment in self._planned:
            yield from self._top_up()
            batch = self._by_segment.get(segment)
        if batch is None:
            self.stats["misses"] += 1
            self.context.metrics.counter("engine.misses_total").inc()
            if segment in self._planned:
                self._planned.discard(segment)
                self._dropped.add(segment)
            else:
                self._shrink()
            return None
        yield from self._resolve(batch)
        data = None
        if batch.error is None and batch.parts.covers(*segment):
            data = bytes(batch.parts.find(*segment))
            self.stats["hits"] += 1
            self.context.metrics.counter("engine.hits_total").inc()
            self._grow()
        else:
            self.stats["misses"] += 1
            self.context.metrics.counter("engine.misses_total").inc()
        self._consume(segment, batch)
        yield from self._top_up()
        return data

    # -- shutdown -----------------------------------------------------------

    def abandon(self) -> None:
        """Drop the plan and cancel every in-flight speculative batch.

        Called when the consumption plan it was speculating for is
        abandoned (``DavFile.close()``, or a replacing ``prefetch()``)
        — instead of letting the in-flight batches drain uselessly
        into demanded reads, their window slots free immediately and
        they count in ``engine.cancelled_batches_total``. Pure
        bookkeeping: there is no task-kill primitive, so the spawned
        fetches are parked on ``_discarded`` and joined (results
        ignored) by the next :meth:`drain`.
        """
        self._plan.clear()
        self._planned.clear()
        self._dropped.clear()
        self._by_segment.clear()
        cancelled = 0
        unused = 0
        for batch in self._inflight:
            if batch.resolved:
                unused += len(batch.segments)
            else:
                batch.cancelled = True
                self._window.settled(batch.nbytes)
                cancelled += 1
                self._discarded.append(batch)
            batch.segments.clear()
        self._inflight.clear()
        if cancelled:
            self.stats["cancelled"] += cancelled
            self.context.metrics.counter(
                "engine.cancelled_batches_total"
            ).inc(cancelled)
        if unused:
            self.context.metrics.counter(
                "engine.unused_segments_total"
            ).inc(unused)

    def drain(self):
        """Effect sub-op: join every in-flight batch and close the
        engine span. Always call before tearing down the runtime —
        speculative tasks (cancelled ones included) must not outlive
        their session pool."""
        unused = 0
        for batch in list(self._inflight):
            yield from self._resolve(batch)
            unused += len(batch.segments)
            for segment in list(batch.segments):
                self._consume(segment, batch)
        self._inflight.clear()
        self._by_segment.clear()
        for batch in self._discarded:
            # Cancelled: the window slot was already settled by
            # abandon(); join the task and drop whatever it fetched.
            if not batch.resolved:
                yield Join(batch.task)
                batch.resolved = True
        self._discarded.clear()
        if unused:
            self.context.metrics.counter(
                "engine.unused_segments_total"
            ).inc(unused)
        if self._span is not None:
            self._span.end(
                launched=self.stats["launched"],
                hits=self.stats["hits"],
                misses=self.stats["misses"],
                errors=self.stats["errors"],
                cancelled=self.stats["cancelled"],
                window=self._window.limit,
                unused_segments=unused,
            )
            self._span = None
