"""DavixClient: the synchronous public facade.

Binds a :class:`~repro.core.context.Context` to a runtime (simulated or
real sockets) and exposes plain-call methods — what an application or
the CLI uses. Every method simply runs the corresponding effect op on
the runtime.

Observability is first-class on this surface: construct with
``DavixClient(runtime, params=…, metrics=…, tracer=…)`` (or hand in a
pre-composed :class:`Context`) and read back through
:meth:`DavixClient.metrics`, :meth:`DavixClient.tracer`,
:meth:`DavixClient.pool_stats` and :meth:`DavixClient.span`. Per-call
``params`` overrides all funnel through one ``_resolve_params`` helper,
so every method accepts either a full :class:`RequestParams` or keyword
overrides applied on top of the context default.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.concurrency.runtime import Runtime
from repro.core.context import Context, RequestParams, TransferConfig
from repro.core.dispatch import run_parallel
from repro.core.failover import with_failover
from repro.core.file import DavFile, FileStat
from repro.core.multistream import MultistreamResult, multistream_download
from repro.core.pool import PoolStats
from repro.core.posix import DavPosix
from repro.metalink import Metalink
from repro.obs import EventLog, MetricsRegistry, SloTracker, Span, Tracer
from repro.resilience import BreakerBoard, BreakerConfig

__all__ = ["DavixClient"]


class DavixClient:
    """High-level davix API over a runtime.

    Example::

        runtime = ThreadRuntime()
        client = DavixClient(runtime)
        client.put("http://127.0.0.1:8080/data/x", b"payload")
        assert client.get("http://127.0.0.1:8080/data/x") == b"payload"
        print(client.pool_stats().hit_rate)
    """

    def __init__(
        self,
        runtime: Runtime,
        context: Optional[Context] = None,
        params: Optional[RequestParams] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        breaker: Optional[BreakerConfig] = None,
    ):
        if context is not None and (
            metrics is not None or tracer is not None or breaker is not None
        ):
            raise ValueError(
                "pass metrics/tracer/breaker either to the Context or "
                "to the client, not both"
            )
        self.runtime = runtime
        self.context = context or Context(
            params=params, metrics=metrics, tracer=tracer, breaker=breaker
        )
        # The blacklist and session-age logic need the runtime's clock
        # (the tracer follows through context._now).
        self.context.clock = runtime.now
        self.posix = DavPosix(self.context, self.context.params)

    # -- observability accessors ----------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """The metric registry every layer of this client records into."""
        return self.context.metrics

    def tracer(self) -> Tracer:
        """The tracer producing this client's request spans."""
        return self.context.tracer

    def events(self) -> EventLog:
        """The wide-event log: one structured record per request."""
        return self.context.events

    def slo(self) -> SloTracker:
        """Per-origin SLO / error-budget state for this client."""
        return self.context.slo

    def pool_stats(self) -> PoolStats:
        """Typed snapshot of the session pool's usage counters."""
        return self.context.pool.stats()

    def breakers(self) -> BreakerBoard:
        """The per-endpoint circuit-breaker board this client consults."""
        return self.context.breakers

    def span(self, name: str, **attrs) -> Span:
        """Start an application-level span (context manager) so client
        calls made inside it nest under one trace."""
        return self.context.tracer.start(name, **attrs)

    # -- helpers -------------------------------------------------------------

    def _resolve_params(
        self, params: Optional[RequestParams] = None, **overrides
    ) -> RequestParams:
        """The effective params for one call: the given bundle or the
        context default, with keyword overrides applied on top."""
        base = params if params is not None else self.context.params
        return base.replace(**overrides) if overrides else base

    def _file(self, url, params: Optional[RequestParams]) -> DavFile:
        return DavFile(self.context, url, self._resolve_params(params))

    def _posix(self, params: Optional[RequestParams]) -> DavPosix:
        return DavPosix(self.context, self._resolve_params(params))

    # -- object operations ----------------------------------------------------

    def get(self, url, params: Optional[RequestParams] = None) -> bytes:
        """Download the full object."""
        return self.runtime.run(self._file(url, params).read_all())

    def get_to_sink(
        self,
        url,
        sink: Callable[[bytes], None],
        params: Optional[RequestParams] = None,
    ) -> int:
        """Stream the object into ``sink``; returns the byte count."""
        return self.runtime.run(self._file(url, params).read_all(sink))

    def put(
        self,
        url,
        data: bytes,
        content_type: str = "application/octet-stream",
        params: Optional[RequestParams] = None,
    ) -> int:
        """Upload (create or replace); returns the HTTP status."""
        return self.runtime.run(
            self._file(url, params).write_all(data, content_type)
        )

    def delete(self, url, params: Optional[RequestParams] = None) -> None:
        self.runtime.run(self._file(url, params).delete())

    def stat(self, url, params: Optional[RequestParams] = None) -> FileStat:
        return self.runtime.run(self._file(url, params).stat())

    def exists(self, url, params: Optional[RequestParams] = None) -> bool:
        return self.runtime.run(self._file(url, params).exists())

    def listdir(
        self, url, params: Optional[RequestParams] = None
    ) -> List[Tuple[str, FileStat]]:
        return self.runtime.run(self._posix(params).listdir(url))

    def mkdir(self, url, params: Optional[RequestParams] = None) -> None:
        self.runtime.run(self._posix(params).mkdir(url))

    def rename(
        self,
        source_url,
        destination_url,
        overwrite: bool = True,
        params: Optional[RequestParams] = None,
    ) -> None:
        """Server-side rename (WebDAV MOVE)."""
        self.runtime.run(
            self._posix(params).rename(
                source_url, destination_url, overwrite
            )
        )

    def copy(
        self,
        source_url,
        destination_url,
        overwrite: bool = True,
        params: Optional[RequestParams] = None,
    ) -> None:
        """Server-side copy (WebDAV COPY) — no data crosses the client."""
        self.runtime.run(
            self._posix(params).copy(
                source_url, destination_url, overwrite
            )
        )

    def third_party_copy(
        self,
        source_url,
        destination_url,
        mode: str = "pull",
        streams: Optional[int] = None,
        overwrite: bool = True,
        params: Optional[RequestParams] = None,
    ):
        """Third-party copy: the storage nodes move the object directly
        over their own link while this client only orchestrates.

        ``mode`` selects pull (COPY sent to the destination with a
        ``Source`` header) or push (COPY sent to the source with an
        absolute ``Destination``); ``streams`` requests a specific
        number of parallel chunk streams on the active server. Returns
        the :class:`~repro.core.tpc.TpcSummary` parsed from the
        ``Perf Marker`` stream.
        """
        return self.runtime.run(
            self._posix(params).third_party_copy(
                source_url,
                destination_url,
                mode=mode,
                streams=streams,
                overwrite=overwrite,
            )
        )

    # -- positional / vectored I/O ------------------------------------------------

    def pread(
        self,
        url,
        offset: int,
        length: int,
        params: Optional[RequestParams] = None,
    ) -> bytes:
        return self.runtime.run(
            self._file(url, params).pread(offset, length)
        )

    def pread_vec(
        self,
        url,
        reads: Sequence[Tuple[int, int]],
        params: Optional[RequestParams] = None,
        transfer: Optional[TransferConfig] = None,
        read_ahead: Optional[bool] = None,
    ) -> List[bytes]:
        """Vectored read: the paper's Section 2.3 in one call.

        ``transfer`` (when given) overrides ``params.transfer`` — the
        single bundle steering batch parallelism and the read-ahead
        engine. ``read_ahead`` arms (or pins off) the pipelined
        engine for this call regardless of the config.
        """
        overrides = {}
        if transfer is not None:
            overrides["transfer"] = transfer
        file = DavFile(
            self.context,
            url,
            self._resolve_params(params, **overrides),
            read_ahead=read_ahead,
        )

        def op():
            results = yield from file.pread_vec(reads)
            yield from file.drain()
            return results

        return self.runtime.run(op())

    # -- resilience (Section 2.4) ----------------------------------------------------

    def get_metalink(
        self, url, params: Optional[RequestParams] = None
    ) -> Metalink:
        return self.runtime.run(self._file(url, params).get_metalink())

    def get_with_failover(
        self,
        url,
        params: Optional[RequestParams] = None,
        metalink_url=None,
    ) -> bytes:
        """GET with transparent Metalink replica fail-over."""
        params = self._resolve_params(params)

        def attempt(target):
            data = yield from DavFile(
                self.context, target, params
            ).read_all()
            return data

        return self.runtime.run(
            with_failover(
                self.context,
                url,
                attempt,
                params,
                metalink_url=metalink_url,
            )
        )

    def get_multistream(
        self,
        url,
        params: Optional[RequestParams] = None,
        metalink_url=None,
    ) -> MultistreamResult:
        """Parallel multi-source download of every chunk."""
        return self.runtime.run(
            multistream_download(
                self.context,
                url,
                self._resolve_params(params),
                metalink_url=metalink_url,
            )
        )

    # -- parallel dispatch (Figure 2) ---------------------------------------------------

    def get_many(
        self,
        urls: Sequence[str],
        concurrency: int = 8,
        params: Optional[RequestParams] = None,
    ) -> List[bytes]:
        """Fetch many objects through the pool dispatcher."""
        params = self._resolve_params(params)

        def job(url):
            def thunk():
                data = yield from DavFile(
                    self.context, url, params
                ).read_all()
                return data

            return thunk

        results = self.runtime.run(
            run_parallel(
                [job(url) for url in urls],
                concurrency=concurrency,
                raise_first=True,
            )
        )
        return [result.value for result in results]
