"""Multi-stream parallel download (paper Section 2.4, second strategy).

The Metalink lists N replicas; davix splits the object into fixed-size
chunks and runs one worker stream per replica, each pulling the next
unclaimed chunk (work stealing, so a slow or dead replica only slows
its current chunk). The result is assembled in order and verified
against the Metalink's adler32 checksum.

The paper notes the trade-off explicitly: client throughput is
maximised, but server load grows with the stream count — the ML-MS
benchmark reproduces both sides.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Dict, List, Optional

from repro.concurrency import Join, Spawn
from repro.core.context import Context, RequestParams
from repro.core.file import DavFile
from repro.core.failover import FAILOVER_ERRORS, resolve_replicas
from repro.errors import AllReplicasFailed, ChecksumMismatch, RequestError
from repro.http import Url
from repro.metalink import Metalink

__all__ = ["StreamStats", "MultistreamResult", "multistream_download"]


class StreamStats:
    """Per-replica accounting for one multi-stream download."""

    def __init__(self, url: Url):
        self.url = url
        self.chunks = 0
        self.bytes = 0
        self.failed = False

    def __repr__(self) -> str:
        state = "failed" if self.failed else "ok"
        return (
            f"<StreamStats {self.url.host} chunks={self.chunks} "
            f"bytes={self.bytes} {state}>"
        )


class MultistreamResult:
    """The assembled object plus per-stream statistics."""

    def __init__(self, data: bytes, streams: List[StreamStats]):
        self.data = data
        self.streams = streams

    @property
    def size(self) -> int:
        return len(self.data)

    def bytes_by_host(self) -> Dict[str, int]:
        return {s.url.host: s.bytes for s in self.streams}


def multistream_download(
    context: Context,
    url,
    params: Optional[RequestParams] = None,
    metalink: Optional[Metalink] = None,
    metalink_url=None,
):
    """Effect op: download ``url`` from all its replicas in parallel.

    The Metalink is fetched from ``metalink_url`` (or the primary) when
    not supplied. Requires the Metalink to carry the file size.
    Raises :class:`AllReplicasFailed` when chunks remain after every
    stream died, :class:`ChecksumMismatch` when verification fails.
    """
    params = params or context.params
    primary = url if isinstance(url, Url) else Url.parse(url)

    if metalink is None:
        source = metalink_url or primary
        if not isinstance(source, Url):
            source = Url.parse(source)
        metalink = yield from DavFile(
            context, source, params
        ).get_metalink()

    entry = metalink.single()
    if entry.size is None:
        raise RequestError(
            f"{primary.path}: metalink lacks a size, cannot chunk"
        )
    size = entry.size
    replicas = resolve_replicas(metalink, primary)
    skipped = [
        replica
        for replica in replicas
        if context.is_blacklisted(replica.origin)
        or (
            params.breaker_enabled
            and context.breakers.is_blocked(replica.origin)
        )
    ]
    if skipped:
        context.metrics.counter("multistream.replica_skips_total").inc(
            len(skipped)
        )
    replicas = [r for r in replicas if r not in skipped]
    if not replicas:
        raise AllReplicasFailed(primary.path, [])
    replicas = replicas[: params.multistream_max_streams]

    chunk_size = params.multistream_chunk
    queue = deque(
        (offset, min(chunk_size, size - offset))
        for offset in range(0, size, chunk_size)
    )
    assembly = bytearray(size)
    stats = [StreamStats(replica) for replica in replicas]
    metrics = context.metrics
    metrics.counter("multistream.downloads_total").inc()
    metrics.counter("multistream.streams_total").inc(len(replicas))

    def worker(replica: Url, stat: StreamStats):
        handle = DavFile(context, replica, params)
        # Root span: worker streams interleave on the scheduler, so
        # implicit stack parenting would cross-nest them.
        span = context.tracer.start(
            "multistream-worker", root=True, host=replica.host
        )
        try:
            while True:
                try:
                    offset, length = queue.popleft()
                except IndexError:
                    return  # no chunks left (popleft is atomic under threads)
                try:
                    data = yield from handle.pread(offset, length)
                except FAILOVER_ERRORS:
                    # Put the chunk back for the surviving streams.
                    queue.appendleft((offset, length))
                    stat.failed = True
                    context.blacklist(replica.origin)
                    metrics.counter(
                        "multistream.stream_failures_total"
                    ).inc()
                    return
                if len(data) != length:
                    queue.appendleft((offset, length))
                    stat.failed = True
                    metrics.counter(
                        "multistream.stream_failures_total"
                    ).inc()
                    return
                assembly[offset : offset + length] = data
                stat.chunks += 1
                stat.bytes += length
                metrics.counter(
                    "multistream.chunks_total", host=replica.host
                ).inc()
                metrics.counter(
                    "multistream.bytes_total", host=replica.host
                ).inc(length)
        finally:
            span.end(chunks=stat.chunks, failed=stat.failed)

    if size > 0:
        tasks = []
        for replica, stat in zip(replicas, stats):
            task = yield Spawn(
                worker(replica, stat), name=f"ms-{replica.host}"
            )
            tasks.append(task)
        for task in tasks:
            yield Join(task)

    if queue:
        raise AllReplicasFailed(
            primary.path,
            [(str(s.url), "stream failed") for s in stats if s.failed],
        )

    data = bytes(assembly)
    if params.verify_checksum:
        expected = entry.checksum("adler32")
        if expected:
            actual = f"{zlib.adler32(data) & 0xFFFFFFFF:08x}"
            if actual != expected.lower():
                raise ChecksumMismatch(primary.path, expected, actual)
    return MultistreamResult(data, stats)
