"""TransferConfig: the unified I/O-engine tuning bundle.

:class:`TransferConfig` is the single home for the client's
parallelism tuning (the scattered per-call knobs of earlier releases
are gone): one frozen bundle carried on
:class:`~repro.core.context.RequestParams` (``transfer=``): how many
requests a file operation may keep in flight, whether the pipelined
read-ahead engine (:mod:`repro.core.engine`) is armed, and the bounds
of its speculative sliding window.

The old names keep working for one release as deprecation aliases —
they warn and map onto an equivalent ``TransferConfig`` (see
``RequestParams.effective_transfer``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TransferConfig"]


@dataclass(frozen=True)
class TransferConfig:
    """How a file's bytes move: parallelism and read-ahead in one place.

    ``max_inflight`` bounds concurrent requests of one demand-side
    operation (vectored-read batches, multistream chunks); the window
    fields bound the *speculative* side — how many planned batches the
    transfer engine keeps in flight ahead of the application.
    """

    #: Concurrent in-flight requests per file operation (1 = the
    #: historical sequential dispatch).
    max_inflight: int = 1
    #: Arm the pipelined read-ahead engine: vectored reads route
    #: through a sliding window of speculative batches.
    read_ahead: bool = False
    #: Speculative batches in flight when the window opens.
    window_batches: int = 4
    #: Floor the window shrinks to on errors / off-plan access.
    min_window_batches: int = 1
    #: Ceiling the window grows to while speculation keeps hitting.
    max_window_batches: int = 16
    #: Cap on speculative bytes outstanding at once.
    window_bytes: int = 32 * 1024 * 1024
    #: Decode multipart bodies incrementally as chunks arrive
    #: (speculative fetches only), overlapping decode with transfer.
    stream_decode: bool = True
    #: Byte budget of the client page cache
    #: (:class:`~repro.core.pagecache.PageCache`); 0 disables it. The
    #: cache lives on the :class:`~repro.core.context.Context`, shared
    #: by every file, so repeated and overlapping reads of the same
    #: object never leave the process.
    page_cache_bytes: int = 0
    #: Page granularity of the client page cache.
    page_size: int = 64 * 1024

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.page_cache_bytes < 0:
            raise ValueError("page_cache_bytes must be >= 0")
        if self.page_size < 1:
            raise ValueError("page_size must be >= 1")
        if self.min_window_batches < 1:
            raise ValueError("min_window_batches must be >= 1")
        if not (
            self.min_window_batches
            <= self.window_batches
            <= self.max_window_batches
        ):
            raise ValueError(
                "window_batches must satisfy min <= initial <= max"
            )
        if self.window_bytes < 1:
            raise ValueError("window_bytes must be >= 1")

    def replace(self, **changes) -> "TransferConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def with_(self, **changes) -> "TransferConfig":
        """Alias of :meth:`replace` (the historical spelling)."""
        return self.replace(**changes)
