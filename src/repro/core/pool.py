"""Dynamic connection pool with session recycling (paper Figure 2).

The pool keeps idle keep-alive sessions keyed by origin
``(scheme, host, port)``. Requests *acquire* a session (reusing a warm
TCP connection — and its grown congestion window — whenever one is
idle) and *release* it afterwards; dirty or non-reusable sessions are
discarded instead of recycled. A ``threading.Lock`` makes the dispatch
thread-safe on the socket runtime; on the single-threaded simulator it
is simply uncontended.

Usage accounting is a frozen :class:`PoolStats` snapshot returned by
``pool.stats()``; when a :class:`~repro.obs.MetricsRegistry` is
attached, every event also lands there as
``pool.acquire_total{outcome=...}`` / ``pool.release_total{outcome=...}``
/ ``pool.evicted_total`` series. The legacy dict-style access
(``pool.stats["hits"]``) still works through a deprecation shim.
"""

from __future__ import annotations

import threading
import warnings
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

__all__ = ["PoolStats", "SessionPool"]

#: stats-event -> (metric family, labels) mapping.
_EVENT_METRICS = {
    "hits": ("pool.acquire_total", {"outcome": "hit"}),
    "misses": ("pool.acquire_total", {"outcome": "miss"}),
    "recycled": ("pool.release_total", {"outcome": "recycled"}),
    "discarded": ("pool.release_total", {"outcome": "discarded"}),
    "evicted": ("pool.evicted_total", {}),
}


@dataclass(frozen=True)
class PoolStats:
    """Typed snapshot of the pool's usage counters.

    ``hits``/``misses`` count acquire outcomes, ``recycled``/
    ``discarded`` count release outcomes, ``evicted`` counts idle
    sessions dropped for age or use limits; ``idle`` is the number of
    sessions parked at snapshot time.
    """

    hits: int = 0
    misses: int = 0
    recycled: int = 0
    discarded: int = 0
    evicted: int = 0
    idle: int = 0

    @property
    def acquires(self) -> int:
        """Total acquire calls (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires served from the pool (0.0 when idle)."""
        total = self.acquires
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """The five counters as a plain dict (legacy shape)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "recycled": self.recycled,
            "discarded": self.discarded,
            "evicted": self.evicted,
        }


class _StatsAccessor:
    """Callable/deprecation bridge behind the ``pool.stats`` attribute.

    ``pool.stats()`` is the supported API and returns a frozen
    :class:`PoolStats`. The historical dict operations
    (``pool.stats["hits"]``, ``pool.stats == {...}``) keep working but
    emit a :class:`DeprecationWarning`.
    """

    def __init__(self, pool: "SessionPool"):
        self._pool = pool

    def __call__(self) -> PoolStats:
        return self._pool._snapshot()

    def _warn(self) -> None:
        warnings.warn(
            "dict-style SessionPool.stats access is deprecated; call "
            "pool.stats() for a PoolStats snapshot",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str) -> int:
        self._warn()
        return self._pool._counters[key]

    def __eq__(self, other) -> bool:
        if isinstance(other, dict):
            self._warn()
            return dict(self._pool._counters) == other
        if isinstance(other, PoolStats):
            return self._pool._snapshot() == other
        return NotImplemented

    def __iter__(self):
        self._warn()
        return iter(dict(self._pool._counters))

    def __contains__(self, key: str) -> bool:
        return key in self._pool._counters

    def keys(self):
        self._warn()
        return dict(self._pool._counters).keys()

    def items(self):
        self._warn()
        return dict(self._pool._counters).items()

    def get(self, key: str, default=None):
        self._warn()
        return self._pool._counters.get(key, default)

    def __repr__(self) -> str:
        return f"<pool.stats accessor {self._pool._snapshot()!r}>"


class SessionPool:
    """Keyed free-list of reusable sessions with usage statistics."""

    def __init__(
        self,
        max_idle_per_origin: int = 16,
        max_session_uses: Optional[int] = None,
        max_session_age: Optional[float] = None,
        clock=None,
        metrics=None,
    ):
        if max_idle_per_origin < 0:
            raise ValueError("max_idle_per_origin must be >= 0")
        self.max_idle_per_origin = max_idle_per_origin
        self.max_session_uses = max_session_uses
        self.max_session_age = max_session_age
        self._clock = clock or (lambda: 0.0)
        #: Optional :class:`~repro.obs.MetricsRegistry` mirror.
        self.metrics = metrics
        self._idle: Dict[Tuple, Deque] = defaultdict(deque)
        self._lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "recycled": 0,
            "discarded": 0,
            "evicted": 0,
        }
        self.stats = _StatsAccessor(self)

    def _record(self, event: str) -> None:
        self._counters[event] += 1
        if self.metrics is not None:
            name, labels = _EVENT_METRICS[event]
            self.metrics.counter(name, **labels).inc()

    def _snapshot(self) -> PoolStats:
        return PoolStats(idle=self._idle_total(), **self._counters)

    def acquire(self, origin: Tuple):
        """Pop an idle reusable session for ``origin``; None on miss."""
        with self._lock:
            queue = self._idle.get(origin)
            while queue:
                session = queue.pop()  # LIFO: prefer the warmest
                if self._expired(session):
                    self._record("evicted")
                    session.discard()
                    continue
                if not session.reusable:
                    self._record("discarded")
                    session.discard()
                    continue
                self._record("hits")
                return session
            self._record("misses")
            return None

    def release(self, session) -> None:
        """Return a session after use; recycled only if clean."""
        with self._lock:
            if (
                not session.reusable
                or self._expired(session)
                or len(self._idle[session.origin])
                >= self.max_idle_per_origin
            ):
                self._record("discarded")
                session.discard()
                return
            self._record("recycled")
            session.last_released = self._clock()
            self._idle[session.origin].append(session)
            if self.metrics is not None:
                self.metrics.gauge("pool.idle_sessions").set(
                    self._idle_total()
                )

    def _expired(self, session) -> bool:
        if (
            self.max_session_uses is not None
            and session.requests_sent >= self.max_session_uses
        ):
            return True
        if self.max_session_age is not None:
            age = self._clock() - session.created_at
            if age > self.max_session_age:
                return True
        return False

    def _idle_total(self) -> int:
        return sum(len(q) for q in self._idle.values())

    def idle_count(self, origin: Optional[Tuple] = None) -> int:
        """Idle sessions for one origin (or in total)."""
        with self._lock:
            if origin is not None:
                return len(self._idle.get(origin, ()))
            return self._idle_total()

    def purge_origin(self, origin: Tuple) -> int:
        """Discard every idle session for one origin (counted evicted).

        Called by the :class:`~repro.resilience.BreakerBoard` when an
        endpoint's circuit opens: warm connections to a host that just
        failed ``threshold`` times in a row are more likely half-dead
        than warm, so they are dropped with the breaker.
        """
        with self._lock:
            queue = self._idle.pop(origin, None)
            if not queue:
                return 0
            dropped = 0
            while queue:
                queue.pop().discard()
                self._record("evicted")
                dropped += 1
            if self.metrics is not None:
                self.metrics.gauge("pool.idle_sessions").set(
                    self._idle_total()
                )
            return dropped

    def clear(self) -> int:
        """Discard every idle session; returns how many were dropped."""
        with self._lock:
            dropped = 0
            for queue in self._idle.values():
                while queue:
                    queue.pop().discard()
                    dropped += 1
            self._idle.clear()
            return dropped
