"""Dynamic connection pool with session recycling (paper Figure 2).

The pool keeps idle keep-alive sessions keyed by origin
``(scheme, host, port)``. Requests *acquire* a session (reusing a warm
TCP connection — and its grown congestion window — whenever one is
idle) and *release* it afterwards; dirty or non-reusable sessions are
discarded instead of recycled.

Internally the pool is **sharded**: origins map (by a stable CRC32
hash) onto ``shards`` independent sub-pools, each with its own
``threading.Lock``, so hundreds of concurrent dispatchers on the socket
runtime do not serialise on one mutex. On the single-threaded simulator
the locks are simply uncontended. Counter *reads* are lock-free:
``pool.stats()`` sums per-shard integers without taking any lock (each
write happens under its shard lock; a snapshot is a consistent-enough
point-in-time view). An LRU idle-reaper (``idle_ttl`` + :meth:`reap`)
drops sessions that sat parked longer than the TTL, oldest first.

Usage accounting is a frozen :class:`PoolStats` snapshot returned by
``pool.stats()``; when a :class:`~repro.obs.MetricsRegistry` is
attached, every event also lands there as
``pool.acquire_total{outcome=...}`` / ``pool.release_total{outcome=...}``
/ ``pool.evicted_total`` series, plus the shard-level
``pool.shard.idle{shard=...}`` gauges and
``pool.shard.contended_total{shard=...}`` lock-contention counters.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["PoolStats", "SessionPool"]

#: stats-event -> (metric family, labels) mapping.
_EVENT_METRICS = {
    "hits": ("pool.acquire_total", {"outcome": "hit"}),
    "misses": ("pool.acquire_total", {"outcome": "miss"}),
    "recycled": ("pool.release_total", {"outcome": "recycled"}),
    "discarded": ("pool.release_total", {"outcome": "discarded"}),
    "evicted": ("pool.evicted_total", {}),
}

_COUNTER_NAMES = ("hits", "misses", "recycled", "discarded", "evicted")


@dataclass(frozen=True)
class PoolStats:
    """Typed snapshot of the pool's usage counters.

    ``hits``/``misses`` count acquire outcomes, ``recycled``/
    ``discarded`` count release outcomes, ``evicted`` counts idle
    sessions dropped for age, use limits or the idle TTL; ``idle`` is
    the number of sessions parked at snapshot time.
    """

    hits: int = 0
    misses: int = 0
    recycled: int = 0
    discarded: int = 0
    evicted: int = 0
    idle: int = 0

    @property
    def acquires(self) -> int:
        """Total acquire calls (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires served from the pool (0.0 when idle)."""
        total = self.acquires
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """The five counters as a plain dict (legacy shape)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "recycled": self.recycled,
            "discarded": self.discarded,
            "evicted": self.evicted,
        }


class _Shard:
    """One independent sub-pool: its own lock, free-lists and counters."""

    __slots__ = ("lock", "idle", "counters")

    def __init__(self):
        self.lock = threading.Lock()
        self.idle: Dict[Tuple, Deque] = {}
        self.counters = {name: 0 for name in _COUNTER_NAMES}

    def idle_total(self) -> int:
        return sum(len(q) for q in self.idle.values())


class SessionPool:
    """Sharded keyed free-list of reusable sessions with statistics."""

    def __init__(
        self,
        max_idle_per_origin: int = 16,
        max_session_uses: Optional[int] = None,
        max_session_age: Optional[float] = None,
        clock=None,
        metrics=None,
        shards: int = 8,
        idle_ttl: Optional[float] = None,
    ):
        if max_idle_per_origin < 0:
            raise ValueError("max_idle_per_origin must be >= 0")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError("idle_ttl must be > 0 seconds")
        self.max_idle_per_origin = max_idle_per_origin
        self.max_session_uses = max_session_uses
        self.max_session_age = max_session_age
        #: Seconds a session may sit parked before the reaper drops it.
        self.idle_ttl = idle_ttl
        self._clock = clock or (lambda: 0.0)
        #: Optional :class:`~repro.obs.MetricsRegistry` mirror.
        self.metrics = metrics
        self._shards: List[_Shard] = [_Shard() for _ in range(shards)]

    # -- sharding -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """How many independent sub-pools the origins map onto."""
        return len(self._shards)

    def _shard_index(self, origin: Tuple) -> int:
        # CRC32 over the repr: stable across processes (unlike hash()),
        # so shard-labeled metrics are reproducible run to run.
        return zlib.crc32(repr(origin).encode("utf-8")) % len(self._shards)

    def _shard_for(self, origin: Tuple) -> Tuple[int, _Shard]:
        index = self._shard_index(origin)
        return index, self._shards[index]

    def _enter(self, index: int, shard: _Shard) -> None:
        """Take a shard lock, counting contended acquisitions."""
        if shard.lock.acquire(blocking=False):
            return
        if self.metrics is not None:
            self.metrics.counter(
                "pool.shard.contended_total", shard=str(index)
            ).inc()
        shard.lock.acquire()

    # -- accounting -----------------------------------------------------------

    def _record(self, shard: _Shard, event: str) -> None:
        shard.counters[event] += 1
        if self.metrics is not None:
            name, labels = _EVENT_METRICS[event]
            self.metrics.counter(name, **labels).inc()

    @property
    def _counters(self) -> Dict[str, int]:
        """Aggregated counters over every shard (lock-free read)."""
        totals = {name: 0 for name in _COUNTER_NAMES}
        for shard in self._shards:
            for name in _COUNTER_NAMES:
                totals[name] += shard.counters[name]
        return totals

    def stats(self) -> PoolStats:
        """Frozen point-in-time :class:`PoolStats` snapshot."""
        return self._snapshot()

    def _snapshot(self) -> PoolStats:
        return PoolStats(idle=self._idle_total(), **self._counters)

    def _idle_total(self) -> int:
        return sum(shard.idle_total() for shard in self._shards)

    def _update_idle_gauges(self, index: int, shard: _Shard) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge("pool.idle_sessions").set(self._idle_total())
        self.metrics.gauge("pool.shard.idle", shard=str(index)).set(
            shard.idle_total()
        )

    # -- pool operations ------------------------------------------------------

    def acquire(self, origin: Tuple):
        """Pop an idle reusable session for ``origin``; None on miss."""
        index, shard = self._shard_for(origin)
        self._enter(index, shard)
        try:
            queue = shard.idle.get(origin)
            dropped = False
            while queue:
                session = queue.pop()  # LIFO: prefer the warmest
                if self._expired(session):
                    self._record(shard, "evicted")
                    session.discard()
                    dropped = True
                    continue
                if not session.reusable:
                    self._record(shard, "discarded")
                    session.discard()
                    dropped = True
                    continue
                if dropped:
                    self._update_idle_gauges(index, shard)
                self._record(shard, "hits")
                return session
            if dropped:
                self._update_idle_gauges(index, shard)
            self._record(shard, "misses")
            return None
        finally:
            shard.lock.release()

    def release(self, session) -> None:
        """Return a session after use; recycled only if clean."""
        index, shard = self._shard_for(session.origin)
        self._enter(index, shard)
        try:
            queue = shard.idle.get(session.origin)
            if (
                not session.reusable
                # The session was busy until now, not parked, so the
                # idle TTL does not apply at release time.
                or self._expired(session, check_idle=False)
                or (queue is not None and len(queue) >= self.max_idle_per_origin)
                or self.max_idle_per_origin == 0
            ):
                self._record(shard, "discarded")
                session.discard()
                return
            if queue is None:
                queue = shard.idle[session.origin] = deque()
            self._record(shard, "recycled")
            session.last_released = self._clock()
            queue.append(session)
            self._update_idle_gauges(index, shard)
        finally:
            shard.lock.release()

    def _expired(self, session, check_idle: bool = True) -> bool:
        if (
            self.max_session_uses is not None
            and session.requests_sent >= self.max_session_uses
        ):
            return True
        now = None
        if self.max_session_age is not None:
            now = self._clock()
            if now - session.created_at > self.max_session_age:
                return True
        if check_idle and self.idle_ttl is not None:
            if now is None:
                now = self._clock()
            if now - session.last_released > self.idle_ttl:
                return True
        return False

    def idle_count(self, origin: Optional[Tuple] = None) -> int:
        """Idle sessions for one origin (or in total)."""
        if origin is None:
            return self._idle_total()
        index, shard = self._shard_for(origin)
        self._enter(index, shard)
        try:
            return len(shard.idle.get(origin, ()))
        finally:
            shard.lock.release()

    def reap(self) -> int:
        """Evict idle sessions that outlived their limits, oldest first.

        Scans every shard's free-lists in LRU order (the head of each
        deque is the longest-parked session) and drops the ones the
        ``idle_ttl`` / ``max_session_age`` / ``max_session_uses``
        limits disqualify. Returns how many were dropped; each lands in
        ``pool.evicted_total`` and ``pool.reaped_total``.
        """
        dropped = 0
        for index, shard in enumerate(self._shards):
            self._enter(index, shard)
            try:
                shard_dropped = 0
                for origin in list(shard.idle):
                    queue = shard.idle[origin]
                    while queue and self._expired(queue[0]):
                        queue.popleft().discard()
                        self._record(shard, "evicted")
                        shard_dropped += 1
                    if not queue:
                        del shard.idle[origin]
                if shard_dropped:
                    self._update_idle_gauges(index, shard)
                    dropped += shard_dropped
            finally:
                shard.lock.release()
        if dropped and self.metrics is not None:
            self.metrics.counter("pool.reaped_total").inc(dropped)
        return dropped

    def purge_origin(self, origin: Tuple) -> int:
        """Discard every idle session for one origin (counted evicted).

        Called by the :class:`~repro.resilience.BreakerBoard` when an
        endpoint's circuit opens: warm connections to a host that just
        failed ``threshold`` times in a row are more likely half-dead
        than warm, so they are dropped with the breaker.
        """
        index, shard = self._shard_for(origin)
        self._enter(index, shard)
        try:
            queue = shard.idle.pop(origin, None)
            if not queue:
                return 0
            dropped = 0
            while queue:
                queue.pop().discard()
                self._record(shard, "evicted")
                dropped += 1
            self._update_idle_gauges(index, shard)
            return dropped
        finally:
            shard.lock.release()

    def clear(self) -> int:
        """Discard every idle session; returns how many were dropped."""
        dropped = 0
        for index, shard in enumerate(self._shards):
            self._enter(index, shard)
            try:
                for queue in shard.idle.values():
                    while queue:
                        queue.pop().discard()
                        dropped += 1
                shard.idle.clear()
            finally:
                shard.lock.release()
        return dropped
