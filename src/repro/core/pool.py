"""Dynamic connection pool with session recycling (paper Figure 2).

The pool keeps idle keep-alive sessions keyed by origin
``(scheme, host, port)``. Requests *acquire* a session (reusing a warm
TCP connection — and its grown congestion window — whenever one is
idle) and *release* it afterwards; dirty or non-reusable sessions are
discarded instead of recycled. A ``threading.Lock`` makes the dispatch
thread-safe on the socket runtime; on the single-threaded simulator it
is simply uncontended.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Deque, Dict, Optional, Tuple

from collections import deque

__all__ = ["SessionPool"]


class SessionPool:
    """Keyed free-list of reusable sessions with usage statistics."""

    def __init__(
        self,
        max_idle_per_origin: int = 16,
        max_session_uses: Optional[int] = None,
        max_session_age: Optional[float] = None,
        clock=None,
    ):
        if max_idle_per_origin < 0:
            raise ValueError("max_idle_per_origin must be >= 0")
        self.max_idle_per_origin = max_idle_per_origin
        self.max_session_uses = max_session_uses
        self.max_session_age = max_session_age
        self._clock = clock or (lambda: 0.0)
        self._idle: Dict[Tuple, Deque] = defaultdict(deque)
        self._lock = threading.Lock()
        self.stats = {
            "hits": 0,
            "misses": 0,
            "recycled": 0,
            "discarded": 0,
            "evicted": 0,
        }

    def acquire(self, origin: Tuple):
        """Pop an idle reusable session for ``origin``; None on miss."""
        with self._lock:
            queue = self._idle.get(origin)
            while queue:
                session = queue.pop()  # LIFO: prefer the warmest
                if self._expired(session):
                    self.stats["evicted"] += 1
                    session.discard()
                    continue
                if not session.reusable:
                    self.stats["discarded"] += 1
                    session.discard()
                    continue
                self.stats["hits"] += 1
                return session
            self.stats["misses"] += 1
            return None

    def release(self, session) -> None:
        """Return a session after use; recycled only if clean."""
        with self._lock:
            if (
                not session.reusable
                or self._expired(session)
                or len(self._idle[session.origin])
                >= self.max_idle_per_origin
            ):
                self.stats["discarded"] += 1
                session.discard()
                return
            self.stats["recycled"] += 1
            session.last_released = self._clock()
            self._idle[session.origin].append(session)

    def _expired(self, session) -> bool:
        if (
            self.max_session_uses is not None
            and session.requests_sent >= self.max_session_uses
        ):
            return True
        if self.max_session_age is not None:
            age = self._clock() - session.created_at
            if age > self.max_session_age:
                return True
        return False

    def idle_count(self, origin: Optional[Tuple] = None) -> int:
        """Idle sessions for one origin (or in total)."""
        with self._lock:
            if origin is not None:
                return len(self._idle.get(origin, ()))
            return sum(len(q) for q in self._idle.values())

    def clear(self) -> int:
        """Discard every idle session; returns how many were dropped."""
        with self._lock:
            dropped = 0
            for queue in self._idle.values():
                while queue:
                    queue.pop().discard()
                    dropped += 1
            self._idle.clear()
            return dropped
