"""DavFile: remote-file operations over HTTP (the davix file API).

Implements the data-access surface the paper's analysis jobs use:

* ``stat`` via HEAD (PROPFIND fallback);
* full-object reads (optionally streamed into a sink);
* positional reads via single Range requests;
* **vectored reads** via multi-range requests (Section 2.3) with
  transparent fallback when the server lacks multi-range support;
* Metalink retrieval (Section 2.4).

Every method is an effect sub-op; :class:`~repro.core.client.DavixClient`
offers the synchronous facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.concurrency import bounded_gather
from repro.core.context import Context, RequestParams
from repro.core.engine import TransferEngine
from repro.core.request import execute_request
from repro.core.vectored import (
    PartTable,
    missing_ranges,
    plan_vector,
    scatter_parts,
)
from repro.errors import (
    FileNotFound,
    HttpParseError,
    PermissionDenied,
    RequestError,
)
from repro.http import (
    Headers,
    RangeSpec,
    Request,
    Response,
    Url,
    decode_byteranges,
    format_range_header,
)
from repro.http.headers import parse_cache_control
from repro.http.multipart import MultipartStream, content_type_boundary
from repro.http.ranges import parse_content_range
from repro.metalink import METALINK_MEDIA_TYPE, Metalink, parse_metalink

__all__ = ["FileStat", "DavFile"]


@dataclass(frozen=True)
class FileStat:
    """POSIX-flavoured metadata of a remote resource."""

    size: int
    mtime: Optional[float]
    is_directory: bool
    etag: Optional[str] = None


def _merge_spans(spans: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and merge overlapping/adjacent ``(offset, length)`` spans."""
    merged: List[Tuple[int, int]] = []
    for offset, length in sorted(spans):
        if merged and offset <= merged[-1][0] + merged[-1][1]:
            end = max(merged[-1][0] + merged[-1][1], offset + length)
            merged[-1] = (merged[-1][0], end - merged[-1][0])
        else:
            merged.append((offset, length))
    return merged


def _content_range_total(response: Response) -> Optional[int]:
    """The object size a ``Content-Range`` header reveals, if any.

    Handles both the satisfied form (``bytes a-b/N``) and the 416
    unsatisfied form (``bytes */N``), which is how a past-EOF probe
    still teaches the cache the object's length.
    """
    value = response.headers.get("Content-Range")
    if value is None:
        return None
    value = value.strip()
    if value.lower().startswith("bytes */"):
        try:
            return int(value[len("bytes */"):].strip())
        except ValueError:
            return None
    try:
        _offset, _length, total = parse_content_range(value)
    except HttpParseError:
        return None
    return total


def _cache_ttl(response: Response) -> Optional[float]:
    """The page-cache TTL a response's ``Cache-Control`` dictates.

    ``None`` = no freshness directive (cacheable, unbounded); ``0.0``
    = the origin forbids reuse (``no-store``/``no-cache``/
    ``max-age=0``); a positive value = ``max-age`` seconds.
    """
    value = response.headers.get("Cache-Control")
    if value is None:
        return None
    directives = parse_cache_control(value)
    if "no-store" in directives or "no-cache" in directives:
        return 0.0
    max_age = directives.get("max-age")
    if max_age is None:
        return None
    try:
        return max(0.0, float(max_age))
    except (TypeError, ValueError):
        return None


def raise_for_status(response: Response, path: str) -> None:
    """Map HTTP error statuses onto the davix exception hierarchy."""
    if response.status == 404:
        raise FileNotFound(path)
    if response.status in (401, 403):
        raise PermissionDenied(path, response.status)
    if response.status >= 400:
        raise RequestError(
            f"{path}: HTTP {response.status} {response.reason}",
            status=response.status,
        )


class DavFile:
    """One remote resource addressed by URL.

    ``read_ahead`` overrides ``params.transfer.read_ahead`` for this
    file: ``True`` arms the pipelined transfer engine
    (:class:`~repro.core.engine.TransferEngine`), ``False`` pins the
    demanded path, ``None`` (default) follows the config.
    """

    def __init__(
        self,
        context: Context,
        url,
        params: Optional[RequestParams] = None,
        read_ahead: Optional[bool] = None,
    ):
        self.context = context
        self.url = url if isinstance(url, Url) else Url.parse(url)
        self.params = params or context.params
        self.transfer = self.params.effective_transfer()
        armed = (
            self.transfer.read_ahead if read_ahead is None else read_ahead
        )
        self._engine: Optional[TransferEngine] = (
            TransferEngine(self, self.transfer) if armed else None
        )
        # The page cache is context-owned (one per Context, shared by
        # every file), so repeated opens of the same URL reuse pages.
        self._cache_key = str(self.url)
        self._pagecache = context.page_cache_for(self.transfer)

    # -- read-ahead engine --------------------------------------------------

    @property
    def read_ahead_enabled(self) -> bool:
        """Is the pipelined transfer engine armed on this file?"""
        return self._engine is not None

    @property
    def engine(self) -> Optional[TransferEngine]:
        """The armed :class:`TransferEngine`, if any (stats, window)."""
        return self._engine

    def prefetch(
        self,
        segments: Sequence[Tuple[int, int]],
        replace: bool = False,
    ) -> TransferEngine:
        """Feed ``(offset, length)`` segments to the read-ahead plan.

        Arms the transfer engine if it is not already; pure
        bookkeeping — speculative fetches launch lazily as subsequent
        ``pread``/``pread_vec`` calls pump the window. With
        ``replace=True`` the previous plan is abandoned first: its
        in-flight speculative batches are cancelled (counted in
        ``engine.cancelled_batches_total``) rather than drained
        uselessly. Returns the engine (stats and window state live
        there).
        """
        if self._engine is None:
            self._engine = TransferEngine(self, self.transfer)
        elif replace:
            self._engine.abandon()
        self._engine.prefetch(segments)
        return self._engine

    def drain(self):
        """Effect sub-op: join outstanding speculative fetches.

        Call before tearing down the runtime when read-ahead is armed;
        a no-op otherwise.
        """
        if self._engine is not None:
            yield from self._engine.drain()

    def close(self):
        """Effect sub-op: abandon the read-ahead plan and clean up.

        In-flight speculative batches are cancelled (their window
        slots free immediately, ``engine.cancelled_batches_total``
        counts them) and their already-spawned tasks joined. A no-op
        without the engine armed; the file object stays usable.
        """
        if self._engine is not None:
            self._engine.abandon()
            yield from self._engine.drain()

    # -- metadata ---------------------------------------------------------------

    def stat(self):
        """Effect sub-op: (size, mtime, type) via HEAD, PROPFIND fallback."""
        response, _ = yield from execute_request(
            self.context, self.url, Request("HEAD", self.url.target),
            self.params,
        )
        if response.status == 405:
            stat = yield from self._stat_propfind()
            return stat
        raise_for_status(response, self.url.path)
        return FileStat(
            size=response.headers.get_int("Content-Length") or 0,
            mtime=None,
            is_directory=False,
            etag=response.headers.get("ETag"),
        )

    def _stat_propfind(self):
        from repro.server.webdav import parse_multistatus

        request = Request(
            "PROPFIND", self.url.target, Headers([("Depth", "0")])
        )
        response, _ = yield from execute_request(
            self.context, self.url, request, self.params
        )
        raise_for_status(response, self.url.path)
        resources = parse_multistatus(response.body)
        if not resources:
            raise FileNotFound(self.url.path)
        res = resources[0]
        return FileStat(
            size=res.size,
            mtime=res.mtime,
            is_directory=res.is_collection,
            etag=res.etag,
        )

    def exists(self):
        """Effect sub-op: does the resource exist?"""
        try:
            yield from self.stat()
        except FileNotFound:
            return False
        return True

    # -- whole-object I/O ---------------------------------------------------------

    def read_all(self, sink: Optional[Callable[[bytes], None]] = None):
        """Effect sub-op: GET the full object.

        Returns the bytes, or the total length when ``sink`` is given
        (chunks stream into the sink).
        """
        def factory(head: Response):
            return sink if sink is not None and head.ok else None

        request = Request("GET", self.url.target)
        response, _ = yield from execute_request(
            self.context,
            self.url,
            request,
            self.params,
            sink_factory=factory if sink is not None else None,
        )
        raise_for_status(response, self.url.path)
        if sink is not None:
            streamed = response.headers.get_int("Content-Length") or 0
            self._charge_delivery(0, streamed)
            return streamed
        self._charge_delivery(0, len(response.body))
        return response.body

    def write_all(self, data: bytes, content_type="application/octet-stream"):
        """Effect sub-op: PUT the full object (idempotent update)."""
        request = Request(
            "PUT",
            self.url.target,
            Headers([("Content-Type", content_type)]),
            body=data,
        )
        response, _ = yield from execute_request(
            self.context, self.url, request, self.params
        )
        raise_for_status(response, self.url.path)
        return response.status

    def delete(self):
        """Effect sub-op: DELETE the object."""
        response, _ = yield from execute_request(
            self.context,
            self.url,
            Request("DELETE", self.url.target),
            self.params,
        )
        raise_for_status(response, self.url.path)

    # -- positional I/O -----------------------------------------------------------

    def pread(self, offset: int, length: int):
        """Effect sub-op: read ``length`` bytes at ``offset``.

        With the page cache armed the cached pages are consulted
        before anything leaves the process (a full hit costs no round
        trip; a partial hit fetches only the missing page-aligned
        spans). With the transfer engine armed the read is then
        offered to the speculative window (a plan hit costs no round
        trip); a miss falls through to the demanded single-range
        request.
        """
        if length == 0:
            return b""
        offset, length = int(offset), int(length)
        if self._pagecache is not None and not self._pagecache.suppressed(
            self._cache_key
        ):
            data = yield from self._pread_cached(offset, length)
            return data
        if self._engine is not None:
            hit = yield from self._engine.read_single(offset, length)
            if hit is not None:
                self._charge_delivery(0, len(hit))
                return hit
        data = yield from self._pread_demand(offset, length)
        return data

    # -- byte provenance ----------------------------------------------------

    def _charge_delivery(self, cached: int, network: int) -> None:
        """Attribute delivered payload bytes to their source.

        Every byte a positional read hands back is charged to exactly
        one of ``provenance.bytes_total{source=page-cache}`` (served
        from the client page cache) or ``{source=network}`` (arrived
        over the wire for this read) — the client half of the
        cluster-wide byte-provenance ledger
        (:func:`repro.obs.analyze.byte_provenance`). Delivered bytes
        only: page-aligned overfetch is charged when (if ever) it is
        later read back out of the cache.
        """
        if cached > 0:
            self.context.metrics.counter(
                "provenance.bytes_total", source="page-cache"
            ).inc(cached)
        if network > 0:
            self.context.metrics.counter(
                "provenance.bytes_total", source="network"
            ).inc(network)

    # -- page-cache plumbing ------------------------------------------------

    def _cache_insert(
        self, etag: Optional[str], pieces, response: Optional[Response] = None
    ) -> None:
        """Feed response bytes into the page cache (no-op when off).

        ``pieces`` yields ``(offset, data, total)``; only pages fully
        covered by a piece are stored, and a stale ETag invalidates
        before anything lands (see :meth:`PageCache.insert`). When
        ``response`` is given its ``Cache-Control`` header becomes the
        insert's TTL: ``no-store``/``no-cache``/``max-age=0`` keep the
        bytes out of the cache; ``max-age=N`` bounds their freshness.
        """
        cache = self._pagecache
        if cache is None:
            return
        ttl = _cache_ttl(response) if response is not None else None
        for offset, data, total in pieces:
            cache.insert(
                self._cache_key, etag, offset, data, total=total, ttl=ttl
            )

    def _cache_probe(self, offset: int, length: int):
        """Accounting cache lookup, timed as the ``cache-lookup`` phase."""
        started = self.context.clock()
        data, missing = self._pagecache.lookup(
            self._cache_key, offset, length
        )
        self.context.metrics.histogram(
            "request.phase_seconds", phase="cache-lookup"
        ).observe(self.context.clock() - started)
        return data, missing

    def _pread_cached(self, offset: int, length: int):
        """The cache-fronted positional read: probe, gap-fill, re-probe."""
        cache = self._pagecache
        data, missing = self._cache_probe(offset, length)
        if data is not None:
            self._charge_delivery(len(data), 0)
            return data
        if self._engine is not None:
            hit = yield from self._engine.read_single(offset, length)
            if hit is not None:
                self._charge_delivery(0, len(hit))
                return hit
        # Bytes already resident at probe time stay "page-cache" even
        # though the read completes after the gap fill.
        resident = length - sum(n for _, n in missing)
        # Fill only the missing page-aligned spans. The re-probe loop
        # tolerates an ETag change mid-fill (the insert invalidates,
        # widening the gaps) but gives up when filling stops making
        # progress — a budget smaller than the read cannot converge.
        for _ in range(3):
            if missing:
                yield from self._fetch_spans(missing)
            data = cache.read(self._cache_key, offset, length)
            if data is not None:
                cached = min(len(data), max(0, resident))
                self._charge_delivery(cached, len(data) - cached)
                return data
            again = cache.missing_spans(self._cache_key, offset, length)
            if again == missing:
                break
            missing = again
        data = yield from self._pread_demand(offset, length)
        return data

    def _fetch_spans(self, spans, parent_span=None):
        """Effect sub-op: fetch ``(offset, length)`` spans into the cache.

        The spans (page-aligned gaps from ``missing_spans``) pack into
        coalesced multi-range GETs — at most ``max_vector_ranges`` per
        request — and every response lands in the page cache under the
        ETag it arrived with. Returns ``(etag, total)`` as learned
        from the responses; the caller re-probes the cache for bytes.
        """
        etag = None
        total = None
        max_ranges = max(1, self.params.max_vector_ranges)
        for start in range(0, len(spans), max_ranges):
            batch = spans[start : start + max_ranges]
            specs = [
                RangeSpec.from_offset_length(o, n) for o, n in batch
            ]
            request = Request(
                "GET",
                self.url.target,
                Headers([("Range", format_range_header(specs))]),
            )
            response, _ = yield from execute_request(
                self.context, self.url, request, self.params,
                idempotent=True,
                parent_span=parent_span,
            )
            if response.status == 416:
                # Past EOF: the unsatisfied Content-Range still
                # teaches the cache the object's length.
                total = _content_range_total(response)
                if total is not None:
                    self._cache_insert(
                        response.headers.get("ETag"),
                        [(0, b"", total)],
                        response=response,
                    )
                continue
            raise_for_status(response, self.url.path)
            etag = response.headers.get("ETag")
            if response.status == 206:
                content_type = response.content_type
                if content_type.lower().startswith("multipart/byteranges"):
                    try:
                        boundary = content_type_boundary(content_type)
                        parts = decode_byteranges(
                            response.body, boundary, copy=False
                        )
                    except HttpParseError as exc:
                        raise RequestError(
                            f"bad multipart response: {exc}"
                        ) from exc
                    for part in parts:
                        if part.total is not None:
                            total = part.total
                    self._cache_insert(
                        etag,
                        [(p.offset, p.data, p.total) for p in parts],
                        response=response,
                    )
                else:
                    content_range = response.headers.get("Content-Range")
                    if content_range is None:
                        raise RequestError("206 without Content-Range")
                    offset, _length, part_total = parse_content_range(
                        content_range
                    )
                    if part_total is not None:
                        total = part_total
                    self._cache_insert(
                        etag,
                        [(offset, response.body, part_total)],
                        response=response,
                    )
            else:
                # 200: no range support — the whole object came back.
                total = len(response.body)
                self._cache_insert(
                    etag, [(0, response.body, total)], response=response
                )
        return etag, total

    def _pread_demand(self, offset: int, length: int):
        """The demanded single-range read (no speculation)."""
        header = format_range_header(
            [RangeSpec.from_offset_length(offset, length)]
        )
        request = Request(
            "GET", self.url.target, Headers([("Range", header)])
        )
        response, _ = yield from execute_request(
            self.context, self.url, request, self.params
        )
        if response.status == 416:
            total = _content_range_total(response)
            if total is not None:
                self._cache_insert(
                    response.headers.get("ETag"),
                    [(0, b"", total)],
                    response=response,
                )
            return b""  # read past EOF: POSIX-style short read
        raise_for_status(response, self.url.path)
        if response.status == 206:
            content_range = response.headers.get("Content-Range")
            if content_range is not None:
                try:
                    body_offset, _n, total = parse_content_range(
                        content_range
                    )
                except HttpParseError:
                    body_offset, total = offset, None
                self._cache_insert(
                    response.headers.get("ETag"),
                    [(body_offset, response.body, total)],
                    response=response,
                )
            self._charge_delivery(0, len(response.body))
            return response.body
        # Server ignored the Range header: slice the full body.
        self._cache_insert(
            response.headers.get("ETag"),
            [(0, response.body, len(response.body))],
            response=response,
        )
        piece = response.body[offset : offset + length]
        self._charge_delivery(0, len(piece))
        return piece

    def pread_vec(self, reads: Sequence[Tuple[int, int]]):
        """Effect sub-op: vectored read -> list of bytes, input order.

        This is the paper's flagship feature: the reads are coalesced
        and packed into at most ``ceil(n_ranges/max_vector_ranges)``
        multi-range requests, each answered by one
        ``multipart/byteranges`` response. With
        ``transfer.max_inflight > 1`` the batches dispatch
        concurrently, each on its own pooled session with its own
        retry/deadline/breaker envelope; partial responses refetch only
        their ``missing_ranges``. With the transfer engine armed
        (``transfer.read_ahead`` / :meth:`prefetch`) the reads route
        through the speculative window instead. The decode → scatter
        path is zero-copy (``memoryview`` slices over each response
        buffer) until the per-fragment ``bytes`` materialise — the
        only copy, accounted in ``vector.copy_bytes_total``.
        """
        reads = [(int(offset), int(length)) for offset, length in reads]
        if any(length == 0 for _, length in reads):
            # Zero-length reads answer b"" locally on every path; only
            # the real reads hit the planner (which rejects empty
            # fragments) or the engine.
            kept = [
                (index, read)
                for index, read in enumerate(reads)
                if read[1] > 0
            ]
            results: List[bytes] = [b""] * len(reads)
            if kept:
                pieces = yield from self.pread_vec(
                    [read for _, read in kept]
                )
                for (index, _), piece in zip(kept, pieces):
                    results[index] = piece
            return results
        transfer = self.params.effective_transfer()
        if self._pagecache is not None and not self._pagecache.suppressed(
            self._cache_key
        ):
            results = yield from self._pread_vec_cached(reads, transfer)
            return results
        if self._engine is not None:
            results = yield from self._engine.read_vec(reads)
            self._charge_delivery(0, sum(len(r) for r in results))
            return results
        results = yield from self._pread_vec_demand(
            reads, transfer.max_inflight
        )
        return results

    def _pread_vec_cached(self, reads: Sequence[Tuple[int, int]], transfer):
        """The cache-fronted vectored read.

        Each fragment is probed individually (per-fragment hit/miss
        accounting); the misses' missing spans merge into one gap list
        fetched as coalesced multi-range requests — or, with the
        engine armed, the misses route through the speculative window
        unchanged.
        """
        cache = self._pagecache
        key = self._cache_key
        reads = [(int(offset), int(length)) for offset, length in reads]
        results: List[Optional[bytes]] = [None] * len(reads)
        started = self.context.clock()
        pending: List[int] = []
        spans: List[Tuple[int, int]] = []
        resident: Dict[int, int] = {}
        for index, (offset, length) in enumerate(reads):
            if length == 0:
                results[index] = b""
                continue
            data, missing = cache.lookup(key, offset, length)
            if data is not None:
                results[index] = data
                self._charge_delivery(len(data), 0)
            else:
                pending.append(index)
                spans.extend(missing)
                resident[index] = length - sum(n for _, n in missing)
        self.context.metrics.histogram(
            "request.phase_seconds", phase="cache-lookup"
        ).observe(self.context.clock() - started)
        if not pending:
            return results
        if self._engine is not None:
            pieces = yield from self._engine.read_vec(
                [reads[index] for index in pending]
            )
            for index, piece in zip(pending, pieces):
                results[index] = piece
                self._charge_delivery(0, len(piece))
            return results
        spans = _merge_spans(spans)
        for _ in range(3):
            if spans:
                yield from self._fetch_spans(spans)
            unresolved: List[int] = []
            for index in pending:
                data = cache.read(key, *reads[index])
                if data is not None:
                    results[index] = data
                    cached = min(
                        len(data), max(0, resident.get(index, 0))
                    )
                    self._charge_delivery(cached, len(data) - cached)
                else:
                    unresolved.append(index)
            pending = unresolved
            if not pending:
                return results
            again = _merge_spans(
                [
                    span
                    for index in pending
                    for span in cache.missing_spans(key, *reads[index])
                ]
            )
            if again == spans:
                break  # filling stopped converging: demand the rest
            spans = again
        pieces = yield from self._pread_vec_demand(
            [reads[index] for index in pending], transfer.max_inflight
        )
        for index, piece in zip(pending, pieces):
            results[index] = piece
        return results

    def _pread_vec_demand(
        self, reads: Sequence[Tuple[int, int]], max_inflight: int = 1
    ):
        """The demanded vectored read: plan, fetch, scatter."""
        plan = plan_vector(
            reads,
            max_ranges=self.params.max_vector_ranges,
            gap=self.params.vector_gap,
        )
        if not plan.fragments:
            return []
        self.context.bump("vector_requests", len(plan.batches))
        self.context.bump("vector_fragments", len(plan.fragments))
        metrics = self.context.metrics
        metrics.counter("vector.round_trips_total").inc(len(plan.batches))
        metrics.counter("vector.fragments_total").inc(len(plan.fragments))
        metrics.counter("vector.ranges_total").inc(plan.total_ranges)
        metrics.counter("vector.fragments_coalesced_total").inc(
            len(plan.fragments) - plan.total_ranges
        )
        metrics.counter("vector.requested_bytes_total").inc(
            plan.requested_bytes
        )
        # Overlapping fragments can make the merged ranges smaller than
        # the sum of requests; only true gap overhead is counted.
        metrics.counter("vector.overhead_bytes_total").inc(
            max(0, plan.total_request_bytes - plan.requested_bytes)
        )

        inflight = min(max_inflight, len(plan.batches))
        span = self.context.tracer.start(
            "pread-vec",
            url=str(self.url),
            fragments=len(plan.fragments),
            ranges=plan.total_ranges,
            inflight=max(1, inflight),
        )
        try:
            results: Dict[int, bytes] = {}
            if inflight <= 1:
                for index, batch in enumerate(plan.batches):
                    scattered = yield from self._fetch_scatter(
                        batch, span, index
                    )
                    results.update(scattered)
            else:
                metrics.counter("vector.parallel_dispatch_total").inc()
                gauge = metrics.gauge("vector.inflight")

                def job(batch, index):
                    def thunk():
                        scattered = yield from self._fetch_scatter(
                            batch, span, index
                        )
                        return scattered

                    return thunk

                outcomes = yield from bounded_gather(
                    [
                        job(batch, index)
                        for index, batch in enumerate(plan.batches)
                    ],
                    limit=inflight,
                    name="vec-batch",
                    on_start=lambda: gauge.add(1),
                    on_finish=lambda: gauge.add(-1),
                )
                for outcome in outcomes:
                    results.update(outcome.unwrap())
        finally:
            span.end()
        pieces = [results[i] for i in range(len(plan.fragments))]
        self._charge_delivery(0, sum(len(p) for p in pieces))
        return pieces

    def _fetch_scatter(self, batch, parent_span, index: int):
        """Fetch one batch and scatter its fragments.

        The per-batch child span is explicitly parented (concurrent
        batches interleave, so implicit stack parenting would
        cross-nest); the materialised fragment bytes land in
        ``vector.copy_bytes_total`` — exactly one copy per fragment on
        the zero-copy path.
        """
        batch_span = parent_span.child(
            "vec-batch", batch=index, ranges=len(batch)
        )
        try:
            parts = yield from self._fetch_batch_covered(batch, batch_span)
            scattered = scatter_parts(batch, parts)
        finally:
            batch_span.end()
        self.context.metrics.counter("vector.copy_bytes_total").inc(
            sum(len(piece) for piece in scattered.values())
        )
        return scattered

    def _fetch_batch_covered(self, batch, parent_span=None, stream=False):
        """Fetch one batch, re-requesting any ranges the response left
        uncovered (a reset mid-multipart-body, a server honouring only
        some ranges). Multi-range GETs are idempotent, so the refetch
        is always retry-safe; rounds are bounded by the retry policy's
        attempt budget.
        """
        parts = yield from self._fetch_batch(batch, parent_span, stream)
        rounds = self.params.effective_retry_policy().max_attempts - 1
        missing = missing_ranges(batch, parts)
        while missing and rounds > 0:
            rounds -= 1
            self.context.metrics.counter(
                "vector.refetch_batches_total"
            ).inc()
            self.context.metrics.counter(
                "vector.refetch_ranges_total"
            ).inc(len(missing))
            more = yield from self._fetch_batch(missing, parent_span, stream)
            parts.merge(more)
            missing = missing_ranges(batch, parts)
        # Still-missing ranges surface through scatter_parts, which
        # raises the caller-facing RequestError.
        return parts

    def _fetch_batch(self, batch, parent_span=None, stream=False):
        """One multi-range request -> :class:`PartTable` of views.

        With ``stream=True`` a multipart body decodes incrementally as
        chunks arrive (:class:`~repro.http.multipart.MultipartStream`
        behind a streaming sink), overlapping decode with the transfer
        — the engine's speculative path. Each retry attempt gets a
        fresh decoder; non-multipart responses fall back to buffering.
        """
        specs = [
            RangeSpec.from_offset_length(rng.offset, rng.length)
            for rng in batch
        ]
        headers = Headers([("Range", format_range_header(specs))])
        request = Request("GET", self.url.target, headers)

        streamed: Dict[str, object] = {}
        sink_factory = None
        if stream:
            def sink_factory(head: Response):
                content_type = head.content_type
                if head.status != 206 or not content_type.lower().startswith(
                    "multipart/byteranges"
                ):
                    return None
                try:
                    boundary = content_type_boundary(content_type)
                except HttpParseError:
                    return None  # buffered decode reports the error
                decoder = MultipartStream(boundary)
                streamed["decoder"] = decoder
                streamed["seconds"] = 0.0

                def sink(chunk: bytes) -> None:
                    started = self.context.clock()
                    decoder.feed(chunk)
                    streamed["seconds"] += (
                        self.context.clock() - started
                    )

                return sink

        response, _ = yield from execute_request(
            self.context, self.url, request, self.params,
            sink_factory=sink_factory,
            idempotent=True,
            parent_span=parent_span,
        )
        raise_for_status(response, self.url.path)

        if response.status == 206:
            content_type = response.content_type
            if content_type.lower().startswith("multipart/byteranges"):
                if streamed.get("decoder") is not None and not response.body:
                    try:
                        parts = streamed["decoder"].close()
                    except HttpParseError as exc:
                        raise RequestError(
                            f"bad multipart response: {exc}"
                        ) from exc
                    decode_seconds = streamed["seconds"]
                else:
                    decode_started = self.context.clock()
                    try:
                        boundary = content_type_boundary(content_type)
                        parts = decode_byteranges(
                            response.body, boundary, copy=False
                        )
                    except HttpParseError as exc:
                        raise RequestError(
                            f"bad multipart response: {exc}"
                        ) from exc
                    decode_seconds = self.context.clock() - decode_started
                self.context.metrics.histogram(
                    "request.phase_seconds", phase="multipart-decode"
                ).observe(decode_seconds)
                if parent_span is not None:
                    parent_span.set(multipart_decode=decode_seconds)
                self._cache_insert(
                    response.headers.get("ETag"),
                    [(part.offset, part.data, part.total) for part in parts],
                    response=response,
                )
                totals = [
                    part.total for part in parts if part.total is not None
                ]
                return PartTable.from_parts(
                    ((part.offset, part.data) for part in parts),
                    total=totals[0] if totals else None,
                )
            content_range = response.headers.get("Content-Range")
            if content_range is None:
                raise RequestError("206 without Content-Range")
            offset, _length, total = parse_content_range(content_range)
            self._cache_insert(
                response.headers.get("ETag"),
                [(offset, response.body, total)],
                response=response,
            )
            return PartTable.from_parts(
                [(offset, response.body)], total=total
            )
        # 200: the server does not support (multi-)ranges — the whole
        # object came back; slice everything from it.
        self._cache_insert(
            response.headers.get("ETag"),
            [(0, response.body, len(response.body))],
            response=response,
        )
        return PartTable.from_parts(
            [(0, response.body)], total=len(response.body)
        )

    # -- metalink -----------------------------------------------------------------

    def get_metalink(self) -> Metalink:
        """Effect sub-op: fetch the Metalink document for this resource."""
        request = Request(
            "GET",
            self.url.target,
            Headers([("Accept", METALINK_MEDIA_TYPE)]),
        )
        response, _ = yield from execute_request(
            self.context, self.url, request, self.params
        )
        raise_for_status(response, self.url.path)
        if METALINK_MEDIA_TYPE not in response.content_type:
            raise RequestError(
                f"{self.url.path}: server returned "
                f"{response.content_type!r}, not a metalink"
            )
        return parse_metalink(response.body)
