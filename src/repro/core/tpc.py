"""HTTP third-party copy: multi-stream server-to-server transfers.

WLCG storage federations replicate datasets with the WebDAV COPY verb
driven in two modes: **pull** (COPY sent to the destination with a
``Source`` header — the destination fetches) and **push** (COPY sent to
the source with a remote ``Destination`` — the source uploads). Either
way the object bytes flow site-to-site; the orchestrating client only
sees control traffic plus a stream of ``Perf Marker`` progress frames
on the pending ``202 Accepted`` response, terminated by a
``success:``/``failure:`` line ("Systematic benchmarking of HTTPS third
party copy on 100Gbps links using XRootD", PAPERS.md).

This module is the *active side* of that protocol, run by the storage
server as deferred work (the server acts as a davix client towards its
peer):

* the object is split into fixed-size chunks (:func:`plan_chunks`, the
  same planning rule as :mod:`repro.core.multistream`);
* chunks move over N concurrent ranged GET (pull) or ranged PUT (push)
  lanes via :func:`~repro.concurrency.bounded_gather`, each lane
  retrying its chunk on transient failure on top of the per-request
  :class:`~repro.resilience.RetryPolicy`;
* pulls guard every range with ``If-Match`` so a source update
  mid-transfer surfaces as a clean failure instead of a version mix;
* the transfer ends with an RFC 3230 ``Digest`` comparison
  (``Want-Digest: adler32`` on the wire) — a mismatch is *never*
  reported as success and the destination is not committed.

Transfer spans join the orchestrating client's trace (the handler
passes the parsed ``Traceparent``), and per-chunk request spans
propagate onwards to the peer server, so one trace covers client,
active server and passive server.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.concurrency import Now, bounded_gather
from repro.errors import DavixError, NetworkError, RequestError
from repro.http import Headers, Request, Response, Url

__all__ = [
    "PERF_MARKER_MEDIA_TYPE",
    "TpcConfig",
    "PerfMarker",
    "TpcSummary",
    "plan_chunks",
    "parse_digest_header",
    "format_marker_stream",
    "parse_marker_stream",
    "run_pull",
    "run_push",
]

#: Content type of the 202 COPY response body (WLCG convention).
PERF_MARKER_MEDIA_TYPE = "text/perf-marker-stream"


@dataclass(frozen=True)
class TpcConfig:
    """Knobs of one third-party transfer (the active side)."""

    #: Concurrent transfer lanes (clamped to the chunk count).
    streams: int = 4
    #: Bytes per ranged GET/PUT chunk.
    chunk_size: int = 8 * 1024 * 1024
    #: RFC 3230 digest algorithm used end to end.
    digest: str = "adler32"
    #: Chunk-level retry budget on top of the per-request policy.
    chunk_retries: int = 2

    def __post_init__(self):
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.digest not in ("adler32", "md5"):
            raise ValueError(f"unsupported digest {self.digest!r}")
        if self.chunk_retries < 0:
            raise ValueError("chunk_retries must be >= 0")


@dataclass(frozen=True)
class PerfMarker:
    """One progress frame of the perf-marker stream."""

    timestamp: float
    stripe_index: int
    stripe_count: int
    bytes_transferred: int


@dataclass
class TpcSummary:
    """Parsed client view of a finished third-party copy."""

    ok: bool
    message: str
    markers: List[PerfMarker] = field(default_factory=list)

    @property
    def bytes_transferred(self) -> int:
        if not self.markers:
            return 0
        return max(marker.bytes_transferred for marker in self.markers)


def plan_chunks(size: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``size`` bytes into ``(offset, length)`` chunks.

    The final chunk absorbs the remainder (it may be a single byte);
    a zero-length object plans to no chunks at all.
    """
    if size < 0:
        raise ValueError("size must be >= 0")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        (offset, min(chunk_size, size - offset))
        for offset in range(0, size, chunk_size)
    ]


def parse_digest_header(value: Optional[str]) -> dict:
    """RFC 3230 ``Digest: algo=value, ...`` -> ``{algo: value}``."""
    digests = {}
    if not value:
        return digests
    for part in value.split(","):
        name, sep, digest = part.partition("=")
        if sep:
            digests[name.strip().lower()] = digest.strip()
    return digests


def _compute_digest(data, algo: str) -> str:
    if algo == "adler32":
        return f"{zlib.adler32(bytes(data)) & 0xFFFFFFFF:08x}"
    if algo == "md5":
        return hashlib.md5(bytes(data)).hexdigest()
    raise ValueError(f"unsupported digest {algo!r}")


# -- perf-marker stream (wire format) -----------------------------------------


def format_marker_stream(
    markers: List[PerfMarker], status_line: str
) -> bytes:
    """Render the 202 response body: frames then the status line."""
    lines: List[str] = []
    for marker in markers:
        lines += [
            "Perf Marker",
            f"Timestamp: {marker.timestamp:.6f}",
            f"Stripe Index: {marker.stripe_index}",
            f"Stripe Bytes Transferred: {marker.bytes_transferred}",
            f"Total Stripe Count: {marker.stripe_count}",
            "End",
        ]
    lines.append(status_line)
    return ("\n".join(lines) + "\n").encode("utf-8")


def parse_marker_stream(text) -> TpcSummary:
    """Parse a perf-marker body back into a :class:`TpcSummary`."""
    if isinstance(text, bytes):
        text = text.decode("utf-8", "replace")
    markers: List[PerfMarker] = []
    frame: dict = {}
    ok = False
    message = "transfer ended without a status line"
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "Perf Marker":
            frame = {}
        elif line == "End":
            markers.append(
                PerfMarker(
                    timestamp=float(frame.get("Timestamp", 0.0)),
                    stripe_index=int(frame.get("Stripe Index", 0)),
                    stripe_count=int(frame.get("Total Stripe Count", 0)),
                    bytes_transferred=int(
                        frame.get("Stripe Bytes Transferred", 0)
                    ),
                )
            )
        elif line.startswith("success:"):
            ok = True
            message = line[len("success:"):].strip()
        elif line.startswith("failure:"):
            ok = False
            message = line[len("failure:"):].strip()
        else:
            name, sep, value = line.partition(":")
            if sep:
                frame[name.strip()] = value.strip()
    return TpcSummary(ok=ok, message=message, markers=markers)


# -- the transfer engine ------------------------------------------------------


class _Progress:
    """Shared accounting of one transfer across its lanes."""

    __slots__ = ("bytes", "retries", "markers", "streams")

    def __init__(self, streams: int):
        self.bytes = 0
        self.retries = 0
        self.markers: List[PerfMarker] = []
        self.streams = streams

    def chunk_done(self, index: int, length: int, now: float) -> None:
        self.bytes += length
        self.markers.append(
            PerfMarker(
                timestamp=now,
                stripe_index=index % self.streams,
                stripe_count=self.streams,
                bytes_transferred=self.bytes,
            )
        )


def _setup_failure(metrics, span, reason) -> Response:
    """A 502 before any bytes moved (source unreachable/missing)."""
    if metrics is not None:
        metrics.counter("tpc.failures_total", stage="setup").inc()
    span.end(error=str(reason))
    body = f"third-party copy failed: {reason}\n".encode()
    return Response(
        502, Headers([("Content-Type", "text/plain")]), body
    )


def _transfer_failure(metrics, span, progress, reason) -> Response:
    """A 202 whose marker stream ends in ``failure:`` (bytes moved)."""
    if metrics is not None:
        metrics.counter("tpc.failures_total", stage="transfer").inc()
    span.end(error=str(reason))
    body = format_marker_stream(progress.markers, f"failure: {reason}")
    return Response(
        202, Headers([("Content-Type", PERF_MARKER_MEDIA_TYPE)]), body
    )


def _emit_event(events, mode, path, size, config, progress, started,
                now, ok, error=None):
    if events is None:
        return
    duration = now - started
    events.emit(
        "tpc",
        mode=mode,
        path=path,
        bytes=size if ok else progress.bytes,
        streams=progress.streams,
        chunks=len(progress.markers),
        retries=progress.retries,
        duration=duration,
        throughput=(size / duration) if ok and duration > 0 else 0.0,
        digest=config.digest,
        ok=ok,
        **({"error": str(error)} if error else {}),
    )


def _count_success(metrics, mode, size, progress):
    if metrics is None:
        return
    metrics.counter("tpc.transfers_total", mode=mode).inc()
    metrics.counter("tpc.bytes_total", mode=mode).inc(size)
    metrics.counter("tpc.chunks_total").inc(len(progress.markers))
    metrics.counter("tpc.streams_total").inc(progress.streams)


def run_pull(
    context,
    store,
    destination_path: str,
    source,
    config: Optional[TpcConfig] = None,
    metrics=None,
    events=None,
    trace_ctx=None,
):
    """Effect op: pull ``source`` into ``store`` at ``destination_path``.

    Runs on the *destination* server. Returns the Response for the
    pending COPY: 502 on setup failure, otherwise 202 with the
    perf-marker stream (``success:`` only after the digest verified
    and the object committed).
    """
    from repro.core.request import execute_request

    config = config or TpcConfig()
    source_url = source if isinstance(source, Url) else Url.parse(source)
    span = context.tracer.start(
        "tpc-transfer",
        root=trace_ctx is None,
        remote=trace_ctx,
        mode="pull",
        source=str(source_url),
        destination=destination_path,
    )
    started = yield Now()

    head = Request(
        "HEAD",
        source_url.target,
        Headers([("Want-Digest", config.digest)]),
    )
    try:
        response, _ = yield from execute_request(
            context, source_url, head, context.params, parent_span=span
        )
    except (DavixError, NetworkError) as exc:
        return _setup_failure(metrics, span, exc)
    if response.status >= 400:
        return _setup_failure(
            metrics, span, f"source HEAD returned {response.status}"
        )
    size = response.headers.get_int("Content-Length") or 0
    etag = response.headers.get("ETag")
    content_type = response.headers.get(
        "Content-Type", "application/octet-stream"
    )
    expected = parse_digest_header(response.headers.get("Digest")).get(
        config.digest
    )

    chunks = plan_chunks(size, config.chunk_size)
    streams = max(1, min(config.streams, len(chunks) or 1))
    span.set(streams=streams, chunks=len(chunks), bytes=size)
    progress = _Progress(streams)
    assembly = bytearray(size)

    def chunk_op(index, offset, length):
        def op():
            attempts = 0
            while True:
                lane = span.child(
                    "tpc-chunk", chunk=index, offset=offset, nbytes=length
                )
                headers = Headers(
                    [("Range", f"bytes={offset}-{offset + length - 1}")]
                )
                if etag is not None:
                    headers.set("If-Match", etag)
                request = Request("GET", source_url.target, headers)
                try:
                    reply, _ = yield from execute_request(
                        context,
                        source_url,
                        request,
                        context.params,
                        idempotent=True,
                        parent_span=lane,
                    )
                except (DavixError, NetworkError) as exc:
                    lane.end(error=repr(exc))
                    attempts += 1
                    progress.retries += 1
                    if metrics is not None:
                        metrics.counter("tpc.stream_retries_total").inc()
                    if attempts > config.chunk_retries:
                        raise
                    continue
                if reply.status == 412:
                    lane.end(status=412)
                    raise RequestError(
                        "source changed mid-transfer "
                        f"(If-Match {etag} failed)",
                        status=412,
                    )
                if (
                    reply.status not in (200, 206)
                    or len(reply.body) != length
                ):
                    lane.end(status=reply.status)
                    attempts += 1
                    progress.retries += 1
                    if metrics is not None:
                        metrics.counter("tpc.stream_retries_total").inc()
                    if attempts > config.chunk_retries:
                        raise RequestError(
                            f"chunk {index} at offset {offset}: "
                            f"HTTP {reply.status}",
                            status=reply.status,
                        )
                    continue
                assembly[offset:offset + length] = reply.body
                now = yield Now()
                progress.chunk_done(index, length, now)
                lane.end(ok=True)
                return length

        return op

    outcomes = yield from bounded_gather(
        [chunk_op(i, o, n) for i, (o, n) in enumerate(chunks)],
        limit=streams,
        name="tpc-pull",
    )
    now = yield Now()
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        reason = failed[0].error
        _emit_event(events, "pull", destination_path, size, config,
                    progress, started, now, ok=False, error=reason)
        return _transfer_failure(metrics, span, progress, reason)

    actual = _compute_digest(assembly, config.digest)
    if expected is not None and actual != expected:
        if metrics is not None:
            metrics.counter("tpc.digest_mismatch_total").inc()
        reason = (
            f"digest mismatch: source {config.digest}={expected}, "
            f"received {config.digest}={actual}"
        )
        _emit_event(events, "pull", destination_path, size, config,
                    progress, started, now, ok=False, error=reason)
        return _transfer_failure(metrics, span, progress, reason)

    obj = store.put(destination_path, bytes(assembly), content_type)
    _count_success(metrics, "pull", size, progress)
    _emit_event(events, "pull", destination_path, size, config,
                progress, started, now, ok=True)
    span.end(ok=True, retries=progress.retries)
    body = format_marker_stream(
        progress.markers, f"success: Created {destination_path}"
    )
    headers = Headers(
        [
            ("Content-Type", PERF_MARKER_MEDIA_TYPE),
            ("ETag", obj.etag),
            ("Digest", f"{config.digest}={actual}"),
        ]
    )
    return Response(202, headers, body)


def run_push(
    context,
    store,
    source_path: str,
    destination,
    config: Optional[TpcConfig] = None,
    metrics=None,
    events=None,
    trace_ctx=None,
):
    """Effect op: push ``source_path`` from ``store`` to ``destination``.

    Runs on the *source* server. Chunks upload as ranged PUTs
    (``Content-Range``); the destination commits once coverage is
    complete and answers with its ``Digest``, which must match the
    local checksum or the remote copy is deleted and the transfer
    reported failed.
    """
    from repro.core.request import execute_request

    config = config or TpcConfig()
    dest_url = (
        destination
        if isinstance(destination, Url)
        else Url.parse(destination)
    )
    span = context.tracer.start(
        "tpc-transfer",
        root=trace_ctx is None,
        remote=trace_ctx,
        mode="push",
        source=source_path,
        destination=str(dest_url),
    )
    started = yield Now()
    obj = store.get(source_path)
    size = obj.size
    local_digest = obj.checksum(config.digest)

    chunks = plan_chunks(size, config.chunk_size)
    streams = max(1, min(config.streams, len(chunks) or 1))
    span.set(streams=streams, chunks=len(chunks), bytes=size)
    progress = _Progress(streams)
    commit = {}

    def upload_op(index, offset, length):
        def op():
            attempts = 0
            while True:
                lane = span.child(
                    "tpc-chunk", chunk=index, offset=offset, nbytes=length
                )
                headers = Headers(
                    [
                        ("Content-Type", obj.content_type),
                        ("Want-Digest", config.digest),
                    ]
                )
                if size > 0:
                    headers.set(
                        "Content-Range",
                        f"bytes {offset}-{offset + length - 1}/{size}",
                    )
                body = store.read(source_path, offset, length)
                request = Request(
                    "PUT", dest_url.target, headers, body
                )
                try:
                    reply, _ = yield from execute_request(
                        context,
                        dest_url,
                        request,
                        context.params,
                        idempotent=True,
                        parent_span=lane,
                    )
                except (DavixError, NetworkError) as exc:
                    lane.end(error=repr(exc))
                    attempts += 1
                    progress.retries += 1
                    if metrics is not None:
                        metrics.counter("tpc.stream_retries_total").inc()
                    if attempts > config.chunk_retries:
                        raise
                    continue
                if reply.status not in (201, 202, 204):
                    lane.end(status=reply.status)
                    attempts += 1
                    progress.retries += 1
                    if metrics is not None:
                        metrics.counter("tpc.stream_retries_total").inc()
                    if attempts > config.chunk_retries:
                        raise RequestError(
                            f"chunk {index} at offset {offset}: "
                            f"HTTP {reply.status}",
                            status=reply.status,
                        )
                    continue
                if reply.status in (201, 204):
                    commit["digest"] = parse_digest_header(
                        reply.headers.get("Digest")
                    ).get(config.digest)
                    commit["etag"] = reply.headers.get("ETag")
                now = yield Now()
                progress.chunk_done(index, length, now)
                lane.end(ok=True, status=reply.status)
                return length

        return op

    if chunks:
        thunks = [upload_op(i, o, n) for i, (o, n) in enumerate(chunks)]
    else:
        # Zero-length object: a single plain PUT carries it whole.
        thunks = [upload_op(0, 0, 0)]
    outcomes = yield from bounded_gather(
        thunks, limit=streams, name="tpc-push"
    )
    now = yield Now()
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        reason = failed[0].error
        _emit_event(events, "push", source_path, size, config,
                    progress, started, now, ok=False, error=reason)
        return _transfer_failure(metrics, span, progress, reason)
    if "digest" not in commit:
        reason = "destination never committed the upload"
        _emit_event(events, "push", source_path, size, config,
                    progress, started, now, ok=False, error=reason)
        return _transfer_failure(metrics, span, progress, reason)

    remote_digest = commit["digest"]
    if remote_digest is not None and remote_digest != local_digest:
        if metrics is not None:
            metrics.counter("tpc.digest_mismatch_total").inc()
        reason = (
            f"digest mismatch: local {config.digest}={local_digest}, "
            f"destination {config.digest}={remote_digest}"
        )
        # Leave no corrupt replica behind; best effort.
        try:
            yield from execute_request(
                context,
                dest_url,
                Request("DELETE", dest_url.target),
                context.params,
                parent_span=span,
            )
        except (DavixError, NetworkError):
            pass
        _emit_event(events, "push", source_path, size, config,
                    progress, started, now, ok=False, error=reason)
        return _transfer_failure(metrics, span, progress, reason)

    _count_success(metrics, "push", size, progress)
    _emit_event(events, "push", source_path, size, config,
                progress, started, now, ok=True)
    span.end(ok=True, retries=progress.retries)
    body = format_marker_stream(
        progress.markers, f"success: Created {dest_url.decoded_path}"
    )
    headers = Headers(
        [
            ("Content-Type", PERF_MARKER_MEDIA_TYPE),
            ("Digest", f"{config.digest}={local_digest}"),
        ]
    )
    return Response(202, headers, body)
