"""A Session: one persistent HTTP connection plus its parser state.

Sessions are produced by :func:`open_session` (an effect sub-op, so the
same code runs on the simulator and on sockets) and recycled through the
:class:`~repro.core.pool.SessionPool`. A session records enough state to
know whether it is safe to reuse: a half-read body, a parse error or a
``Connection: close`` makes it *dirty* and it will be discarded instead
of recycled.

Observability: with a :class:`~repro.obs.MetricsRegistry` attached the
wire totals land in ``session.bytes_sent_total`` /
``session.bytes_received_total``; :func:`open_session` wraps the
connect and TLS handshake in ``tcp-connect`` / ``tls-handshake`` spans,
and :meth:`Session.request` hangs ``send`` / ``recv`` spans off the
span it is given.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.concurrency import Connect, Recv, Send, Sleep
from repro.concurrency.tlsmodel import TlsPolicy, client_handshake
from repro.errors import (
    ConnectionClosed,
    DeadlineExceeded,
    NetworkError,
    TransferTimeout,
)
from repro.http import (
    CONNECTION_CLOSED,
    NEED_DATA,
    Data,
    EndOfMessage,
    HttpParser,
    Request,
    Response,
    serialize_request,
)

__all__ = ["Session", "StaleSession", "open_session"]


class StaleSession(NetworkError):
    """A recycled connection died before the response started.

    Safe to retry transparently on a fresh connection (the request was
    provably not processed) — the classic keep-alive race.
    """


class Session:
    """One keep-alive HTTP connection to an origin."""

    def __init__(
        self,
        channel,
        origin: Tuple,
        created_at: float,
        tls: Optional[TlsPolicy] = None,
        metrics=None,
    ):
        self.channel = channel
        self.origin = origin
        #: TLS record-layer cost model (None for plain http).
        self.tls = tls
        #: Optional :class:`~repro.obs.MetricsRegistry` for byte totals.
        self.metrics = metrics
        self.created_at = created_at
        self.last_released = created_at
        self.requests_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.reusable = True
        self._closed = False

    @property
    def host(self) -> str:
        return self.origin[1]

    def mark_dirty(self) -> None:
        """Prevent this session from being recycled."""
        self.reusable = False

    def discard(self) -> None:
        """Close the underlying connection (idempotent, non-blocking)."""
        self.reusable = False
        if not self._closed:
            self._closed = True
            try:
                self.channel.close()
            except Exception:  # noqa: BLE001 - best effort teardown
                pass

    # -- protocol ------------------------------------------------------------

    def _recv_timeout(self, timeout, deadline):
        """Per-read timeout bounded by the operation deadline (if any).

        Raises :class:`~repro.errors.DeadlineExceeded` — after marking
        the session dirty, since the exchange is being abandoned
        mid-response — when the budget is already spent.
        """
        if deadline is None:
            return timeout
        try:
            return deadline.clamp(timeout)
        except DeadlineExceeded:
            self.mark_dirty()
            raise

    def request(
        self,
        request: Request,
        sink: Optional[Callable[[bytes], None]] = None,
        sink_factory=None,
        timeout: Optional[float] = None,
        span=None,
        deadline=None,
        recorder=None,
        propagate: bool = True,
    ):
        """Effect sub-op: send ``request``, read the full response.

        With ``sink`` the body is streamed into the callable and the
        returned :class:`Response` has an empty body (used for large
        GETs). ``sink_factory`` decides *after the head arrives* whether
        to stream (it receives the head and returns a sink or ``None``)
        — needed so redirect/error bodies are buffered, not streamed.
        ``span`` (when given) becomes the parent of ``send``/``recv``
        child spans covering the two wire phases, and — with
        ``propagate`` — its trace/span IDs ride to the server in a
        ``Traceparent`` header, so server-side spans and access-log
        records join the client's trace. ``recorder`` (a
        :class:`~repro.obs.PhaseRecorder`) receives the wire phase
        marks: ``request-write`` when the request is on the wire,
        ``ttfb`` at the first response byte, ``body-transfer`` when the
        body completes. ``deadline`` (a
        :class:`~repro.resilience.Deadline`) bounds every read: each
        ``Recv`` timeout is clamped to the remaining budget and expiry
        raises :class:`~repro.errors.DeadlineExceeded`.
        Raises :class:`StaleSession` when a *reused* connection turns
        out dead before the status line arrives.
        """
        if propagate and span is not None:
            from repro.obs.propagation import inject_traceparent

            inject_traceparent(request.headers, span)
        parser = HttpParser("client")
        parser.expect_response_to(request.method)
        wire = serialize_request(request)
        reused = self.requests_sent > 0
        self.requests_sent += 1
        self.bytes_sent += len(wire)
        if self.metrics is not None:
            self.metrics.counter("session.bytes_sent_total").inc(len(wire))
        if deadline is not None:
            deadline.check()
        send_span = span.child("send", bytes=len(wire)) if span else None
        try:
            if self.tls is not None:
                yield Sleep(self.tls.record_cost(len(wire)))
            yield Send(self.channel, wire)
        except ConnectionClosed as exc:
            self.mark_dirty()
            if reused:
                raise StaleSession(str(exc)) from exc
            raise
        finally:
            if send_span:
                send_span.end()
        if recorder is not None:
            recorder.mark("request-write")

        recv_span = span.child("recv") if span else None
        received = 0
        first_byte = False
        head: Optional[Response] = None
        # Body chunks are joined once at the end — one copy total,
        # instead of the grow-then-copy a bytearray would pay.
        chunks = []
        try:
            while True:
                event = parser.next_event()
                if event == NEED_DATA:
                    try:
                        data = yield Recv(
                            self.channel,
                            timeout=self._recv_timeout(timeout, deadline),
                        )
                    except ConnectionClosed as exc:
                        self.mark_dirty()
                        if reused and head is None:
                            raise StaleSession(str(exc)) from exc
                        raise
                    except TransferTimeout as exc:
                        self.mark_dirty()
                        if deadline is not None and deadline.expired:
                            raise DeadlineExceeded(
                                deadline.budget
                            ) from exc
                        raise
                    self.bytes_received += len(data)
                    received += len(data)
                    if data and not first_byte:
                        first_byte = True
                        if recorder is not None:
                            recorder.mark("ttfb")
                    if self.tls is not None and data:
                        yield Sleep(self.tls.record_cost(len(data)))
                    parser.receive_data(data)
                    continue
                if event == CONNECTION_CLOSED:
                    self.mark_dirty()
                    if reused and head is None:
                        raise StaleSession("connection closed by peer")
                    raise ConnectionClosed(
                        f"{self.host}: closed before a response"
                    )
                if isinstance(event, Response):
                    head = event
                    if sink_factory is not None:
                        sink = sink_factory(head)
                elif isinstance(event, Data):
                    if sink is not None:
                        sink(event.data)
                    else:
                        chunks.append(event.data)
                elif isinstance(event, EndOfMessage):
                    if recorder is not None:
                        recorder.mark("body-transfer")
                    break
        finally:
            if self.metrics is not None and received:
                self.metrics.counter(
                    "session.bytes_received_total"
                ).inc(received)
            if recv_span:
                recv_span.end(bytes=received)

        assert head is not None
        head.body = chunks[0] if len(chunks) == 1 else b"".join(chunks)
        if not head.keep_alive():
            self.mark_dirty()
        return head


def open_session(
    url_origin: Tuple,
    endpoint: Tuple[str, int],
    now: float,
    tcp_options=None,
    tls: Optional[TlsPolicy] = None,
    tracer=None,
    parent=None,
    metrics=None,
    recorder=None,
):
    """Effect sub-op: connect (and TLS-handshake) into a Session.

    With a ``tracer``, the TCP connect and the TLS handshake each get
    their own span under ``parent`` — the two setup costs the paper's
    keep-alive argument is about. A ``recorder`` gets the matching
    ``connect`` / ``tls`` phase marks.
    """
    span = (
        tracer.start("tcp-connect", parent=parent)
        if tracer is not None
        else None
    )
    try:
        channel = yield Connect(endpoint, tcp_options)
    finally:
        if span:
            span.end()
    if recorder is not None:
        recorder.mark("connect")
    if tls is not None:
        handshake_span = (
            tracer.start("tls-handshake", parent=parent)
            if tracer is not None
            else None
        )
        try:
            yield from client_handshake(channel, tls)
        finally:
            if handshake_span:
                handshake_span.end()
        if recorder is not None:
            recorder.mark("tls")
    return Session(
        channel, url_origin, created_at=now, tls=tls, metrics=metrics
    )
