"""Flow-level TCP model over the discrete-event kernel.

The model reproduces the TCP behaviours the paper's analysis depends on:

* three-way-handshake cost (one RTT before the first byte can be sent);
* **slow start** from a small initial window — the reason HTTP/1.0-style
  connection-per-request is slow (Section 2.2 of the paper);
* congestion-window growth that *persists across requests on a kept-alive
  connection* — the benefit davix's session recycling harvests;
* optional **Nagle** interaction (Section 2.2 cites pipelining/Nagle side
  effects) and idle-window reset (RFC 5681 §4.1);
* bandwidth sharing: a burst occupies the sender's uplink and the
  receiver's downlink wires for its serialisation time, so concurrent
  connections queue at burst granularity.

It is a *flow* model: data moves in bursts bounded by the congestion
window, not packets; loss is modelled as an episode (retransmission delay
plus multiplicative decrease), not per-segment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.errors import ConnectionClosed
from repro.net.link import LinkSpec, Wire
from repro.sim import EOF, Environment, Event, Mailbox, Signal

__all__ = ["TcpOptions", "TcpConnection", "ConnectionSide"]


@dataclass(frozen=True)
class TcpOptions:
    """Tunable parameters of the TCP model.

    Defaults follow a 2014-era Linux stack: MSS 1460, initial window of
    10 segments (RFC 6928), 4 MiB receive-window cap.
    """

    mss: int = 1460
    initial_window_segments: int = 10
    max_window: int = 4 * 1024 * 1024
    ssthresh: Optional[int] = None  # None -> max_window (no loss assumed)
    nagle: bool = False  # davix sets TCP_NODELAY; toggle for the ablation
    idle_reset: bool = True  # RFC 5681: restart cwnd after idle
    idle_timeout: float = 1.0
    connect_timeout: float = 5.0
    chunk_cap: int = 65536  # burst granularity (events per transfer knob)
    rto: float = 0.2  # retransmission timeout for loss episodes

    @property
    def initial_window(self) -> int:
        return self.mss * self.initial_window_segments

    @property
    def effective_ssthresh(self) -> int:
        return self.max_window if self.ssthresh is None else self.ssthresh


class _Write:
    """One application write queued for transmission."""

    __slots__ = ("data", "offset", "event")

    def __init__(self, data: bytes, event: Event):
        self.data = data
        self.offset = 0
        self.event = event

    @property
    def remaining(self) -> int:
        return len(self.data) - self.offset


class _HalfStream:
    """One direction of a TCP connection (sender + peer's receive side)."""

    def __init__(
        self,
        env: Environment,
        spec: LinkSpec,
        path_wires,
        options: TcpOptions,
        jitter_offset: float,
        rng,
        name: str,
    ):
        self.env = env
        self.spec = spec
        #: Wires a burst traverses in order (store-and-forward: each is
        #: held for the burst's serialisation time at that wire's rate).
        self.path_wires = tuple(path_wires)
        self.options = options
        self.jitter_offset = jitter_offset
        self.rng = rng
        self.name = name

        self.cwnd: float = float(
            min(options.initial_window, options.max_window)
        )
        self.ssthresh: float = float(options.effective_ssthresh)
        self.inflight = 0
        self.bytes_sent = 0
        self.loss_episodes = 0
        self.last_activity = env.now

        self._queue: Deque[_Write] = deque()
        self._pending_bytes = 0
        self._closing = False
        self.aborted = False

        self._wake = Signal(env)
        self._acked = Signal(env)
        self._transit = 0  # bursts still crossing the path
        self._transit_done = Signal(env)

        self.rx = Mailbox(env)
        self.reset = False  # set on abort; EOF then means "reset", not FIN
        self._last_delivery_at = env.now

        self._process = env.process(self._sender())

    # -- application-facing ------------------------------------------------

    def send(self, data: bytes) -> Event:
        """Queue ``data``; fires once accepted into the send buffer.

        Mirrors ``socket.sendall`` semantics: acceptance, not delivery.
        Actual transmission is paced by the congestion window; the send
        buffer is unbounded in the model (the application cannot
        out-run simulated time).
        """
        event = Event(self.env)
        if self.aborted:
            event.fail(ConnectionClosed(f"{self.name}: connection reset"))
            event._defused = True
            return event
        if self._closing:
            event.fail(ConnectionClosed(f"{self.name}: already closed"))
            event._defused = True
            return event
        if not data:
            event.succeed(0)
            return event
        self._queue.append(_Write(bytes(data), event))
        self._pending_bytes += len(data)
        self._wake.fire()
        event.succeed(len(data))
        return event

    def close(self) -> None:
        """Half-close: queued data is still delivered, then EOF."""
        if self._closing or self.aborted:
            return
        self._closing = True
        self._wake.fire()

    def abort(self) -> None:
        """Hard reset: pending data is discarded, receiver sees a reset."""
        if self.aborted:
            return
        self.aborted = True
        self.reset = True
        for write in self._queue:
            if not write.event.triggered:
                write.event.fail(
                    ConnectionClosed(f"{self.name}: connection reset")
                )
                write.event._defused = True
        self._queue.clear()
        self._pending_bytes = 0
        if not self.rx.closed:
            self.rx.close()
        self._wake.fire()
        self._acked.fire()

    # -- sender process ------------------------------------------------------

    def _take(self, limit: int) -> Tuple[bytes, list]:
        """Dequeue up to ``limit`` bytes; returns (chunk, completed writes)."""
        parts = []
        completed = []
        taken = 0
        while taken < limit and self._queue:
            write = self._queue[0]
            n = min(limit - taken, write.remaining)
            parts.append(write.data[write.offset : write.offset + n])
            write.offset += n
            taken += n
            if write.remaining == 0:
                completed.append(self._queue.popleft().event)
        self._pending_bytes -= taken
        return b"".join(parts), completed

    def _sender(self):
        env = self.env
        opts = self.options
        while True:
            if self.aborted:
                return
            if not self._queue:
                if self._closing:
                    # FIN must trail the last data: wait for in-flight
                    # bursts to schedule their deliveries first.
                    while self._transit > 0:
                        yield self._transit_done.wait()
                    self._schedule_eof()
                    return
                yield self._wake.wait()
                continue

            # RFC 5681 4.1: restart from the initial window after idle.
            if (
                opts.idle_reset
                and self.inflight == 0
                and env.now - self.last_activity > opts.idle_timeout
            ):
                self.cwnd = float(
                    min(opts.initial_window, opts.max_window)
                )

            while self.inflight >= self.cwnd and not self.aborted:
                yield self._acked.wait()
            if self.aborted:
                return
            if not self._queue:
                continue

            window = max(int(self.cwnd) - self.inflight, opts.mss)
            limit = min(window, opts.chunk_cap, self._pending_bytes)
            if (
                opts.nagle
                and self._pending_bytes < opts.mss
                and self.inflight > 0
            ):
                # Nagle: hold sub-MSS data while anything is unacked.
                yield self._acked.wait()
                continue
            chunk, completed = self._take(limit)
            size = len(chunk)
            self.inflight += size
            self.last_activity = env.now
            lost = (
                self.spec.loss_rate > 0
                and self.rng.random() < self.spec.loss_rate
            )
            # Each burst traverses the path in its own process so
            # consecutive bursts pipeline across the wires (burst n+1
            # occupies the uplink while burst n crosses the backbone).
            # Per-wire FIFO keeps deliveries in order.
            self._transit += 1
            env.process(self._transmit(chunk, completed, lost))
            # Yield so the transmit process reaches the first wire (and
            # its queue slot) before the next burst is cut.
            yield env.timeout(0)

    def _transmit(self, chunk: bytes, completed, lost: bool):
        """One burst's journey: wires, propagation, delivery, ack."""
        env = self.env
        opts = self.options
        size = len(chunk)
        duration = 0.0
        # Store-and-forward across the path: each wire is occupied for
        # the burst's serialisation time at *its own* rate, so a slow
        # path does not block a fast receiver's other flows.
        for wire in self.path_wires:
            claim = wire.acquire()
            yield claim
            duration = size / wire.bandwidth
            yield env.timeout(duration)
            claim.release()
            wire.record(size, duration)
        self.bytes_sent += size

        delay = self.spec.latency + self.jitter_offset
        if lost:
            # Loss episode: the burst is retransmitted after an RTO.
            delay += opts.rto + duration
            self.loss_episodes += 1

        deliver_at = max(env.now + delay, self._last_delivery_at + 1e-12)
        self._last_delivery_at = deliver_at
        delivery = env.timeout(deliver_at - env.now)
        delivery.callbacks.append(
            lambda _evt, data=chunk: self._deliver(data)
        )
        ack = env.timeout(deliver_at - env.now + self.spec.latency)
        ack.callbacks.append(
            lambda _evt, n=size, was_lost=lost: self._on_ack(n, was_lost)
        )
        self._transit -= 1
        self._transit_done.fire()

    def _deliver(self, data: bytes) -> None:
        if self.aborted or self.rx.closed:
            return
        self.rx.put(data)

    def _schedule_eof(self) -> None:
        delay = self.spec.latency + self.jitter_offset
        deliver_at = max(
            self.env.now + delay, self._last_delivery_at + 1e-12
        )
        fin = self.env.timeout(deliver_at - self.env.now)
        fin.callbacks.append(lambda _evt: self._deliver_eof())

    def _deliver_eof(self) -> None:
        if not self.rx.closed:
            self.rx.close()

    def _on_ack(self, size: int, lost: bool) -> None:
        self.inflight = max(0, self.inflight - size)
        if lost:
            # Multiplicative decrease (NewReno-ish fast recovery).
            self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.options.mss)
            self.cwnd = self.ssthresh
        elif self.cwnd < self.ssthresh:
            self.cwnd += size  # slow start: one MSS per acked MSS
        else:
            self.cwnd += self.options.mss * size / self.cwnd  # AIMD
        self.cwnd = min(self.cwnd, float(self.options.max_window))
        self.last_activity = self.env.now
        self._acked.fire()


class ConnectionSide:
    """One endpoint's view of a TCP connection.

    ``send``/``recv``/``close``/``abort`` mirror a socket; all blocking
    operations return kernel events.
    """

    def __init__(
        self,
        conn: "TcpConnection",
        out_half: _HalfStream,
        in_half: _HalfStream,
        local: str,
        remote: Tuple[str, int],
    ):
        self._conn = conn
        self._out = out_half
        self._in = in_half
        self.local = local
        self.remote = remote
        self._leftover = bytearray()

    # -- properties ----------------------------------------------------------

    @property
    def connection(self) -> "TcpConnection":
        return self._conn

    @property
    def rtt(self) -> float:
        """Base round-trip time of the path (excluding jitter)."""
        return self._out.spec.rtt

    @property
    def cwnd(self) -> float:
        """Current congestion window of the sending direction (bytes)."""
        return self._out.cwnd

    @property
    def bytes_sent(self) -> int:
        return self._out.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._in.bytes_sent  # what the peer sent is what we received

    @property
    def closed(self) -> bool:
        return self._out.aborted or self._out._closing

    # -- I/O -------------------------------------------------------------------

    def send(self, data: bytes) -> Event:
        """Queue bytes; fires when the data has been put on the wire."""
        return self._out.send(data)

    def recv(self, max_bytes: int = 65536) -> Event:
        """Fires with up to ``max_bytes``; ``b""`` signals clean EOF.

        A reset connection fails the event with :class:`ConnectionClosed`.
        """
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        event = Event(self._out.env)
        if self._leftover:
            take = bytes(self._leftover[:max_bytes])
            del self._leftover[:max_bytes]
            event.succeed(take)
            return event
        inner = self._in.rx.get()
        inner.callbacks.append(
            lambda evt: self._on_rx(event, evt.value, max_bytes)
        )
        return event

    def _on_rx(self, event: Event, item, max_bytes: int) -> None:
        if item is EOF:
            if self._in.reset:
                event.fail(ConnectionClosed(f"{self.local}: reset by peer"))
            else:
                event.succeed(b"")
            return
        if len(item) > max_bytes:
            self._leftover.extend(item[max_bytes:])
            item = item[:max_bytes]
        event.succeed(bytes(item))

    def close(self) -> None:
        """Graceful close of our sending half (FIN after queued data)."""
        self._out.close()

    def abort(self) -> None:
        """Reset both directions immediately."""
        self._conn.abort()


class TcpConnection:
    """A bidirectional TCP connection between two simulated hosts."""

    def __init__(
        self,
        env: Environment,
        spec: LinkSpec,
        client: str,
        server: str,
        server_port: int,
        client_wires: Tuple[Wire, Wire],
        server_wires: Tuple[Wire, Wire],
        options: TcpOptions,
        rng,
        route_wires: Optional[Tuple[Wire, Wire]] = None,
    ):
        self.env = env
        self.spec = spec
        self.options = options
        self.client = client
        self.server = server
        self.server_port = server_port
        self.established_at = env.now

        jitter = rng.uniform(0, spec.jitter) if spec.jitter else 0.0
        client_up, client_down = client_wires
        server_up, server_down = server_wires
        route_c2s, route_s2c = route_wires or (None, None)
        path_c2s = [
            wire
            for wire in (client_up, route_c2s, server_down)
            if wire is not None
        ]
        path_s2c = [
            wire
            for wire in (server_up, route_s2c, client_down)
            if wire is not None
        ]
        self._c2s = _HalfStream(
            env, spec, path_c2s, options, jitter, rng,
            f"{client}->{server}",
        )
        self._s2c = _HalfStream(
            env, spec, path_s2c, options, jitter, rng,
            f"{server}->{client}",
        )
        self.client_side = ConnectionSide(
            self, self._c2s, self._s2c, client, (server, server_port)
        )
        self.server_side = ConnectionSide(
            self, self._s2c, self._c2s, server, (client, 0)
        )

    def abort(self) -> None:
        """Reset the connection in both directions."""
        self._c2s.abort()
        self._s2c.abort()

    @property
    def aborted(self) -> bool:
        return self._c2s.aborted and self._s2c.aborted

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.client}->{self.server}:{self.server_port}>"
        )
