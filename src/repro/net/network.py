"""Simulated network: hosts, routes, listeners and connection setup.

A :class:`Network` owns named :class:`Host`\\ s and directional
:class:`~repro.net.link.LinkSpec` routes between them. ``connect``
performs the TCP three-way handshake (one RTT before the connect event
fires; the server's accept queue sees the connection after half an RTT)
and yields a :class:`~repro.net.tcp.ConnectionSide`.

Failure semantics mirror real sockets:

* connecting to a **down host** times out after ``connect_timeout``;
* connecting to a **port with no listener** is refused after one RTT;
* taking a host down aborts every established connection it terminates.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConnectError, NetworkError
from repro.net.link import LinkSpec, Wire
from repro.net.tcp import ConnectionSide, TcpConnection, TcpOptions
from repro.sim import EOF, Environment, Event, Mailbox

__all__ = ["Host", "Listener", "Network"]


class Host:
    """A named machine with directional access wires and counters."""

    def __init__(
        self, env: Environment, name: str, access_bandwidth: float
    ):
        self.env = env
        self.name = name
        self.up = True
        self.uplink = Wire(env, access_bandwidth, f"{name}.up")
        self.downlink = Wire(env, access_bandwidth, f"{name}.down")
        self.listeners: Dict[int, "Listener"] = {}
        self.connections: List[TcpConnection] = []
        #: Monotone counters for load reporting.
        self.counters: Dict[str, int] = {
            "connections_accepted": 0,
            "connections_initiated": 0,
        }

    @property
    def wires(self) -> Tuple[Wire, Wire]:
        return (self.uplink, self.downlink)

    @property
    def open_connections(self) -> int:
        """Connections terminating here that are not fully aborted."""
        return sum(1 for conn in self.connections if not conn.aborted)

    def fail(self) -> None:
        """Take the host down, resetting every established connection."""
        self.up = False
        for conn in self.connections:
            conn.abort()

    def recover(self) -> None:
        """Bring the host back up."""
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Host {self.name} {state}>"


class Listener:
    """A listening port; ``accept()`` yields server-side connections."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self._accept_queue = Mailbox(host.env)
        self.closed = False

    def accept(self) -> Event:
        """Event firing with the next server-side :class:`ConnectionSide`.

        Fails with :class:`NetworkError` once the listener is closed and
        drained.
        """
        event = Event(self.host.env)
        inner = self._accept_queue.get()
        inner.callbacks.append(lambda evt: self._on_accept(event, evt.value))
        return event

    def _on_accept(self, event: Event, item) -> None:
        if item is EOF:
            event.fail(NetworkError(f"listener {self.port} closed"))
            event._defused = True
        else:
            event.succeed(item)

    def _enqueue(self, side: ConnectionSide) -> None:
        if not self.closed:
            self._accept_queue.put(side)

    def close(self) -> None:
        self.closed = True
        if not self._accept_queue.closed:
            self._accept_queue.close()

    @property
    def backlog(self) -> int:
        """Connections accepted by the stack but not yet ``accept()``-ed."""
        return len(self._accept_queue)


class Network:
    """Topology container and connection factory."""

    def __init__(self, env: Environment, seed: int = 0):
        self.env = env
        self.rng = random.Random(seed)
        self.hosts: Dict[str, Host] = {}
        self._routes: Dict[Tuple[str, str], LinkSpec] = {}
        #: Shared backbone capacity per directional route.
        self._route_wires: Dict[Tuple[str, str], Wire] = {}
        self.default_route: Optional[LinkSpec] = None

    # -- topology ------------------------------------------------------------

    def add_host(
        self, name: str, access_bandwidth: float = 1.25e9
    ) -> Host:
        """Add a host (default access wire: 10 Gb/s, i.e. rarely binding)."""
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(self.env, name, access_bandwidth)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def set_route(
        self, a: str, b: str, spec: LinkSpec, symmetric: bool = True
    ) -> None:
        """Install the path spec between hosts ``a`` and ``b``."""
        self.host(a)
        self.host(b)
        self._routes[(a, b)] = spec
        if symmetric:
            self._routes[(b, a)] = spec

    def route(self, src: str, dst: str) -> LinkSpec:
        spec = self._routes.get((src, dst)) or self.default_route
        if spec is None:
            raise NetworkError(f"no route {src} -> {dst}")
        return spec

    def route_wire(self, src: str, dst: str) -> Wire:
        """The shared backbone wire for the directional route."""
        key = (src, dst)
        wire = self._route_wires.get(key)
        if wire is None:
            spec = self.route(src, dst)
            wire = Wire(self.env, spec.bandwidth, f"{src}->{dst}")
            self._route_wires[key] = wire
        return wire

    # -- sockets ---------------------------------------------------------------

    def listen(self, host_name: str, port: int) -> Listener:
        """Open a listening port on ``host_name``."""
        host = self.host(host_name)
        if port in host.listeners and not host.listeners[port].closed:
            raise NetworkError(f"{host_name}:{port} already listening")
        listener = Listener(host, port)
        host.listeners[port] = listener
        return listener

    def connect(
        self,
        src_name: str,
        endpoint: Tuple[str, int],
        options: Optional[TcpOptions] = None,
    ) -> Event:
        """Open a connection; fires with the client-side after one RTT.

        Failure modes: :class:`ConnectError` after ``connect_timeout``
        for a down host, after one RTT for a missing listener.
        """
        options = options or TcpOptions()
        src = self.host(src_name)
        dst_name, port = endpoint
        dst = self.host(dst_name)
        spec = self.route(src_name, dst_name)
        event = Event(self.env)

        if not src.up:
            event.fail(ConnectError(f"source host {src_name} is down"))
            event._defused = True
            return event

        if not dst.up:
            # No SYN-ACK ever comes back: connect times out.
            timer = self.env.timeout(options.connect_timeout)
            timer.callbacks.append(
                lambda _evt: self._fail_connect(
                    event,
                    ConnectError(
                        f"connect to {dst_name}:{port} timed out "
                        f"(host down)"
                    ),
                )
            )
            return event

        listener = dst.listeners.get(port)
        if listener is None or listener.closed:
            # RST comes back after one round trip.
            timer = self.env.timeout(spec.rtt)
            timer.callbacks.append(
                lambda _evt: self._fail_connect(
                    event,
                    ConnectError(f"connection refused: {dst_name}:{port}"),
                )
            )
            return event

        conn = TcpConnection(
            self.env,
            spec,
            client=src_name,
            server=dst_name,
            server_port=port,
            client_wires=src.wires,
            server_wires=dst.wires,
            options=options,
            rng=self.rng,
            route_wires=(
                self.route_wire(src_name, dst_name),
                self.route_wire(dst_name, src_name),
            ),
        )
        src.connections.append(conn)
        dst.connections.append(conn)
        src.counters["connections_initiated"] += 1

        syn = self.env.timeout(spec.latency)
        syn.callbacks.append(
            lambda _evt: self._deliver_syn(dst, listener, conn)
        )
        synack = self.env.timeout(spec.rtt)
        synack.callbacks.append(
            lambda _evt: self._complete_connect(event, dst, conn)
        )
        return event

    @staticmethod
    def _fail_connect(event: Event, exc: ConnectError) -> None:
        event.fail(exc)

    @staticmethod
    def _deliver_syn(
        dst: Host, listener: Listener, conn: TcpConnection
    ) -> None:
        if dst.up and not listener.closed:
            dst.counters["connections_accepted"] += 1
            listener._enqueue(conn.server_side)

    @staticmethod
    def _complete_connect(
        event: Event, dst: Host, conn: TcpConnection
    ) -> None:
        if not dst.up:
            conn.abort()
            event.fail(ConnectError(f"host {dst.name} went down"))
            return
        event.succeed(conn.client_side)
