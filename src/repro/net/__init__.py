"""Flow-level network simulation: links, TCP model, topology, profiles."""

from repro.net.link import LinkSpec, Wire
from repro.net.network import Host, Listener, Network
from repro.net.profiles import (
    GEANT,
    HUNDRED_GIG,
    LAN,
    PROFILES,
    WAN,
    NetProfile,
    build_network,
)
from repro.net.tcp import ConnectionSide, TcpConnection, TcpOptions

__all__ = [
    "LinkSpec",
    "Wire",
    "Host",
    "Listener",
    "Network",
    "ConnectionSide",
    "TcpConnection",
    "TcpOptions",
    "NetProfile",
    "LAN",
    "GEANT",
    "WAN",
    "HUNDRED_GIG",
    "PROFILES",
    "build_network",
]
