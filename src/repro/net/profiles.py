"""Network profiles matching the paper's three test configurations.

Section 3 of the paper runs the analysis job over:

* **LAN** — "CERN <-> CERN", gigabit Ethernet, latency < 5 ms;
* **GEANT** — "UK(GLAS) <-> CERN" over the pan-European GEANT network,
  latency < 50 ms;
* **WAN** — "USA(BNL) <-> CERN" over the general internet, latency
  < 300 ms.

The server is a DPM storage node on a 1 Gb/s link. Effective path
bandwidth shrinks with distance (shared academic backbones), which is
how we calibrate absolute run times; the *shape* of the results does not
depend on the exact values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import LinkSpec
from repro.net.network import Network
from repro.sim import Environment

__all__ = [
    "NetProfile",
    "LAN",
    "GEANT",
    "WAN",
    "HUNDRED_GIG",
    "PROFILES",
    "build_network",
]

GBIT = 125_000_000  # 1 Gb/s in bytes/second


@dataclass(frozen=True)
class NetProfile:
    """A named client<->server network configuration."""

    name: str
    label: str
    spec: LinkSpec
    #: Access-wire bandwidth of the DPM server (1 Gb/s in the paper).
    server_bandwidth: float = float(GBIT)
    #: Access-wire bandwidth of the worker node.
    client_bandwidth: float = float(GBIT)
    description: str = ""

    @property
    def rtt(self) -> float:
        return self.spec.rtt


LAN = NetProfile(
    name="lan",
    label="CERN <-> CERN",
    spec=LinkSpec(latency=0.00025, bandwidth=float(GBIT), jitter=0.0001),
    description="gigabit Ethernet, latency < 5 ms",
)

GEANT = NetProfile(
    name="geant",
    label="UK(GLAS) <-> CERN",
    spec=LinkSpec(latency=0.020, bandwidth=0.5 * GBIT, jitter=0.002),
    description="GEANT pan-European backbone, latency < 50 ms",
)

WAN = NetProfile(
    name="wan",
    label="USA(BNL) <-> CERN",
    spec=LinkSpec(latency=0.140, bandwidth=0.2 * GBIT, jitter=0.010),
    description="transatlantic internet path, latency < 300 ms",
)

HUNDRED_GIG = NetProfile(
    name="100g",
    label="datacentre <-> datacentre",
    spec=LinkSpec(latency=0.005, bandwidth=100.0 * GBIT),
    server_bandwidth=100.0 * GBIT,
    client_bandwidth=100.0 * GBIT,
    description=(
        "100 Gb/s-class R&E link between storage federations, the "
        "target of the HTTPS third-party-copy benchmarking campaigns"
    ),
)

PROFILES = {
    profile.name: profile for profile in (LAN, GEANT, WAN, HUNDRED_GIG)
}


def build_network(
    profile: NetProfile,
    env: Environment,
    seed: int = 0,
    clients: int = 1,
    servers: int = 1,
) -> Network:
    """Build a star topology for ``profile``.

    Hosts are named ``client`` (or ``client0``, ``client1``, ... when
    ``clients > 1``) and ``server`` (respectively ``server0``, ...); every
    client-server pair gets the profile's link spec.
    """
    net = Network(env, seed=seed)
    client_names = (
        ["client"] if clients == 1
        else [f"client{i}" for i in range(clients)]
    )
    server_names = (
        ["server"] if servers == 1
        else [f"server{i}" for i in range(servers)]
    )
    for name in client_names:
        net.add_host(name, access_bandwidth=profile.client_bandwidth)
    for name in server_names:
        net.add_host(name, access_bandwidth=profile.server_bandwidth)
    for cname in client_names:
        for sname in server_names:
            net.set_route(cname, sname, profile.spec)
    return net
