"""Link and wire primitives for the network model.

A :class:`LinkSpec` describes a network path (one-way latency, bottleneck
bandwidth, jitter, loss). A :class:`Wire` is a directional transmission
resource attached to a host (its uplink or downlink); transmissions
serialise on wires, which is how concurrent connections share bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment, Resource

__all__ = ["LinkSpec", "Wire"]


@dataclass(frozen=True)
class LinkSpec:
    """Static description of a network path between two hosts.

    Parameters
    ----------
    latency:
        One-way propagation delay in seconds.
    bandwidth:
        Bottleneck capacity in **bytes per second**.
    jitter:
        Upper bound of a uniform, per-connection latency offset (seconds).
        Applied once per connection so in-order delivery is preserved.
    loss_rate:
        Probability that a transmitted burst experiences a loss episode
        (retransmission delay + multiplicative cwnd decrease).
    """

    latency: float
    bandwidth: float
    jitter: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    @property
    def rtt(self) -> float:
        """Round-trip time in seconds (2x one-way latency)."""
        return 2.0 * self.latency

    def bdp(self) -> float:
        """Bandwidth-delay product in bytes."""
        return self.bandwidth * self.rtt


class Wire:
    """A directional transmission resource on one host.

    Holding the wire for ``size / rate`` seconds models serialisation
    delay; FIFO queueing at burst granularity approximates fair sharing
    between the connections crossing it.
    """

    def __init__(self, env: Environment, bandwidth: float, name: str = ""):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        self.env = env
        self.bandwidth = bandwidth
        self.name = name
        self._resource = Resource(env, capacity=1)
        #: Total bytes that have crossed this wire.
        self.bytes_carried = 0
        #: Total seconds the wire has been busy (for utilisation stats).
        self.busy_time = 0.0

    def acquire(self):
        """Claim the wire; returns a :class:`~repro.sim.resources.Request`.

        The TCP sender acquires the source uplink and destination
        downlink together so a burst occupies both for its serialisation
        time (see :mod:`repro.net.tcp`).
        """
        return self._resource.request()

    def record(self, size: int, duration: float) -> None:
        """Account a completed transmission for utilisation statistics."""
        self.bytes_carried += size
        self.busy_time += duration

    def transmit(self, size: int, rate_cap: float):
        """Process generator: occupy the wire while ``size`` bytes pass.

        ``rate_cap`` is the path bottleneck; the effective rate is
        ``min(rate_cap, self.bandwidth)``.
        """
        rate = min(rate_cap, self.bandwidth)
        duration = size / rate
        with self._resource.request() as req:
            yield req
            yield self.env.timeout(duration)
        self.record(size, duration)

    @property
    def queue_length(self) -> int:
        """Transmissions currently waiting for the wire."""
        return self._resource.queue_length

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the wire was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:
        return f"<Wire {self.name} {self.bandwidth:.0f} B/s>"
