"""repro — a Python reproduction of *Efficient HTTP based I/O on very
large datasets for high performance computing with the libdavix
library* (Devresse & Furano, CERN, 2014).

Layered architecture (bottom up):

* :mod:`repro.sim` — discrete-event kernel;
* :mod:`repro.net` — flow-level TCP model and network profiles;
* :mod:`repro.concurrency` — effect runtimes (simulator / sockets);
* :mod:`repro.http` — sans-io HTTP/1.1 stack;
* :mod:`repro.server` — DPM-like storage server + DynaFed federator;
* :mod:`repro.metalink` — RFC 5854 Metalink;
* :mod:`repro.core` — **davix**: pool, vectored I/O, failover;
* :mod:`repro.xrootd` — the XRootD baseline protocol;
* :mod:`repro.rootio` — ROOT-like tree files and TTreeCache;
* :mod:`repro.workloads` — the paper's HEP analysis job + HammerCloud.
"""

from repro.core import (
    Context,
    DavFile,
    DavixClient,
    DavPosix,
    MetalinkMode,
    RequestParams,
    TransferConfig,
)

__version__ = "1.0.0"

__all__ = [
    "Context",
    "DavFile",
    "DavixClient",
    "DavPosix",
    "MetalinkMode",
    "RequestParams",
    "TransferConfig",
    "__version__",
]
