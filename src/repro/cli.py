"""davix-tool: command-line access to HTTP/WebDAV storage.

Mirrors the tool suite the real davix ships (davix-get, davix-put,
davix-ls, ...) as subcommands of one entry point, plus ``serve`` to run
the storage server over a local directory. Works against any server
speaking the implemented HTTP/WebDAV subset (including itself).

Examples::

    davix-tool serve --root /tmp/store --port 8080 &
    davix-tool put  http://127.0.0.1:8080/data/f.bin ./f.bin
    davix-tool ls   http://127.0.0.1:8080/data
    davix-tool get  http://127.0.0.1:8080/data/f.bin ./copy.bin
    davix-tool stat http://127.0.0.1:8080/data/f.bin
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from repro.concurrency import ThreadRuntime
from repro.core import (
    BreakerConfig,
    DavixClient,
    RequestParams,
    RetryPolicy,
    TransferConfig,
)
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the davix-tool argument parser."""
    parser = argparse.ArgumentParser(
        prog="davix-tool",
        description="HTTP/WebDAV data access (davix reproduction)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, help="transient-error retries"
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="operation timeout (s)"
    )
    parser.add_argument(
        "--proxy",
        metavar="URL",
        help="forward proxy for plain-http traffic (e.g. a site cache)",
    )
    parser.add_argument(
        "--inflight",
        type=int,
        metavar="N",
        help="concurrent in-flight requests per file operation "
        "(vectored-read batches, multistream chunks; default 1)",
    )
    parser.add_argument(
        "--read-ahead",
        action="store_true",
        help="arm the pipelined transfer engine: vectored reads keep "
        "a sliding window of speculative batches in flight",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        metavar="N",
        help="byte budget of the client page cache (0 = disabled, "
        "the default): repeated and overlapping reads of the same "
        "object are served from memory, validated by ETag",
    )
    parser.add_argument(
        "--page-size",
        type=int,
        metavar="N",
        help="page granularity of the client page cache "
        "(default 65536)",
    )
    resilience = parser.add_argument_group(
        "resilience",
        "retry/backoff, deadline and circuit-breaker knobs "
        "(overrides --retries when --max-attempts is given)",
    )
    resilience.add_argument(
        "--max-attempts",
        type=int,
        metavar="N",
        help="total tries per request (first attempt + retries)",
    )
    resilience.add_argument(
        "--retry-base",
        type=float,
        default=0.05,
        metavar="S",
        help="backoff base delay in seconds (default: 0.05)",
    )
    resilience.add_argument(
        "--retry-max-delay",
        type=float,
        default=5.0,
        metavar="S",
        help="backoff delay cap in seconds (default: 5)",
    )
    resilience.add_argument(
        "--retry-jitter",
        choices=("decorrelated", "none"),
        default="decorrelated",
        help="backoff jitter mode (default: decorrelated)",
    )
    resilience.add_argument(
        "--retry-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the backoff jitter RNG (default: 0)",
    )
    resilience.add_argument(
        "--deadline",
        type=float,
        metavar="S",
        help="whole-operation time budget in seconds (retries included)",
    )
    resilience.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive failures that open an endpoint's circuit "
        "(default: 5)",
    )
    resilience.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds an open circuit waits before a half-open probe "
        "(default: 30)",
    )
    resilience.add_argument(
        "--no-breaker",
        action="store_true",
        help="disable per-endpoint circuit breaking",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    get = commands.add_parser("get", help="download a resource")
    get.add_argument("url")
    get.add_argument(
        "output", nargs="?", help="output file (default: stdout)"
    )
    get.add_argument(
        "--failover",
        action="store_true",
        help="use Metalink replica fail-over",
    )
    get.add_argument(
        "--multistream",
        type=int,
        metavar="N",
        help="multi-source download with up to N streams",
    )

    vec = commands.add_parser(
        "vec",
        help="vectored read: fetch OFFSET:LENGTH ranges in one pass",
    )
    vec.add_argument("url")
    vec.add_argument(
        "ranges",
        nargs="+",
        metavar="OFFSET:LENGTH",
        help="byte ranges to read, e.g. 0:4096 1048576:4096",
    )
    vec.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="concatenate the fragments into FILE "
        "(default: per-fragment summary on stdout)",
    )

    put = commands.add_parser("put", help="upload a file")
    put.add_argument("url")
    put.add_argument("input", help="local file to upload")

    ls = commands.add_parser("ls", help="list a collection")
    ls.add_argument("url")
    ls.add_argument("-l", "--long", action="store_true")

    stat = commands.add_parser("stat", help="show resource metadata")
    stat.add_argument("url")

    rm = commands.add_parser("rm", help="delete a resource")
    rm.add_argument("url")

    mkdir = commands.add_parser("mkdir", help="create a collection")
    mkdir.add_argument("url")

    metalink = commands.add_parser(
        "metalink", help="show a resource's replica list"
    )
    metalink.add_argument("url")

    copy = commands.add_parser(
        "copy", help="server-side copy (same server or third-party)"
    )
    copy.add_argument("source_url")
    copy.add_argument("destination_url")
    copy.add_argument(
        "--move", action="store_true", help="MOVE instead of COPY"
    )
    copy.add_argument(
        "--streams",
        type=int,
        default=None,
        help="parallel chunk streams for a third-party copy",
    )
    copy.add_argument(
        "--mode",
        choices=("pull", "push"),
        default="pull",
        help="third-party copy mode (default: destination pulls)",
    )

    serve = commands.add_parser(
        "serve", help="run a storage server over a directory"
    )
    serve.add_argument("--root", default=".", help="directory to expose")
    serve.add_argument("--port", type=int, default=8080)

    stats = commands.add_parser(
        "stats",
        help="run requests and render the client metrics registry",
    )
    stats.add_argument(
        "url",
        nargs="?",
        help=(
            "GET this URL and show the resulting metrics "
            "(default: a self-contained simulated-server demo)"
        ),
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit JSON lines instead of tables",
    )
    stats.add_argument(
        "--trace",
        action="store_true",
        help="include the span tree / span records",
    )

    report = commands.add_parser(
        "report",
        help="render a HammerCloud-style summary from a JSONL event log",
    )
    report.add_argument(
        "events",
        help="path to a wide-event JSONL file ('-' for stdin)",
    )
    report.add_argument(
        "--slo-availability",
        type=float,
        default=0.99,
        metavar="FRACTION",
        help="availability objective (default: 0.99)",
    )
    report.add_argument(
        "--slo-latency",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="latency threshold in seconds (default: 0.5)",
    )
    report.add_argument(
        "--slo-latency-objective",
        type=float,
        default=0.95,
        metavar="FRACTION",
        help="fraction of requests that must meet it (default: 0.95)",
    )

    trace = commands.add_parser(
        "trace",
        help="analyze collected cluster telemetry: assembled traces, "
        "critical path and byte provenance",
    )
    trace.add_argument(
        "telemetry",
        help="path to a collector JSONL file ('-' for stdin)",
    )
    trace.add_argument(
        "--diff",
        metavar="OTHER",
        help="compare aggregate critical paths against a second "
        "telemetry file instead of summarizing",
    )
    trace.add_argument(
        "--waterfall",
        action="store_true",
        help="also render the span waterfall of every assembled trace",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=3,
        metavar="N",
        help="traces detailed in the summary (default: 3)",
    )

    return parser


def _transfer(args) -> Optional[TransferConfig]:
    """The unified TransferConfig the flags describe (None = defaults)."""
    inflight = getattr(args, "inflight", None)
    read_ahead = getattr(args, "read_ahead", False)
    cache_bytes = getattr(args, "cache_bytes", None)
    page_size = getattr(args, "page_size", None)
    if inflight is None and not read_ahead and cache_bytes is None:
        return None
    extra = {}
    if cache_bytes is not None:
        extra["page_cache_bytes"] = cache_bytes
    if page_size is not None:
        extra["page_size"] = page_size
    return TransferConfig(
        max_inflight=inflight if inflight is not None else 1,
        read_ahead=read_ahead,
        **extra,
    )


def _client(args) -> DavixClient:
    retry_policy = None
    if getattr(args, "max_attempts", None) is not None:
        retry_policy = RetryPolicy(
            max_attempts=args.max_attempts,
            base_delay=args.retry_base,
            max_delay=args.retry_max_delay,
            jitter=args.retry_jitter,
            seed=args.retry_seed,
        )
    inflight = getattr(args, "inflight", None)
    transfer = _transfer(args)
    extra = {}
    if transfer is not None:
        extra["transfer"] = transfer
    if inflight is not None:
        extra["multistream_max_streams"] = inflight
    params = RequestParams(
        retries=args.retries,
        operation_timeout=args.timeout,
        proxy=getattr(args, "proxy", None),
        retry_policy=retry_policy,
        deadline=getattr(args, "deadline", None),
        breaker_enabled=not getattr(args, "no_breaker", False),
        **extra,
    )
    breaker = BreakerConfig(
        threshold=getattr(args, "breaker_threshold", 5),
        cooldown=getattr(args, "breaker_cooldown", 30.0),
    )
    return DavixClient(ThreadRuntime(), params=params, breaker=breaker)


def cmd_get(args, out=sys.stdout) -> int:
    client = _client(args)
    if args.multistream:
        params = client.context.params.with_(
            multistream_max_streams=args.multistream
        )
        data = client.get_multistream(args.url, params=params).data
    elif args.failover:
        data = client.get_with_failover(args.url)
    else:
        data = client.get(args.url)
    if args.output:
        pathlib.Path(args.output).write_bytes(data)
        print(f"{len(data)} bytes -> {args.output}", file=out)
    else:
        sys.stdout.buffer.write(data)
    return 0


def _parse_range(text: str):
    try:
        offset_text, length_text = text.split(":", 1)
        offset, length = int(offset_text), int(length_text)
    except ValueError:
        raise SystemExit(
            f"davix-tool vec: bad range {text!r} (want OFFSET:LENGTH)"
        )
    if offset < 0 or length < 0:
        raise SystemExit(
            f"davix-tool vec: negative range {text!r}"
        )
    return offset, length


def cmd_vec(args, out=sys.stdout) -> int:
    reads = [_parse_range(text) for text in args.ranges]
    client = _client(args)
    fragments = client.pread_vec(args.url, reads)
    if args.output:
        pathlib.Path(args.output).write_bytes(b"".join(fragments))
        print(
            f"{sum(len(f) for f in fragments)} bytes "
            f"({len(fragments)} fragments) -> {args.output}",
            file=out,
        )
        return 0
    for (offset, length), data in zip(reads, fragments):
        print(f"{offset}:{length} -> {len(data)} bytes", file=out)
    registry = client.metrics()
    # With --read-ahead the engine's speculative batches replace the
    # demand-path requests, counted under engine.* instead of vector.*.
    trips = int(registry.value("vector.round_trips_total") or 0) + int(
        registry.value("engine.speculative_batches_total") or 0
    )
    ranges = int(registry.value("vector.ranges_total") or 0) + int(
        registry.value("engine.speculative_ranges_total") or 0
    )
    print(f"round trips: {trips}, ranges: {ranges}", file=out)
    return 0


def cmd_put(args, out=sys.stdout) -> int:
    data = pathlib.Path(args.input).read_bytes()
    status = _client(args).put(args.url, data)
    print(f"HTTP {status}: {len(data)} bytes -> {args.url}", file=out)
    return 0


def cmd_ls(args, out=sys.stdout) -> int:
    listing = _client(args).listdir(args.url)
    for name, stat in sorted(listing):
        if args.long:
            kind = "d" if stat.is_directory else "-"
            print(f"{kind} {stat.size:>12d} {name}", file=out)
        else:
            print(name, file=out)
    return 0


def cmd_stat(args, out=sys.stdout) -> int:
    stat = _client(args).stat(args.url)
    kind = "collection" if stat.is_directory else "file"
    print(f"type:  {kind}", file=out)
    print(f"size:  {stat.size}", file=out)
    if stat.etag:
        print(f"etag:  {stat.etag}", file=out)
    if stat.mtime is not None:
        print(f"mtime: {stat.mtime}", file=out)
    return 0


def cmd_rm(args, out=sys.stdout) -> int:
    _client(args).delete(args.url)
    print(f"deleted {args.url}", file=out)
    return 0


def cmd_mkdir(args, out=sys.stdout) -> int:
    _client(args).mkdir(args.url)
    print(f"created {args.url}", file=out)
    return 0


def cmd_metalink(args, out=sys.stdout) -> int:
    metalink = _client(args).get_metalink(args.url)
    entry = metalink.single()
    print(f"name: {entry.name}", file=out)
    if entry.size is not None:
        print(f"size: {entry.size}", file=out)
    for algo, digest in sorted(entry.hashes.items()):
        print(f"hash: {algo}={digest}", file=out)
    for url in entry.ordered_urls():
        print(f"replica[{url.priority}]: {url.url}", file=out)
    return 0


def cmd_copy(args, out=sys.stdout) -> int:
    from repro.http import Url

    client = _client(args)
    source = Url.parse(args.source_url)
    destination = Url.parse(args.destination_url)
    if source.origin == destination.origin:
        # Same server: plain WebDAV COPY/MOVE.
        if args.move:
            client.rename(source, destination)
        else:
            client.copy(source, destination)
        print(f"copied {source} -> {destination}", file=out)
        return 0
    # Cross-server: third-party copy — the storage nodes move the
    # bytes directly while we watch the Perf Marker stream.
    summary = client.third_party_copy(
        source,
        destination,
        mode=args.mode,
        streams=args.streams,
    )
    if args.move:
        client.delete(source)
    print(
        f"third-party copied {source} -> {destination} "
        f"({args.mode}, {summary.bytes_transferred} bytes, "
        f"{len(summary.markers)} markers)",
        file=out,
    )
    return 0


def cmd_serve(args, out=sys.stdout) -> int:
    from repro.server import ObjectStore, StorageApp, real_server

    root = pathlib.Path(args.root)
    store = ObjectStore(clock=time.time)
    loaded = 0
    for path in sorted(root.rglob("*")):
        if path.is_file():
            store.put(
                "/" + str(path.relative_to(root)), path.read_bytes()
            )
            loaded += 1
    app = StorageApp(store)
    with real_server(app, port=args.port) as server:
        print(
            f"serving {loaded} object(s) from {root} on "
            f"http://127.0.0.1:{server.port} (Ctrl-C to stop)",
            file=out,
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            return 0


def _render_stats(client, args, out) -> None:
    """Shared tail of ``stats``: registry (and spans) to ``out``."""
    from repro.obs import (
        metrics_to_json_lines,
        render_metrics,
        render_span_tree,
        spans_to_json_lines,
    )

    registry = client.metrics()
    if args.json:
        print(metrics_to_json_lines(registry), file=out)
        if args.trace:
            print(spans_to_json_lines(client.tracer()), file=out)
    else:
        print(render_metrics(registry), file=out)
        pool = client.pool_stats()
        print(
            f"\npool: {pool.hits} hits / {pool.misses} misses "
            f"(hit rate {pool.hit_rate:.1%}), "
            f"{pool.recycled} recycled, {pool.idle} idle",
            file=out,
        )
        if args.trace:
            print("\n" + render_span_tree(client.tracer()), file=out)


def cmd_stats(args, out=sys.stdout) -> int:
    """Observability showcase: drive requests, dump the registry.

    With a URL the GET runs against that live server; without one a
    simulated server is stood up and exercised (GETs plus a vectored
    read), so the full metric surface renders without any setup.
    """
    if args.url:
        client = _client(args)
        data = client.get(args.url)
        if not args.json:
            print(f"GET {args.url}: {len(data)} bytes\n", file=out)
        _render_stats(client, args, out)
        return 0

    from repro.concurrency import SimRuntime
    from repro.core import DavixClient
    from repro.net.profiles import LAN, build_network
    from repro.server import HttpServer, ObjectStore, StorageApp
    from repro.server.accesslog import AccessLog
    from repro.sim import Environment

    env = Environment()
    net = build_network(LAN, env, seed=7)
    server_rt = SimRuntime(net, "server")
    store = ObjectStore(clock=server_rt.now)
    store.put("/demo/obj", b"x" * 262_144)
    app = StorageApp(store)
    app.access_log = AccessLog()
    HttpServer(server_rt, app, port=80).start()

    client = DavixClient(SimRuntime(net, "client"))
    for _ in range(5):
        client.get("http://server/demo/obj")
    client.pread_vec(
        "http://server/demo/obj", [(0, 64), (1024, 64), (65536, 64)]
    )
    if not args.json:
        print(
            "simulated demo: 5 GETs + 1 vectored read against "
            "http://server/demo/obj\n",
            file=out,
        )
    _render_stats(client, args, out)
    return 0


def cmd_report(args, out=sys.stdout) -> int:
    """Render the HammerCloud-style run summary from a JSONL log."""
    from repro.obs.events import parse_json_lines
    from repro.obs.slo import SloPolicy
    from repro.workloads.report import render_report

    if args.events == "-":
        text = sys.stdin.read()
    else:
        with open(args.events) as handle:
            text = handle.read()
    policy = SloPolicy(
        availability=args.slo_availability,
        latency_threshold=args.slo_latency,
        latency_objective=args.slo_latency_objective,
    )
    out.write(render_report(parse_json_lines(text), policy=policy))
    return 0


def cmd_trace(args, out=sys.stdout) -> int:
    """Analyze a collected telemetry artifact (or diff two of them)."""
    from repro.obs.analyze import (
        assemble_traces,
        render_trace_diff,
        render_trace_summary,
        render_waterfall,
    )
    from repro.obs.collector import parse_records

    def _read(path: str) -> str:
        if path == "-":
            return sys.stdin.read()
        with open(path) as handle:
            return handle.read()

    records = parse_records(_read(args.telemetry))
    if args.diff:
        other = parse_records(_read(args.diff))
        out.write(
            render_trace_diff(
                records,
                other,
                label_a=args.telemetry,
                label_b=args.diff,
            )
        )
        return 0
    out.write(render_trace_summary(records, limit=args.limit))
    if args.waterfall:
        for tree in assemble_traces(records):
            out.write("\n" + render_waterfall(tree))
    return 0


COMMANDS = {
    "get": cmd_get,
    "vec": cmd_vec,
    "put": cmd_put,
    "ls": cmd_ls,
    "stat": cmd_stat,
    "rm": cmd_rm,
    "mkdir": cmd_mkdir,
    "metalink": cmd_metalink,
    "copy": cmd_copy,
    "serve": cmd_serve,
    "stats": cmd_stats,
    "report": cmd_report,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"davix-tool: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"davix-tool: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
