"""Small statistics helpers for the benchmark harness."""

from __future__ import annotations

import statistics
from typing import Dict, Sequence

__all__ = ["summarize", "ratio"]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """mean/stdev/min/max/median of a sample."""
    data = list(values)
    if not data:
        raise ValueError("no values to summarise")
    return {
        "mean": statistics.fmean(data),
        "stdev": statistics.stdev(data) if len(data) > 1 else 0.0,
        "min": min(data),
        "max": max(data),
        "median": statistics.median(data),
        "n": float(len(data)),
    }


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (inf when the denominator is zero)."""
    if denominator == 0:
        return float("inf")
    return numerator / denominator
