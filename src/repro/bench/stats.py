"""Small statistics helpers for the benchmark harness."""

from __future__ import annotations

import statistics
from typing import Dict, Sequence

__all__ = ["summarize", "ratio", "percentile", "sample_summary"]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """mean/stdev/min/max/median of a sample."""
    data = list(values)
    if not data:
        raise ValueError("no values to summarise")
    return {
        "mean": statistics.fmean(data),
        "stdev": statistics.stdev(data) if len(data) > 1 else 0.0,
        "min": min(data),
        "max": max(data),
        "median": statistics.median(data),
        "n": float(len(data)),
    }


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method so recorded p50/p95
    figures line up with any external analysis of the JSON artefacts.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    data = sorted(values)
    if not data:
        raise ValueError("no values for a percentile")
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    weight = rank - low
    return data[low] * (1.0 - weight) + data[high] * weight


def sample_summary(values: Sequence[float]) -> Dict[str, float]:
    """The benchmark-JSON summary triplet: mean, p50, p95 (plus n)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("no values to summarise")
    return {
        "mean": statistics.fmean(data),
        "p50": percentile(data, 50),
        "p95": percentile(data, 95),
        "n": float(len(data)),
    }


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (inf when the denominator is zero)."""
    if denominator == 0:
        return float("inf")
    return numerator / denominator
