"""Benchmark support: statistics and table rendering."""

from repro.bench.figures import PAPER_FIG4, print_table, render_table
from repro.bench.stats import ratio, summarize

__all__ = ["PAPER_FIG4", "print_table", "render_table", "ratio", "summarize"]
