"""Benchmark support: statistics and table rendering."""

from repro.bench.figures import PAPER_FIG4, print_table, render_table
from repro.bench.stats import percentile, ratio, sample_summary, summarize

__all__ = [
    "PAPER_FIG4",
    "print_table",
    "render_table",
    "percentile",
    "ratio",
    "sample_summary",
    "summarize",
]
